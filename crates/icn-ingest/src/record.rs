//! The hourly record schema, validation, and the record-source trait.
//!
//! The paper's matrix `T` condenses two months of per-hour, per-service
//! measurements (Section 2). A production feed delivers those measurements
//! as a *stream* of [`HourlyRecord`]s, and real streams misbehave: unknown
//! service ids after a DPI catalog update, hours outside the study window,
//! negative or NaN byte counts from collector bugs, duplicated deliveries.
//! [`IngestSchema::validate`] classifies every structural defect into a
//! [`QuarantineReason`]; the sequencing defects (duplicates, late arrivals)
//! are detected downstream by the accumulator, which owns the ordering
//! state.

use std::fmt;

/// One measurement: traffic of one service at one antenna during one hour
/// of the study window. Volumes are in MB, matching the unit of the totals
/// matrix `T`; `bytes_dl`/`bytes_ul` follow the downlink/uplink split of
/// the operator feed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HourlyRecord {
    /// Antenna id = row index into `T`.
    pub antenna: u32,
    /// Service id = column index into `T`.
    pub service: u32,
    /// Hour index into the study window (0-based).
    pub hour: u32,
    /// Downlink volume (MB).
    pub bytes_dl: f64,
    /// Uplink volume (MB).
    pub bytes_ul: f64,
}

impl HourlyRecord {
    /// Total volume of the record, the value folded into `T`.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.bytes_dl + self.bytes_ul
    }

    /// The deduplication key: one record per (antenna, service, hour).
    #[inline]
    pub fn key(&self) -> (u32, u32, u32) {
        (self.antenna, self.service, self.hour)
    }
}

/// Why a record was routed to the quarantine sink instead of `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QuarantineReason {
    /// `bytes_dl` or `bytes_ul` is NaN or infinite.
    NonFiniteVolume,
    /// `bytes_dl` or `bytes_ul` is negative.
    NegativeVolume,
    /// Antenna id outside the schema's row range.
    UnknownAntenna,
    /// Service id outside the schema's column range.
    UnknownService,
    /// Hour index outside the study window.
    OutOfWindowHour,
    /// A record with the same (antenna, service, hour) key was already
    /// accepted into the open bucket for that hour.
    DuplicateKey,
    /// The record's hour was already sealed by the watermark (it arrived
    /// more than the allowed lateness behind the newest hour seen).
    LateArrival,
}

impl QuarantineReason {
    /// Every reason, in validation-priority order (the order checks are
    /// applied, so each bad record maps to exactly one reason).
    pub const ALL: [QuarantineReason; 7] = [
        QuarantineReason::NonFiniteVolume,
        QuarantineReason::NegativeVolume,
        QuarantineReason::UnknownAntenna,
        QuarantineReason::UnknownService,
        QuarantineReason::OutOfWindowHour,
        QuarantineReason::DuplicateKey,
        QuarantineReason::LateArrival,
    ];

    /// Stable snake_case label used in counters, checkpoints and reports.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineReason::NonFiniteVolume => "non_finite_volume",
            QuarantineReason::NegativeVolume => "negative_volume",
            QuarantineReason::UnknownAntenna => "unknown_antenna",
            QuarantineReason::UnknownService => "unknown_service",
            QuarantineReason::OutOfWindowHour => "out_of_window_hour",
            QuarantineReason::DuplicateKey => "duplicate_key",
            QuarantineReason::LateArrival => "late_arrival",
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The dimensions a record stream must conform to: `antennas × services`
/// cells over `hours` window slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestSchema {
    /// Number of antennas (rows of `T`).
    pub antennas: u32,
    /// Number of services (columns of `T`).
    pub services: u32,
    /// Number of hours in the study window.
    pub hours: u32,
}

impl IngestSchema {
    /// Structural validation of one record. Checks run in the fixed
    /// priority order of [`QuarantineReason::ALL`], so a record failing
    /// several ways is always attributed to the same (first) reason —
    /// a requirement for exact quarantine accounting under fault
    /// injection. This check is stateless and therefore safe to run in
    /// parallel over a chunk; the stateful duplicate/late checks live in
    /// the accumulator.
    pub fn validate(&self, r: &HourlyRecord) -> Result<(), QuarantineReason> {
        if !r.bytes_dl.is_finite() || !r.bytes_ul.is_finite() {
            return Err(QuarantineReason::NonFiniteVolume);
        }
        if r.bytes_dl < 0.0 || r.bytes_ul < 0.0 {
            return Err(QuarantineReason::NegativeVolume);
        }
        if r.antenna >= self.antennas {
            return Err(QuarantineReason::UnknownAntenna);
        }
        if r.service >= self.services {
            return Err(QuarantineReason::UnknownService);
        }
        if r.hour >= self.hours {
            return Err(QuarantineReason::OutOfWindowHour);
        }
        Ok(())
    }

    /// Total number of records a gap-free stream over this schema carries.
    pub fn total_records(&self) -> u64 {
        self.antennas as u64 * self.services as u64 * self.hours as u64
    }
}

/// An error surfaced by a record source.
#[derive(Clone, Debug, PartialEq)]
pub enum SourceError {
    /// Retryable (network hiccup, collector restart): the pipeline retries
    /// with bounded backoff.
    Transient(String),
    /// Unrecoverable: the pipeline aborts and reports it.
    Fatal(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient(m) => write!(f, "transient source error: {m}"),
            SourceError::Fatal(m) => write!(f, "fatal source error: {m}"),
        }
    }
}

/// A pull-based stream of hourly records.
pub trait RecordSource {
    /// Returns the next batch of up to `max` records. An empty vector
    /// signals end of stream. A [`SourceError::Transient`] error leaves the
    /// source in a retryable state: the same call may succeed next time
    /// without losing records.
    fn next_chunk(&mut self, max: usize) -> Result<Vec<HourlyRecord>, SourceError>;

    /// Skips the next `n` records (used when resuming from a checkpoint).
    ///
    /// The default implementation pulls and discards, which also replays
    /// any internal generator state — required for synthetic sources whose
    /// record values depend on a running fold. Sources backed by seekable
    /// storage may override with an O(1) seek.
    fn skip_records(&mut self, mut n: u64) -> Result<(), SourceError> {
        const SKIP_CHUNK: usize = 8192;
        let mut transient_budget = 100u32;
        while n > 0 {
            let want = (n as usize).min(SKIP_CHUNK);
            match self.next_chunk(want) {
                Ok(batch) => {
                    if batch.is_empty() {
                        return Err(SourceError::Fatal(format!(
                            "skip_records: stream ended with {n} records still to skip"
                        )));
                    }
                    n -= batch.len() as u64;
                }
                Err(SourceError::Transient(_)) if transient_budget > 0 => {
                    transient_budget -= 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// An in-memory record source, used by tests and the differential oracle.
#[derive(Clone, Debug)]
pub struct VecSource {
    records: Vec<HourlyRecord>,
    pos: usize,
}

impl VecSource {
    /// Wraps a vector of records.
    pub fn new(records: Vec<HourlyRecord>) -> VecSource {
        VecSource { records, pos: 0 }
    }

    /// Records not yet served.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }
}

impl RecordSource for VecSource {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<HourlyRecord>, SourceError> {
        let hi = (self.pos + max).min(self.records.len());
        let out = self.records[self.pos..hi].to_vec();
        self.pos = hi;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> IngestSchema {
        IngestSchema {
            antennas: 10,
            services: 5,
            hours: 24,
        }
    }

    fn ok_record() -> HourlyRecord {
        HourlyRecord {
            antenna: 3,
            service: 2,
            hour: 7,
            bytes_dl: 10.0,
            bytes_ul: 2.0,
        }
    }

    #[test]
    fn valid_record_passes() {
        assert_eq!(schema().validate(&ok_record()), Ok(()));
    }

    #[test]
    fn validation_priority_is_fixed() {
        // A record failing multiple checks maps to the highest-priority one.
        let r = HourlyRecord {
            antenna: 99,
            service: 99,
            hour: 99,
            bytes_dl: f64::NAN,
            bytes_ul: -1.0,
        };
        assert_eq!(
            schema().validate(&r),
            Err(QuarantineReason::NonFiniteVolume)
        );
        let r2 = HourlyRecord {
            bytes_dl: -1.0,
            ..ok_record()
        };
        assert_eq!(
            schema().validate(&r2),
            Err(QuarantineReason::NegativeVolume)
        );
    }

    #[test]
    fn each_dimension_is_checked() {
        let s = schema();
        let bad_antenna = HourlyRecord {
            antenna: 10,
            ..ok_record()
        };
        assert_eq!(
            s.validate(&bad_antenna),
            Err(QuarantineReason::UnknownAntenna)
        );
        let bad_service = HourlyRecord {
            service: 5,
            ..ok_record()
        };
        assert_eq!(
            s.validate(&bad_service),
            Err(QuarantineReason::UnknownService)
        );
        let bad_hour = HourlyRecord {
            hour: 24,
            ..ok_record()
        };
        assert_eq!(
            s.validate(&bad_hour),
            Err(QuarantineReason::OutOfWindowHour)
        );
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let mut labels: Vec<&str> = QuarantineReason::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), QuarantineReason::ALL.len());
    }

    #[test]
    fn vec_source_serves_in_chunks() {
        let recs: Vec<HourlyRecord> = (0..10)
            .map(|i| HourlyRecord {
                antenna: i,
                service: 0,
                hour: 0,
                bytes_dl: 1.0,
                bytes_ul: 0.0,
            })
            .collect();
        let mut src = VecSource::new(recs);
        assert_eq!(src.next_chunk(4).unwrap().len(), 4);
        assert_eq!(src.remaining(), 6);
        src.skip_records(5).unwrap();
        let tail = src.next_chunk(100).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].antenna, 9);
        assert!(src.next_chunk(1).unwrap().is_empty());
    }

    #[test]
    fn skip_past_end_is_fatal() {
        let mut src = VecSource::new(Vec::new());
        assert!(matches!(src.skip_records(1), Err(SourceError::Fatal(_))));
    }
}
