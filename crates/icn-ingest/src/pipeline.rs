//! The chunked ingest driver: pull → retry → validate → accumulate →
//! checkpoint.
//!
//! Each step pulls one chunk from the source (with bounded retry/backoff
//! on transient errors), validates it in parallel (the structural checks
//! are stateless, so `icn_stats::par` can fan them out without affecting
//! results), then applies records **in order** against the accumulator,
//! which performs the stateful duplicate/late checks and owns the
//! watermark. Because accept/quarantine decisions depend only on the
//! record sequence — never on chunk boundaries or thread count — the final
//! totals are bit-identical for any `chunk_size` and any `ICN_THREADS`.

use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

use icn_obs::Span;
use icn_stats::par;

use crate::accumulator::{AccumulatedTotals, StreamAccumulator};
use crate::checkpoint::Checkpoint;
use crate::record::{HourlyRecord, IngestSchema, QuarantineReason, RecordSource, SourceError};

/// How many quarantined records are retained verbatim for diagnostics.
const QUARANTINE_SAMPLE_CAP: usize = 32;

/// Tuning knobs of the ingest driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IngestConfig {
    /// Records pulled per source request.
    pub chunk_size: usize,
    /// Hours a record may trail the newest hour seen before it is
    /// quarantined as late.
    pub lateness_hours: u32,
    /// Transient-error retries before the run aborts.
    pub max_retries: u32,
    /// Base backoff between retries; doubles per attempt (capped at
    /// 64×). Zero disables sleeping, which tests use.
    pub backoff: Duration,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            chunk_size: 4096,
            lateness_hours: 2,
            max_retries: 8,
            backoff: Duration::ZERO,
        }
    }
}

/// Ingest accounting: accepted, quarantined (per reason), retried, chunks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestStats {
    /// Records accepted into the accumulator.
    pub ok: u64,
    /// Quarantined records, keyed by [`QuarantineReason::label`].
    pub quarantined: BTreeMap<String, u64>,
    /// Retries performed after transient source errors.
    pub retried: u64,
    /// Chunks processed.
    pub chunks: u64,
}

impl IngestStats {
    /// Total quarantined records across all reasons.
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined.values().sum()
    }

    /// Count for one reason (zero if none).
    pub fn quarantined_for(&self, reason: QuarantineReason) -> u64 {
        self.quarantined.get(reason.label()).copied().unwrap_or(0)
    }
}

/// A failed ingest run.
#[derive(Clone, Debug, PartialEq)]
pub enum IngestError {
    /// The source raised an unrecoverable error.
    Fatal(String),
    /// Transient errors persisted past the retry budget.
    RetriesExhausted {
        /// Attempts made (= `max_retries` + 1).
        attempts: u32,
        /// The last transient error message.
        last: String,
    },
    /// A checkpoint could not be applied (dimension/lateness mismatch).
    BadCheckpoint(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Fatal(m) => write!(f, "ingest failed: {m}"),
            IngestError::RetriesExhausted { attempts, last } => {
                write!(f, "ingest gave up after {attempts} attempts: {last}")
            }
            IngestError::BadCheckpoint(m) => write!(f, "bad checkpoint: {m}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// The final product of an ingest run: the incrementally built `T`, the
/// per-hour temporal accumulators, and the run's accounting.
#[derive(Clone, Debug)]
pub struct IngestResult {
    /// The antenna × service totals matrix (the streaming-built `T`).
    pub totals: icn_stats::Matrix,
    /// Accepted volume per window hour.
    pub hourly_volume: Vec<f64>,
    /// Accepted records per window hour.
    pub hourly_records: Vec<u64>,
    /// Accounting for the whole run (including any resumed prefix).
    pub stats: IngestStats,
    /// Records consumed from the source (accepted + quarantined).
    pub records_consumed: u64,
}

/// The streaming ingest pipeline.
pub struct IngestPipeline {
    config: IngestConfig,
    acc: StreamAccumulator,
    stats: IngestStats,
    records_consumed: u64,
    quarantine_sample: Vec<(HourlyRecord, QuarantineReason)>,
}

impl IngestPipeline {
    /// Creates a fresh pipeline for the given stream schema.
    pub fn new(schema: IngestSchema, config: IngestConfig) -> IngestPipeline {
        IngestPipeline {
            config,
            acc: StreamAccumulator::new(schema, config.lateness_hours),
            stats: IngestStats::default(),
            records_consumed: 0,
            quarantine_sample: Vec::new(),
        }
    }

    /// Resumes from a checkpoint. The caller must also advance the source
    /// past the consumed prefix ([`RecordSource::skip_records`] with
    /// [`Checkpoint::records_consumed`]). Fails if the checkpoint's
    /// lateness window disagrees with `config` — resuming with different
    /// sealing rules would break the determinism contract.
    pub fn from_checkpoint(
        ck: Checkpoint,
        config: IngestConfig,
    ) -> Result<IngestPipeline, IngestError> {
        if ck.lateness != config.lateness_hours {
            return Err(IngestError::BadCheckpoint(format!(
                "checkpoint lateness {} != configured {}",
                ck.lateness, config.lateness_hours
            )));
        }
        Ok(IngestPipeline {
            config,
            acc: ck.acc,
            stats: ck.stats,
            records_consumed: ck.records_consumed,
            quarantine_sample: Vec::new(),
        })
    }

    /// The stream schema being enforced.
    pub fn schema(&self) -> &IngestSchema {
        self.acc.schema()
    }

    /// Records consumed from the source so far.
    pub fn records_consumed(&self) -> u64 {
        self.records_consumed
    }

    /// Accounting so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Up to 32 quarantined records kept verbatim for diagnostics (not
    /// part of the checkpoint).
    pub fn quarantine_sample(&self) -> &[(HourlyRecord, QuarantineReason)] {
        &self.quarantine_sample
    }

    /// Snapshots the pipeline into a resumable checkpoint.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            schema: *self.acc.schema(),
            lateness: self.acc.lateness(),
            records_consumed: self.records_consumed,
            stats: self.stats.clone(),
            acc: self.acc.clone(),
        }
    }

    /// Processes one chunk. Returns `Ok(Some(n))` after consuming `n`
    /// records, `Ok(None)` at end of stream.
    pub fn step<S: RecordSource>(&mut self, source: &mut S) -> Result<Option<usize>, IngestError> {
        let chunk = self.pull_chunk(source)?;
        if chunk.is_empty() {
            return Ok(None);
        }
        let mut chunk_span = icn_obs::Span::enter("ingest_chunk");
        chunk_span.attr("records", chunk.len() as u64);
        let chunk_t0 = chunk_span.path().is_some().then(Instant::now);
        // Stateless validation in parallel; results come back in order, so
        // this cannot perturb the sequential accept/quarantine decisions.
        let schema = *self.acc.schema();
        let verdicts = par::map_indexed(chunk.len(), |i| schema.validate(&chunk[i]).err());
        let mut ok = 0u64;
        let mut quarantined = 0u64;
        for (r, verdict) in chunk.iter().zip(verdicts) {
            self.records_consumed += 1;
            let outcome = match verdict {
                Some(reason) => Err(reason),
                None => self.acc.insert(r),
            };
            match outcome {
                Ok(()) => ok += 1,
                Err(reason) => {
                    quarantined += 1;
                    *self
                        .stats
                        .quarantined
                        .entry(reason.label().to_string())
                        .or_insert(0) += 1;
                    if self.quarantine_sample.len() < QUARANTINE_SAMPLE_CAP {
                        self.quarantine_sample.push((*r, reason));
                    }
                }
            }
        }
        let reg = icn_obs::global();
        let seal_t0 = reg.is_enabled().then(Instant::now);
        self.acc.commit_sealed();
        if let Some(t0) = seal_t0 {
            reg.record_hist("ingest.seal_ns", t0.elapsed().as_nanos() as u64);
        }
        self.stats.ok += ok;
        self.stats.chunks += 1;
        reg.add_counter("ingest.records_ok", ok);
        reg.add_counter("ingest.records_quarantined", quarantined);
        reg.add_counter("ingest.chunks", 1);
        if quarantined > 0 {
            chunk_span.attr("quarantined", quarantined);
            icn_obs::obs_log!(
                Warn,
                "ingest",
                "quarantined {quarantined} of {} records in chunk {}",
                chunk.len(),
                self.stats.chunks
            );
        }
        chunk_span.event("sealed");
        if let Some(t0) = chunk_t0 {
            reg.record_hist("ingest.chunk_ns", t0.elapsed().as_nanos() as u64);
        }
        Ok(Some(chunk.len()))
    }

    /// Runs until end of stream.
    pub fn run<S: RecordSource>(&mut self, source: &mut S) -> Result<(), IngestError> {
        self.run_until(source, None).map(|_| ())
    }

    /// Runs until end of stream or until `max_chunks` chunks have been
    /// processed (used by the CLI's kill-and-resume smoke). Returns `true`
    /// if the stream is exhausted.
    pub fn run_until<S: RecordSource>(
        &mut self,
        source: &mut S,
        max_chunks: Option<u64>,
    ) -> Result<bool, IngestError> {
        let _span = Span::enter("ingest");
        let start = Instant::now();
        let before = self.records_consumed;
        let mut chunks = 0u64;
        let finished = loop {
            if max_chunks.is_some_and(|m| chunks >= m) {
                break false;
            }
            match self.step(source)? {
                Some(_) => chunks += 1,
                None => break true,
            }
        };
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            let processed = (self.records_consumed - before) as f64;
            icn_obs::global().set_gauge("ingest.records_per_sec", processed / secs);
        }
        Ok(finished)
    }

    /// Seals every remaining open hour and returns the final result.
    pub fn finish(self) -> IngestResult {
        let AccumulatedTotals {
            totals,
            hourly_volume,
            hourly_records,
        } = self.acc.finish();
        IngestResult {
            totals,
            hourly_volume,
            hourly_records,
            stats: self.stats,
            records_consumed: self.records_consumed,
        }
    }

    fn pull_chunk<S: RecordSource>(
        &mut self,
        source: &mut S,
    ) -> Result<Vec<HourlyRecord>, IngestError> {
        let mut attempt = 0u32;
        loop {
            match source.next_chunk(self.config.chunk_size) {
                Ok(chunk) => return Ok(chunk),
                Err(SourceError::Fatal(m)) => return Err(IngestError::Fatal(m)),
                Err(SourceError::Transient(m)) => {
                    attempt += 1;
                    if attempt > self.config.max_retries {
                        return Err(IngestError::RetriesExhausted {
                            attempts: attempt,
                            last: m,
                        });
                    }
                    self.stats.retried += 1;
                    icn_obs::global().add_counter("ingest.retried", 1);
                    icn_obs::obs_log!(
                        Warn,
                        "ingest",
                        "transient source error (attempt {attempt}): {m}"
                    );
                    if !self.config.backoff.is_zero() {
                        let factor = 1u32 << (attempt - 1).min(6);
                        std::thread::sleep(self.config.backoff.saturating_mul(factor));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VecSource;

    fn schema() -> IngestSchema {
        IngestSchema {
            antennas: 5,
            services: 4,
            hours: 24,
        }
    }

    fn clean_records() -> Vec<HourlyRecord> {
        let mut out = Vec::new();
        for h in 0..24u32 {
            for a in 0..5u32 {
                for s in 0..4u32 {
                    out.push(HourlyRecord {
                        antenna: a,
                        service: s,
                        hour: h,
                        bytes_dl: f64::from(h * 20 + a * 4 + s) * 0.37,
                        bytes_ul: 0.11,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn clean_stream_accepts_everything() {
        let recs = clean_records();
        let n = recs.len() as u64;
        let mut pipe = IngestPipeline::new(schema(), IngestConfig::default());
        pipe.run(&mut VecSource::new(recs)).unwrap();
        let out = pipe.finish();
        assert_eq!(out.stats.ok, n);
        assert_eq!(out.stats.quarantined_total(), 0);
        assert_eq!(out.records_consumed, n);
        assert!(out.hourly_records.iter().all(|&c| c == 20));
    }

    #[test]
    fn bad_records_are_quarantined_with_reasons() {
        let mut recs = clean_records();
        recs.push(HourlyRecord {
            antenna: 0,
            service: 99,
            hour: 23,
            bytes_dl: 1.0,
            bytes_ul: 0.0,
        });
        recs.push(recs[0]); // duplicate of (0,0,0) → but hour 0 is late by now
        let mut pipe = IngestPipeline::new(schema(), IngestConfig::default());
        pipe.run(&mut VecSource::new(recs)).unwrap();
        let out = pipe.finish();
        assert_eq!(
            out.stats.quarantined_for(QuarantineReason::UnknownService),
            1
        );
        assert_eq!(out.stats.quarantined_for(QuarantineReason::LateArrival), 1);
        assert_eq!(out.stats.quarantined_total(), 2);
    }

    #[test]
    fn chunk_size_does_not_change_totals_bits() {
        let recs = clean_records();
        let totals: Vec<_> = [1usize, 7, 4096]
            .iter()
            .map(|&chunk| {
                let mut pipe = IngestPipeline::new(
                    schema(),
                    IngestConfig {
                        chunk_size: chunk,
                        ..IngestConfig::default()
                    },
                );
                pipe.run(&mut VecSource::new(recs.clone())).unwrap();
                pipe.finish().totals
            })
            .collect();
        for t in &totals[1..] {
            for (a, b) in totals[0].as_slice().iter().zip(t.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let recs = clean_records();
        let cfg = IngestConfig {
            chunk_size: 13,
            ..IngestConfig::default()
        };

        let mut straight = IngestPipeline::new(schema(), cfg);
        straight.run(&mut VecSource::new(recs.clone())).unwrap();
        let want = straight.finish();

        let mut first = IngestPipeline::new(schema(), cfg);
        let mut src = VecSource::new(recs.clone());
        for _ in 0..7 {
            first.step(&mut src).unwrap();
        }
        let ck = Checkpoint::parse(&first.checkpoint().render()).unwrap();
        drop(first); // the "crash"

        let consumed = ck.records_consumed;
        let mut resumed = IngestPipeline::from_checkpoint(ck, cfg).unwrap();
        let mut src2 = VecSource::new(recs);
        src2.skip_records(consumed).unwrap();
        resumed.run(&mut src2).unwrap();
        let got = resumed.finish();

        assert_eq!(got.stats, want.stats);
        assert_eq!(got.records_consumed, want.records_consumed);
        for (a, b) in want.totals.as_slice().iter().zip(got.totals.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in want.hourly_volume.iter().zip(&got.hourly_volume) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(want.hourly_records, got.hourly_records);
    }

    #[test]
    fn checkpoint_lateness_mismatch_is_rejected() {
        let pipe = IngestPipeline::new(schema(), IngestConfig::default());
        let ck = pipe.checkpoint();
        let other = IngestConfig {
            lateness_hours: 5,
            ..IngestConfig::default()
        };
        assert!(matches!(
            IngestPipeline::from_checkpoint(ck, other),
            Err(IngestError::BadCheckpoint(_))
        ));
    }

    struct FlakySource {
        inner: VecSource,
        fail_next: u32,
    }

    impl RecordSource for FlakySource {
        fn next_chunk(&mut self, max: usize) -> Result<Vec<HourlyRecord>, SourceError> {
            if self.fail_next > 0 {
                self.fail_next -= 1;
                return Err(SourceError::Transient("flaky".into()));
            }
            self.inner.next_chunk(max)
        }
    }

    #[test]
    fn transient_errors_are_retried_within_budget() {
        let mut pipe = IngestPipeline::new(schema(), IngestConfig::default());
        let mut src = FlakySource {
            inner: VecSource::new(clean_records()),
            fail_next: 3,
        };
        pipe.run(&mut src).unwrap();
        assert_eq!(pipe.stats().retried, 3);
    }

    #[test]
    fn retry_budget_exhaustion_aborts() {
        let cfg = IngestConfig {
            max_retries: 2,
            ..IngestConfig::default()
        };
        let mut pipe = IngestPipeline::new(schema(), cfg);
        let mut src = FlakySource {
            inner: VecSource::new(clean_records()),
            fail_next: 100,
        };
        let err = pipe.run(&mut src).unwrap_err();
        assert!(matches!(
            err,
            IngestError::RetriesExhausted { attempts: 3, .. }
        ));
    }
}
