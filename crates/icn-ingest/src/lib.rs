//! # icn-ingest — streaming record ingest with fault injection
//!
//! The paper builds its antenna × service matrix `T` from two months of
//! per-hour, per-service traffic records (PAPER.md §2). This crate is the
//! front door for doing that from a *stream*: records arrive chunked,
//! possibly late, duplicated, reordered, or corrupted, and ingestion must
//! survive transient source failures and process crashes — while still
//! producing a `T` **bit-identical** to the batch construction.
//!
//! * [`record`] — the [`HourlyRecord`] schema, structural validation with
//!   per-reason quarantine classification, and the [`RecordSource`] trait.
//! * [`accumulator`] — watermark-bucketed folding: open per-hour buckets
//!   sealed by a lateness watermark and folded in canonical (hour, cell)
//!   order, which is what makes the result invariant to chunking,
//!   threading, and bounded reordering.
//! * [`pipeline`] — the chunked driver: bounded retry/backoff, parallel
//!   stateless validation, quarantine accounting, observability counters
//!   (`ingest.*` under the `ingest` stage span).
//! * [`checkpoint`] — the `icn-ingest/v1` resume format; floats travel as
//!   IEEE-754 bit patterns so a crash/restore cycle cannot lose a ulp.
//! * [`faults`] — a deterministic fault injector ([`FaultySource`]) whose
//!   per-record decisions depend only on `(seed, record index)`, making
//!   injected fault counts exactly reproducible at any chunk size.
//!
//! The determinism contract is enforced by the workspace test-suite
//! (`tests/ingest_determinism.rs`, `tests/ingest_faults.rs`) and by the
//! `icn-testkit` differential oracle comparing streaming against batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod checkpoint;
pub mod faults;
pub mod pipeline;
pub mod record;

pub use accumulator::{AccumulatedTotals, StreamAccumulator};
pub use checkpoint::{Checkpoint, CHECKPOINT_SCHEMA};
pub use faults::{FaultConfig, FaultReport, FaultySource};
pub use pipeline::{IngestConfig, IngestError, IngestPipeline, IngestResult, IngestStats};
pub use record::{
    HourlyRecord, IngestSchema, QuarantineReason, RecordSource, SourceError, VecSource,
};
