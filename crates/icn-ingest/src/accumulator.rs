//! Watermark-bucketed accumulation of validated records into `T`.
//!
//! The determinism contract of the whole subsystem lives here. Records may
//! arrive chunked arbitrarily, interleaved, duplicated, or reordered within
//! a bounded lateness window, yet the final matrix must be **bit-identical**
//! to the batch construction. Float addition is not associative, so the
//! accumulator never folds in arrival order. Instead:
//!
//! 1. incoming records land in an *open bucket* per hour, keyed by
//!    `(antenna, service)` in a `BTreeMap` — insertion order is forgotten;
//! 2. a watermark (`max_hour_seen − lateness`) seals hours that can no
//!    longer legally receive records;
//! 3. sealed hours are folded in ascending hour order, cells in ascending
//!    key order.
//!
//! Every cell of `T` therefore accumulates its per-hour contributions in
//! exactly one canonical order — ascending hour — no matter how the stream
//! was chunked, threaded, or (boundedly) reordered. Duplicate and late
//! records are rejected here because only the accumulator holds the
//! sequencing state needed to detect them.

use std::collections::BTreeMap;

use icn_stats::Matrix;

use crate::record::{HourlyRecord, IngestSchema, QuarantineReason};

/// Open (not yet sealed) records of one hour: cell key → (dl, ul).
type HourBucket = BTreeMap<(u32, u32), (f64, f64)>;

/// Incrementally maintained `T` plus per-hour temporal accumulators.
#[derive(Clone, Debug)]
pub struct StreamAccumulator {
    schema: IngestSchema,
    lateness: u32,
    /// Committed totals (rows = antennas, cols = services).
    totals: Matrix,
    /// Committed per-hour volume (temporal accumulator).
    hourly_volume: Vec<f64>,
    /// Committed per-hour accepted-record counts.
    hourly_records: Vec<u64>,
    /// Open buckets, keyed by hour. `BTreeMap` so sealing walks hours in
    /// ascending order.
    open: BTreeMap<u32, HourBucket>,
    /// Highest hour observed on any accepted record.
    max_hour_seen: Option<u32>,
    /// All hours `< committed_below` have been folded into `totals`.
    committed_below: u32,
}

/// The folded output of an accumulator: `T`, per-hour volume, per-hour
/// accepted-record counts.
#[derive(Clone, Debug, PartialEq)]
pub struct AccumulatedTotals {
    /// The antenna × service totals matrix.
    pub totals: Matrix,
    /// Total accepted volume per window hour.
    pub hourly_volume: Vec<f64>,
    /// Accepted records per window hour.
    pub hourly_records: Vec<u64>,
}

impl StreamAccumulator {
    /// Creates an empty accumulator. `lateness` is the number of hours a
    /// record may trail the newest hour seen before it is quarantined as
    /// [`QuarantineReason::LateArrival`].
    pub fn new(schema: IngestSchema, lateness: u32) -> StreamAccumulator {
        StreamAccumulator {
            schema,
            lateness,
            totals: Matrix::zeros(schema.antennas as usize, schema.services as usize),
            hourly_volume: vec![0.0; schema.hours as usize],
            hourly_records: vec![0; schema.hours as usize],
            open: BTreeMap::new(),
            max_hour_seen: None,
            committed_below: 0,
        }
    }

    /// The schema this accumulator was built for.
    pub fn schema(&self) -> &IngestSchema {
        &self.schema
    }

    /// The configured lateness window, in hours.
    pub fn lateness(&self) -> u32 {
        self.lateness
    }

    /// Highest hour observed so far, if any record was accepted.
    pub fn max_hour_seen(&self) -> Option<u32> {
        self.max_hour_seen
    }

    /// All hours below this bound have been folded into the totals.
    pub fn committed_below(&self) -> u32 {
        self.committed_below
    }

    /// Number of records currently held in open (unsealed) buckets.
    pub fn open_records(&self) -> usize {
        self.open.values().map(|b| b.len()).sum()
    }

    /// Committed totals so far (open buckets not included).
    pub fn committed_totals(&self) -> &Matrix {
        &self.totals
    }

    /// Inserts one schema-valid record. The caller must have run
    /// [`IngestSchema::validate`] first; this method performs only the
    /// stateful checks (late arrival, duplicate key).
    ///
    /// The lateness check compares against `max_hour_seen` — a property of
    /// the record *sequence*, not of chunk boundaries — so the accept /
    /// quarantine decision for every record is invariant to how the stream
    /// is chunked.
    pub fn insert(&mut self, r: &HourlyRecord) -> Result<(), QuarantineReason> {
        debug_assert!(
            self.schema.validate(r).is_ok(),
            "insert() requires a schema-valid record"
        );
        if let Some(max) = self.max_hour_seen {
            if r.hour + self.lateness < max {
                return Err(QuarantineReason::LateArrival);
            }
        }
        let bucket = self.open.entry(r.hour).or_default();
        match bucket.entry((r.antenna, r.service)) {
            std::collections::btree_map::Entry::Occupied(_) => Err(QuarantineReason::DuplicateKey),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((r.bytes_dl, r.bytes_ul));
                self.max_hour_seen = Some(match self.max_hour_seen {
                    Some(m) => m.max(r.hour),
                    None => r.hour,
                });
                Ok(())
            }
        }
    }

    /// Seals and folds every hour the watermark has passed: all `h` with
    /// `h + lateness < max_hour_seen`. Hours fold in ascending order,
    /// cells within an hour in ascending `(antenna, service)` order.
    pub fn commit_sealed(&mut self) {
        let Some(max) = self.max_hour_seen else {
            return;
        };
        // h + lateness < max  ⟺  h < max − lateness (u32, max ≥ lateness).
        let seal_below = max.saturating_sub(self.lateness);
        while let Some((&h, _)) = self.open.iter().next() {
            if h >= seal_below {
                break;
            }
            let bucket = self.open.remove(&h).expect("hour key just observed");
            self.fold_bucket(h, bucket);
        }
        self.committed_below = self.committed_below.max(seal_below);
    }

    /// Folds every remaining open bucket (ascending hour order) and
    /// returns the final totals. Call once the stream has ended.
    pub fn finish(mut self) -> AccumulatedTotals {
        while let Some((&h, _)) = self.open.iter().next() {
            let bucket = self.open.remove(&h).expect("hour key just observed");
            self.fold_bucket(h, bucket);
        }
        if let Some(max) = self.max_hour_seen {
            self.committed_below = self.committed_below.max(max + 1);
        }
        AccumulatedTotals {
            totals: self.totals,
            hourly_volume: self.hourly_volume,
            hourly_records: self.hourly_records,
        }
    }

    fn fold_bucket(&mut self, hour: u32, bucket: HourBucket) {
        let h = hour as usize;
        for ((a, s), (dl, ul)) in bucket {
            let v = dl + ul;
            let (i, j) = (a as usize, s as usize);
            self.totals.set(i, j, self.totals.get(i, j) + v);
            self.hourly_volume[h] += v;
            self.hourly_records[h] += 1;
        }
    }

    /// Reconstructs an accumulator from checkpoint state.
    #[allow(clippy::too_many_arguments)] // mirrors the checkpoint fields 1:1
    pub(crate) fn from_parts(
        schema: IngestSchema,
        lateness: u32,
        totals: Matrix,
        hourly_volume: Vec<f64>,
        hourly_records: Vec<u64>,
        open: BTreeMap<u32, HourBucket>,
        max_hour_seen: Option<u32>,
        committed_below: u32,
    ) -> StreamAccumulator {
        StreamAccumulator {
            schema,
            lateness,
            totals,
            hourly_volume,
            hourly_records,
            open,
            max_hour_seen,
            committed_below,
        }
    }

    /// Read access to the open buckets (checkpoint serialization).
    pub(crate) fn open_buckets(&self) -> &BTreeMap<u32, HourBucket> {
        &self.open
    }

    /// Read access to the committed hourly volume (checkpoint serialization).
    pub(crate) fn hourly_volume(&self) -> &[f64] {
        &self.hourly_volume
    }

    /// Read access to the committed hourly record counts.
    pub(crate) fn hourly_records(&self) -> &[u64] {
        &self.hourly_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> IngestSchema {
        IngestSchema {
            antennas: 4,
            services: 3,
            hours: 48,
        }
    }

    fn rec(a: u32, s: u32, h: u32, v: f64) -> HourlyRecord {
        HourlyRecord {
            antenna: a,
            service: s,
            hour: h,
            bytes_dl: v,
            bytes_ul: 0.0,
        }
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let mut acc = StreamAccumulator::new(schema(), 2);
        assert!(acc.insert(&rec(0, 0, 0, 1.0)).is_ok());
        assert_eq!(
            acc.insert(&rec(0, 0, 0, 5.0)),
            Err(QuarantineReason::DuplicateKey)
        );
        let out = acc.finish();
        assert_eq!(out.totals.get(0, 0), 1.0);
        assert_eq!(out.hourly_records[0], 1);
    }

    #[test]
    fn late_arrival_is_rejected_by_watermark() {
        let mut acc = StreamAccumulator::new(schema(), 2);
        assert!(acc.insert(&rec(0, 0, 10, 1.0)).is_ok());
        // hour 7: 7 + 2 < 10 → late.
        assert_eq!(
            acc.insert(&rec(1, 0, 7, 1.0)),
            Err(QuarantineReason::LateArrival)
        );
        // hour 8: 8 + 2 = 10, not < 10 → inside the window.
        assert!(acc.insert(&rec(1, 0, 8, 1.0)).is_ok());
    }

    #[test]
    fn commit_seals_only_watermarked_hours() {
        let mut acc = StreamAccumulator::new(schema(), 2);
        acc.insert(&rec(0, 0, 0, 1.0)).unwrap();
        acc.insert(&rec(0, 0, 5, 2.0)).unwrap();
        acc.commit_sealed();
        // Hours < 5 − 2 = 3 are sealed: hour 0 folded, hour 5 still open.
        assert_eq!(acc.committed_below(), 3);
        assert_eq!(acc.committed_totals().get(0, 0), 1.0);
        assert_eq!(acc.open_records(), 1);
        let out = acc.finish();
        assert_eq!(out.totals.get(0, 0), 3.0);
        assert_eq!(out.hourly_volume[5], 2.0);
    }

    #[test]
    fn fold_order_is_hour_ascending_regardless_of_arrival() {
        // Magnitudes chosen so float addition order matters: the 1.0s
        // individually vanish against 1e16 but survive when added first.
        let vals = [1.0, 1e16, 1.0, 1.0];
        let arrival = [2u32, 0, 3, 1];
        let ascending: f64 = vals.iter().fold(0.0, |s, &v| s + v);
        let arrival_sum: f64 = arrival.iter().fold(0.0, |s, &h| s + vals[h as usize]);
        assert_ne!(
            ascending.to_bits(),
            arrival_sum.to_bits(),
            "test values must be order-sensitive"
        );

        let mut acc = StreamAccumulator::new(schema(), 48);
        for &h in &arrival {
            acc.insert(&rec(0, 0, h, vals[h as usize])).unwrap();
        }
        let out = acc.finish();
        assert_eq!(out.totals.get(0, 0).to_bits(), ascending.to_bits());
    }

    #[test]
    fn finish_on_empty_accumulator_is_zero() {
        let out = StreamAccumulator::new(schema(), 2).finish();
        assert_eq!(out.totals.total(), 0.0);
        assert!(out.hourly_records.iter().all(|&c| c == 0));
    }
}
