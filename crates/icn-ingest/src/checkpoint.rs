//! Checkpoint/restore format (`icn-ingest/v1`).
//!
//! A checkpoint captures everything needed to resume ingestion after a
//! crash: the schema, the committed totals, the open (unsealed) buckets,
//! the watermark, the quarantine/retry counters, and the number of records
//! consumed from the source. Restoring a checkpoint and replaying the rest
//! of the stream must reproduce the exact final state of an uninterrupted
//! run — bit for bit. Floats are therefore serialized as the hex of their
//! IEEE-754 bit patterns (`f64::to_bits`), never as decimal text, so a
//! round trip cannot lose a single ulp.
//!
//! The rendered document is plain JSON (via `icn_obs::Json`, insertion
//! ordered, so rendering is deterministic) and carries a schema tag; the
//! golden snapshot `tests/golden/ingest_scale005.json` pins the FNV-1a hash
//! of a rendered checkpoint, so any accidental format drift fails CI
//! loudly instead of silently resuming wrong.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use icn_obs::Json;
use icn_stats::Matrix;

use crate::accumulator::StreamAccumulator;
use crate::pipeline::IngestStats;
use crate::record::IngestSchema;

/// Schema tag of the checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "icn-ingest/v1";

/// A resumable snapshot of an ingest pipeline.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The stream schema the pipeline was validating against.
    pub schema: IngestSchema,
    /// Lateness window of the accumulator, in hours.
    pub lateness: u32,
    /// Records consumed from the source so far (the resume offset).
    pub records_consumed: u64,
    /// Counters at checkpoint time.
    pub stats: IngestStats,
    pub(crate) acc: StreamAccumulator,
}

impl Checkpoint {
    /// Renders the checkpoint as a deterministic JSON document.
    pub fn render(&self) -> String {
        let max_hour = match self.acc.max_hour_seen() {
            Some(h) => Json::num(f64::from(h)),
            None => Json::Null,
        };
        let open: Vec<Json> = self
            .acc
            .open_buckets()
            .iter()
            .map(|(&hour, bucket)| {
                let mut cells = String::new();
                for ((a, s), (dl, ul)) in bucket {
                    if !cells.is_empty() {
                        cells.push(' ');
                    }
                    let _ = write!(cells, "{a}:{s}:{:016x}:{:016x}", dl.to_bits(), ul.to_bits());
                }
                Json::obj(vec![
                    ("hour", Json::num(f64::from(hour))),
                    ("cells", Json::str(cells)),
                ])
            })
            .collect();
        let quarantined = Json::Obj(
            self.stats
                .quarantined
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                .collect(),
        );
        let doc = Json::obj(vec![
            ("schema", Json::str(CHECKPOINT_SCHEMA)),
            (
                "dims",
                Json::obj(vec![
                    ("antennas", Json::num(f64::from(self.schema.antennas))),
                    ("services", Json::num(f64::from(self.schema.services))),
                    ("hours", Json::num(f64::from(self.schema.hours))),
                    ("lateness", Json::num(f64::from(self.lateness))),
                ]),
            ),
            (
                "progress",
                Json::obj(vec![
                    ("records_consumed", Json::num(self.records_consumed as f64)),
                    ("max_hour_seen", max_hour),
                    (
                        "committed_below",
                        Json::num(f64::from(self.acc.committed_below())),
                    ),
                ]),
            ),
            (
                "stats",
                Json::obj(vec![
                    ("ok", Json::num(self.stats.ok as f64)),
                    ("retried", Json::num(self.stats.retried as f64)),
                    ("chunks", Json::num(self.stats.chunks as f64)),
                    ("quarantined", quarantined),
                ]),
            ),
            (
                "totals_bits",
                Json::str(bits_of(self.acc.committed_totals().as_slice())),
            ),
            (
                "hourly_volume_bits",
                Json::str(bits_of(self.acc.hourly_volume())),
            ),
            (
                "hourly_records",
                Json::str(counts_of(self.acc.hourly_records())),
            ),
            ("open", Json::Arr(open)),
        ]);
        doc.to_pretty()
    }

    /// FNV-1a hash of the rendered document, as a 16-hex-digit string.
    /// This is the value pinned by the ingest golden snapshot.
    pub fn hash(&self) -> String {
        format!("{:016x}", fnv1a(self.render().as_bytes()))
    }

    /// Parses a rendered checkpoint back into a resumable state.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let doc = Json::parse(text)?;
        let tag = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("checkpoint missing schema tag")?;
        if tag != CHECKPOINT_SCHEMA {
            return Err(format!(
                "checkpoint schema `{tag}` is not `{CHECKPOINT_SCHEMA}`"
            ));
        }
        let dims = doc.get("dims").ok_or("checkpoint missing dims")?;
        let schema = IngestSchema {
            antennas: get_u32(dims, "antennas")?,
            services: get_u32(dims, "services")?,
            hours: get_u32(dims, "hours")?,
        };
        let lateness = get_u32(dims, "lateness")?;

        let progress = doc.get("progress").ok_or("checkpoint missing progress")?;
        let records_consumed = get_u64(progress, "records_consumed")?;
        let committed_below = get_u32(progress, "committed_below")?;
        let max_hour_seen = match progress.get("max_hour_seen") {
            Some(Json::Null) | None => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or("max_hour_seen is not a number")
                    .map(|f| f as u32)?,
            ),
        };

        let stats_doc = doc.get("stats").ok_or("checkpoint missing stats")?;
        let mut quarantined = BTreeMap::new();
        if let Some(entries) = stats_doc.get("quarantined").and_then(Json::entries) {
            for (k, v) in entries {
                let n = v.as_f64().ok_or("quarantine count is not a number")?;
                quarantined.insert(k.clone(), n as u64);
            }
        }
        let stats = IngestStats {
            ok: get_u64(stats_doc, "ok")?,
            retried: get_u64(stats_doc, "retried")?,
            chunks: get_u64(stats_doc, "chunks")?,
            quarantined,
        };

        let totals_flat = parse_bits(get_str(&doc, "totals_bits")?)?;
        let (rows, cols) = (schema.antennas as usize, schema.services as usize);
        if totals_flat.len() != rows * cols {
            return Err(format!(
                "totals_bits has {} values, dims say {}",
                totals_flat.len(),
                rows * cols
            ));
        }
        let totals = Matrix::from_vec(rows, cols, totals_flat);
        let hourly_volume = parse_bits(get_str(&doc, "hourly_volume_bits")?)?;
        let hourly_records = parse_counts(get_str(&doc, "hourly_records")?)?;
        if hourly_volume.len() != schema.hours as usize
            || hourly_records.len() != schema.hours as usize
        {
            return Err("hourly arrays do not match schema hours".to_string());
        }

        let mut open = BTreeMap::new();
        for entry in doc.get("open").and_then(Json::as_arr).unwrap_or(&[]) {
            let hour = get_u32(entry, "hour")?;
            let mut bucket = BTreeMap::new();
            let cells = get_str(entry, "cells")?;
            for cell in cells.split(' ').filter(|c| !c.is_empty()) {
                let mut it = cell.split(':');
                let (Some(a), Some(s), Some(dl), Some(ul), None) =
                    (it.next(), it.next(), it.next(), it.next(), it.next())
                else {
                    return Err(format!("malformed open cell `{cell}`"));
                };
                let a: u32 = a.parse().map_err(|_| format!("bad antenna in `{cell}`"))?;
                let s: u32 = s.parse().map_err(|_| format!("bad service in `{cell}`"))?;
                let dl = f64::from_bits(
                    u64::from_str_radix(dl, 16).map_err(|_| format!("bad dl bits in `{cell}`"))?,
                );
                let ul = f64::from_bits(
                    u64::from_str_radix(ul, 16).map_err(|_| format!("bad ul bits in `{cell}`"))?,
                );
                bucket.insert((a, s), (dl, ul));
            }
            open.insert(hour, bucket);
        }

        let acc = StreamAccumulator::from_parts(
            schema,
            lateness,
            totals,
            hourly_volume,
            hourly_records,
            open,
            max_hour_seen,
            committed_below,
        );
        Ok(Checkpoint {
            schema,
            lateness,
            records_consumed,
            stats,
            acc,
        })
    }

    /// Writes the rendered checkpoint to a file.
    pub fn write_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Reads and parses a checkpoint file.
    pub fn read_file(path: &Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        Checkpoint::parse(&text)
    }
}

/// FNV-1a over a byte slice (the same construction icn-testkit's canonical
/// hasher uses; duplicated locally because icn-testkit depends on this
/// crate, not the other way round).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bits_of(values: &[f64]) -> String {
    let mut s = String::with_capacity(values.len() * 17);
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        let _ = write!(s, "{:016x}", v.to_bits());
    }
    s
}

fn counts_of(values: &[u64]) -> String {
    let mut s = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        let _ = write!(s, "{v}");
    }
    s
}

fn parse_bits(text: &str) -> Result<Vec<f64>, String> {
    text.split(' ')
        .filter(|t| !t.is_empty())
        .map(|t| {
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("bad f64 bits `{t}`"))
        })
        .collect()
}

fn parse_counts(text: &str) -> Result<Vec<u64>, String> {
    text.split(' ')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().map_err(|_| format!("bad count `{t}`")))
        .collect()
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("checkpoint missing string field `{key}`"))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("checkpoint missing numeric field `{key}`"))
}

fn get_u32(doc: &Json, key: &str) -> Result<u32, String> {
    get_u64(doc, key).map(|v| v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HourlyRecord;

    fn sample_checkpoint() -> Checkpoint {
        let schema = IngestSchema {
            antennas: 3,
            services: 2,
            hours: 12,
        };
        let mut acc = StreamAccumulator::new(schema, 2);
        // Values with awkward bit patterns: a ulp-level decimal round trip
        // would corrupt these.
        let vals = [0.1, 1.0 / 3.0, 2e-17, 1e16 + 1.0];
        for (k, &v) in vals.iter().enumerate() {
            let r = HourlyRecord {
                antenna: (k % 3) as u32,
                service: (k % 2) as u32,
                hour: k as u32 * 3,
                bytes_dl: v,
                bytes_ul: v / 7.0,
            };
            acc.insert(&r).unwrap();
        }
        acc.commit_sealed();
        let mut stats = IngestStats {
            ok: 4,
            chunks: 1,
            ..IngestStats::default()
        };
        stats.quarantined.insert("duplicate_key".to_string(), 2);
        Checkpoint {
            schema,
            lateness: 2,
            records_consumed: 6,
            stats,
            acc,
        }
    }

    #[test]
    fn render_parse_round_trip_is_bit_exact() {
        let ck = sample_checkpoint();
        let text = ck.render();
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back.schema, ck.schema);
        assert_eq!(back.lateness, ck.lateness);
        assert_eq!(back.records_consumed, ck.records_consumed);
        assert_eq!(back.stats, ck.stats);
        assert_eq!(back.acc.committed_below(), ck.acc.committed_below());
        assert_eq!(back.acc.max_hour_seen(), ck.acc.max_hour_seen());
        let (a, b) = (ck.acc.committed_totals(), back.acc.committed_totals());
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(back.acc.open_buckets(), ck.acc.open_buckets());
        // Re-render is byte-identical, so the hash is stable.
        assert_eq!(back.render(), text);
        assert_eq!(back.hash(), ck.hash());
    }

    #[test]
    fn schema_tag_is_enforced() {
        let text = sample_checkpoint()
            .render()
            .replace(CHECKPOINT_SCHEMA, "icn-ingest/v0");
        let err = Checkpoint::parse(&text).unwrap_err();
        assert!(err.contains("icn-ingest/v0"), "{err}");
    }

    #[test]
    fn truncated_totals_are_rejected() {
        let ck = sample_checkpoint();
        let text = ck.render();
        // Corrupt the totals payload: drop one value.
        let needle = "\"totals_bits\": \"";
        let start = text.find(needle).unwrap() + needle.len();
        let end = text[start..].find('"').unwrap() + start;
        let mut bits: Vec<&str> = text[start..end].split(' ').collect();
        bits.pop();
        let corrupted = format!("{}{}{}", &text[..start], bits.join(" "), &text[end..]);
        assert!(Checkpoint::parse(&corrupted).is_err());
    }
}
