//! Deterministic fault injection for record sources.
//!
//! [`FaultySource`] wraps any [`RecordSource`] and flips a configured
//! fraction of records into drops, duplicates, corruptions, and bounded
//! reorders, plus transient errors at refill boundaries. Every decision is
//! a pure function of `(fault seed, record index)` or `(fault seed, block
//! index)` — *not* of the consumer's chunk size — so the same seed produces
//! the same faults whether the pipeline pulls 1 record or 4096 at a time.
//! That property is what lets the fault-matrix tests assert **exact**
//! quarantine counts instead of statistical bounds.
//!
//! Fault semantics:
//!
//! * **drop** — the record is silently discarded (data loss; the affected
//!   cell is recorded so tests can exclude it from bitwise comparison).
//! * **duplicate** — the record is emitted twice back-to-back; the second
//!   copy must be quarantined as `duplicate_key` downstream.
//! * **corrupt** — exactly one field is damaged, cycling through the five
//!   structural defect classes; each corrupted record must be quarantined
//!   under exactly one reason, and its original contribution is lost.
//! * **reorder** — a whole block of ~`reorder_block` consecutive records is
//!   shuffled. The block is far smaller than one hour of records, so the
//!   displacement stays inside the accumulator's lateness window and a
//!   reorder-only stream must produce a bit-identical `T`.
//! * **transient** — a refill boundary raises a retryable source error
//!   before any record is pulled, so no data is lost; the pipeline's retry
//!   counter must equal the injected error count exactly.

use std::collections::{BTreeSet, VecDeque};

use icn_stats::rng::mix64;
use icn_stats::Rng;

use crate::record::{HourlyRecord, RecordSource, SourceError};

/// Domain-separation tags for the per-purpose RNG streams.
const TAG_RECORD: u64 = 0x1c4e_57f0_0000_0001;
const TAG_BLOCK: u64 = 0x1c4e_57f0_0000_0002;
const TAG_TRANSIENT: u64 = 0x1c4e_57f0_0000_0003;

/// Fault rates and seed. All rates are probabilities in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability a record is dropped.
    pub drop: f64,
    /// Probability a record is duplicated.
    pub duplicate: f64,
    /// Probability a block of records is shuffled.
    pub reorder: f64,
    /// Probability a record is corrupted.
    pub corrupt: f64,
    /// Probability a refill boundary raises a transient error.
    pub transient: f64,
    /// Size of the reorder/shuffle block, in records. Must stay well below
    /// the number of records per stream hour for reorders to remain inside
    /// the lateness window.
    pub reorder_block: usize,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0xFA_017,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            transient: 0.0,
            reorder_block: 256,
        }
    }
}

impl FaultConfig {
    /// Parses a CLI spec like `drop=0.01,dup=0.1,reorder=0.2,corrupt=0.05,transient=0.1`.
    /// Unknown keys and out-of-range rates are errors. An empty spec means
    /// no faults.
    pub fn parse_spec(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault rate `{value}` is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate `{value}` outside [0, 1]"));
            }
            match key.trim() {
                "drop" => cfg.drop = rate,
                "dup" | "duplicate" => cfg.duplicate = rate,
                "reorder" => cfg.reorder = rate,
                "corrupt" => cfg.corrupt = rate,
                "transient" => cfg.transient = rate,
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// True if every rate is zero (the wrapper is a no-op).
    pub fn is_noop(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.transient == 0.0
    }
}

/// Exact accounting of every injected fault.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Records silently discarded.
    pub dropped: u64,
    /// Records emitted twice (count of extra copies).
    pub duplicated: u64,
    /// Records with one field damaged.
    pub corrupted: u64,
    /// Blocks shuffled.
    pub reordered_blocks: u64,
    /// Transient errors raised at refill boundaries.
    pub transient_errors: u64,
    /// Cells `(antenna, service)` that lost at least one record to a drop
    /// or corruption — the only cells whose totals may legitimately differ
    /// from the clean run.
    pub affected_cells: BTreeSet<(u32, u32)>,
}

/// A [`RecordSource`] adapter injecting deterministic faults.
pub struct FaultySource<S> {
    inner: S,
    cfg: FaultConfig,
    buf: VecDeque<HourlyRecord>,
    /// Index of the next record pulled from the inner source.
    inner_index: u64,
    /// Index of the next block to emit (drives reorder decisions).
    blocks_emitted: u64,
    /// Index of the next *successful* refill (drives transient decisions).
    refills: u64,
    /// Consecutive transient errors already raised for the pending refill.
    transient_attempts: u64,
    inner_done: bool,
    report: FaultReport,
}

impl<S: RecordSource> FaultySource<S> {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: S, cfg: FaultConfig) -> FaultySource<S> {
        FaultySource {
            inner,
            cfg,
            buf: VecDeque::new(),
            inner_index: 0,
            blocks_emitted: 0,
            refills: 0,
            transient_attempts: 0,
            inner_done: false,
            report: FaultReport::default(),
        }
    }

    /// What has been injected so far.
    pub fn report(&self) -> &FaultReport {
        &self.report
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Damages exactly one field, cycling through the five structural
    /// defect classes. Each variant trips exactly one validation check
    /// (validation runs non-finite → negative → antenna → service → hour),
    /// so corrupted records map 1:1 onto quarantine reasons.
    fn corrupt_record(r: &mut HourlyRecord, rng: &mut Rng) {
        match rng.index(5) {
            0 => r.service += 1_000_000,
            1 => r.antenna += 1_000_000,
            2 => r.hour = r.hour.saturating_add(1_000_000),
            3 => r.bytes_dl = -r.bytes_dl - 1.0,
            _ => r.bytes_ul = f64::NAN,
        }
    }

    /// Pulls one block from the inner source, applies per-record faults,
    /// optionally shuffles it, and appends it to the buffer.
    fn refill(&mut self) -> Result<(), SourceError> {
        // Transient injection happens before any record is pulled, so a
        // retry resumes with zero data loss. Decision is a function of
        // (seed, refill index, attempt); at rate 1.0 every attempt fails
        // and the pipeline's retry budget is exhausted deterministically.
        if self.cfg.transient > 0.0 {
            let mut trng = Rng::seed_from(mix64(
                self.cfg.seed ^ TAG_TRANSIENT,
                mix64(self.refills, self.transient_attempts),
            ));
            if trng.chance(self.cfg.transient) {
                self.transient_attempts += 1;
                self.report.transient_errors += 1;
                return Err(SourceError::Transient(format!(
                    "injected fault at refill {} (attempt {})",
                    self.refills, self.transient_attempts
                )));
            }
        }
        self.transient_attempts = 0;
        self.refills += 1;

        let target = self.cfg.reorder_block.max(1);
        let mut block: Vec<HourlyRecord> = Vec::with_capacity(target + target / 4 + 4);
        while block.len() < target && !self.inner_done {
            let batch = self.inner.next_chunk(target - block.len())?;
            if batch.is_empty() {
                self.inner_done = true;
                break;
            }
            for r in batch {
                let idx = self.inner_index;
                self.inner_index += 1;
                let mut rng = Rng::seed_from(mix64(self.cfg.seed ^ TAG_RECORD, idx));
                if rng.chance(self.cfg.drop) {
                    self.report.dropped += 1;
                    self.report.affected_cells.insert((r.antenna, r.service));
                    continue;
                }
                if rng.chance(self.cfg.corrupt) {
                    let mut bad = r;
                    Self::corrupt_record(&mut bad, &mut rng);
                    self.report.corrupted += 1;
                    self.report.affected_cells.insert((r.antenna, r.service));
                    block.push(bad);
                    continue;
                }
                if rng.chance(self.cfg.duplicate) {
                    self.report.duplicated += 1;
                    block.push(r);
                }
                block.push(r);
            }
        }

        if !block.is_empty() {
            let mut brng = Rng::seed_from(mix64(self.cfg.seed ^ TAG_BLOCK, self.blocks_emitted));
            if brng.chance(self.cfg.reorder) {
                brng.shuffle(&mut block);
                self.report.reordered_blocks += 1;
            }
            self.blocks_emitted += 1;
        }
        self.buf.extend(block);
        Ok(())
    }
}

impl<S: RecordSource> RecordSource for FaultySource<S> {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<HourlyRecord>, SourceError> {
        while self.buf.is_empty() && !self.inner_done {
            self.refill()?;
        }
        let take = max.min(self.buf.len());
        Ok(self.buf.drain(..take).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VecSource;

    fn records(n: u32) -> Vec<HourlyRecord> {
        (0..n)
            .map(|i| HourlyRecord {
                antenna: i % 7,
                service: i % 5,
                hour: i / 35,
                bytes_dl: f64::from(i) + 0.5,
                bytes_ul: 0.25,
            })
            .collect()
    }

    fn bits(records: &[HourlyRecord]) -> Vec<(u32, u32, u32, u64, u64)> {
        records
            .iter()
            .map(|r| {
                (
                    r.antenna,
                    r.service,
                    r.hour,
                    r.bytes_dl.to_bits(),
                    r.bytes_ul.to_bits(),
                )
            })
            .collect()
    }

    fn drain<S: RecordSource>(src: &mut S, chunk: usize) -> Vec<HourlyRecord> {
        let mut out = Vec::new();
        loop {
            let batch = src.next_chunk(chunk).unwrap();
            if batch.is_empty() {
                return out;
            }
            out.extend(batch);
        }
    }

    #[test]
    fn noop_config_is_transparent() {
        let recs = records(1000);
        let mut src = FaultySource::new(VecSource::new(recs.clone()), FaultConfig::default());
        assert_eq!(drain(&mut src, 97), recs);
        assert_eq!(src.report(), &FaultReport::default());
    }

    #[test]
    fn fault_stream_is_chunk_size_invariant() {
        let cfg = FaultConfig {
            seed: 42,
            drop: 0.05,
            duplicate: 0.05,
            reorder: 0.5,
            corrupt: 0.05,
            reorder_block: 64,
            ..FaultConfig::default()
        };
        let recs = records(2000);
        let mut a = FaultySource::new(VecSource::new(recs.clone()), cfg);
        let mut b = FaultySource::new(VecSource::new(recs), cfg);
        let out_a = drain(&mut a, 1);
        let out_b = drain(&mut b, 512);
        // Compare bit patterns: corrupted records carry NaN, and NaN != NaN
        // under PartialEq even though the streams are byte-identical.
        assert_eq!(bits(&out_a), bits(&out_b));
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn counts_are_exact_and_deterministic() {
        let cfg = FaultConfig {
            seed: 7,
            drop: 0.1,
            duplicate: 0.1,
            corrupt: 0.1,
            ..FaultConfig::default()
        };
        let recs = records(5000);
        let n = recs.len() as u64;
        let mut src = FaultySource::new(VecSource::new(recs), cfg);
        let out = drain(&mut src, 256);
        let rep = src.report().clone();
        assert!(rep.dropped > 0 && rep.duplicated > 0 && rep.corrupted > 0);
        assert_eq!(
            out.len() as u64,
            n - rep.dropped + rep.duplicated,
            "emitted = originals − drops + extra copies"
        );
    }

    #[test]
    fn transient_rate_one_always_errors() {
        let cfg = FaultConfig {
            transient: 1.0,
            ..FaultConfig::default()
        };
        let mut src = FaultySource::new(VecSource::new(records(10)), cfg);
        for _ in 0..5 {
            assert!(matches!(src.next_chunk(4), Err(SourceError::Transient(_))));
        }
        assert_eq!(src.report().transient_errors, 5);
    }

    #[test]
    fn transient_errors_lose_no_records() {
        let cfg = FaultConfig {
            seed: 3,
            transient: 0.5,
            ..FaultConfig::default()
        };
        let recs = records(3000);
        let mut src = FaultySource::new(VecSource::new(recs.clone()), cfg);
        let mut out = Vec::new();
        loop {
            match src.next_chunk(128) {
                Ok(batch) if batch.is_empty() => break,
                Ok(batch) => out.extend(batch),
                Err(SourceError::Transient(_)) => continue,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(out, recs);
        assert!(src.report().transient_errors > 0);
    }

    #[test]
    fn parse_spec_round_trip() {
        let cfg = FaultConfig::parse_spec("drop=0.01, dup=0.2,corrupt=0.05").unwrap();
        assert_eq!(cfg.drop, 0.01);
        assert_eq!(cfg.duplicate, 0.2);
        assert_eq!(cfg.corrupt, 0.05);
        assert_eq!(cfg.reorder, 0.0);
        assert!(FaultConfig::parse_spec("bogus=0.1").is_err());
        assert!(FaultConfig::parse_spec("drop=1.5").is_err());
        assert!(FaultConfig::parse_spec("drop").is_err());
        assert!(FaultConfig::parse_spec("").unwrap().is_noop());
    }
}
