//! Stage 3 (k-selection indices): differential oracle + metamorphic
//! invariants against `icn-testkit`.
//!
//! Oracle: the parallel silhouette/Dunn implementations are compared to the
//! testkit's brute-force restatements of the definitions. Metamorphic:
//! both indices measure the *partition*, so renaming cluster ids through
//! any permutation must leave the scores bit-unchanged; `sweep_k` must
//! report exactly the scores of the cuts it evaluates.

use icn_cluster::{agglomerate, dunn_index, silhouette_score, sweep_k, Condensed, Linkage};
use icn_stats::check::{self, cases};
use icn_stats::{Matrix, Metric};
use icn_testkit::{naive_dunn, naive_silhouette, permutation, permute_labels};

/// Random points plus a dense random labelling with every cluster
/// inhabited (the first k points get labels 0..k).
fn labelled(rng: &mut icn_stats::Rng) -> (Condensed, Vec<usize>) {
    let k = check::len_in(rng, 2, 5);
    let n = check::len_in(rng, k.max(4) + 1, 24);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let centre = (i % k) as f64 * 3.0;
            vec![rng.normal(centre, 0.8), rng.normal(0.0, 0.8)]
        })
        .collect();
    let labels: Vec<usize> = (0..n)
        .map(|i| if i < k { i } else { rng.index(k) })
        .collect();
    check::record(format!("{n} points, k={k}, labels {labels:?}"));
    let cond = Condensed::from_rows(&Matrix::from_rows(&rows), Metric::Euclidean);
    (cond, labels)
}

#[test]
fn silhouette_matches_bruteforce_oracle() {
    cases(32, |_, rng| {
        let (cond, labels) = labelled(rng);
        let fast = silhouette_score(&cond, &labels);
        let slow = naive_silhouette(&cond, &labels);
        assert!(
            (fast - slow).abs() < 1e-12,
            "silhouette {fast} vs oracle {slow}"
        );
    });
}

#[test]
fn dunn_matches_bruteforce_oracle() {
    cases(32, |_, rng| {
        let (cond, labels) = labelled(rng);
        let fast = dunn_index(&cond, &labels);
        let slow = naive_dunn(&cond, &labels);
        assert!(
            fast == slow || (fast - slow).abs() < 1e-12,
            "dunn {fast} vs oracle {slow}"
        );
    });
}

#[test]
fn indices_invariant_to_cluster_relabeling() {
    // Swapping which cluster is called "0" and which "1" must not move
    // either quality index: they score the partition, not the names.
    cases(32, |_, rng| {
        let (cond, labels) = labelled(rng);
        let k = labels.iter().max().unwrap() + 1;
        let p = permutation(rng, k);
        check::record(format!("label perm {p:?}"));
        let renamed = permute_labels(&labels, &p);
        assert_eq!(
            silhouette_score(&cond, &labels).to_bits(),
            silhouette_score(&cond, &renamed).to_bits(),
            "silhouette changed under relabeling"
        );
        assert_eq!(
            dunn_index(&cond, &labels).to_bits(),
            dunn_index(&cond, &renamed).to_bits(),
            "dunn changed under relabeling"
        );
    });
}

#[test]
fn sweep_reports_scores_of_its_own_cuts() {
    // Differential check on the sweep plumbing: every (k, silhouette, dunn)
    // triple must equal a direct evaluation of the cut at that k.
    cases(12, |_, rng| {
        let n = check::len_in(rng, 10, 20);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![rng.normal((i % 3) as f64 * 5.0, 0.6), rng.normal(0.0, 0.6)])
            .collect();
        let m = Matrix::from_rows(&rows);
        let history = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&history, &cond, 2..=6.min(n - 1));
        assert!(!sweep.is_empty());
        for q in &sweep {
            let labels = history.cut(q.k);
            // The fused sweep accumulates distance sums per finest cluster
            // and regroups for each k, which reorders silhouette additions:
            // agreement is to reassociation noise, not bitwise.
            let direct_sil = silhouette_score(&cond, &labels);
            assert!(
                (q.silhouette - direct_sil).abs() <= 1e-12 * direct_sil.abs().max(1.0),
                "k={}: sweep silhouette drifted: {} vs {}",
                q.k,
                q.silhouette,
                direct_sil
            );
            // Dunn regroups through exact min/max and stays bit-identical.
            assert_eq!(
                q.dunn.to_bits(),
                dunn_index(&cond, &labels).to_bits(),
                "k={}: sweep dunn drifted",
                q.k
            );
        }
    });
}
