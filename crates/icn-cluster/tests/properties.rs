//! Property-based tests for the clustering substrate.

use icn_cluster::{
    adjusted_rand_index, agglomerate, dunn_index, normalized_mutual_info, purity,
    silhouette_score, Condensed, Dendrogram, Linkage,
};
use icn_stats::{Matrix, Metric, Rng};
use proptest::prelude::*;

/// Random small matrix with at least two distinct rows.
fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (2usize..25, 1usize..6, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut rng = Rng::seed_from(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|_| rng.gaussian() + (i % 3) as f64 * 2.0)
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    })
}

fn labels_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4, 8..40).prop_map(|mut v| {
        // Ensure labels are dense 0..k and at least two clusters exist.
        v[0] = 0;
        v[1] = 1;
        let mut max = 0;
        for x in v.iter_mut() {
            if *x > max + 1 {
                *x = max + 1;
            }
            max = max.max(*x);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cut_is_valid_partition_at_every_k(m in matrix_strategy()) {
        let h = agglomerate(&m, Linkage::Ward);
        for k in 1..=m.rows() {
            let labels = h.cut(k);
            prop_assert_eq!(labels.len(), m.rows());
            let mut seen: Vec<usize> = labels.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), k, "k={}", k);
            // Dense labels 0..k.
            prop_assert!(labels.iter().all(|&l| l < k));
        }
    }

    #[test]
    fn ward_heights_monotone(m in matrix_strategy()) {
        let h = agglomerate(&m, Linkage::Ward);
        let hs = h.heights();
        for w in hs.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn cuts_are_nested(m in matrix_strategy()) {
        let h = agglomerate(&m, Linkage::Ward);
        let n = m.rows();
        let fine = h.cut(n.min(5));
        let coarse = h.cut(2);
        // Each fine cluster maps into exactly one coarse cluster.
        let mut map = std::collections::HashMap::new();
        for i in 0..n {
            let e = map.entry(fine[i]).or_insert(coarse[i]);
            prop_assert_eq!(*e, coarse[i]);
        }
    }

    #[test]
    fn dendrogram_cut_matches_history_cut(m in matrix_strategy()) {
        let h = agglomerate(&m, Linkage::Average);
        let d = Dendrogram::from_history(&h);
        for k in [1, 2, m.rows() / 2 + 1, m.rows()] {
            prop_assert_eq!(d.cut(k), h.cut(k));
        }
    }

    #[test]
    fn silhouette_and_dunn_ranges(m in matrix_strategy()) {
        let h = agglomerate(&m, Linkage::Ward);
        let k = 2.min(m.rows());
        let labels = h.cut(k);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let s = silhouette_score(&cond, &labels);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {}", s);
        let dn = dunn_index(&cond, &labels);
        prop_assert!(dn >= 0.0);
    }

    #[test]
    fn ari_nmi_purity_of_identity(labels in labels_strategy()) {
        prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-9);
        prop_assert!((normalized_mutual_info(&labels, &labels) - 1.0).abs() < 1e-9);
        prop_assert!((purity(&labels, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ari_symmetric(a in labels_strategy(), seed in any::<u64>()) {
        // Build b as a random relabelling-independent vector of same length.
        let mut rng = Rng::seed_from(seed);
        let b: Vec<usize> = (0..a.len()).map(|_| rng.index(3)).collect();
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab <= 1.0 + 1e-12);
    }

    #[test]
    fn permuted_labels_keep_ari_one(labels in labels_strategy()) {
        // Renaming clusters never changes the partition.
        let k = labels.iter().max().unwrap() + 1;
        let renamed: Vec<usize> = labels.iter().map(|&l| (l + 1) % k).collect();
        prop_assert!((adjusted_rand_index(&labels, &renamed) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn condensed_agrees_with_metric(m in matrix_strategy()) {
        let cond = Condensed::from_rows(&m, Metric::Manhattan);
        for i in 0..m.rows().min(6) {
            for j in 0..m.rows().min(6) {
                let want = Metric::Manhattan.distance(m.row(i), m.row(j));
                prop_assert!((cond.get(i, j) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn leaf_order_is_permutation(m in matrix_strategy()) {
        let h = agglomerate(&m, Linkage::Complete);
        let d = Dendrogram::from_history(&h);
        let mut order = d.leaf_order();
        order.sort_unstable();
        order.dedup();
        prop_assert_eq!(order.len(), m.rows());
    }
}
