//! Property-based tests for the clustering substrate, driven by the
//! deterministic [`icn_stats::check`] harness.

use icn_cluster::{
    adjusted_rand_index, agglomerate, dunn_index, normalized_mutual_info, purity, silhouette_score,
    Condensed, Dendrogram, Linkage,
};
use icn_stats::check::{cases, len_in};
use icn_stats::{Matrix, Metric, Rng};

/// Random small matrix with at least two distinct rows.
fn matrix(rng: &mut Rng) -> Matrix {
    let n = len_in(rng, 2, 25);
    let d = len_in(rng, 1, 6);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|_| rng.gaussian() + (i % 3) as f64 * 2.0)
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// Dense labels `0..k` with at least two clusters.
fn labels(rng: &mut Rng) -> Vec<usize> {
    let len = len_in(rng, 8, 40);
    let mut v: Vec<usize> = (0..len).map(|_| rng.index(4)).collect();
    v[0] = 0;
    v[1] = 1;
    let mut max = 0;
    for x in v.iter_mut() {
        if *x > max + 1 {
            *x = max + 1;
        }
        max = max.max(*x);
    }
    v
}

#[test]
fn cut_is_valid_partition_at_every_k() {
    cases(48, |case, rng| {
        let m = matrix(rng);
        let h = agglomerate(&m, Linkage::Ward);
        for k in 1..=m.rows() {
            let l = h.cut(k);
            assert_eq!(l.len(), m.rows(), "case {case} k={k}");
            let mut seen = l.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), k, "case {case} k={k}");
            assert!(l.iter().all(|&x| x < k), "case {case} k={k}");
        }
    });
}

#[test]
fn ward_heights_monotone() {
    cases(48, |case, rng| {
        let m = matrix(rng);
        let h = agglomerate(&m, Linkage::Ward);
        let hs = h.heights();
        for w in hs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "case {case}: {} then {}", w[0], w[1]);
        }
    });
}

#[test]
fn cuts_are_nested() {
    cases(48, |case, rng| {
        let m = matrix(rng);
        let h = agglomerate(&m, Linkage::Ward);
        let n = m.rows();
        let fine = h.cut(n.min(5));
        let coarse = h.cut(2);
        // Each fine cluster maps into exactly one coarse cluster.
        let mut map = std::collections::HashMap::new();
        for i in 0..n {
            let e = map.entry(fine[i]).or_insert(coarse[i]);
            assert_eq!(*e, coarse[i], "case {case} point {i}");
        }
    });
}

#[test]
fn dendrogram_cut_matches_history_cut() {
    cases(48, |case, rng| {
        let m = matrix(rng);
        let h = agglomerate(&m, Linkage::Average);
        let d = Dendrogram::from_history(&h);
        for k in [1, 2, m.rows() / 2 + 1, m.rows()] {
            assert_eq!(d.cut(k), h.cut(k), "case {case} k={k}");
        }
    });
}

#[test]
fn silhouette_and_dunn_ranges() {
    cases(48, |case, rng| {
        let m = matrix(rng);
        let h = agglomerate(&m, Linkage::Ward);
        let k = 2.min(m.rows());
        let l = h.cut(k);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let s = silhouette_score(&cond, &l);
        assert!((-1.0..=1.0).contains(&s), "case {case}: silhouette {s}");
        assert!(dunn_index(&cond, &l) >= 0.0, "case {case}");
    });
}

#[test]
fn ari_nmi_purity_of_identity() {
    cases(48, |case, rng| {
        let l = labels(rng);
        assert!(
            (adjusted_rand_index(&l, &l) - 1.0).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (normalized_mutual_info(&l, &l) - 1.0).abs() < 1e-9,
            "case {case}"
        );
        assert!((purity(&l, &l) - 1.0).abs() < 1e-9, "case {case}");
    });
}

#[test]
fn ari_symmetric() {
    cases(48, |case, rng| {
        let a = labels(rng);
        let b: Vec<usize> = (0..a.len()).map(|_| rng.index(3)).collect();
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        assert!((ab - ba).abs() < 1e-12, "case {case}");
        assert!(ab <= 1.0 + 1e-12, "case {case}");
    });
}

#[test]
fn permuted_labels_keep_ari_one() {
    // Renaming clusters never changes the partition.
    cases(48, |case, rng| {
        let l = labels(rng);
        let k = l.iter().max().unwrap() + 1;
        let renamed: Vec<usize> = l.iter().map(|&x| (x + 1) % k).collect();
        assert!(
            (adjusted_rand_index(&l, &renamed) - 1.0).abs() < 1e-9,
            "case {case}"
        );
    });
}

#[test]
fn condensed_agrees_with_metric() {
    cases(48, |case, rng| {
        let m = matrix(rng);
        let cond = Condensed::from_rows(&m, Metric::Manhattan);
        for i in 0..m.rows().min(6) {
            for j in 0..m.rows().min(6) {
                let want = Metric::Manhattan.distance(m.row(i), m.row(j));
                assert!(
                    (cond.get(i, j) - want).abs() < 1e-9,
                    "case {case} ({i},{j})"
                );
            }
        }
    });
}

#[test]
fn leaf_order_is_permutation() {
    cases(48, |case, rng| {
        let m = matrix(rng);
        let h = agglomerate(&m, Linkage::Complete);
        let d = Dendrogram::from_history(&h);
        let mut order = d.leaf_order();
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), m.rows(), "case {case}");
    });
}
