//! Thread-invariance suite for the parallel stage-2 machinery: the
//! condensed distance build, the NN-chain square-matrix fill, the parallel
//! nearest-neighbour scans and the sampled-Ward extension must all be
//! **bit-identical at any `ICN_THREADS`** — parallelism is an execution
//! detail, never an answer detail.
//!
//! Environment discipline: `ICN_THREADS` / `ICN_SCAN_PAR_MIN` are
//! process-global, so every mutation lives inside a single `#[test]`
//! function (`thread_invariance_matrix`) that saves and restores them.
//! Other tests in this binary only ever read results that are
//! thread-invariant by contract, so concurrent execution is safe.

use icn_cluster::{
    agglomerate, agglomerate_condensed, sampled_ward, Condensed, Linkage, MergeHistory,
    SampledWardConfig,
};
use icn_stats::{Matrix, Metric, Rng};
use icn_testkit::{naive_agglomerate, permutation, permute_rows, permute_slice, same_partition};

fn blobs(n: usize, dims: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let centre = (i % 5) as f64 * 3.0;
            (0..dims).map(|_| rng.normal(centre, 1.0)).collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// Exact bit-level fingerprint of a merge history (heights via `to_bits`,
/// labels and sizes verbatim).
fn fingerprint(h: &MergeHistory) -> Vec<(usize, usize, u64, usize)> {
    h.merges
        .iter()
        .map(|m| (m.a, m.b, m.height.to_bits(), m.size))
        .collect()
}

struct EnvGuard {
    saved: Vec<(&'static str, Option<String>)>,
}

impl EnvGuard {
    fn capture(keys: &[&'static str]) -> EnvGuard {
        EnvGuard {
            saved: keys.iter().map(|&k| (k, std::env::var(k).ok())).collect(),
        }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        // Restore even if an assertion unwinds mid-matrix.
        for (k, v) in &self.saved {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }
}

/// The tentpole invariance matrix: every `ICN_THREADS` ∈ {1, 2, 8}, with
/// the nearest-neighbour scan fan-out forced on (tiny `ICN_SCAN_PAR_MIN`)
/// so the chunked parallel reduction actually runs at test sizes, must
/// reproduce the single-thread baseline bit for bit — condensed matrix,
/// merge history, and sampled-Ward labels alike.
#[test]
fn thread_invariance_matrix() {
    let _guard = EnvGuard::capture(&["ICN_THREADS", "ICN_SCAN_PAR_MIN"]);
    let m = blobs(257, 4, 0xA11CE);
    // Population for the sampled path: big enough that the parallel
    // nearest-centroid assignment path (gated at 4096 rows) engages.
    let big = blobs(5000, 3, 0xB0B);

    // Baseline: pinned single thread, default scan threshold. Average
    // linkage rides along to pin the non-Ward row-update path, which
    // shares the tiled square-matrix build but not the lane-widened
    // Lance–Williams loop.
    std::env::set_var("ICN_THREADS", "1");
    std::env::remove_var("ICN_SCAN_PAR_MIN");
    let cond_base = Condensed::from_rows(&m, Metric::SqEuclidean);
    let hist_base = fingerprint(&agglomerate_condensed(&cond_base, Linkage::Ward));
    let avg_base = fingerprint(&agglomerate_condensed(&cond_base, Linkage::Average));
    let sw_cfg = SampledWardConfig {
        sample: 400,
        seed: 17,
        refine_iters: 2,
    };
    let sw_base = sampled_ward(&big, 5, &sw_cfg);

    for threads in ["1", "2", "8"] {
        std::env::set_var("ICN_THREADS", threads);
        // Force the parallel scan reduction on (any scan ≥ 2 fans out).
        std::env::set_var("ICN_SCAN_PAR_MIN", "2");
        let cond = Condensed::from_rows(&m, Metric::SqEuclidean);
        assert_eq!(
            cond.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            cond_base
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            "condensed drifted at ICN_THREADS={threads}"
        );
        let hist = fingerprint(&agglomerate_condensed(&cond, Linkage::Ward));
        assert_eq!(
            hist, hist_base,
            "merge history drifted at ICN_THREADS={threads}"
        );
        let avg = fingerprint(&agglomerate_condensed(&cond, Linkage::Average));
        assert_eq!(
            avg, avg_base,
            "average-linkage history drifted at ICN_THREADS={threads}"
        );
        let sw = sampled_ward(&big, 5, &sw_cfg);
        assert_eq!(
            sw.labels, sw_base.labels,
            "sampled-ward labels drifted at ICN_THREADS={threads}"
        );
        assert_eq!(sw.sample, sw_base.sample);
        assert_eq!(
            sw.centroids
                .row(0)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            sw_base
                .centroids
                .row(0)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            "sampled-ward centroids drifted at ICN_THREADS={threads}"
        );
    }
}

/// Differential oracle: the parallel NN-chain (lazy row patching, active
/// list, fanned-out scans) against the testkit's O(n³) greedy
/// agglomeration. Reducible linkages make the two hierarchies equal.
#[test]
fn nn_chain_matches_greedy_oracle() {
    for seed in [1u64, 2, 3] {
        let m = blobs(60, 3, seed);
        let fast = agglomerate(&m, Linkage::Ward);
        let slow = naive_agglomerate(&m, Linkage::Ward);
        for (f, s) in fast.heights().iter().zip(&slow.heights()) {
            assert!(
                (f - s).abs() < 1e-9 * (1.0 + f.abs()),
                "seed {seed}: height {f} vs oracle {s}"
            );
        }
        for k in [2, 5, 9] {
            assert!(
                same_partition(&fast.cut(k), &slow.cut(k)),
                "seed {seed}: k={k} partitions differ"
            );
        }
    }
}

/// Metamorphic: clustering commutes with row permutation — labels of the
/// permuted input are the permuted labels of the original (up to renaming).
#[test]
fn row_permutation_equivariance() {
    let mut rng = Rng::seed_from(77);
    for seed in [11u64, 12] {
        let m = blobs(80, 4, seed);
        let p = permutation(&mut rng, m.rows());
        let base = agglomerate(&m, Linkage::Ward);
        let shuffled = agglomerate(&permute_rows(&m, &p), Linkage::Ward);
        for k in [2, 4, 7] {
            let expected = permute_slice(&base.cut(k), &p);
            assert!(
                same_partition(&shuffled.cut(k), &expected),
                "seed {seed}, k={k}: permuted clustering disagrees"
            );
        }
    }
}

/// The lazy-row-patching scheme must be value-preserving for every
/// reducible linkage, not just Ward.
#[test]
fn all_linkages_match_oracle_with_patching() {
    let m = blobs(40, 3, 99);
    for linkage in Linkage::ALL {
        let fast = agglomerate(&m, linkage);
        let slow = naive_agglomerate(&m, linkage);
        for k in [2, 6] {
            assert!(
                same_partition(&fast.cut(k), &slow.cut(k)),
                "{}: k={k} differs",
                linkage.name()
            );
        }
    }
}
