//! Partition-agreement indices (ARI / NMI): differential oracle +
//! metamorphic invariants against `icn-testkit`.
//!
//! Oracle: the contingency-table implementations in
//! `icn_cluster::validation` are compared against the testkit's
//! brute-force pair-counting ARI and full-rescan NMI over seeded random
//! labellings. Metamorphic: both indices must be symmetric in their
//! arguments and invariant under arbitrary relabelings of either side;
//! perfect agreement scores 1 and independent labellings score ≈ 0.

use icn_cluster::{adjusted_rand_index, normalized_mutual_info};
use icn_stats::check::{self, cases};
use icn_stats::Rng;
use icn_testkit::{naive_ari, naive_nmi, permutation, permute_labels};

/// A random labelling of `n` items over up to `k` classes (some classes
/// may come out empty — the indices must cope).
fn labelling(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    (0..n).map(|_| rng.index(k)).collect()
}

#[test]
fn ari_matches_pair_counting_oracle() {
    cases(32, |_, rng| {
        let n = check::len_in(rng, 4, 40);
        let ka = check::len_in(rng, 1, 6);
        let kb = check::len_in(rng, 1, 6);
        check::record(format!("n={n} ka={ka} kb={kb}"));
        let a = labelling(rng, n, ka);
        let b = labelling(rng, n, kb);
        let fast = adjusted_rand_index(&a, &b);
        let slow = naive_ari(&a, &b);
        assert!(
            (fast - slow).abs() < 1e-12,
            "ARI {fast} vs pair-counting oracle {slow}"
        );
    });
}

#[test]
fn nmi_matches_rescan_oracle() {
    cases(32, |_, rng| {
        let n = check::len_in(rng, 4, 40);
        let ka = check::len_in(rng, 1, 6);
        let kb = check::len_in(rng, 1, 6);
        check::record(format!("n={n} ka={ka} kb={kb}"));
        let a = labelling(rng, n, ka);
        let b = labelling(rng, n, kb);
        let fast = normalized_mutual_info(&a, &b);
        let slow = naive_nmi(&a, &b);
        assert!(
            (fast - slow).abs() < 1e-12,
            "NMI {fast} vs rescan oracle {slow}"
        );
    });
}

#[test]
fn perfect_agreement_scores_one() {
    cases(16, |_, rng| {
        let n = check::len_in(rng, 2, 30);
        let a = labelling(rng, n, 4);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_info(&a, &a) - 1.0).abs() < 1e-12);
        assert!((naive_ari(&a, &a) - 1.0).abs() < 1e-12);
        assert!((naive_nmi(&a, &a) - 1.0).abs() < 1e-12);
    });
}

#[test]
fn relabeling_leaves_indices_invariant() {
    // ARI/NMI measure the *partition*, not the label names: renaming the
    // classes on either side must not move either index.
    cases(24, |_, rng| {
        let n = check::len_in(rng, 4, 30);
        let k = check::len_in(rng, 2, 5);
        let a = labelling(rng, n, k);
        let b = labelling(rng, n, k);
        let a2 = permute_labels(&a, &permutation(rng, k));
        let b2 = permute_labels(&b, &permutation(rng, k));
        let ari = adjusted_rand_index(&a, &b);
        let nmi = normalized_mutual_info(&a, &b);
        assert!((adjusted_rand_index(&a2, &b2) - ari).abs() < 1e-12);
        assert!((normalized_mutual_info(&a2, &b2) - nmi).abs() < 1e-12);
        // Symmetry in the two arguments.
        assert!((adjusted_rand_index(&b, &a) - ari).abs() < 1e-12);
        assert!((normalized_mutual_info(&b, &a) - nmi).abs() < 1e-12);
    });
}

#[test]
fn independent_labellings_score_near_zero() {
    // ARI is *adjusted* for chance: over many independent random label
    // pairs its mean must sit at ≈ 0 (individual draws fluctuate).
    let mut rng = Rng::seed_from(0xC0FFEE);
    let trials = 200;
    let n = 120;
    let mut sum = 0.0;
    for _ in 0..trials {
        let a = labelling(&mut rng, n, 4);
        let b = labelling(&mut rng, n, 4);
        sum += adjusted_rand_index(&a, &b);
    }
    let mean = sum / trials as f64;
    assert!(
        mean.abs() < 0.02,
        "mean ARI of independent labellings = {mean}, expected ≈ 0"
    );
    // NMI is not chance-adjusted but independent labellings still carry
    // little mutual information at this n.
    let a = labelling(&mut rng, n, 4);
    let b = labelling(&mut rng, n, 4);
    assert!(normalized_mutual_info(&a, &b) < 0.15);
}
