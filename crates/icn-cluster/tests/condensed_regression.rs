//! Regression test: the parallel, block-stitched [`Condensed::from_rows`]
//! must agree exactly with a naive O(N²) nested-loop reference over every
//! pair and every metric, on matrices large enough to exercise the
//! multi-threaded chunking path.

use icn_cluster::Condensed;
use icn_stats::{Matrix, Metric, Rng};

fn random_matrix(seed: u64, n: usize, d: usize) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.uniform(-5.0, 5.0)).collect())
        .collect();
    Matrix::from_rows(&rows)
}

/// The reference: every ordered pair, straight from the per-pair kernel
/// `Condensed::from_rows` commits to — the 4-lane accumulator for the
/// Euclidean family, `Metric::distance` otherwise.
fn naive_pairwise(m: &Matrix, metric: Metric) -> Vec<Vec<f64>> {
    let n = m.rows();
    let kernel = |a: &[f64], b: &[f64]| -> f64 {
        match metric {
            Metric::SqEuclidean => icn_stats::distance::sq_euclidean4(a, b),
            Metric::Euclidean => icn_stats::distance::sq_euclidean4(a, b).sqrt(),
            other => other.distance(a, b),
        }
    };
    let mut full = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            full[i][j] = if i == j {
                0.0
            } else {
                kernel(m.row(i), m.row(j))
            };
        }
    }
    full
}

#[test]
fn condensed_matches_naive_reference_for_every_pair_and_metric() {
    let metrics = [
        Metric::Euclidean,
        Metric::SqEuclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Cosine,
    ];
    // 137 rows: prime, larger than any thread-chunk granule, so the
    // parallel block stitching is exercised with ragged tails.
    let m = random_matrix(0xD15_7A4CE, 137, 11);
    for metric in metrics {
        let c = Condensed::from_rows(&m, metric);
        let full = naive_pairwise(&m, metric);
        assert_eq!(c.len(), m.rows());
        assert_eq!(c.as_slice().len(), 137 * 136 / 2);
        for (i, row) in full.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                let got = c.get(i, j);
                // Identical code path computes each pair once, so the match
                // must be exact, not approximate.
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{metric:?} ({i},{j}): {got} vs {want}"
                );
                // And the 4-lane kernel may only differ from the scalar
                // metric by reassociation noise.
                let scalar = if i == j {
                    0.0
                } else {
                    metric.distance(m.row(i), m.row(j))
                };
                assert!(
                    (got - scalar).abs() <= 1e-11 * scalar.abs().max(1.0),
                    "{metric:?} ({i},{j}): {got} vs scalar {scalar}"
                );
            }
        }
    }
}

#[test]
fn condensed_is_thread_count_invariant() {
    // The condensed layout must not depend on how many worker threads
    // computed it: pin to 1 thread via the env cap and compare against the
    // default (multi-threaded) result bit for bit.
    let m = random_matrix(99, 101, 7);
    let multi = Condensed::from_rows(&m, Metric::Euclidean);
    std::env::set_var("ICN_THREADS", "1");
    let single = Condensed::from_rows(&m, Metric::Euclidean);
    std::env::remove_var("ICN_THREADS");
    let bits = |c: &Condensed| -> Vec<u64> { c.as_slice().iter().map(|x| x.to_bits()).collect() };
    assert_eq!(bits(&multi), bits(&single));
}

#[test]
fn degenerate_sizes() {
    for n in [0, 1, 2] {
        let m = random_matrix(5, n, 3);
        let c = Condensed::from_rows(&m, Metric::Euclidean);
        assert_eq!(c.len(), n);
        assert_eq!(c.as_slice().len(), n * n.saturating_sub(1) / 2);
        assert_eq!(c.is_empty(), n == 0);
    }
}
