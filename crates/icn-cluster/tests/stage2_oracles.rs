//! Stage 2 (Ward agglomeration): differential oracle + metamorphic
//! invariants against `icn-testkit`.
//!
//! Oracle: the production NN-chain algorithm is compared against the
//! testkit's O(n³) greedy agglomeration (same Lance-Williams recurrence,
//! global-minimum merge order) — for reducible linkages the two must build
//! the same hierarchy. Metamorphic: row permutations must permute labels,
//! and merge heights must be monotone non-decreasing.

use icn_cluster::{agglomerate, Linkage};
use icn_stats::check::{self, cases};
use icn_stats::Matrix;
use icn_testkit::{naive_agglomerate, permutation, permute_rows, permute_slice, same_partition};

/// Random observations: a handful of loose gaussian blobs so merges happen
/// at many different heights (continuous coordinates keep ties measure-zero).
fn observations(rng: &mut icn_stats::Rng) -> Matrix {
    let n = check::len_in(rng, 6, 16);
    let dims = check::len_in(rng, 2, 5);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let centre = (i % 3) as f64 * 4.0;
            (0..dims).map(|_| rng.normal(centre, 1.0)).collect()
        })
        .collect();
    check::record(format!("{n} points in {dims}d"));
    Matrix::from_rows(&rows)
}

#[test]
fn nn_chain_matches_greedy_oracle_all_linkages() {
    cases(24, |_, rng| {
        let m = observations(rng);
        for linkage in Linkage::ALL {
            let fast = agglomerate(&m, linkage);
            let slow = naive_agglomerate(&m, linkage);
            let (fh, sh) = (fast.heights(), slow.heights());
            assert_eq!(fh.len(), sh.len(), "{}", linkage.name());
            for (f, s) in fh.iter().zip(&sh) {
                assert!(
                    (f - s).abs() < 1e-9 * (1.0 + f.abs()),
                    "{}: height {f} vs oracle {s}",
                    linkage.name()
                );
            }
            // The cut partitions must agree at every granularity.
            for k in 2..=m.rows().min(6) {
                assert!(
                    same_partition(&fast.cut(k), &slow.cut(k)),
                    "{}: k={k} partitions differ",
                    linkage.name()
                );
            }
        }
    });
}

#[test]
fn cut_labels_equivariant_to_row_permutation() {
    // Clustering must not care what order the antennas arrive in: labels of
    // the permuted input are the permuted labels of the original input (up
    // to renaming, which `same_partition` quotients out).
    cases(24, |_, rng| {
        let m = observations(rng);
        let p = permutation(rng, m.rows());
        check::record(format!("row perm {p:?}"));
        let base = agglomerate(&m, Linkage::Ward);
        let shuffled = agglomerate(&permute_rows(&m, &p), Linkage::Ward);
        for k in 2..=m.rows().min(6) {
            let expected = permute_slice(&base.cut(k), &p);
            assert!(
                same_partition(&shuffled.cut(k), &expected),
                "k={k}: permuted clustering disagrees"
            );
        }
    });
}

#[test]
fn merge_heights_monotone_all_linkages() {
    // Reducible linkages guarantee non-decreasing dendrogram heights; a
    // violation would make every cut threshold ambiguous.
    cases(24, |_, rng| {
        let m = observations(rng);
        for linkage in Linkage::ALL {
            let hs = agglomerate(&m, linkage).heights();
            for (s, w) in hs.windows(2).enumerate() {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{}: step {s} heights {w:?} decrease",
                    linkage.name()
                );
            }
        }
    });
}

#[test]
fn oracle_heights_monotone_too() {
    // Sanity on the oracle itself: greedy global-minimum merging under a
    // reducible linkage is height-monotone by construction.
    cases(12, |_, rng| {
        let m = observations(rng);
        let hs = naive_agglomerate(&m, Linkage::Ward).heights();
        for w in hs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "oracle heights {w:?} decrease");
        }
    });
}
