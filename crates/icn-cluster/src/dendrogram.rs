//! Dendrogram structure over a merge history.
//!
//! Figure 3 of the paper shows the full merge hierarchy with two distance
//! thresholds highlighted (k = 6 and k = 9) and identifies three coarse
//! branch "groups" that each split into three sub-clusters. [`Dendrogram`]
//! turns a [`MergeHistory`] into a navigable binary tree supporting
//! cut-at-k, cut-at-height, leaf ordering (for heatmap column order), and
//! the group/sub-cluster relation: which k=9 clusters consolidate into
//! which k=6 (or k=3) super-clusters.

use crate::agglomerative::MergeHistory;
use std::collections::HashMap;

/// One node of the dendrogram: a leaf (original observation) or an internal
/// merge node.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Left child label (`< n` ⇒ leaf).
    pub left: usize,
    /// Right child label.
    pub right: usize,
    /// Merge height.
    pub height: f64,
    /// Number of leaves under this node.
    pub size: usize,
}

/// A navigable dendrogram built from a merge history.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    n: usize,
    nodes: Vec<Node>, // nodes[s] is the cluster labelled n + s
}

impl Dendrogram {
    /// Builds the tree. The history must be complete (n − 1 merges).
    pub fn from_history(h: &MergeHistory) -> Dendrogram {
        assert_eq!(h.merges.len(), h.n - 1, "incomplete merge history");
        let nodes = h
            .merges
            .iter()
            .map(|m| Node {
                left: m.a,
                right: m.b,
                height: m.height,
                size: m.size,
            })
            .collect();
        Dendrogram { n: h.n, nodes }
    }

    /// Number of leaves (original observations).
    pub fn num_leaves(&self) -> usize {
        self.n
    }

    /// Internal nodes in creation (height) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Label of the root cluster.
    pub fn root(&self) -> usize {
        self.n + self.nodes.len() - 1
    }

    /// All leaf indices under cluster `label`, in dendrogram order
    /// (left-to-right traversal).
    pub fn leaves_under(&self, label: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![label];
        while let Some(l) = stack.pop() {
            if l < self.n {
                out.push(l);
            } else {
                let node = self.nodes[l - self.n];
                // Push right first so left is visited first.
                stack.push(node.right);
                stack.push(node.left);
            }
        }
        out
    }

    /// Leaf ordering of the full tree — the x-axis order of Figure 3's
    /// dendrogram and Figure 4's heatmap columns.
    pub fn leaf_order(&self) -> Vec<usize> {
        self.leaves_under(self.root())
    }

    /// The cluster roots (node labels) obtained by cutting into `k`
    /// clusters, ordered left-to-right in the dendrogram.
    pub fn roots_at_k(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "roots_at_k: bad k");
        // The k cluster roots are found by starting from the root and
        // repeatedly splitting the highest node until k parts remain.
        let mut parts: Vec<usize> = vec![self.root()];
        while parts.len() < k {
            // Split the part whose node has the greatest height.
            let (idx, _) = parts
                .iter()
                .enumerate()
                .filter(|(_, &l)| l >= self.n)
                .max_by(|a, b| {
                    let ha = self.nodes[*a.1 - self.n].height;
                    let hb = self.nodes[*b.1 - self.n].height;
                    ha.partial_cmp(&hb).expect("finite heights")
                })
                .expect("enough internal nodes to split");
            let label = parts.remove(idx);
            let node = self.nodes[label - self.n];
            parts.insert(idx, node.right);
            parts.insert(idx, node.left);
        }
        // Order parts by dendrogram (leaf) position.
        let order = self.leaf_order();
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        parts.sort_by_key(|&label| {
            let first_leaf = *self.leaves_under(label).first().expect("non-empty");
            pos[&first_leaf]
        });
        parts
    }

    /// Per-leaf labels for a cut into `k` clusters, numbered by decreasing
    /// cluster size (matching [`MergeHistory::cut`]'s convention).
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let roots = self.roots_at_k(k);
        let mut sized: Vec<(usize, usize)> = roots
            .iter()
            .map(|&r| {
                let size = if r < self.n {
                    1
                } else {
                    self.nodes[r - self.n].size
                };
                (r, size)
            })
            .collect();
        sized.sort_by_key(|&(r, size)| {
            let first = *self.leaves_under(r).first().unwrap();
            (usize::MAX - size, first)
        });
        let mut labels = vec![usize::MAX; self.n];
        for (ci, (r, _)) in sized.into_iter().enumerate() {
            for leaf in self.leaves_under(r) {
                labels[leaf] = ci;
            }
        }
        labels
    }

    /// Maps each cluster of the finer cut (`k_fine`) to its enclosing
    /// cluster of the coarser cut (`k_coarse`). Returns
    /// `map[fine_label] = coarse_label`. This is the paper's observation
    /// that moving k = 9 → 6 consolidates the orange group and merges
    /// clusters 6 and 8.
    pub fn consolidation(&self, k_fine: usize, k_coarse: usize) -> Vec<usize> {
        assert!(k_coarse <= k_fine, "consolidation: coarse must be ≤ fine");
        let fine = self.cut(k_fine);
        let coarse = self.cut(k_coarse);
        let mut map = vec![usize::MAX; k_fine];
        for i in 0..self.n {
            let f = fine[i];
            if map[f] == usize::MAX {
                map[f] = coarse[i];
            } else {
                debug_assert_eq!(map[f], coarse[i], "cuts are not nested?");
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::agglomerate;
    use crate::linkage::Linkage;
    use icn_stats::{Matrix, Rng};

    fn three_blobs() -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from(21);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (8.0, 0.0), (4.0, 12.0)];
        for (c, &(x, y)) in centers.iter().enumerate() {
            for _ in 0..(10 + c * 3) {
                rows.push(vec![rng.normal(x, 0.4), rng.normal(y, 0.4)]);
                truth.push(c);
            }
        }
        (Matrix::from_rows(&rows), truth)
    }

    fn dendro() -> (Dendrogram, Matrix, Vec<usize>) {
        let (m, truth) = three_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        (Dendrogram::from_history(&h), m, truth)
    }

    #[test]
    fn leaf_order_is_permutation() {
        let (d, m, _) = dendro();
        let mut order = d.leaf_order();
        assert_eq!(order.len(), m.rows());
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), m.rows());
    }

    #[test]
    fn cut_agrees_with_history_cut() {
        let (m, _) = three_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let d = Dendrogram::from_history(&h);
        for k in [1, 2, 3, 5, 10] {
            assert_eq!(d.cut(k), h.cut(k), "k={k}");
        }
    }

    #[test]
    fn three_blobs_recovered_at_k3() {
        let (d, _, truth) = dendro();
        let labels = d.cut(3);
        // Same partition as the truth (up to relabelling).
        use std::collections::HashMap;
        let mut map: HashMap<usize, usize> = HashMap::new();
        for (l, t) in labels.iter().zip(&truth) {
            let e = map.entry(*l).or_insert(*t);
            assert_eq!(e, t);
        }
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn leaves_under_root_is_everything() {
        let (d, m, _) = dendro();
        assert_eq!(d.leaves_under(d.root()).len(), m.rows());
    }

    #[test]
    fn leaves_are_contiguous_per_cluster_in_leaf_order() {
        // In dendrogram leaf order, each k-cut cluster occupies one
        // contiguous span (that's what makes the Fig. 4 heatmap blocky).
        let (d, _, _) = dendro();
        let labels = d.cut(3);
        let order = d.leaf_order();
        let seq: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
        let mut seen = std::collections::HashSet::new();
        let mut prev = usize::MAX;
        for l in seq {
            if l != prev {
                assert!(seen.insert(l), "cluster {l} appears in two spans");
                prev = l;
            }
        }
    }

    #[test]
    fn consolidation_is_well_defined_and_nested() {
        let (d, _, _) = dendro();
        let map = d.consolidation(5, 2);
        assert_eq!(map.len(), 5);
        assert!(map.iter().all(|&c| c < 2));
        // At least one coarse cluster hosts ≥ 2 fine clusters.
        let mut counts = [0usize; 2];
        for &c in &map {
            counts[c] += 1;
        }
        assert!(counts.iter().any(|&c| c >= 2));
    }

    #[test]
    fn roots_at_k_sizes_sum_to_n() {
        let (d, m, _) = dendro();
        for k in [2, 3, 4, 7] {
            let roots = d.roots_at_k(k);
            assert_eq!(roots.len(), k);
            let total: usize = roots.iter().map(|&r| d.leaves_under(r).len()).sum();
            assert_eq!(total, m.rows());
        }
    }

    #[test]
    #[should_panic(expected = "incomplete merge history")]
    fn incomplete_history_panics() {
        let (m, _) = three_blobs();
        let mut h = agglomerate(&m, Linkage::Ward);
        h.merges.pop();
        Dendrogram::from_history(&h);
    }
}
