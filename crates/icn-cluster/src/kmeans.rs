//! k-means baseline (Lloyd's algorithm with k-means++ seeding).
//!
//! The paper motivates agglomerative clustering by its "comprehensibility"
//! among the multiple available techniques (Section 4.2.1); the B3 ablation
//! bench compares it against this standard k-means baseline on silhouette,
//! Dunn and recovery of the planted archetypes.

use icn_stats::{distance::sq_euclidean, Matrix, Rng};

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Per-row cluster assignment, dense `0..k`.
    pub labels: Vec<usize>,
    /// Final cluster centroids (k × features).
    pub centroids: Matrix,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Whether the assignment converged before the iteration cap.
    pub converged: bool,
}

/// Runs k-means++ initialised Lloyd's algorithm.
///
/// # Panics
/// If `k == 0`, `k > rows`, or the data contains non-finite values.
pub fn kmeans(data: &Matrix, k: usize, max_iter: usize, rng: &mut Rng) -> KMeansResult {
    let n = data.rows();
    let d = data.cols();
    assert!(k >= 1 && k <= n, "kmeans: k={k} out of range for n={n}");
    assert!(!data.has_non_finite(), "kmeans: non-finite values in input");

    // --- k-means++ seeding ---
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.index(n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut dist2: Vec<f64> = (0..n)
        .map(|i| sq_euclidean(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist2.iter().sum();
        let pick = if total > 0.0 {
            rng.categorical(&dist2)
        } else {
            rng.index(n) // all points coincide with chosen centroids
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for i in 0..n {
            let nd = sq_euclidean(data.row(i), centroids.row(c));
            if nd < dist2[i] {
                dist2[i] = nd;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut labels = vec![0usize; n];
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for i in 0..n {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dd = sq_euclidean(data.row(i), centroids.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            converged = true;
            break;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[labels[i]] += 1;
            let row = data.row(i);
            for (s, &v) in sums.row_mut(labels[i]).iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: reseed at the point farthest from its
                // centroid to keep k clusters alive.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_euclidean(data.row(a), centroids.row(labels[a]));
                        let db = sq_euclidean(data.row(b), centroids.row(labels[b]));
                        da.partial_cmp(&db).expect("finite")
                    })
                    .expect("non-empty data");
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *dst = s * inv;
                }
            }
        }
    }

    let inertia: f64 = (0..n)
        .map(|i| sq_euclidean(data.row(i), centroids.row(labels[i])))
        .sum();
    KMeansResult {
        labels,
        centroids,
        inertia,
        iterations,
        converged,
    }
}

/// Runs `restarts` independent k-means and keeps the lowest-inertia result.
pub fn kmeans_best_of(
    data: &Matrix,
    k: usize,
    max_iter: usize,
    restarts: usize,
    rng: &mut Rng,
) -> KMeansResult {
    assert!(restarts >= 1, "kmeans_best_of: zero restarts");
    let mut best: Option<KMeansResult> = None;
    for _ in 0..restarts {
        let r = kmeans(data, k, max_iter, rng);
        if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
            best = Some(r);
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from(51);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 9.0)];
        for (c, &(x, y)) in centers.iter().enumerate() {
            for _ in 0..12 {
                rows.push(vec![rng.normal(x, 0.4), rng.normal(y, 0.4)]);
                truth.push(c);
            }
        }
        (Matrix::from_rows(&rows), truth)
    }

    #[test]
    fn recovers_three_blobs() {
        let (m, truth) = blobs();
        let mut rng = Rng::seed_from(1);
        let r = kmeans_best_of(&m, 3, 100, 5, &mut rng);
        // Partition match up to relabelling.
        use std::collections::HashMap;
        let mut map: HashMap<usize, usize> = HashMap::new();
        for (l, t) in r.labels.iter().zip(&truth) {
            let e = map.entry(*l).or_insert(*t);
            assert_eq!(e, t);
        }
        assert!(r.converged);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (m, _) = blobs();
        let mut rng = Rng::seed_from(2);
        let i2 = kmeans_best_of(&m, 2, 100, 5, &mut rng).inertia;
        let i3 = kmeans_best_of(&m, 3, 100, 5, &mut rng).inertia;
        let i6 = kmeans_best_of(&m, 6, 100, 5, &mut rng).inertia;
        assert!(i3 < i2);
        assert!(i6 < i3);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let (m, _) = blobs();
        let mut rng = Rng::seed_from(3);
        let r = kmeans(&m, m.rows(), 50, &mut rng);
        assert!(r.inertia < 1e-9, "inertia {}", r.inertia);
    }

    #[test]
    fn k1_centroid_is_mean() {
        let (m, _) = blobs();
        let mut rng = Rng::seed_from(4);
        let r = kmeans(&m, 1, 50, &mut rng);
        let mean_x: f64 = m.col(0).iter().sum::<f64>() / m.rows() as f64;
        assert!((r.centroids.get(0, 0) - mean_x).abs() < 1e-9);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (m, _) = blobs();
        let a = kmeans(&m, 3, 100, &mut Rng::seed_from(9));
        let b = kmeans(&m, 3, 100, &mut Rng::seed_from(9));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn labels_dense_and_k_clusters_alive() {
        let (m, _) = blobs();
        let mut rng = Rng::seed_from(6);
        let r = kmeans_best_of(&m, 3, 100, 3, &mut rng);
        let mut present = [false; 3];
        for &l in &r.labels {
            present[l] = true;
        }
        assert!(present.iter().all(|&p| p));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_panics() {
        let (m, _) = blobs();
        kmeans(&m, 0, 10, &mut Rng::seed_from(0));
    }
}
