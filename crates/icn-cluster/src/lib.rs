//! # icn-cluster — unsupervised-learning substrate
//!
//! From-scratch implementations of everything Section 4.2 of the paper
//! needs:
//!
//! * [`condensed`] — the shared pairwise-distance matrix (upper triangle,
//!   computed in parallel) reused across the Figure 2 sweep.
//! * [`linkage`] — Ward / single / complete / average criteria with their
//!   Lance–Williams recurrences.
//! * [`agglomerative`] — the nearest-neighbour-chain algorithm (O(N²),
//!   exact for reducible linkages), producing a SciPy-style merge history.
//! * [`dendrogram`] — navigable hierarchy: cut-at-k, leaf ordering for the
//!   Figure 4 heatmap, k = 9 → k = 6 consolidation maps.
//! * [`silhouette`] / [`dunn`] — the two quality indices of Figure 2.
//! * [`cophenetic`] — cophenetic distances and the CPCC dendrogram-fidelity
//!   diagnostic reported alongside Figure 3.
//! * [`selection`] — the sweep-and-detect-drop stopping criterion.
//! * [`stability`] — bootstrap cluster-stability analysis ("the profiles
//!   are inherent, not sampling artefacts").
//! * [`scalable`] — the sampled Ward path for populations too large for
//!   the O(N²) condensed matrix (exact Ward on a seeded sample, nearest-
//!   centroid extension, memory-budget-driven path selection).
//! * [`mod@kmeans`] — the k-means++ baseline for the ablation benches.
//! * [`validation`] — ARI, NMI, purity and contingency tables against the
//!   planted archetypes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod condensed;
pub mod cophenetic;
pub mod dendrogram;
pub mod dunn;
pub mod kmeans;
pub mod linkage;
pub mod scalable;
pub mod selection;
pub mod silhouette;
pub mod stability;
pub mod validation;

pub use agglomerative::{agglomerate, agglomerate_condensed, Merge, MergeHistory};
pub use condensed::Condensed;
pub use cophenetic::{cophenetic_correlation, cophenetic_distances};
pub use dendrogram::Dendrogram;
pub use dunn::dunn_index;
pub use kmeans::{kmeans, kmeans_best_of, KMeansResult};
pub use linkage::Linkage;
pub use scalable::{
    exact_memory_bytes, max_sample_for_budget, sampled_ward, ClusterPath, SampledWardConfig,
    SampledWardResult,
};
pub use selection::{detect_drops, select_k, sweep_k, Drop, KQuality};
pub use silhouette::silhouette_score;
pub use stability::{bootstrap_stability, StabilityResult};
pub use validation::{adjusted_rand_index, contingency, normalized_mutual_info, purity};
