//! Silhouette score (Rousseeuw 1987).
//!
//! One of the two clustering-quality indices the paper uses to pick k
//! (Figure 2). For each point `i` with intra-cluster mean distance `a(i)`
//! and smallest other-cluster mean distance `b(i)`, the silhouette is
//! `(b − a) / max(a, b)`; the score is the mean over all points. Points in
//! singleton clusters contribute 0 by convention.

use crate::condensed::Condensed;
use icn_stats::par;

/// Mean silhouette coefficient of a labelling over a precomputed distance
/// matrix. Labels must be dense `0..k`.
///
/// # Panics
/// If fewer than 2 clusters are present or labels length mismatches.
pub fn silhouette_score(cond: &Condensed, labels: &[usize]) -> f64 {
    let n = cond.len();
    assert_eq!(labels.len(), n, "silhouette: label length mismatch");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(k >= 2, "silhouette: need at least 2 clusters");
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }

    let total: f64 = par::sum_indexed(n, |i| {
        if counts[labels[i]] <= 1 {
            return 0.0; // singleton convention
        }
        // Mean distance from i to every cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if j != i {
                sums[labels[j]] += cond.get(i, j);
            }
        }
        let own = labels[i];
        let a = sums[own] / (counts[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if a.max(b) == 0.0 {
            0.0
        } else {
            (b - a) / a.max(b)
        }
    });
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::{Matrix, Metric, Rng};

    fn blobs(sep: f64) -> (Condensed, Vec<usize>) {
        let mut rng = Rng::seed_from(31);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..15 {
                rows.push(vec![rng.normal(c as f64 * sep, 0.5), rng.normal(0.0, 0.5)]);
                labels.push(c);
            }
        }
        let m = Matrix::from_rows(&rows);
        (Condensed::from_rows(&m, Metric::Euclidean), labels)
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let (cond, labels) = blobs(20.0);
        let s = silhouette_score(&cond, &labels);
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn overlapping_blobs_score_low() {
        let (cond, labels) = blobs(0.1);
        let s = silhouette_score(&cond, &labels);
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn score_in_valid_range() {
        for sep in [0.0, 1.0, 5.0, 50.0] {
            let (cond, labels) = blobs(sep);
            let s = silhouette_score(&cond, &labels);
            assert!((-1.0..=1.0).contains(&s), "sep {sep}: {s}");
        }
    }

    #[test]
    fn wrong_labelling_scores_worse() {
        let (cond, labels) = blobs(20.0);
        let good = silhouette_score(&cond, &labels);
        // Scramble: alternate labels regardless of geometry.
        let bad_labels: Vec<usize> = (0..labels.len()).map(|i| i % 2).collect();
        let bad = silhouette_score(&cond, &bad_labels);
        assert!(good > bad + 0.5, "good {good} bad {bad}");
    }

    #[test]
    fn singleton_contributes_zero() {
        // 2 coincident points in cluster 0, 1 lone point in cluster 1.
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0], vec![9.0, 9.0]]);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let s = silhouette_score(&cond, &[0, 0, 1]);
        // Points 0/1: a=0, b=dist>0 ⇒ s=1 each; singleton ⇒ 0.
        assert!((s - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 clusters")]
    fn one_cluster_panics() {
        let (cond, _) = blobs(1.0);
        let labels = vec![0usize; cond.len()];
        silhouette_score(&cond, &labels);
    }
}
