//! External clustering validation: contingency tables, ARI, NMI, purity.
//!
//! The paper validates its clusters against the indoor environments
//! qualitatively (Figures 6–8); our reproduction can go further because the
//! synthetic substrate knows the planted archetypes. These metrics quantify
//! how faithfully a clustering recovers a reference labelling, and power
//! the transform/linkage ablation benches (B1–B3).

/// Contingency table between two labellings: `table[a][b]` counts items
/// with label `a` in the first and `b` in the second labelling.
pub fn contingency(labels_a: &[usize], labels_b: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(
        labels_a.len(),
        labels_b.len(),
        "contingency: length mismatch"
    );
    let ka = labels_a.iter().copied().max().map_or(0, |m| m + 1);
    let kb = labels_b.iter().copied().max().map_or(0, |m| m + 1);
    let mut t = vec![vec![0usize; kb]; ka];
    for (&a, &b) in labels_a.iter().zip(labels_b) {
        t[a][b] += 1;
    }
    t
}

/// Adjusted Rand index (Hubert & Arabie 1985): chance-corrected agreement
/// between two partitions. 1.0 for identical partitions (up to renaming),
/// ≈ 0 for independent ones; can be negative for adversarial splits.
pub fn adjusted_rand_index(labels_a: &[usize], labels_b: &[usize]) -> f64 {
    let n = labels_a.len();
    assert!(n > 1, "ari: need at least 2 items");
    let t = contingency(labels_a, labels_b);
    let comb2 = |x: usize| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let sum_ij: f64 = t.iter().flatten().map(|&c| comb2(c)).sum();
    let a_sums: Vec<usize> = t.iter().map(|row| row.iter().sum()).collect();
    let b_len = t.first().map_or(0, |r| r.len());
    let b_sums: Vec<usize> = (0..b_len)
        .map(|j| t.iter().map(|row| row[j]).sum())
        .collect();
    let sum_a: f64 = a_sums.iter().map(|&c| comb2(c)).sum();
    let sum_b: f64 = b_sums.iter().map(|&c| comb2(c)).sum();
    let total = comb2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions trivial (all-in-one or all-singletons).
        return if (sum_ij - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Normalised mutual information (arithmetic normalisation):
/// `I(A;B) / ((H(A)+H(B))/2)`, in `[0, 1]`.
pub fn normalized_mutual_info(labels_a: &[usize], labels_b: &[usize]) -> f64 {
    let n = labels_a.len() as f64;
    assert!(n > 0.0, "nmi: empty labellings");
    let t = contingency(labels_a, labels_b);
    let a_sums: Vec<f64> = t
        .iter()
        .map(|row| row.iter().sum::<usize>() as f64)
        .collect();
    let b_len = t.first().map_or(0, |r| r.len());
    let b_sums: Vec<f64> = (0..b_len)
        .map(|j| t.iter().map(|row| row[j]).sum::<usize>() as f64)
        .collect();
    let h = |ps: &[f64]| -> f64 {
        ps.iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| {
                let q = p / n;
                -q * q.ln()
            })
            .sum()
    };
    let ha = h(&a_sums);
    let hb = h(&b_sums);
    let mut mi = 0.0;
    for (i, row) in t.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let pij = c as f64 / n;
            mi += pij * (pij * n * n / (a_sums[i] * b_sums[j])).ln();
        }
    }
    let denom = 0.5 * (ha + hb);
    if denom <= 0.0 {
        // Both partitions trivial: identical iff both are single-cluster.
        1.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Purity of `labels` against `reference`: fraction of items whose cluster's
/// majority reference class matches their own.
pub fn purity(labels: &[usize], reference: &[usize]) -> f64 {
    assert!(!labels.is_empty(), "purity: empty labellings");
    let t = contingency(labels, reference);
    let hits: usize = t
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    hits as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_ari_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renamed_partition_ari_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_info(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &b), 1.0);
    }

    #[test]
    fn independent_partitions_ari_near_zero() {
        // Large balanced independent labellings.
        let n = 6000;
        let a: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let b: Vec<usize> = (0..n).map(|i| (i / 3) % 3).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.02, "ari {ari}");
    }

    #[test]
    fn ari_known_value() {
        // Classic example: a=[0,0,1,1], b=[0,0,0,1].
        // Pairs agreeing: computed by hand via the contingency formula.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 0, 0, 1];
        let t = contingency(&a, &b);
        assert_eq!(t, vec![vec![2, 0], vec![1, 1]]);
        let ari = adjusted_rand_index(&a, &b);
        // sum_ij C(2,2)=1; sum_a = C(2,2)+C(2,2)=2; sum_b = C(3,2)+C(1,2)=3.
        // expected = 2*3/C(4,2)=6/6=1; max=2.5; ari = (1-1)/(2.5-1)=0.
        assert!(ari.abs() < 1e-12, "ari {ari}");
    }

    #[test]
    fn nmi_range_and_symmetry() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![1, 0, 1, 1, 2, 0, 0, 1];
        let ab = normalized_mutual_info(&a, &b);
        let ba = normalized_mutual_info(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn purity_majority_logic() {
        // Cluster 0 = {ref 0, ref 0, ref 1} → majority 0 (2 hits).
        // Cluster 1 = {ref 1} → 1 hit. Purity = 3/4.
        let labels = vec![0, 0, 0, 1];
        let reference = vec![0, 0, 1, 1];
        assert!((purity(&labels, &reference) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn purity_of_singletons_is_one() {
        let labels = vec![0, 1, 2, 3];
        let reference = vec![0, 0, 1, 1];
        assert_eq!(purity(&labels, &reference), 1.0);
    }

    #[test]
    fn contingency_shape() {
        let t = contingency(&[0, 2, 2], &[1, 0, 1]);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].len(), 2);
        assert_eq!(t[2][1], 1);
    }

    #[test]
    fn trivial_partitions() {
        let a = vec![0, 0, 0];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_info(&a, &a) - 1.0).abs() < 1e-12);
    }
}
