//! Dunn index (Dunn 1973).
//!
//! The second clustering-quality index of Figure 2: the ratio of the
//! smallest inter-cluster distance to the largest intra-cluster diameter.
//! Higher is better — compact, well-separated clusters. We use the classic
//! single-linkage/diameter variant: inter-cluster distance is the minimum
//! pairwise distance across clusters; diameter is the maximum pairwise
//! distance within a cluster.

use crate::condensed::Condensed;
use icn_stats::par;

/// Dunn index of a labelling over a precomputed distance matrix.
/// Labels must be dense `0..k`.
///
/// Returns `f64::INFINITY` when every cluster has diameter zero (all
/// clusters are coincident points) but clusters are separated.
///
/// # Panics
/// If fewer than 2 clusters are present or labels length mismatches.
pub fn dunn_index(cond: &Condensed, labels: &[usize]) -> f64 {
    let n = cond.len();
    assert_eq!(labels.len(), n, "dunn: label length mismatch");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(k >= 2, "dunn: need at least 2 clusters");

    // One parallel sweep over the i < j pairs, reducing (min_inter,
    // max_diameter) simultaneously.
    let per_row = par::map_indexed(n, |i| {
        let mut mi = f64::INFINITY;
        let mut md = 0.0f64;
        for j in (i + 1)..n {
            let d = cond.get(i, j);
            if labels[i] == labels[j] {
                if d > md {
                    md = d;
                }
            } else if d < mi {
                mi = d;
            }
        }
        (mi, md)
    });
    let (min_inter, max_diam) = per_row
        .into_iter()
        .fold((f64::INFINITY, 0.0f64), |(a_mi, a_md), (b_mi, b_md)| {
            (a_mi.min(b_mi), a_md.max(b_md))
        });

    if max_diam == 0.0 {
        return f64::INFINITY;
    }
    min_inter / max_diam
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::{Matrix, Metric, Rng};

    fn blobs(sep: f64) -> (Condensed, Vec<usize>) {
        let mut rng = Rng::seed_from(41);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..10 {
                rows.push(vec![rng.normal(c as f64 * sep, 0.4), rng.normal(0.0, 0.4)]);
                labels.push(c);
            }
        }
        let m = Matrix::from_rows(&rows);
        (Condensed::from_rows(&m, Metric::Euclidean), labels)
    }

    #[test]
    fn separation_increases_dunn() {
        let (c1, l1) = blobs(5.0);
        let (c2, l2) = blobs(50.0);
        let d1 = dunn_index(&c1, &l1);
        let d2 = dunn_index(&c2, &l2);
        assert!(d2 > 5.0 * d1, "d1 {d1} d2 {d2}");
    }

    #[test]
    fn good_clustering_beats_random() {
        let (cond, labels) = blobs(30.0);
        let good = dunn_index(&cond, &labels);
        let bad_labels: Vec<usize> = (0..labels.len()).map(|i| i % 3).collect();
        let bad = dunn_index(&cond, &bad_labels);
        assert!(good > bad, "good {good} bad {bad}");
    }

    #[test]
    fn hand_computed_tiny_case() {
        // Cluster 0: points at 0 and 1 (diameter 1).
        // Cluster 1: points at 10 and 12 (diameter 2).
        // Min inter distance: 12 - ... min(|10-1|,|10-0|,|12-1|,|12-0|)=9.
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![12.0]]);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let d = dunn_index(&cond, &[0, 0, 1, 1]);
        assert!((d - 4.5).abs() < 1e-12, "dunn {d}");
    }

    #[test]
    fn coincident_clusters_give_infinity() {
        let m = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![5.0], vec![5.0]]);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        assert!(dunn_index(&cond, &[0, 0, 1, 1]).is_infinite());
    }

    #[test]
    fn nonnegative() {
        let (cond, labels) = blobs(0.5);
        assert!(dunn_index(&cond, &labels) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 clusters")]
    fn one_cluster_panics() {
        let (cond, _) = blobs(1.0);
        dunn_index(&cond, &vec![0; cond.len()]);
    }
}
