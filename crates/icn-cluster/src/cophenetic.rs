//! Cophenetic distances and the cophenetic correlation coefficient.
//!
//! The cophenetic distance between two observations is the dendrogram
//! height at which they are first joined; the correlation between
//! cophenetic and original distances (CPCC, Sokal & Rohlf 1962) measures
//! how faithfully a hierarchy represents the underlying geometry — the
//! classic companion diagnostic to a dendrogram like the paper's Figure 3.
//! The `fig03_dendrogram` harness reports it alongside the tree.

use crate::agglomerative::MergeHistory;
use crate::condensed::Condensed;
use icn_stats::summary::pearson;

/// Computes all pairwise cophenetic distances as a [`Condensed`]-shaped
/// flat vector in the same pair order (row blocks `(i, i+1..n)`).
///
/// Runs in O(N²) using the union-find of merges in height order: when two
/// clusters merge at height `h`, every cross pair receives cophenetic
/// distance `h`.
pub fn cophenetic_distances(history: &MergeHistory) -> Vec<f64> {
    let n = history.n;
    let mut out = vec![0.0f64; n * (n - 1) / 2];
    // members[c] = leaves of current cluster labelled c (labels < n are
    // leaves, labels >= n refer to merge steps).
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    members.reserve(history.merges.len());
    for merge in &history.merges {
        let a = std::mem::take(&mut members[merge.a]);
        let b = std::mem::take(&mut members[merge.b]);
        for &x in &a {
            for &y in &b {
                let (i, j) = if x < y { (x, y) } else { (y, x) };
                out[pair_index(n, i, j)] = merge.height;
            }
        }
        let mut merged = a;
        merged.extend(b);
        members.push(merged);
    }
    out
}

/// Pair index in the condensed layout.
#[inline]
fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Cophenetic correlation coefficient: Pearson correlation between the
/// hierarchy's cophenetic distances and the original pairwise distances.
/// 1.0 means the dendrogram perfectly preserves the geometry.
pub fn cophenetic_correlation(history: &MergeHistory, original: &Condensed) -> f64 {
    assert_eq!(
        history.n,
        original.len(),
        "cophenetic_correlation: size mismatch"
    );
    let coph = cophenetic_distances(history);
    pearson(&coph, original.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::agglomerate;
    use crate::linkage::Linkage;
    use icn_stats::{Matrix, Metric, Rng};

    fn blobs() -> Matrix {
        let mut rng = Rng::seed_from(7);
        let mut rows = Vec::new();
        for c in 0..3 {
            for _ in 0..8 {
                rows.push(vec![rng.normal(c as f64 * 10.0, 0.4), rng.normal(0.0, 0.4)]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn cophenetic_distances_cover_all_pairs() {
        let m = blobs();
        let h = agglomerate(&m, Linkage::Average);
        let coph = cophenetic_distances(&h);
        assert_eq!(coph.len(), m.rows() * (m.rows() - 1) / 2);
        // Every pair eventually merges, so every entry is positive.
        assert!(coph.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn within_blob_pairs_join_lower_than_cross_blob() {
        let m = blobs();
        let h = agglomerate(&m, Linkage::Average);
        let coph = cophenetic_distances(&h);
        let n = m.rows();
        // Points 0..8 are blob 0; 8..16 blob 1.
        let within = coph[pair_index(n, 0, 1)];
        let cross = coph[pair_index(n, 0, 9)];
        assert!(cross > 3.0 * within, "within {within} cross {cross}");
    }

    #[test]
    fn correlation_high_for_clusterable_data() {
        let m = blobs();
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        for linkage in [Linkage::Average, Linkage::Complete, Linkage::Ward] {
            let h = agglomerate(&m, linkage);
            let c = cophenetic_correlation(&h, &cond);
            assert!(c > 0.85, "{}: CPCC {c}", linkage.name());
        }
    }

    #[test]
    fn average_linkage_usually_maximises_cpcc() {
        // A classical fact: UPGMA tends to give the best cophenetic fit.
        let m = blobs();
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let cpcc = |l: Linkage| cophenetic_correlation(&agglomerate(&m, l), &cond);
        let avg = cpcc(Linkage::Average);
        let single = cpcc(Linkage::Single);
        assert!(avg >= single - 0.05, "avg {avg} single {single}");
    }

    #[test]
    fn correlation_bounded() {
        let m = blobs();
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let h = agglomerate(&m, Linkage::Single);
        let c = cophenetic_correlation(&h, &cond);
        assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn pair_index_matches_condensed_layout() {
        let m = blobs();
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let n = m.rows();
        // as_slice order must match pair_index enumeration.
        let mut k = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(pair_index(n, i, j), k);
                assert_eq!(cond.as_slice()[k], cond.get(i, j));
                k += 1;
            }
        }
    }
}
