//! Condensed pairwise-distance storage.
//!
//! Hierarchical clustering, silhouette and Dunn all need the full pairwise
//! distance matrix of the N antennas. We store only the strict upper
//! triangle (`N·(N−1)/2` entries) — at the paper's N = 4,762 that is ~11.3 M
//! `f64`s (≈ 90 MB), computed once and shared by every consumer of the
//! sweep in Figure 2.

use icn_stats::{par, Matrix, Metric};

/// Upper-triangular pairwise distance matrix over `n` points.
#[derive(Clone, Debug)]
pub struct Condensed {
    n: usize,
    d: Vec<f64>,
}

impl Condensed {
    /// Computes all pairwise distances between the rows of `data` under
    /// `metric`, in parallel.
    ///
    /// Rows are processed in chunks of the lower-triangle's i-dimension;
    /// each worker writes its chunk's contiguous window of the final
    /// condensed buffer in place (via [`par::fill_blocks`] — no per-chunk
    /// allocation, no stitch pass), and the j-dimension is tiled so a block
    /// of right-hand rows stays cache-resident across all of the chunk's
    /// left-hand rows.
    ///
    /// The (squared) Euclidean metrics go through the 4-lane accumulator
    /// kernel [`icn_stats::distance::sq_euclidean4`]: four independent
    /// partial sums hide FP-add latency for a large single-thread win. The
    /// fill order and the per-pair kernel are fixed, so the result is
    /// bit-identical at any `ICN_THREADS`.
    ///
    /// Metering: each worker chunk's wall time is recorded into the
    /// `cluster.distance_build_ns` histogram, and the finished matrix size
    /// is published as the `cluster.condensed_bytes` gauge (the scalable
    /// sampled-Ward path is budget-gated on this gauge).
    pub fn from_rows(data: &Matrix, metric: Metric) -> Condensed {
        let _span = icn_obs::Span::enter("condensed");
        let n = data.rows();
        let rows: Vec<&[f64]> = (0..n).map(|i| data.row(i)).collect();
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            match metric {
                Metric::SqEuclidean => icn_stats::distance::sq_euclidean4(a, b),
                Metric::Euclidean => icn_stats::distance::sq_euclidean4(a, b).sqrt(),
                other => other.distance(a, b),
            }
        };
        const TILE: usize = 64;
        let chunk = (n / (par::thread_count() * 8)).clamp(1, 256);
        let obs = icn_obs::global();
        let metered = obs.is_enabled();
        // Row-chunk b covers i ∈ [b·chunk, (b+1)·chunk): unequal element
        // spans (row i holds n−1−i pairs), so the in-place parallel fill
        // uses an explicit block partition at the row boundaries.
        let n_chunks = n.div_ceil(chunk.max(1)).max(usize::from(n > 0));
        let mut bounds = Vec::with_capacity(n_chunks + 1);
        bounds.extend((0..n_chunks).map(|b| block_start(n, (b * chunk).min(n))));
        bounds.push(n * (n.max(1) - 1) / 2);
        let mut d = vec![0.0f64; n * (n.max(1) - 1) / 2];
        par::fill_blocks(&mut d, &bounds, |b, out| {
            let t0 = metered.then(std::time::Instant::now);
            let (lo, hi) = (b * chunk, ((b + 1) * chunk).min(n));
            let base = block_start(n, lo);
            let mut jt = lo + 1;
            while jt < n {
                let jhi = (jt + TILE).min(n);
                for i in lo..hi.min(jhi) {
                    let ri = rows[i];
                    let row_off = block_start(n, i) - base;
                    for j in jt.max(i + 1)..jhi {
                        out[row_off + (j - i - 1)] = dist(ri, rows[j]);
                    }
                }
                jt = jhi;
            }
            if let Some(t0) = t0 {
                obs.record_hist("cluster.distance_build_ns", t0.elapsed().as_nanos() as u64);
            }
        });
        obs.add_counter("cluster.pairs", d.len() as u64);
        icn_obs::gauge_bytes("cluster.condensed_bytes", d.len() * 8);
        Condensed { n, d }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j` (0.0 on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n, "Condensed::get out of bounds");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.d[block_start(self.n, a) + (b - a - 1)]
    }

    /// Raw condensed storage (row-block layout: pairs (0,1..n), (1,2..n)…).
    pub fn as_slice(&self) -> &[f64] {
        &self.d
    }

    /// The entry-wise square root of this matrix.
    ///
    /// `Metric::Euclidean.distance` is defined as
    /// `Metric::SqEuclidean.distance(..).sqrt()`, so for a condensed matrix
    /// built with `Metric::SqEuclidean` (Ward's base metric) this is
    /// **bit-identical** to recomputing `from_rows(data, Metric::Euclidean)`
    /// — at O(N²) instead of O(N²·M), skipping the second full pairwise
    /// pass the k-sweep used to pay for.
    pub fn sqrt_values(&self) -> Condensed {
        Condensed {
            n: self.n,
            d: self.d.iter().map(|&v| v.sqrt()).collect(),
        }
    }
}

#[inline]
pub(crate) fn block_start(n: usize, i: usize) -> usize {
    // Row i's pairs start after rows 0..i, which hold (n-1-r) pairs each:
    // Σ_{r<i} (n-1-r) = i(n-1) - i(i-1)/2 = i(2n - i - 1)/2.
    i * (2 * n - i - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![3.0, 0.0],
            vec![0.0, 4.0],
            vec![3.0, 4.0],
        ])
    }

    #[test]
    fn distances_match_direct_computation() {
        let m = data();
        let c = Condensed::from_rows(&m, Metric::Euclidean);
        for i in 0..4 {
            for j in 0..4 {
                let want = Metric::Euclidean.distance(m.row(i), m.row(j));
                assert!((c.get(i, j) - want).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let c = Condensed::from_rows(&data(), Metric::Manhattan);
        for i in 0..4 {
            assert_eq!(c.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
        }
    }

    #[test]
    fn known_values() {
        let c = Condensed::from_rows(&data(), Metric::Euclidean);
        assert_eq!(c.get(0, 1), 3.0);
        assert_eq!(c.get(0, 2), 4.0);
        assert_eq!(c.get(0, 3), 5.0);
        assert_eq!(c.get(1, 2), 5.0);
    }

    #[test]
    fn storage_size() {
        let c = Condensed::from_rows(&data(), Metric::Euclidean);
        assert_eq!(c.as_slice().len(), 6);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn sqrt_values_matches_euclidean_bitwise() {
        let mut rng = icn_stats::Rng::seed_from(11);
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|_| (0..5).map(|_| rng.gaussian()).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let sq = Condensed::from_rows(&m, Metric::SqEuclidean);
        let direct = Condensed::from_rows(&m, Metric::Euclidean);
        let derived = sq.sqrt_values();
        assert_eq!(derived.len(), direct.len());
        for (a, b) in direct.as_slice().iter().zip(derived.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn larger_random_consistency() {
        let mut rng = icn_stats::Rng::seed_from(3);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..7).map(|_| rng.gaussian()).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let c = Condensed::from_rows(&m, Metric::SqEuclidean);
        for i in (0..40).step_by(7) {
            for j in (0..40).step_by(5) {
                let want = Metric::SqEuclidean.distance(m.row(i), m.row(j));
                assert!((c.get(i, j) - want).abs() < 1e-9);
            }
        }
    }
}
