//! Linkage criteria and Lance–Williams updates.
//!
//! Agglomerative clustering repeatedly merges the two closest clusters;
//! "closest" is defined by the linkage criterion. The paper uses **Ward's
//! criterion** (minimise the increase in total intra-cluster variance); we
//! also implement single, complete and average linkage for the ablation
//! bench B2. All four admit a Lance–Williams recurrence, so a merge can
//! update cluster-to-cluster distances in O(active clusters) without
//! touching the original feature vectors.
//!
//! Convention: Ward operates on **squared Euclidean** point distances and
//! its inter-cluster distances stay in that squared space; dendrogram
//! heights for Ward are reported as the square root (the SciPy convention),
//! which keeps heights comparable with the other linkages.

use icn_stats::Metric;

/// Linkage criterion for agglomerative clustering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Ward's minimum-variance criterion (the paper's choice).
    Ward,
    /// Nearest-member distance.
    Single,
    /// Farthest-member distance.
    Complete,
    /// Unweighted average member distance (UPGMA).
    Average,
}

impl Linkage {
    /// The point-to-point metric this linkage's recurrence assumes.
    pub fn base_metric(&self) -> Metric {
        match self {
            Linkage::Ward => Metric::SqEuclidean,
            _ => Metric::Euclidean,
        }
    }

    /// Lance–Williams update: distance between the merged cluster `i ∪ j`
    /// and another cluster `k`, given the pre-merge distances and cluster
    /// sizes.
    #[inline]
    pub fn update(&self, d_ik: f64, d_jk: f64, d_ij: f64, n_i: f64, n_j: f64, n_k: f64) -> f64 {
        match self {
            Linkage::Ward => {
                let t = n_i + n_j + n_k;
                ((n_i + n_k) * d_ik + (n_j + n_k) * d_jk - n_k * d_ij) / t
            }
            Linkage::Single => d_ik.min(d_jk),
            Linkage::Complete => d_ik.max(d_jk),
            Linkage::Average => (n_i * d_ik + n_j * d_jk) / (n_i + n_j),
        }
    }

    /// Maps an internal inter-cluster distance to a dendrogram height.
    /// Ward distances live in squared space; heights take the square root.
    #[inline]
    pub fn to_height(&self, d: f64) -> f64 {
        match self {
            Linkage::Ward => d.max(0.0).sqrt(),
            _ => d,
        }
    }

    /// Name for bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Linkage::Ward => "ward",
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
        }
    }

    /// All linkages, for ablation sweeps.
    pub const ALL: [Linkage; 4] = [
        Linkage::Ward,
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_complete_are_min_max() {
        assert_eq!(Linkage::Single.update(2.0, 5.0, 1.0, 1.0, 1.0, 1.0), 2.0);
        assert_eq!(Linkage::Complete.update(2.0, 5.0, 1.0, 1.0, 1.0, 1.0), 5.0);
    }

    #[test]
    fn average_weights_by_size() {
        // |i|=3, |j|=1: average = (3*2 + 1*6)/4 = 3.
        assert_eq!(Linkage::Average.update(2.0, 6.0, 0.0, 3.0, 1.0, 2.0), 3.0);
    }

    #[test]
    fn ward_singleton_merge_formula() {
        // Merging two singletons i, j and measuring to singleton k:
        // d(ij,k) = (2 d_ik + 2 d_jk - d_ij) / 3.
        let d = Linkage::Ward.update(4.0, 9.0, 1.0, 1.0, 1.0, 1.0);
        assert!((d - (2.0 * 4.0 + 2.0 * 9.0 - 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ward_matches_centroid_variance_identity() {
        // For singleton clusters at positions a=0, b=2 (1-D), k at 10:
        // squared distances d_ik=100, d_jk=64, d_ij=4.
        // Merged cluster {0,2} has centroid 1, size 2; Ward distance to k
        // is (n_ij*n_k/(n_ij+n_k)) * ||c_ij - c_k||^2 * 2? — check against
        // the LW recurrence value directly:
        let lw = Linkage::Ward.update(100.0, 64.0, 4.0, 1.0, 1.0, 1.0);
        // Direct ESS increase formula: (2*1/(2+1)) * ||1-10||^2 * ... the
        // LW recurrence for Ward on squared Euclidean gives
        // 2*(n_u n_v/(n_u+n_v)) * ||c_u - c_v||^2 with the convention that
        // point "distances" are squared Euclidean. For u={0,2}, v={10}:
        // 2*(2*1/3)*81 = 108. And LW: (2*100 + 2*64 - 4)/3 = 360/3 = 120?
        // No: (n_i+n_k)d_ik = 2*100=200, (n_j+n_k)d_jk = 2*64=128,
        // -n_k d_ij = -4; total 324/3 = 108. Confirms the identity.
        assert!((lw - 108.0).abs() < 1e-12);
    }

    #[test]
    fn ward_height_is_sqrt() {
        assert_eq!(Linkage::Ward.to_height(9.0), 3.0);
        assert_eq!(Linkage::Average.to_height(9.0), 9.0);
        // Numerical noise below zero is clamped.
        assert_eq!(Linkage::Ward.to_height(-1e-18), 0.0);
    }

    #[test]
    fn base_metrics() {
        assert_eq!(Linkage::Ward.base_metric(), Metric::SqEuclidean);
        assert_eq!(Linkage::Single.base_metric(), Metric::Euclidean);
    }
}
