//! Agglomerative hierarchical clustering via the nearest-neighbour chain.
//!
//! This is the paper's clustering algorithm (Section 4.2.1): bottom-up
//! agglomeration under Ward's criterion. We use the **nearest-neighbour
//! chain** algorithm, which runs in O(N²) time and, for *reducible*
//! linkages (Ward, single, complete, average all are), produces exactly the
//! same merge hierarchy as the naive O(N³) greedy algorithm. This is the
//! same algorithmic core modern SciPy/scikit-learn use for `ward` linkage.
//!
//! The output is a [`MergeHistory`] in the familiar linkage-matrix shape:
//! step `s` merges clusters `a` and `b` (labels `< N` are original points,
//! labels `≥ N` refer to the cluster created at step `label − N`) at a
//! given height, producing a cluster of recorded size.

use crate::condensed::Condensed;
use crate::linkage::Linkage;
use icn_stats::{par, Matrix};

/// One merge step of the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    /// First merged cluster label (point id if `< N`, else `N + step`).
    pub a: usize,
    /// Second merged cluster label.
    pub b: usize,
    /// Dendrogram height of this merge (Ward heights are square-rooted
    /// variance increases; see [`Linkage::to_height`]).
    pub height: f64,
    /// Size of the newly formed cluster.
    pub size: usize,
}

/// The full merge history of an agglomerative run (N − 1 merges).
#[derive(Clone, Debug)]
pub struct MergeHistory {
    /// Number of original observations.
    pub n: usize,
    /// Linkage used.
    pub linkage: Linkage,
    /// Merges in execution order (non-decreasing heights for reducible
    /// linkages up to floating-point noise).
    pub merges: Vec<Merge>,
}

impl MergeHistory {
    /// Cluster labels obtained by cutting the hierarchy into `k` clusters.
    ///
    /// Labels are renumbered `0..k` by **decreasing cluster size** (ties by
    /// first-member order), which gives stable, human-friendly ids.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(
            k >= 1 && k <= self.n,
            "cut: k={k} out of range for n={}",
            self.n
        );
        // Apply the first n-k merges with a union-find.
        let mut uf = UnionFind::new(self.n + self.merges.len());
        for (step, m) in self.merges.iter().take(self.n - k).enumerate() {
            let new_label = self.n + step;
            uf.union(m.a, new_label);
            uf.union(m.b, new_label);
        }
        canonical_labels(self.n, |i| uf.find(i))
    }

    /// The height threshold that separates exactly `k` clusters: cutting
    /// anywhere in `[merge[n-k-1].height, merge[n-k].height)` yields `k`
    /// clusters. Returns the midpoint band `(lo, hi)`; `hi` is infinite for
    /// `k = 1`.
    pub fn cut_band(&self, k: usize) -> (f64, f64) {
        assert!(k >= 1 && k <= self.n, "cut_band: bad k");
        let lo = if self.n - k == 0 {
            0.0
        } else {
            self.merges[self.n - k - 1].height
        };
        let hi = if k == 1 {
            f64::INFINITY
        } else {
            self.merges[self.n - k].height
        };
        (lo, hi)
    }

    /// Heights in merge order.
    pub fn heights(&self) -> Vec<f64> {
        self.merges.iter().map(|m| m.height).collect()
    }
}

/// Runs agglomerative clustering on the rows of `data` under `linkage`.
///
/// ```
/// use icn_cluster::{agglomerate, Linkage};
/// use icn_stats::Matrix;
/// // Two obvious groups on a line:
/// let m = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![9.0], vec![9.1]]);
/// let labels = agglomerate(&m, Linkage::Ward).cut(2);
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[2], labels[3]);
/// assert_ne!(labels[0], labels[2]);
/// ```
///
/// # Panics
/// If `data` has fewer than 2 rows or contains non-finite values.
pub fn agglomerate(data: &Matrix, linkage: Linkage) -> MergeHistory {
    assert!(
        data.rows() >= 2,
        "agglomerate: need at least 2 observations"
    );
    assert!(
        !data.has_non_finite(),
        "agglomerate: non-finite values in input (filter dead antennas first)"
    );
    let cond = Condensed::from_rows(data, linkage.base_metric());
    agglomerate_condensed(&cond, linkage)
}

/// Minimum active-cluster count before a nearest-neighbour scan is worth
/// fanning out over `icn_stats::par` (thread spawns are not free, and the
/// chunked reduction is only a win on big scans). The `ICN_SCAN_PAR_MIN`
/// environment variable overrides the default — a test/bench knob in the
/// `ICN_THREADS` mould, read once per agglomeration; results never depend
/// on it.
fn par_scan_min() -> usize {
    std::env::var("ICN_SCAN_PAR_MIN")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 2)
        .unwrap_or(4096)
}

/// Lowest-index argmin of `row[y]` over `list` (skipping `skip`), i.e. the
/// same winner the sequential `for y in 0..n` scan with a strict `<` picks.
/// Chunks are combined in list order with a strict `<`, so the result is
/// bit-identical at any thread count.
fn nearest_active(row: &[f64], list: &[usize], skip: usize, scan_min: usize) -> (usize, f64) {
    let fold = |ys: &[usize]| -> (usize, f64) {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for &y in ys {
            if y == skip {
                continue;
            }
            let dy = row[y];
            if dy < best_d {
                best_d = dy;
                best = y;
            }
        }
        (best, best_d)
    };
    if list.len() >= scan_min && par::thread_count() > 1 {
        let chunk = list.len().div_ceil(par::thread_count());
        let parts = par::map_chunks(list.len(), chunk, |r| fold(&list[r.start..r.end]));
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        // Chunks arrive in list order; strict `<` keeps the earliest
        // (lowest-index) winner, matching the sequential scan.
        for (y, dy) in parts {
            if dy < best_d {
                best_d = dy;
                best = y;
            }
        }
        (best, best_d)
    } else {
        fold(list)
    }
}

/// Ward Lance–Williams update of row `i` against retiring row `j`, widened
/// to four independent lanes (the `sq_euclidean4` style): each active `k`
/// is an element-wise-independent update whose arithmetic is exactly
/// [`Linkage::Ward`]`::update`, so unrolling only overlaps the per-lane
/// divide chains — every stored value is bit-identical to the scalar loop.
/// Lanes that land on the merging slots compute a discarded value and skip
/// the store, preserving the scalar loop's `continue`.
#[allow(clippy::too_many_arguments)] // mirrors the merge-step state 1:1
fn ward_update_row(
    d: &mut [f64],
    n: usize,
    i: usize,
    j: usize,
    d_ij: f64,
    n_i: f64,
    n_j: f64,
    active_list: &[usize],
    size: &[usize],
) {
    let ward = |d_ik: f64, d_jk: f64, n_k: f64| {
        let t = n_i + n_j + n_k;
        ((n_i + n_k) * d_ik + (n_j + n_k) * d_jk - n_k * d_ij) / t
    };
    let mut lanes = active_list.chunks_exact(4);
    for q in lanes.by_ref() {
        let (k0, k1, k2, k3) = (q[0], q[1], q[2], q[3]);
        let v0 = ward(d[i * n + k0], d[j * n + k0], size[k0] as f64);
        let v1 = ward(d[i * n + k1], d[j * n + k1], size[k1] as f64);
        let v2 = ward(d[i * n + k2], d[j * n + k2], size[k2] as f64);
        let v3 = ward(d[i * n + k3], d[j * n + k3], size[k3] as f64);
        if k0 != i && k0 != j {
            d[i * n + k0] = v0;
        }
        if k1 != i && k1 != j {
            d[i * n + k1] = v1;
        }
        if k2 != i && k2 != j {
            d[i * n + k2] = v2;
        }
        if k3 != i && k3 != j {
            d[i * n + k3] = v3;
        }
    }
    for &k in lanes.remainder() {
        if k != i && k != j {
            d[i * n + k] = ward(d[i * n + k], d[j * n + k], size[k] as f64);
        }
    }
}

/// Runs agglomerative clustering on a precomputed condensed distance matrix
/// (must be in the linkage's base metric — squared Euclidean for Ward).
///
/// # Algorithm notes
///
/// The nearest-neighbour chain runs over a full square working matrix with
/// three perf refinements over the textbook version, all value-preserving
/// (the merges and heights are bit-identical to the naive maintenance
/// scheme, at any `ICN_THREADS`):
///
/// * **Active list.** Retired slots are removed from a sorted index list,
///   so scans and Lance–Williams updates touch `O(remaining)` slots rather
///   than all `n` with a liveness branch per slot.
/// * **Lazy row patching.** A merge rebuilds only the *row* of the
///   surviving slot (one sequential write stream) instead of also writing
///   the mirror column — at N≈5k those column writes are ~11M TLB-missing
///   stores and dominate the run. Each row remembers the last merge it has
///   seen (`rowstamp`); a scan first patches its row from the rows of
///   clusters rebuilt since (which are recent, hence cache-resident), then
///   reads one contiguous stream.
/// * **Parallel scans.** Large scans fan out over `icn_stats::par` with a
///   lowest-index-wins chunk reduction (`nearest_active`).
pub fn agglomerate_condensed(cond: &Condensed, linkage: Linkage) -> MergeHistory {
    let _span = icn_obs::Span::enter("agglomerate");
    let n = cond.len();
    assert!(n >= 2, "agglomerate: need at least 2 observations");

    // Working distance matrix, full square for O(1) row access. At N=4762
    // this is ~181 MB transiently. Rows are built in parallel chunks: the
    // upper triangle is a straight copy of the condensed rows, and the
    // lower triangle is mirrored through 8-column tiles — within a tile,
    // each destination row takes one cache line of stores instead of one
    // 8n-byte-strided (miss-per-element) store per column, while the
    // tile's 8 condensed source rows read as sequential streams. A pure
    // copy either way, so bit-exact by construction.
    let cvals = cond.as_slice();
    let bs = |i: usize| crate::condensed::block_start(n, i);
    let matrix_span = icn_obs::Span::enter("matrix");
    let row_chunk = (n / (par::thread_count() * 4)).clamp(1, 256);
    let mut d = vec![0.0f64; n * n];
    // Workers write disjoint row windows of the square directly (no
    // per-chunk allocation, no stitch pass over the 8N² buffer).
    const TILE: usize = 8;
    par::fill_chunks(&mut d, row_chunk * n, |range, out| {
        let (lo, hi) = (range.start / n, range.end / n);
        for i in lo..hi {
            let upper = &cvals[bs(i)..bs(i) + (n - 1 - i)];
            out[(i - lo) * n + i + 1..(i - lo) * n + n].copy_from_slice(upper);
        }
        let mut jt = 0usize;
        while jt < hi.saturating_sub(1) {
            let jhi = (jt + TILE).min(hi - 1);
            // cvals index of mirror (i, j) is bs(j) + i - j - 1; hoist the
            // j-only part (wrapping: j = 0 underflows transiently, and
            // adding i ≥ j + 1 lands back in range).
            let mut base = [0usize; TILE];
            for (t, j) in (jt..jhi).enumerate() {
                base[t] = bs(j).wrapping_sub(j + 1);
            }
            for i in lo.max(jt + 1)..hi {
                let row = (i - lo) * n;
                for (t, j) in (jt..jhi.min(i)).enumerate() {
                    out[row + j] = cvals[base[t].wrapping_add(i)];
                }
            }
            jt = jhi;
        }
    });
    drop(matrix_span);

    let mut active = vec![true; n]; // cluster slot still alive
    let mut active_list: Vec<usize> = (0..n).collect(); // sorted live slots
    let mut size = vec![1usize; n]; // cluster sizes
    let mut label = (0..n).collect::<Vec<usize>>(); // slot -> output label
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    // Lazy-mirror bookkeeping: merge_log[t] is the slot rebuilt by merge t;
    // rowstamp[x] is the log length row x has been patched up to.
    let mut merge_log: Vec<usize> = Vec::with_capacity(n - 1);
    let mut rowstamp = vec![0usize; n];

    // Raw merge list; heights sorted at the end (NN-chain finds reciprocal
    // pairs out of height order).
    let mut raw: Vec<(usize, usize, f64, usize)> = Vec::with_capacity(n - 1);

    // Per-merge latency tallied locally and flushed once at the end
    // (flush-once pattern: the enabled check happens a single time here,
    // and the hot loop never touches the registry mutex).
    let obs = icn_obs::global();
    let metered = obs.is_enabled();
    let mut merge_hist = icn_obs::Histogram::new();
    let scan_min = par_scan_min();

    while active_list.len() > 1 {
        if chain.is_empty() {
            // Start a new chain from the lowest active cluster.
            chain.push(active_list[0]);
        }
        loop {
            let x = *chain.last().unwrap();
            // Bring row x up to date: copy the distances of every cluster
            // rebuilt since this row was last patched from their rows.
            for t in rowstamp[x]..merge_log.len() {
                let m = merge_log[t];
                if m != x && active[m] {
                    d[x * n + m] = d[m * n + x];
                }
            }
            rowstamp[x] = merge_log.len();
            // Nearest active neighbour of x, preferring the previous chain
            // element on ties (guarantees termination).
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            let row = &d[x * n..(x + 1) * n];
            let (mut best, best_d) = nearest_active(row, &active_list, x, scan_min);
            if let Some(p) = prev {
                // The sequential tie-break prefers `prev` over any other
                // slot at the same distance.
                if row[p] == best_d {
                    best = p;
                }
            }
            debug_assert!(best != usize::MAX);
            if Some(best) == prev {
                // Reciprocal nearest neighbours: merge x and best.
                let merge_t0 = metered.then(std::time::Instant::now);
                chain.pop();
                chain.pop();
                let (i, j) = (x.min(best), x.max(best));
                // `best` may predate merges that happened while it sat in
                // the chain; patch its row before reading it.
                for t in rowstamp[best]..merge_log.len() {
                    let m = merge_log[t];
                    if m != best && active[m] {
                        d[best * n + m] = d[m * n + best];
                    }
                }
                rowstamp[best] = merge_log.len();
                let d_ij = d[i * n + j];
                // Lance-Williams update into slot i's row; retire slot j.
                // No mirror-column writes: readers patch lazily. Ward (the
                // hot path) takes the 4-lane widened row update.
                let (n_i, n_j) = (size[i] as f64, size[j] as f64);
                match linkage {
                    Linkage::Ward => {
                        ward_update_row(&mut d, n, i, j, d_ij, n_i, n_j, &active_list, &size)
                    }
                    _ => {
                        for &k in &active_list {
                            if k == i || k == j {
                                continue;
                            }
                            d[i * n + k] = linkage.update(
                                d[i * n + k],
                                d[j * n + k],
                                d_ij,
                                n_i,
                                n_j,
                                size[k] as f64,
                            );
                        }
                    }
                }
                active[j] = false;
                let pos = active_list.binary_search(&j).expect("j active");
                active_list.remove(pos);
                merge_log.push(i);
                rowstamp[i] = merge_log.len();
                raw.push((label[i], label[j], d_ij, size[i] + size[j]));
                size[i] += size[j];
                // The new cluster's output label is assigned after sorting;
                // remember its creation index via a placeholder in `label`.
                label[i] = n + raw.len() - 1;
                if let Some(t0) = merge_t0 {
                    merge_hist.record(t0.elapsed().as_nanos() as u64);
                }
                break;
            } else {
                chain.push(best);
            }
        }
    }

    // NN-chain emits merges out of height order; sort by height (stable) and
    // relabel so that "cluster N+s" refers to the merge at sorted step s —
    // the standard linkage-matrix convention.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&a, &b| {
        raw[a]
            .2
            .partial_cmp(&raw[b].2)
            .expect("finite heights")
            .then(a.cmp(&b))
    });
    let mut new_index = vec![0usize; raw.len()];
    for (new_pos, &old_pos) in order.iter().enumerate() {
        new_index[old_pos] = new_pos;
    }
    let relabel = |l: usize| -> usize {
        if l < n {
            l
        } else {
            n + new_index[l - n]
        }
    };
    for &old_pos in &order {
        let (a, b, dist, sz) = raw[old_pos];
        merges.push(Merge {
            a: relabel(a),
            b: relabel(b),
            height: linkage.to_height(dist),
            size: sz,
        });
    }

    obs.add_counter("cluster.merges", merges.len() as u64);
    obs.merge_hist("cluster.merge_ns", &merge_hist);
    MergeHistory { n, linkage, merges }
}

/// Renumbers arbitrary representative ids into dense labels `0..k`, ordered
/// by decreasing cluster size (ties broken by first occurrence).
fn canonical_labels(n: usize, mut rep: impl FnMut(usize) -> usize) -> Vec<usize> {
    use std::collections::HashMap;
    let reps: Vec<usize> = (0..n).map(&mut rep).collect();
    let mut counts: HashMap<usize, usize> = HashMap::new();
    let mut first: HashMap<usize, usize> = HashMap::new();
    for (i, &r) in reps.iter().enumerate() {
        *counts.entry(r).or_default() += 1;
        first.entry(r).or_insert(i);
    }
    let mut uniq: Vec<usize> = counts.keys().copied().collect();
    uniq.sort_by_key(|r| (usize::MAX - counts[r], first[r]));
    let map: HashMap<usize, usize> = uniq.into_iter().enumerate().map(|(i, r)| (r, i)).collect();
    reps.into_iter().map(|r| map[&r]).collect()
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Rng;

    /// Two well-separated 2-D blobs.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from(11);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..20 {
            rows.push(vec![rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)]);
            truth.push(0);
        }
        for _ in 0..15 {
            rows.push(vec![rng.normal(10.0, 0.3), rng.normal(10.0, 0.3)]);
            truth.push(1);
        }
        (Matrix::from_rows(&rows), truth)
    }

    #[test]
    fn two_blobs_recovered_by_all_linkages() {
        let (m, truth) = blobs();
        for linkage in Linkage::ALL {
            let h = agglomerate(&m, linkage);
            let labels = h.cut(2);
            // Perfect recovery up to label permutation; label 0 is the
            // bigger blob by our canonical ordering.
            assert_eq!(labels, truth, "{}", linkage.name());
        }
    }

    #[test]
    fn merge_count_and_sizes() {
        let (m, _) = blobs();
        let h = agglomerate(&m, Linkage::Ward);
        assert_eq!(h.merges.len(), m.rows() - 1);
        assert_eq!(h.merges.last().unwrap().size, m.rows());
    }

    #[test]
    fn heights_monotone_for_reducible_linkages() {
        let (m, _) = blobs();
        for linkage in Linkage::ALL {
            let h = agglomerate(&m, linkage);
            let hs = h.heights();
            for w in hs.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{}: heights {w:?} not monotone",
                    linkage.name()
                );
            }
        }
    }

    #[test]
    fn cut_partitions_are_nested() {
        let (m, _) = blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let l5 = h.cut(5);
        let l2 = h.cut(2);
        // Every k=5 cluster must live inside exactly one k=2 cluster.
        use std::collections::HashMap;
        let mut map: HashMap<usize, usize> = HashMap::new();
        for i in 0..m.rows() {
            match map.get(&l5[i]) {
                None => {
                    map.insert(l5[i], l2[i]);
                }
                Some(&c) => assert_eq!(c, l2[i], "cluster {} split across cuts", l5[i]),
            }
        }
    }

    #[test]
    fn cut_k_equals_n_is_singletons() {
        let (m, _) = blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let labels = h.cut(m.rows());
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), m.rows());
    }

    #[test]
    fn cut_k1_is_single_cluster() {
        let (m, _) = blobs();
        let h = agglomerate(&m, Linkage::Ward);
        assert!(h.cut(1).iter().all(|&l| l == 0));
    }

    #[test]
    fn cut_band_brackets_merges() {
        let (m, _) = blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let (lo, hi) = h.cut_band(2);
        assert!(lo <= hi);
        let (_, hi1) = h.cut_band(1);
        assert!(hi1.is_infinite());
    }

    #[test]
    fn ward_matches_naive_on_small_input() {
        // Brute-force greedy Ward and compare merge heights.
        let mut rng = Rng::seed_from(5);
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|_| (0..3).map(|_| rng.gaussian()).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let fast = agglomerate(&m, Linkage::Ward);

        // Naive O(n^3) greedy with the same LW recurrence.
        let n = m.rows();
        let mut d = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                d[i][j] = icn_stats::distance::sq_euclidean(m.row(i), m.row(j));
            }
        }
        let mut alive: Vec<usize> = (0..n).collect();
        let mut size = vec![1f64; n];
        let mut naive_heights = Vec::new();
        while alive.len() > 1 {
            let (mut bi, mut bj, mut bd) = (0, 0, f64::INFINITY);
            for (ai, &i) in alive.iter().enumerate() {
                for &j in &alive[ai + 1..] {
                    if d[i][j] < bd {
                        bd = d[i][j];
                        bi = i;
                        bj = j;
                    }
                }
            }
            naive_heights.push(bd.sqrt());
            for &k in &alive {
                if k == bi || k == bj {
                    continue;
                }
                let v = Linkage::Ward
                    .update(d[bi][k], d[bj][k], d[bi][bj], size[bi], size[bj], size[k]);
                d[bi][k] = v;
                d[k][bi] = v;
            }
            size[bi] += size[bj];
            alive.retain(|&x| x != bj);
        }
        let fast_heights = fast.heights();
        assert_eq!(fast_heights.len(), naive_heights.len());
        for (f, g) in fast_heights.iter().zip(&naive_heights) {
            assert!((f - g).abs() < 1e-9, "heights differ: {f} vs {g}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_input_panics() {
        let mut m = Matrix::zeros(3, 2);
        m.set(1, 1, f64::NAN);
        agglomerate(&m, Linkage::Ward);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_point_panics() {
        agglomerate(&Matrix::zeros(1, 2), Linkage::Ward);
    }

    #[test]
    fn duplicate_points_merge_at_zero_height() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![5.0, 5.0]]);
        let h = agglomerate(&m, Linkage::Ward);
        assert!(h.merges[0].height.abs() < 1e-12);
    }
}
