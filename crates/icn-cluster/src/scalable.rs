//! Scalable (sampled) Ward path for large antenna populations.
//!
//! The exact stage-2 pipeline materialises the condensed distance matrix
//! (4N² bytes) plus the NN-chain working square (8N² bytes): ~12N² bytes
//! total, which walls out around N ≈ 10⁴–10⁵ on commodity memory. This
//! module provides the classic sample-cluster-extend escape hatch:
//!
//! 1. draw a seeded sample of `s` rows and run the **exact** Ward
//!    agglomeration on it (so every guarantee of the exact path — NN-chain
//!    equivalence, thread invariance — holds on the sample);
//! 2. cut the sample hierarchy at `k` and pin those labels;
//! 3. assign every remaining row to the nearest cluster centroid
//!    (4-lane squared-Euclidean kernel, parallel over rows);
//! 4. optionally refine: recompute centroids over the *full* assignment
//!    and reassign the non-sample rows, for `refine_iters` rounds. Sample
//!    rows never move, so `s == n` degenerates to exactly the exact path's
//!    labels.
//!
//! Memory is governed by the sample: [`exact_memory_bytes`]`(s)` bounds the
//! transient footprint and [`max_sample_for_budget`] inverts it, so callers
//! state a budget in bytes and get the largest admissible sample.
//! [`ClusterPath::resolve`] picks exact vs sampled from that same budget,
//! which keeps the paper-scale study (N ≈ 4.8k, well under the default
//! budget) on the exact path — golden snapshots of the exact stage-2 hash
//! are unaffected by `ClusterPath::Auto`.

use crate::agglomerative::{agglomerate_condensed, MergeHistory};
use crate::condensed::Condensed;
use crate::linkage::Linkage;
use icn_stats::distance::sq_euclidean4;
use icn_stats::{par, Matrix, Rng};

/// Which stage-2 clustering implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterPath {
    /// Full condensed matrix + NN-chain Ward. O(N²) memory, exact.
    Exact,
    /// Sampled Ward: exact on a seeded sample, nearest-centroid extension.
    Sampled,
    /// Pick [`Exact`] when it fits the memory budget, else [`Sampled`].
    ///
    /// [`Exact`]: ClusterPath::Exact
    /// [`Sampled`]: ClusterPath::Sampled
    Auto,
}

impl ClusterPath {
    /// Resolves `Auto` against a population size and memory budget.
    pub fn resolve(self, n: usize, budget_bytes: usize) -> ClusterPath {
        match self {
            ClusterPath::Auto => {
                if exact_memory_bytes(n) <= budget_bytes {
                    ClusterPath::Exact
                } else {
                    ClusterPath::Sampled
                }
            }
            fixed => fixed,
        }
    }

    /// Parses the CLI spelling (`exact` / `sampled` / `auto`).
    pub fn parse(s: &str) -> Option<ClusterPath> {
        match s {
            "exact" => Some(ClusterPath::Exact),
            "sampled" => Some(ClusterPath::Sampled),
            "auto" => Some(ClusterPath::Auto),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ClusterPath::Exact => "exact",
            ClusterPath::Sampled => "sampled",
            ClusterPath::Auto => "auto",
        }
    }
}

/// Dominant transient allocations of the exact path at population `n`:
/// the condensed upper triangle (≈4n² bytes), its square working copy in
/// the NN-chain (8n²), and the sqrt view taken for the k-sweep (≈4n²)
/// which only lives after the square is dropped — so the peak is ~12n².
pub fn exact_memory_bytes(n: usize) -> usize {
    12 * n * n
}

/// Largest sample size whose exact-path footprint fits `budget_bytes`
/// (the inverse of [`exact_memory_bytes`]).
pub fn max_sample_for_budget(budget_bytes: usize) -> usize {
    ((budget_bytes / 12) as f64).sqrt() as usize
}

/// Configuration for [`sampled_ward`].
#[derive(Clone, Copy, Debug)]
pub struct SampledWardConfig {
    /// Sample size `s` (clamped to `[k, n]`; `s == n` reproduces the exact
    /// path's labels).
    pub sample: usize,
    /// Seed for the sample draw (independent of the data).
    pub seed: u64,
    /// Centroid-refinement rounds after the initial extension.
    pub refine_iters: usize,
}

/// Result of [`sampled_ward`].
#[derive(Clone, Debug)]
pub struct SampledWardResult {
    /// Per-row cluster assignment, dense `0..k`, full population.
    pub labels: Vec<usize>,
    /// Sorted row indices of the sample (their labels come from the exact
    /// Ward cut and are pinned through refinement).
    pub sample: Vec<usize>,
    /// Final cluster centroids (k × features).
    pub centroids: Matrix,
    /// Bytes of the condensed matrix actually materialised (sample-sized —
    /// the budget regression test gates on this staying under budget).
    pub condensed_bytes: usize,
    /// Refinement rounds executed before convergence or the cap.
    pub refine_rounds: usize,
    /// Exact Ward merge history **of the sample** (n = sample size) —
    /// hierarchy consumers (dendrogram, k-sweep) operate on the sample.
    pub history: MergeHistory,
    /// Condensed distance matrix **of the sample**, in Ward's squared-
    /// Euclidean geometry, kept for the k-sweep.
    pub sample_condensed: Condensed,
}

/// Rows below this count are assigned sequentially; thread spawns cost
/// more than the scan.
const PAR_ASSIGN_MIN: usize = 4096;

/// Nearest-centroid assignment for the rows listed in `which`
/// (lowest-index argmin, strict `<`, identical to the sequential fold).
fn assign_rows(data: &Matrix, centroids: &Matrix, which: &[usize], out: &mut [usize]) -> bool {
    let k = centroids.rows();
    let metered = icn_obs::global().is_enabled();
    let nearest = |row: &[f64]| -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let d = sq_euclidean4(row, centroids.row(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    };
    let labels: Vec<usize> = if which.len() >= PAR_ASSIGN_MIN && par::thread_count() > 1 {
        let chunk = (which.len() / (par::thread_count() * 4)).clamp(1, 4096);
        par::map_chunks(which.len(), chunk, |r| {
            let t0 = std::time::Instant::now();
            let part: Vec<usize> = which[r].iter().map(|&i| nearest(data.row(i))).collect();
            if metered {
                icn_obs::global().record_hist("cluster.assign_ns", t0.elapsed().as_nanos() as u64);
            }
            part
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        let t0 = std::time::Instant::now();
        let part: Vec<usize> = which.iter().map(|&i| nearest(data.row(i))).collect();
        if metered {
            icn_obs::global().record_hist("cluster.assign_ns", t0.elapsed().as_nanos() as u64);
        }
        part
    };
    let mut changed = false;
    for (&i, &l) in which.iter().zip(&labels) {
        if out[i] != l {
            out[i] = l;
            changed = true;
        }
    }
    changed
}

/// Mean of each cluster over the current full assignment. Empty clusters
/// keep their previous centroid (sample labels are dense `0..k`, so after
/// the initial extension every cluster holds at least one sample row).
fn recompute_centroids(data: &Matrix, labels: &[usize], centroids: &mut Matrix) {
    let (k, d) = (centroids.rows(), centroids.cols());
    let mut sums = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for (s, &v) in sums.row_mut(l).iter_mut().zip(data.row(i)) {
            *s += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for (dst, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                *dst = s * inv;
            }
        }
    }
}

/// Sampled Ward clustering: exact Ward on a seeded sample, nearest-centroid
/// extension to the rest, pinned-sample centroid refinement. See the module
/// docs for the contract.
///
/// # Panics
/// If `k == 0` or `k > data.rows()`.
pub fn sampled_ward(data: &Matrix, k: usize, config: &SampledWardConfig) -> SampledWardResult {
    let n = data.rows();
    assert!(
        k >= 1 && k <= n,
        "sampled_ward: k={k} out of range for n={n}"
    );
    let s = config.sample.clamp(k, n);

    let mut span = icn_obs::Span::enter("sampled_ward");
    span.attr("rows", n as u64);
    span.attr("sample", s as u64);

    // Seeded sample, sorted so sample geometry is row-order stable.
    let mut sample = Rng::seed_from(config.seed ^ 0x5A3D_1E57).sample_indices(n, s);
    sample.sort_unstable();
    let in_sample = {
        let mut mask = vec![false; n];
        for &i in &sample {
            mask[i] = true;
        }
        mask
    };

    // Exact Ward on the sample.
    let mut sample_m = Matrix::zeros(s, data.cols());
    for (si, &i) in sample.iter().enumerate() {
        sample_m.row_mut(si).copy_from_slice(data.row(i));
    }
    let cond = Condensed::from_rows(&sample_m, Linkage::Ward.base_metric());
    let condensed_bytes = std::mem::size_of_val(cond.as_slice());
    let history = agglomerate_condensed(&cond, Linkage::Ward);
    let sample_labels = history.cut(k);

    // Seed centroids from the sample clusters, pin the sample labels.
    let mut labels = vec![0usize; n];
    for (si, &i) in sample.iter().enumerate() {
        labels[i] = sample_labels[si];
    }
    let mut centroids = Matrix::zeros(k, data.cols());
    {
        let mut counts = vec![0usize; k];
        for (si, &i) in sample.iter().enumerate() {
            let l = sample_labels[si];
            counts[l] += 1;
            for (dst, &v) in centroids.row_mut(l).iter_mut().zip(data.row(i)) {
                *dst += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for dst in centroids.row_mut(c).iter_mut() {
                    *dst *= inv;
                }
            }
        }
    }

    // Extend to the non-sample rows, then refine with the sample pinned.
    let rest: Vec<usize> = (0..n).filter(|&i| !in_sample[i]).collect();
    let mut refine_rounds = 0;
    if !rest.is_empty() {
        let _assign = icn_obs::Span::enter("assign");
        assign_rows(data, &centroids, &rest, &mut labels);
        for _ in 0..config.refine_iters {
            refine_rounds += 1;
            recompute_centroids(data, &labels, &mut centroids);
            if !assign_rows(data, &centroids, &rest, &mut labels) {
                break;
            }
        }
    }
    // Final centroids reflect the assignment we return.
    recompute_centroids(data, &labels, &mut centroids);
    icn_obs::global().set_gauge("cluster.sampled_sample_rows", s as f64);

    SampledWardResult {
        labels,
        sample,
        centroids,
        condensed_bytes,
        refine_rounds,
        history,
        sample_condensed: cond,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::adjusted_rand_index;

    fn blobs(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let centers = [(0.0, 0.0), (8.0, 0.0), (4.0, 7.0)];
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let (x, y) = centers[i % 3];
                vec![rng.normal(x, 0.5), rng.normal(y, 0.5)]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn full_sample_reproduces_exact_ward_labels() {
        let m = blobs(90, 11);
        let exact = agglomerate_condensed(
            &Condensed::from_rows(&m, Linkage::Ward.base_metric()),
            Linkage::Ward,
        )
        .cut(3);
        let sw = sampled_ward(
            &m,
            3,
            &SampledWardConfig {
                sample: m.rows(),
                seed: 7,
                refine_iters: 3,
            },
        );
        assert_eq!(sw.labels, exact, "s == n must degenerate to exact Ward");
        assert_eq!(sw.sample.len(), m.rows());
    }

    #[test]
    fn half_sample_recovers_blobs() {
        let m = blobs(120, 23);
        let exact = agglomerate_condensed(
            &Condensed::from_rows(&m, Linkage::Ward.base_metric()),
            Linkage::Ward,
        )
        .cut(3);
        let sw = sampled_ward(
            &m,
            3,
            &SampledWardConfig {
                sample: 60,
                seed: 7,
                refine_iters: 2,
            },
        );
        let ari = adjusted_rand_index(&exact, &sw.labels);
        assert!(ari > 0.99, "well-separated blobs must agree, ARI={ari}");
        // Condensed matrix is sample-sized, not population-sized.
        assert_eq!(sw.condensed_bytes, 60 * 59 / 2 * 8);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = blobs(100, 5);
        let cfg = SampledWardConfig {
            sample: 40,
            seed: 99,
            refine_iters: 2,
        };
        let a = sampled_ward(&m, 3, &cfg);
        let b = sampled_ward(&m, 3, &cfg);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.sample, b.sample);
    }

    #[test]
    fn sample_labels_stay_pinned_through_refinement() {
        let m = blobs(150, 31);
        let cfg = SampledWardConfig {
            sample: 50,
            seed: 13,
            refine_iters: 4,
        };
        let sw = sampled_ward(&m, 3, &cfg);
        // Re-derive the sample's exact Ward cut and check it survived.
        let mut sm = Matrix::zeros(sw.sample.len(), m.cols());
        for (si, &i) in sw.sample.iter().enumerate() {
            sm.row_mut(si).copy_from_slice(m.row(i));
        }
        let cut = agglomerate_condensed(
            &Condensed::from_rows(&sm, Linkage::Ward.base_metric()),
            Linkage::Ward,
        )
        .cut(3);
        for (si, &i) in sw.sample.iter().enumerate() {
            assert_eq!(sw.labels[i], cut[si], "sample row {i} moved");
        }
    }

    #[test]
    fn budget_math_round_trips() {
        for budget in [1 << 20, 64 << 20, 512 << 20] {
            let s = max_sample_for_budget(budget);
            assert!(exact_memory_bytes(s) <= budget);
            assert!(exact_memory_bytes(s + 2) > budget);
        }
        assert_eq!(ClusterPath::Auto.resolve(100, 1 << 30), ClusterPath::Exact);
        assert_eq!(
            ClusterPath::Auto.resolve(100_000, 1 << 30),
            ClusterPath::Sampled
        );
        assert_eq!(
            ClusterPath::Sampled.resolve(10, usize::MAX),
            ClusterPath::Sampled
        );
    }

    #[test]
    fn path_parse_round_trips() {
        for p in [ClusterPath::Exact, ClusterPath::Sampled, ClusterPath::Auto] {
            assert_eq!(ClusterPath::parse(p.as_str()), Some(p));
        }
        assert_eq!(ClusterPath::parse("bogus"), None);
    }
}
