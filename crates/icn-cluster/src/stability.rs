//! Bootstrap cluster-stability analysis.
//!
//! The paper claims the nine utilisation profiles are *inherent* to ICN
//! traffic, not artefacts of one sample. The standard way to check such a
//! claim is bootstrap stability (Hennig 2007 style): re-cluster resampled
//! subsets of the antennas and measure how consistently pairs of antennas
//! end up together. A planted structure survives resampling; a spurious
//! partition does not. The ablation suite uses this to corroborate the
//! k = 9 choice.

use crate::agglomerative::agglomerate;
use crate::linkage::Linkage;
use crate::validation::adjusted_rand_index;
use icn_stats::{Matrix, Rng};

/// Result of a bootstrap stability run.
#[derive(Clone, Debug)]
pub struct StabilityResult {
    /// ARI between the full-data labelling (restricted to each subsample)
    /// and the subsample's own clustering, per replicate.
    pub replicate_ari: Vec<f64>,
}

impl StabilityResult {
    /// Mean replicate ARI — the headline stability score in `[−1, 1]`
    /// (≥ 0.8 is conventionally "stable").
    pub fn mean_ari(&self) -> f64 {
        self.replicate_ari.iter().sum::<f64>() / self.replicate_ari.len() as f64
    }

    /// Minimum replicate ARI (worst case over resamples).
    pub fn min_ari(&self) -> f64 {
        self.replicate_ari
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Runs `replicates` subsampling rounds: each draws `fraction` of the rows
/// without replacement, clusters them at `k` under `linkage`, and compares
/// against the reference labelling restricted to the drawn rows.
///
/// # Panics
/// If `fraction` is not in `(0, 1]`, `replicates == 0`, or the subsample
/// would be smaller than `k`.
pub fn bootstrap_stability(
    data: &Matrix,
    reference_labels: &[usize],
    k: usize,
    linkage: Linkage,
    fraction: f64,
    replicates: usize,
    seed: u64,
) -> StabilityResult {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "bootstrap_stability: fraction out of (0, 1]"
    );
    assert!(replicates > 0, "bootstrap_stability: zero replicates");
    assert_eq!(
        data.rows(),
        reference_labels.len(),
        "bootstrap_stability: label mismatch"
    );
    let n = data.rows();
    let m = ((n as f64) * fraction).round() as usize;
    assert!(m >= k, "bootstrap_stability: subsample smaller than k");

    let mut rng = Rng::seed_from(seed);
    let replicate_ari = (0..replicates)
        .map(|_| {
            let rows = rng.sample_indices(n, m);
            let sub = data.select_rows(&rows);
            let sub_labels = agglomerate(&sub, linkage).cut(k);
            let ref_sub: Vec<usize> = rows.iter().map(|&r| reference_labels[r]).collect();
            adjusted_rand_index(&sub_labels, &ref_sub)
        })
        .collect();
    StabilityResult { replicate_ari }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Well-separated blobs → stable; uniform noise → unstable.
    fn blobs(n_per: usize, sep: f64, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..n_per {
                rows.push(vec![rng.normal(c as f64 * sep, 0.5), rng.normal(0.0, 0.5)]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn planted_structure_is_stable() {
        let (m, _) = blobs(25, 10.0, 1);
        let reference = agglomerate(&m, Linkage::Ward).cut(3);
        let r = bootstrap_stability(&m, &reference, 3, Linkage::Ward, 0.7, 10, 42);
        assert_eq!(r.replicate_ari.len(), 10);
        assert!(r.mean_ari() > 0.95, "mean {}", r.mean_ari());
        assert!(r.min_ari() > 0.8, "min {}", r.min_ari());
    }

    #[test]
    fn noise_partition_is_unstable() {
        // Pure uniform noise: any k=3 partition is arbitrary, so the
        // subsample clusterings disagree with the reference.
        let mut rng = Rng::seed_from(9);
        let rows: Vec<Vec<f64>> = (0..90)
            .map(|_| vec![rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)])
            .collect();
        let m = Matrix::from_rows(&rows);
        let reference = agglomerate(&m, Linkage::Ward).cut(3);
        let r = bootstrap_stability(&m, &reference, 3, Linkage::Ward, 0.7, 10, 42);
        assert!(r.mean_ari() < 0.7, "mean {}", r.mean_ari());
    }

    #[test]
    fn stability_separates_real_from_spurious_k() {
        // With 3 true blobs, k=3 is far more stable than k=7.
        let (m, _) = blobs(25, 8.0, 3);
        let ref3 = agglomerate(&m, Linkage::Ward).cut(3);
        let ref7 = agglomerate(&m, Linkage::Ward).cut(7);
        let s3 = bootstrap_stability(&m, &ref3, 3, Linkage::Ward, 0.7, 8, 7).mean_ari();
        let s7 = bootstrap_stability(&m, &ref7, 7, Linkage::Ward, 0.7, 8, 7).mean_ari();
        assert!(s3 > s7 + 0.15, "k=3 {s3} vs k=7 {s7}");
    }

    #[test]
    fn deterministic_in_seed() {
        let (m, _) = blobs(15, 6.0, 5);
        let reference = agglomerate(&m, Linkage::Ward).cut(3);
        let a = bootstrap_stability(&m, &reference, 3, Linkage::Ward, 0.8, 5, 11);
        let b = bootstrap_stability(&m, &reference, 3, Linkage::Ward, 0.8, 5, 11);
        assert_eq!(a.replicate_ari, b.replicate_ari);
    }

    #[test]
    #[should_panic(expected = "fraction out of")]
    fn bad_fraction_panics() {
        let (m, labels) = blobs(10, 5.0, 1);
        bootstrap_stability(&m, &labels, 3, Linkage::Ward, 1.5, 2, 0);
    }
}
