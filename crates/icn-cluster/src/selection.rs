//! Cluster-count selection (the Figure 2 sweep).
//!
//! The paper selects k by sweeping the agglomerative cut over a range of
//! cluster counts, computing the Silhouette score and Dunn index at each k,
//! and looking for "a high value ... followed by an abrupt drop, which
//! suggests a substantial deterioration of the intra- and inter-clustering
//! quality" (Section 4.2.1). Figure 2 shows such drops at k = 6 and k = 9;
//! the paper picks k = 9 as the steepest combined drop. This module
//! implements the sweep and the drop-detection criterion.

use crate::agglomerative::MergeHistory;
use crate::condensed::{block_start, Condensed};
use crate::dunn::dunn_index;
use crate::silhouette::silhouette_score;
use icn_stats::par;

/// Quality indices at one candidate k.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KQuality {
    /// Candidate number of clusters.
    pub k: usize,
    /// Mean silhouette coefficient.
    pub silhouette: f64,
    /// Dunn index.
    pub dunn: f64,
}

/// Widest fine partition the fused sweep will build `O(hi²)` pair tables
/// for; beyond this the per-k direct path is cheaper anyway.
const FUSED_MAX_HI: usize = 256;

/// Sweeps cuts of `history` over `k_range` (inclusive) against the
/// distances in `cond` (which must be over the same observations, in any
/// metric — the paper's geometry is Euclidean).
///
/// # Fused evaluation
///
/// The naive sweep walks the full O(N²) condensed matrix twice (silhouette
/// and Dunn) *per candidate k* — 2·|range| passes; at the paper scale that is
/// the stage-2 wall-clock bottleneck. Cuts of one hierarchy are nested, so
/// this implementation walks the matrix **once**: each point accumulates
/// its distance sums per *finest* cluster (the `k = hi` cut) and per-pair
/// min/max tables over the finest clusters, then every coarser k is scored
/// by regrouping those per-fine-cluster aggregates.
///
/// Dunn regroups by min/max — exactly associative, so the values are
/// bit-identical to [`dunn_index`] per k. Silhouette regroups sums, which
/// reorders additions; values agree with [`silhouette_score`] to within a
/// few ulps (≲1e-12 relative — see `fused_sweep_matches_direct`). Both are
/// bit-identical at any `ICN_THREADS`: per-point results are summed in
/// index order and the pair tables merge through exact min/max.
pub fn sweep_k(
    history: &MergeHistory,
    cond: &Condensed,
    k_range: std::ops::RangeInclusive<usize>,
) -> Vec<KQuality> {
    let (lo, hi) = (*k_range.start(), *k_range.end());
    assert!(lo >= 2, "sweep_k: k must start at ≥ 2");
    assert!(hi <= history.n, "sweep_k: k exceeds number of observations");
    if hi > FUSED_MAX_HI {
        return sweep_k_direct(history, cond, lo, hi);
    }
    let n = history.n;
    assert_eq!(cond.len(), n, "sweep_k: distance matrix size mismatch");

    let ks: Vec<usize> = (lo..=hi).collect();
    let nk = ks.len();
    let nf = hi; // fine partition: the finest swept cut
    let fine = history.cut(hi);
    let mut fine_counts = vec![0usize; nf];
    for &f in &fine {
        fine_counts[f] += 1;
    }
    // Per candidate k: the fine-cluster → k-cluster grouping (cuts are
    // nested, so this is well-defined) and the member counts.
    let mut maps: Vec<Vec<usize>> = Vec::with_capacity(nk);
    let mut counts: Vec<Vec<usize>> = Vec::with_capacity(nk);
    for &k in &ks {
        let lab = history.cut(k);
        let mut map = vec![usize::MAX; nf];
        for i in 0..n {
            if map[fine[i]] == usize::MAX {
                map[fine[i]] = lab[i];
            }
            debug_assert_eq!(map[fine[i]], lab[i], "sweep_k: cuts not nested");
        }
        let mut cnt = vec![0usize; k];
        for f in 0..nf {
            cnt[map[f]] += fine_counts[f];
        }
        maps.push(map);
        counts.push(cnt);
    }

    // One parallel pass over the condensed matrix. Each chunk returns its
    // points' per-k silhouette values (in point order) plus fine-pair
    // min/max distance tables.
    let cvals = cond.as_slice();
    struct ChunkOut {
        sil: Vec<f64>,  // |chunk| × nk, row-major
        pmin: Vec<f64>, // nf × nf upper triangle (incl. diagonal)
        pmax: Vec<f64>,
    }
    let chunks: Vec<ChunkOut> = par::map_chunks(n, 256, |range| {
        let mut sil = Vec::with_capacity(range.len() * nk);
        let mut pmin = vec![f64::INFINITY; nf * nf];
        let mut pmax = vec![0.0f64; nf * nf];
        let mut sums = vec![0.0f64; nf];
        let mut csums = vec![0.0f64; hi];
        for i in range {
            sums.iter_mut().for_each(|s| *s = 0.0);
            let fi = fine[i];
            // j < i: walk column i of the condensed layout (incremental
            // offsets, no per-access multiply).
            let mut off = i.wrapping_sub(1); // block_start(n, 0) + i - 1
            for j in 0..i {
                sums[fine[j]] += cvals[off];
                off += n - 2 - j;
            }
            // j > i: contiguous row slice; also feeds the pair tables
            // (each unordered pair visited exactly once, as in dunn).
            let base = block_start(n, i);
            for (t, &v) in cvals[base..base + (n - 1 - i)].iter().enumerate() {
                let fj = fine[i + 1 + t];
                sums[fj] += v;
                let idx = if fi <= fj { fi * nf + fj } else { fj * nf + fi };
                if v < pmin[idx] {
                    pmin[idx] = v;
                }
                if v > pmax[idx] {
                    pmax[idx] = v;
                }
            }
            for t in 0..nk {
                let (map, cnt) = (&maps[t], &counts[t]);
                let own = map[fi];
                if cnt[own] <= 1 {
                    sil.push(0.0); // singleton convention
                    continue;
                }
                let k = ks[t];
                csums[..k].iter_mut().for_each(|s| *s = 0.0);
                for f in 0..nf {
                    csums[map[f]] += sums[f];
                }
                let a = csums[own] / (cnt[own] - 1) as f64;
                let b = (0..k)
                    .filter(|&c| c != own && cnt[c] > 0)
                    .map(|c| csums[c] / cnt[c] as f64)
                    .fold(f64::INFINITY, f64::min);
                sil.push(if a.max(b) == 0.0 {
                    0.0
                } else {
                    (b - a) / a.max(b)
                });
            }
        }
        ChunkOut { sil, pmin, pmax }
    });

    // Reduce: silhouette totals in point order (matching the sequential
    // `par::sum_indexed` order), pair tables through exact min/max.
    let mut totals = vec![0.0f64; nk];
    let mut pmin = vec![f64::INFINITY; nf * nf];
    let mut pmax = vec![0.0f64; nf * nf];
    for c in &chunks {
        for row in c.sil.chunks_exact(nk) {
            for (t, &v) in row.iter().enumerate() {
                totals[t] += v;
            }
        }
        for (dst, &src) in pmin.iter_mut().zip(&c.pmin) {
            *dst = dst.min(src);
        }
        for (dst, &src) in pmax.iter_mut().zip(&c.pmax) {
            *dst = dst.max(src);
        }
    }

    ks.iter()
        .enumerate()
        .map(|(t, &k)| {
            let map = &maps[t];
            let mut min_inter = f64::INFINITY;
            let mut max_diam = 0.0f64;
            for a in 0..nf {
                for b in a..nf {
                    let idx = a * nf + b;
                    if map[a] == map[b] {
                        if pmax[idx] > max_diam {
                            max_diam = pmax[idx];
                        }
                    } else if pmin[idx] < min_inter {
                        min_inter = pmin[idx];
                    }
                }
            }
            let dunn = if max_diam == 0.0 {
                f64::INFINITY
            } else {
                min_inter / max_diam
            };
            KQuality {
                k,
                silhouette: totals[t] / n as f64,
                dunn,
            }
        })
        .collect()
}

/// The straightforward two-passes-per-k sweep; reference semantics for the
/// fused path and fallback for very wide ranges.
fn sweep_k_direct(history: &MergeHistory, cond: &Condensed, lo: usize, hi: usize) -> Vec<KQuality> {
    (lo..=hi)
        .map(|k| {
            let labels = history.cut(k);
            KQuality {
                k,
                silhouette: silhouette_score(cond, &labels),
                dunn: dunn_index(cond, &labels),
            }
        })
        .collect()
}

/// One detected drop: quality at k is high, and moving to k + 1 loses a
/// substantial fraction of it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Drop {
    /// The k *before* the deterioration — the candidate "optimal" count.
    pub k: usize,
    /// Combined (averaged, normalised) relative drop magnitude in `[0, 1]`.
    pub magnitude: f64,
}

/// Detects the paper's stopping criterion: ks whose silhouette **and** Dunn
/// both fall by at least `min_rel_drop` (relative) at k + 1. Returns drops
/// sorted by decreasing magnitude; the paper picks the steepest.
pub fn detect_drops(sweep: &[KQuality], min_rel_drop: f64) -> Vec<Drop> {
    assert!(
        (0.0..1.0).contains(&min_rel_drop),
        "detect_drops: min_rel_drop out of [0,1)"
    );
    let mut drops = Vec::new();
    for w in sweep.windows(2) {
        let (cur, next) = (w[0], w[1]);
        let rel = |a: f64, b: f64| -> f64 {
            if !(a.is_finite()) || a <= 0.0 {
                0.0
            } else {
                ((a - b) / a).max(0.0)
            }
        };
        let ds = rel(cur.silhouette, next.silhouette);
        let dd = rel(cur.dunn, next.dunn);
        if ds >= min_rel_drop && dd >= min_rel_drop {
            drops.push(Drop {
                k: cur.k,
                magnitude: 0.5 * (ds + dd),
            });
        }
    }
    drops.sort_by(|a, b| b.magnitude.partial_cmp(&a.magnitude).expect("finite"));
    drops
}

/// The paper's selection: the steepest combined drop, or — if no drop
/// clears the threshold — the k with the best silhouette.
pub fn select_k(sweep: &[KQuality], min_rel_drop: f64) -> usize {
    assert!(!sweep.is_empty(), "select_k: empty sweep");
    if let Some(d) = detect_drops(sweep, min_rel_drop).first() {
        return d.k;
    }
    sweep
        .iter()
        .max_by(|a, b| a.silhouette.partial_cmp(&b.silhouette).expect("finite"))
        .expect("non-empty sweep")
        .k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::agglomerate;
    use crate::linkage::Linkage;
    use icn_stats::{Matrix, Metric, Rng};

    /// 4 well-separated blobs: quality should peak at k = 4 then drop.
    fn four_blobs() -> Matrix {
        let mut rng = Rng::seed_from(61);
        let centers = [(0.0, 0.0), (12.0, 0.0), (0.0, 12.0), (12.0, 12.0)];
        let mut rows = Vec::new();
        for &(x, y) in &centers {
            for _ in 0..12 {
                rows.push(vec![rng.normal(x, 0.5), rng.normal(y, 0.5)]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn sweep_covers_requested_range() {
        let m = four_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&h, &cond, 2..=8);
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0].k, 2);
        assert_eq!(sweep.last().unwrap().k, 8);
    }

    #[test]
    fn four_blobs_selects_k4() {
        let m = four_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&h, &cond, 2..=8);
        assert_eq!(select_k(&sweep, 0.1), 4);
        // And the drop is detected at k=4 with the largest magnitude.
        let drops = detect_drops(&sweep, 0.1);
        assert!(!drops.is_empty());
        assert_eq!(drops[0].k, 4);
    }

    #[test]
    fn silhouette_maximal_at_true_k() {
        let m = four_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&h, &cond, 2..=8);
        let best = sweep
            .iter()
            .max_by(|a, b| a.silhouette.partial_cmp(&b.silhouette).unwrap())
            .unwrap();
        assert_eq!(best.k, 4);
    }

    #[test]
    fn no_drop_falls_back_to_best_silhouette() {
        let sweep = vec![
            KQuality {
                k: 2,
                silhouette: 0.3,
                dunn: 0.2,
            },
            KQuality {
                k: 3,
                silhouette: 0.5,
                dunn: 0.3,
            },
            KQuality {
                k: 4,
                silhouette: 0.45,
                dunn: 0.31,
            },
        ];
        // k=3→4 silhouette drops 10% but dunn rises ⇒ no combined drop.
        assert!(detect_drops(&sweep, 0.05).is_empty());
        assert_eq!(select_k(&sweep, 0.05), 3);
    }

    #[test]
    fn drop_needs_both_indices() {
        let sweep = vec![
            KQuality {
                k: 2,
                silhouette: 0.8,
                dunn: 0.5,
            },
            KQuality {
                k: 3,
                silhouette: 0.4,
                dunn: 0.6,
            }, // silhouette-only
            KQuality {
                k: 4,
                silhouette: 0.39,
                dunn: 0.1,
            }, // both drop
        ];
        let drops = detect_drops(&sweep, 0.02);
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].k, 3);
    }

    #[test]
    fn infinite_dunn_does_not_poison() {
        let sweep = vec![
            KQuality {
                k: 2,
                silhouette: 0.9,
                dunn: f64::INFINITY,
            },
            KQuality {
                k: 3,
                silhouette: 0.2,
                dunn: 1.0,
            },
        ];
        // Infinite current dunn → relative drop treated as 0.
        assert!(detect_drops(&sweep, 0.1).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sweep")]
    fn empty_sweep_panics() {
        select_k(&[], 0.1);
    }

    #[test]
    fn fused_sweep_matches_direct() {
        // Unstructured random data: near-ties and singleton clusters show
        // up naturally across the swept range.
        let mut rng = Rng::seed_from(97);
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|_| (0..6).map(|_| rng.gaussian()).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let fused = sweep_k(&h, &cond, 2..=15);
        let direct = sweep_k_direct(&h, &cond, 2, 15);
        assert_eq!(fused.len(), direct.len());
        for (f, d) in fused.iter().zip(&direct) {
            assert_eq!(f.k, d.k);
            // Dunn regroups through exact min/max: bit-identical.
            assert_eq!(f.dunn.to_bits(), d.dunn.to_bits(), "k={}", f.k);
            // Silhouette regroups sums: equal to a few ulps.
            let tol = 1e-12 * d.silhouette.abs().max(1.0);
            assert!(
                (f.silhouette - d.silhouette).abs() <= tol,
                "k={}: {} vs {}",
                f.k,
                f.silhouette,
                d.silhouette
            );
        }
    }

    #[test]
    fn fused_sweep_handles_full_singleton_range() {
        // hi = n: the finest cut is all singletons — every silhouette
        // contribution at k = n is 0 by the singleton convention.
        let m = four_blobs();
        let n = m.rows();
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&h, &cond, 2..=n);
        assert_eq!(sweep.last().unwrap().silhouette, 0.0);
        let direct = sweep_k_direct(&h, &cond, 2, n);
        for (f, d) in sweep.iter().zip(&direct) {
            assert_eq!(f.dunn.to_bits(), d.dunn.to_bits());
            assert!((f.silhouette - d.silhouette).abs() <= 1e-12);
        }
    }
}
