//! Cluster-count selection (the Figure 2 sweep).
//!
//! The paper selects k by sweeping the agglomerative cut over a range of
//! cluster counts, computing the Silhouette score and Dunn index at each k,
//! and looking for "a high value ... followed by an abrupt drop, which
//! suggests a substantial deterioration of the intra- and inter-clustering
//! quality" (Section 4.2.1). Figure 2 shows such drops at k = 6 and k = 9;
//! the paper picks k = 9 as the steepest combined drop. This module
//! implements the sweep and the drop-detection criterion.

use crate::agglomerative::MergeHistory;
use crate::condensed::Condensed;
use crate::dunn::dunn_index;
use crate::silhouette::silhouette_score;

/// Quality indices at one candidate k.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KQuality {
    /// Candidate number of clusters.
    pub k: usize,
    /// Mean silhouette coefficient.
    pub silhouette: f64,
    /// Dunn index.
    pub dunn: f64,
}

/// Sweeps cuts of `history` over `k_range` (inclusive) against the
/// distances in `cond` (which must be over the same observations, in any
/// metric — the paper's geometry is Euclidean).
pub fn sweep_k(
    history: &MergeHistory,
    cond: &Condensed,
    k_range: std::ops::RangeInclusive<usize>,
) -> Vec<KQuality> {
    let (lo, hi) = (*k_range.start(), *k_range.end());
    assert!(lo >= 2, "sweep_k: k must start at ≥ 2");
    assert!(hi <= history.n, "sweep_k: k exceeds number of observations");
    (lo..=hi)
        .map(|k| {
            let labels = history.cut(k);
            KQuality {
                k,
                silhouette: silhouette_score(cond, &labels),
                dunn: dunn_index(cond, &labels),
            }
        })
        .collect()
}

/// One detected drop: quality at k is high, and moving to k + 1 loses a
/// substantial fraction of it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Drop {
    /// The k *before* the deterioration — the candidate "optimal" count.
    pub k: usize,
    /// Combined (averaged, normalised) relative drop magnitude in `[0, 1]`.
    pub magnitude: f64,
}

/// Detects the paper's stopping criterion: ks whose silhouette **and** Dunn
/// both fall by at least `min_rel_drop` (relative) at k + 1. Returns drops
/// sorted by decreasing magnitude; the paper picks the steepest.
pub fn detect_drops(sweep: &[KQuality], min_rel_drop: f64) -> Vec<Drop> {
    assert!(
        (0.0..1.0).contains(&min_rel_drop),
        "detect_drops: min_rel_drop out of [0,1)"
    );
    let mut drops = Vec::new();
    for w in sweep.windows(2) {
        let (cur, next) = (w[0], w[1]);
        let rel = |a: f64, b: f64| -> f64 {
            if !(a.is_finite()) || a <= 0.0 {
                0.0
            } else {
                ((a - b) / a).max(0.0)
            }
        };
        let ds = rel(cur.silhouette, next.silhouette);
        let dd = rel(cur.dunn, next.dunn);
        if ds >= min_rel_drop && dd >= min_rel_drop {
            drops.push(Drop {
                k: cur.k,
                magnitude: 0.5 * (ds + dd),
            });
        }
    }
    drops.sort_by(|a, b| b.magnitude.partial_cmp(&a.magnitude).expect("finite"));
    drops
}

/// The paper's selection: the steepest combined drop, or — if no drop
/// clears the threshold — the k with the best silhouette.
pub fn select_k(sweep: &[KQuality], min_rel_drop: f64) -> usize {
    assert!(!sweep.is_empty(), "select_k: empty sweep");
    if let Some(d) = detect_drops(sweep, min_rel_drop).first() {
        return d.k;
    }
    sweep
        .iter()
        .max_by(|a, b| a.silhouette.partial_cmp(&b.silhouette).expect("finite"))
        .expect("non-empty sweep")
        .k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::agglomerate;
    use crate::linkage::Linkage;
    use icn_stats::{Matrix, Metric, Rng};

    /// 4 well-separated blobs: quality should peak at k = 4 then drop.
    fn four_blobs() -> Matrix {
        let mut rng = Rng::seed_from(61);
        let centers = [(0.0, 0.0), (12.0, 0.0), (0.0, 12.0), (12.0, 12.0)];
        let mut rows = Vec::new();
        for &(x, y) in &centers {
            for _ in 0..12 {
                rows.push(vec![rng.normal(x, 0.5), rng.normal(y, 0.5)]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn sweep_covers_requested_range() {
        let m = four_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&h, &cond, 2..=8);
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0].k, 2);
        assert_eq!(sweep.last().unwrap().k, 8);
    }

    #[test]
    fn four_blobs_selects_k4() {
        let m = four_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&h, &cond, 2..=8);
        assert_eq!(select_k(&sweep, 0.1), 4);
        // And the drop is detected at k=4 with the largest magnitude.
        let drops = detect_drops(&sweep, 0.1);
        assert!(!drops.is_empty());
        assert_eq!(drops[0].k, 4);
    }

    #[test]
    fn silhouette_maximal_at_true_k() {
        let m = four_blobs();
        let h = agglomerate(&m, Linkage::Ward);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let sweep = sweep_k(&h, &cond, 2..=8);
        let best = sweep
            .iter()
            .max_by(|a, b| a.silhouette.partial_cmp(&b.silhouette).unwrap())
            .unwrap();
        assert_eq!(best.k, 4);
    }

    #[test]
    fn no_drop_falls_back_to_best_silhouette() {
        let sweep = vec![
            KQuality {
                k: 2,
                silhouette: 0.3,
                dunn: 0.2,
            },
            KQuality {
                k: 3,
                silhouette: 0.5,
                dunn: 0.3,
            },
            KQuality {
                k: 4,
                silhouette: 0.45,
                dunn: 0.31,
            },
        ];
        // k=3→4 silhouette drops 10% but dunn rises ⇒ no combined drop.
        assert!(detect_drops(&sweep, 0.05).is_empty());
        assert_eq!(select_k(&sweep, 0.05), 3);
    }

    #[test]
    fn drop_needs_both_indices() {
        let sweep = vec![
            KQuality {
                k: 2,
                silhouette: 0.8,
                dunn: 0.5,
            },
            KQuality {
                k: 3,
                silhouette: 0.4,
                dunn: 0.6,
            }, // silhouette-only
            KQuality {
                k: 4,
                silhouette: 0.39,
                dunn: 0.1,
            }, // both drop
        ];
        let drops = detect_drops(&sweep, 0.02);
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].k, 3);
    }

    #[test]
    fn infinite_dunn_does_not_poison() {
        let sweep = vec![
            KQuality {
                k: 2,
                silhouette: 0.9,
                dunn: f64::INFINITY,
            },
            KQuality {
                k: 3,
                silhouette: 0.2,
                dunn: 1.0,
            },
        ];
        // Infinite current dunn → relative drop treated as 0.
        assert!(detect_drops(&sweep, 0.1).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sweep")]
    fn empty_sweep_panics() {
        select_k(&[], 0.1);
    }
}
