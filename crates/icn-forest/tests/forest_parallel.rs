//! Thread-invariance suite for the parallel forest machinery: tree
//! training (order-preserving `map_indexed`) and the chunked OOB vote
//! accumulation must be **bit-identical at any `ICN_THREADS`** —
//! parallelism is an execution detail, never an answer detail.
//!
//! Environment discipline: `ICN_THREADS` is process-global, so every
//! mutation lives inside a single `#[test]` function that saves and
//! restores it (the same convention as
//! `icn-cluster/tests/ward_parallel.rs`).

use icn_forest::{ForestConfig, RandomForest, TrainSet};
use icn_stats::{Matrix, Rng};

struct EnvGuard {
    saved: Option<String>,
}

impl EnvGuard {
    fn capture() -> EnvGuard {
        EnvGuard {
            saved: std::env::var("ICN_THREADS").ok(),
        }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        // Restore even if an assertion unwinds mid-matrix.
        match &self.saved {
            Some(v) => std::env::set_var("ICN_THREADS", v),
            None => std::env::remove_var("ICN_THREADS"),
        }
    }
}

fn blobs(n_per: usize, seed: u64) -> TrainSet {
    let mut rng = Rng::seed_from(seed);
    let centers = [
        [0.0, 0.0, 0.0, 0.0, 0.0],
        [4.0, 4.0, 0.0, 0.0, 1.0],
        [0.0, 4.0, 4.0, 0.0, 2.0],
        [4.0, 0.0, 0.0, 4.0, 3.0],
    ];
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (c, center) in centers.iter().enumerate() {
        for _ in 0..n_per {
            rows.push(center.iter().map(|&m| rng.normal(m, 0.8)).collect());
            labels.push(c);
        }
    }
    TrainSet::new(Matrix::from_rows(&rows), labels)
}

/// Exact bit-level fingerprint of a fitted forest: per-tree node counts,
/// every class-probability of a probe batch, and the OOB accuracy.
fn fingerprint(forest: &RandomForest, ts: &TrainSet) -> (Vec<usize>, Vec<u64>, Option<u64>) {
    let probas: Vec<u64> = (0..ts.len())
        .flat_map(|r| {
            forest
                .predict_proba(ts.x.row(r))
                .into_iter()
                .map(|p| p.to_bits())
                .collect::<Vec<u64>>()
        })
        .collect();
    (
        forest.trees.iter().map(|t| t.nodes.len()).collect(),
        probas,
        forest.oob_accuracy.map(f64::to_bits),
    )
}

/// The invariance matrix: fits at `ICN_THREADS` ∈ {2, 8} must reproduce
/// the pinned single-thread baseline bit for bit — tree structures, soft
/// votes, and the chunk-merged OOB accuracy alike. The row count (120) is
/// comfortably above the OOB chunking floor so the parallel merge path
/// actually splits at 8 threads.
#[test]
fn forest_fit_is_bit_identical_across_threads() {
    let _guard = EnvGuard::capture();
    let ts = blobs(30, 0xF0_1234);
    let cfg = ForestConfig {
        n_trees: 40,
        ..ForestConfig::default()
    };

    std::env::set_var("ICN_THREADS", "1");
    let base = fingerprint(&RandomForest::fit(&ts, &cfg), &ts);
    assert!(base.2.is_some(), "OOB accuracy must be defined");

    for threads in ["2", "8"] {
        std::env::set_var("ICN_THREADS", threads);
        let fp = fingerprint(&RandomForest::fit(&ts, &cfg), &ts);
        assert_eq!(fp, base, "forest fit drifted at ICN_THREADS={threads}");
    }
}

/// Differential oracle for the chunked OOB accumulation: recompute the
/// OOB accuracy with the naive serial loop (per-row `Vec` of votes, trees
/// in fit order) and demand the forest's chunk-merged figure match it
/// bit for bit.
#[test]
fn oob_accuracy_matches_serial_vote_oracle() {
    let ts = blobs(25, 0xBEEF);
    let cfg = ForestConfig {
        n_trees: 24,
        ..ForestConfig::default()
    };
    let forest = RandomForest::fit(&ts, &cfg);

    // Replay the bootstrap partition exactly as `fit` derives it: the
    // same master seed, one forked stream per tree, OOB rows from the
    // stream *before* tree growth consumes it.
    let root = Rng::seed_from(cfg.seed);
    let mut votes: Vec<Vec<f64>> = vec![vec![0.0; ts.n_classes]; ts.len()];
    for (t, tree) in forest.trees.iter().enumerate() {
        let mut rng = root.fork(t as u64);
        let (_, oob) = ts.bootstrap(&mut rng);
        for r in oob {
            for (v, &p) in votes[r].iter_mut().zip(tree.predict_proba(ts.x.row(r))) {
                *v += p;
            }
        }
    }
    let mut correct = 0usize;
    let mut counted = 0usize;
    for (r, row) in votes.iter().enumerate() {
        if row.iter().any(|&v| v > 0.0) {
            counted += 1;
            if icn_stats::rank::argmax(row) == ts.y[r] {
                correct += 1;
            }
        }
    }
    assert!(counted > 0);
    let oracle = correct as f64 / counted as f64;
    assert_eq!(
        forest.oob_accuracy.map(f64::to_bits),
        Some(oracle.to_bits()),
        "chunk-merged OOB accuracy diverged from the serial vote oracle"
    );
}
