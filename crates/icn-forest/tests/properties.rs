//! Property-based tests for the supervised substrate, driven by the
//! deterministic [`icn_stats::check`] harness.

use icn_forest::{
    accuracy, confusion_matrix, macro_f1, DecisionTree, ForestConfig, RandomForest, TrainSet,
    TreeConfig,
};
use icn_stats::check::{cases, len_in};
use icn_stats::{Matrix, Rng};

/// Random labelled set with at least two classes present.
fn trainset(rng: &mut Rng) -> TrainSet {
    let n = len_in(rng, 10, 60);
    let d = len_in(rng, 1, 5);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.uniform(0.0, 1.0)).collect())
        .collect();
    let mut labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
    labels[0] = 0;
    labels[1] = 1;
    TrainSet::new(Matrix::from_rows(&rows), labels)
}

#[test]
fn tree_distributions_are_probabilities() {
    cases(32, |case, rng| {
        let ts = trainset(rng);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), rng);
        for node in &tree.nodes {
            let s: f64 = node.distribution.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "case {case}");
            assert!(
                node.distribution.iter().all(|&p| (0.0..=1.0).contains(&p)),
                "case {case}"
            );
            assert!(node.cover > 0.0, "case {case}");
        }
    });
}

#[test]
fn unconstrained_tree_memorizes_training_data() {
    // Distinct feature vectors with consistent labels are fit exactly by
    // an unconstrained CART tree; our labels are a function of x[0] (with
    // only rows 0 and 1 pinned, matching that rule with prob. 1/2 each),
    // so training accuracy must be 1 whenever no two rows collide.
    cases(32, |case, rng| {
        let ts = trainset(rng);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), rng);
        for i in 0..ts.len() {
            assert_eq!(tree.predict(ts.x.row(i)), ts.y[i], "case {case} row {i}");
        }
    });
}

#[test]
fn covers_conserve_along_tree() {
    cases(32, |case, rng| {
        let ts = trainset(rng);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), rng);
        assert_eq!(tree.nodes[0].cover, ts.len() as f64, "case {case}");
        for node in &tree.nodes {
            if !node.is_leaf() {
                let child_sum = tree.nodes[node.left].cover + tree.nodes[node.right].cover;
                assert!((child_sum - node.cover).abs() < 1e-9, "case {case}");
            }
        }
    });
}

#[test]
fn forest_probas_sum_to_one() {
    cases(32, |case, rng| {
        let ts = trainset(rng);
        let seed = rng.next_u64();
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 5,
                seed,
                ..ForestConfig::default()
            },
        );
        for i in (0..ts.len()).step_by(7) {
            let p = forest.predict_proba(ts.x.row(i));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
        }
    });
}

#[test]
fn forest_deterministic_in_seed() {
    cases(16, |case, rng| {
        let ts = trainset(rng);
        let cfg = ForestConfig {
            n_trees: 4,
            seed: rng.next_u64(),
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(&ts, &cfg);
        let b = RandomForest::fit(&ts, &cfg);
        assert_eq!(
            a.predict_batch(&ts.x),
            b.predict_batch(&ts.x),
            "case {case}"
        );
    });
}

#[test]
fn accuracy_bounds_and_confusion_mass() {
    cases(32, |case, rng| {
        let ts = trainset(rng);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 3,
                seed: rng.next_u64(),
                ..ForestConfig::default()
            },
        );
        let preds = forest.predict_batch(&ts.x);
        let acc = accuracy(&ts.y, &preds);
        assert!((0.0..=1.0).contains(&acc), "case {case}");
        let cm = confusion_matrix(&ts.y, &preds, ts.n_classes);
        let mass: usize = cm.iter().flatten().sum();
        assert_eq!(mass, ts.len(), "case {case}");
        let f1 = macro_f1(&ts.y, &preds, ts.n_classes);
        assert!((0.0..=1.0).contains(&f1), "case {case}");
    });
}
