//! Property-based tests for the supervised substrate.

use icn_forest::{
    accuracy, confusion_matrix, macro_f1, DecisionTree, ForestConfig, RandomForest, TrainSet,
    TreeConfig,
};
use icn_stats::{Matrix, Rng};
use proptest::prelude::*;

/// Random labelled set with at least two classes present.
fn trainset_strategy() -> impl Strategy<Value = TrainSet> {
    (10usize..60, 1usize..5, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut rng = Rng::seed_from(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.uniform(0.0, 1.0)).collect())
            .collect();
        let mut labels: Vec<usize> = rows
            .iter()
            .map(|r| usize::from(r[0] > 0.5))
            .collect();
        labels[0] = 0;
        labels[1] = 1;
        TrainSet::new(Matrix::from_rows(&rows), labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_distributions_are_probabilities(ts in trainset_strategy(), seed in any::<u64>()) {
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed));
        for node in &tree.nodes {
            let s: f64 = node.distribution.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(node.distribution.iter().all(|&p| (0.0..=1.0).contains(&p)));
            prop_assert!(node.cover > 0.0);
        }
    }

    #[test]
    fn unconstrained_tree_memorizes_training_data(ts in trainset_strategy(), seed in any::<u64>()) {
        // Distinct feature vectors with consistent labels are fit exactly
        // by an unconstrained CART tree; our labels are a function of x[0],
        // so training accuracy must be 1 whenever no two rows collide.
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed));
        for i in 0..ts.len() {
            prop_assert_eq!(tree.predict(ts.x.row(i)), ts.y[i], "row {}", i);
        }
    }

    #[test]
    fn covers_conserve_along_tree(ts in trainset_strategy(), seed in any::<u64>()) {
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed));
        prop_assert_eq!(tree.nodes[0].cover, ts.len() as f64);
        for node in &tree.nodes {
            if !node.is_leaf() {
                let child_sum = tree.nodes[node.left].cover + tree.nodes[node.right].cover;
                prop_assert!((child_sum - node.cover).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn forest_probas_sum_to_one(ts in trainset_strategy(), seed in any::<u64>()) {
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig { n_trees: 5, seed, ..ForestConfig::default() },
        );
        for i in (0..ts.len()).step_by(7) {
            let p = forest.predict_proba(ts.x.row(i));
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_deterministic_in_seed(ts in trainset_strategy(), seed in any::<u64>()) {
        let cfg = ForestConfig { n_trees: 4, seed, ..ForestConfig::default() };
        let a = RandomForest::fit(&ts, &cfg);
        let b = RandomForest::fit(&ts, &cfg);
        prop_assert_eq!(a.predict_batch(&ts.x), b.predict_batch(&ts.x));
    }

    #[test]
    fn accuracy_bounds_and_confusion_mass(ts in trainset_strategy(), seed in any::<u64>()) {
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig { n_trees: 3, seed, ..ForestConfig::default() },
        );
        let preds = forest.predict_batch(&ts.x);
        let acc = accuracy(&ts.y, &preds);
        prop_assert!((0.0..=1.0).contains(&acc));
        let cm = confusion_matrix(&ts.y, &preds, ts.n_classes);
        let mass: usize = cm.iter().flatten().sum();
        prop_assert_eq!(mass, ts.len());
        let f1 = macro_f1(&ts.y, &preds, ts.n_classes);
        prop_assert!((0.0..=1.0).contains(&f1));
    }
}
