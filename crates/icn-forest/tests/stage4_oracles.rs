//! Stage 4 (random-forest surrogate): differential oracle + metamorphic
//! invariants against `icn-testkit`.
//!
//! Oracle: the batched/parallel prediction paths are compared to the
//! testkit's per-sample, hand-walked tree traversal. Metamorphic: Gini
//! impurity is invariant under class renaming, so training on permuted
//! class labels (same seed) must permute the predicted probabilities; and
//! a feature-permuted forest must predict identically on column-permuted
//! inputs.

use icn_forest::{ForestConfig, RandomForest, TrainSet};
use icn_stats::check::{self, cases};
use icn_stats::Matrix;
use icn_testkit::{
    naive_accuracy, naive_predict_batch, naive_predict_proba, permutation, permute_cols,
    permute_forest_features, permute_labels,
};

/// Gaussian blobs: k classes, each concentrated on its own axis.
fn blobs(rng: &mut icn_stats::Rng) -> TrainSet {
    let k = check::len_in(rng, 2, 4);
    let m = check::len_in(rng, 3, 6);
    let per = check::len_in(rng, 8, 14);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for c in 0..k {
        for _ in 0..per {
            rows.push(
                (0..m)
                    .map(|j| rng.normal(if j % k == c { 3.0 } else { 0.0 }, 0.6))
                    .collect::<Vec<f64>>(),
            );
            y.push(c);
        }
    }
    check::record(format!("{k} classes x {per} samples, {m} features"));
    TrainSet::new(Matrix::from_rows(&rows), y)
}

fn small_forest(ts: &TrainSet, seed: u64) -> RandomForest {
    RandomForest::fit(
        ts,
        &ForestConfig {
            n_trees: 12,
            seed,
            ..ForestConfig::default()
        },
    )
}

#[test]
fn predict_batch_matches_per_sample_oracle() {
    cases(16, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        assert_eq!(
            forest.predict_batch(&ts.x),
            naive_predict_batch(&forest, &ts.x),
            "batched and per-sample predictions diverge"
        );
    });
}

#[test]
fn predict_proba_matches_hand_walked_trees() {
    cases(16, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        for i in 0..ts.x.rows() {
            let fast = forest.predict_proba(ts.x.row(i));
            let slow = naive_predict_proba(&forest, ts.x.row(i));
            for (c, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (f - s).abs() < 1e-12,
                    "row {i} class {c}: proba {f} vs oracle {s}"
                );
            }
        }
    });
}

#[test]
fn accuracy_matches_per_sample_recount() {
    cases(16, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        let fast = forest.accuracy(&ts);
        let slow = naive_accuracy(&forest, &ts);
        assert!((fast - slow).abs() < 1e-12, "accuracy {fast} vs {slow}");
    });
}

#[test]
fn training_equivariant_to_class_relabeling() {
    // Gini impurity only sees class *counts*, so renaming the classes and
    // refitting with the same seed must permute every probability vector.
    cases(12, |case, rng| {
        let ts = blobs(rng);
        let k = ts.n_classes;
        let p = permutation(rng, k);
        check::record(format!("class perm {p:?}"));
        let renamed = TrainSet::new(ts.x.clone(), permute_labels(&ts.y, &p));
        let base = small_forest(&ts, case + 1);
        let permuted = small_forest(&renamed, case + 1);
        for i in 0..ts.x.rows() {
            let pb = base.predict_proba(ts.x.row(i));
            let pp = permuted.predict_proba(ts.x.row(i));
            for c in 0..k {
                assert!(
                    (pb[c] - pp[p[c]]).abs() < 1e-12,
                    "row {i}: proba[{c}]={} but renamed proba[{}]={}",
                    pb[c],
                    p[c],
                    pp[p[c]]
                );
            }
        }
    });
}

#[test]
fn prediction_invariant_under_consistent_feature_permutation() {
    // Rewiring every split to the permuted column layout and feeding the
    // permuted columns must reproduce the original predictions exactly.
    cases(12, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        let p = permutation(rng, ts.x.cols());
        check::record(format!("feature perm {p:?}"));
        let rewired = permute_forest_features(&forest, &p);
        let x_perm = permute_cols(&ts.x, &p);
        for i in 0..ts.x.rows() {
            let a = forest.predict_proba(ts.x.row(i));
            let b = rewired.predict_proba(x_perm.row(i));
            for c in 0..ts.n_classes {
                assert!(
                    (a[c] - b[c]).abs() < 1e-15,
                    "row {i} class {c}: {} vs rewired {}",
                    a[c],
                    b[c]
                );
            }
        }
    });
}
