//! Feature importances: Gini (mean decrease in impurity) and permutation.
//!
//! SHAP is the paper's primary explanation device; these two classical
//! importances serve as the "second opinion" ablation (B5/roadmap in
//! DESIGN.md) — they agree with SHAP on which services dominate a cluster
//! but cannot attribute direction (over- vs under-utilisation).

use crate::data::{gini, TrainSet};
use crate::forest::RandomForest;
use crate::tree::DecisionTree;
use icn_stats::Rng;

/// Mean-decrease-in-impurity importance of one tree, unnormalised.
fn tree_gini_importance(tree: &DecisionTree) -> Vec<f64> {
    let mut imp = vec![0.0f64; tree.n_features];
    for node in &tree.nodes {
        if node.is_leaf() {
            continue;
        }
        let l = &tree.nodes[node.left];
        let r = &tree.nodes[node.right];
        let g_self = gini_of(&node.distribution);
        let g_l = gini_of(&l.distribution);
        let g_r = gini_of(&r.distribution);
        let decrease = node.cover * g_self - l.cover * g_l - r.cover * g_r;
        imp[node.feature] += decrease.max(0.0);
    }
    imp
}

fn gini_of(distribution: &[f64]) -> f64 {
    // distribution is already normalised; reuse gini on the proportions.
    gini(distribution)
}

/// Gini importance of a forest, normalised to sum to 1 (all-zero if the
/// forest is a single stump).
pub fn gini_importance(forest: &RandomForest) -> Vec<f64> {
    let mut total = vec![0.0f64; forest.n_features];
    for tree in &forest.trees {
        for (t, v) in total.iter_mut().zip(tree_gini_importance(tree)) {
            *t += v;
        }
    }
    let s: f64 = total.iter().sum();
    if s > 0.0 {
        for t in &mut total {
            *t /= s;
        }
    }
    total
}

/// Permutation importance: accuracy drop when one feature column is
/// shuffled. `repeats` shuffles are averaged per feature.
pub fn permutation_importance(
    forest: &RandomForest,
    ts: &TrainSet,
    repeats: usize,
    rng: &mut Rng,
) -> Vec<f64> {
    assert!(repeats >= 1, "permutation_importance: zero repeats");
    let baseline = forest.accuracy(ts);
    let n = ts.len();
    let mut out = vec![0.0f64; ts.num_features()];
    let mut shuffled = ts.clone();
    for f in 0..ts.num_features() {
        let mut drop_sum = 0.0;
        for _ in 0..repeats {
            // Shuffle column f.
            let mut col: Vec<f64> = (0..n).map(|i| ts.x.get(i, f)).collect();
            rng.shuffle(&mut col);
            for i in 0..n {
                shuffled.x.set(i, f, col[i]);
            }
            drop_sum += baseline - forest.accuracy(&shuffled);
        }
        // Restore the column.
        for i in 0..n {
            shuffled.x.set(i, f, ts.x.get(i, f));
        }
        out[f] = drop_sum / repeats as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use icn_stats::Matrix;

    /// Class is determined entirely by feature 0; feature 1 is noise.
    fn one_informative_feature(seed: u64) -> TrainSet {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..120 {
            let x0 = rng.uniform(0.0, 1.0);
            let x1 = rng.uniform(0.0, 1.0);
            rows.push(vec![x0, x1]);
            labels.push(usize::from(x0 > 0.5));
        }
        TrainSet::new(Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn gini_importance_finds_informative_feature() {
        let ts = one_informative_feature(1);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            },
        );
        let imp = gini_importance(&forest);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "imp {imp:?}");
    }

    #[test]
    fn permutation_importance_finds_informative_feature() {
        let ts = one_informative_feature(2);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            },
        );
        let mut rng = Rng::seed_from(3);
        let imp = permutation_importance(&forest, &ts, 3, &mut rng);
        assert!(imp[0] > 0.2, "imp {imp:?}");
        assert!(imp[1] < 0.05, "imp {imp:?}");
    }

    #[test]
    fn importances_nonnegative_gini() {
        let ts = one_informative_feature(4);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 10,
                ..ForestConfig::default()
            },
        );
        assert!(gini_importance(&forest).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stump_forest_zero_importance() {
        // One constant feature → single-leaf trees → all-zero importance.
        let ts = TrainSet::new(
            Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]),
            vec![0, 1, 0],
        );
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 5,
                ..ForestConfig::default()
            },
        );
        assert_eq!(gini_importance(&forest), vec![0.0]);
    }
}
