//! CART decision tree (Gini impurity, axis-aligned thresholds).
//!
//! The surrogate classifier of Section 5.1.2 is a random forest; each
//! member is this tree. The node layout is flat (`Vec<Node>`) and public
//! because the TreeSHAP explainer (`icn-shap`) walks it directly: every
//! node carries its **cover** (number of training samples that reached it)
//! and its **class distribution**, which TreeSHAP uses to weigh the paths
//! of absent features.

use crate::data::{gini, TrainSet};
use icn_stats::Rng;

/// How many features a split may consider.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features at every node (plain CART).
    All,
    /// `√(num_features)` random features per node — the random-forest
    /// default for classification.
    Sqrt,
    /// A fixed number per node.
    Fixed(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `m` total features (≥ 1).
    pub fn resolve(&self, m: usize) -> usize {
        match self {
            MaxFeatures::All => m,
            MaxFeatures::Sqrt => ((m as f64).sqrt().round() as usize).clamp(1, m),
            MaxFeatures::Fixed(k) => (*k).clamp(1, m),
        }
    }
}

/// Tree growth hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0); `usize::MAX` to disable.
    pub max_depth: usize,
    /// Minimum samples a node must hold to be split further.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Feature-subsampling policy per node.
    pub max_features: MaxFeatures,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: usize::MAX,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

/// One node of a fitted tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Split feature index (meaningless for leaves).
    pub feature: usize,
    /// Split threshold: samples with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Left child index, or `usize::MAX` for a leaf.
    pub left: usize,
    /// Right child index, or `usize::MAX` for a leaf.
    pub right: usize,
    /// Number of training samples that reached this node (the "cover").
    pub cover: f64,
    /// Class probability distribution of the training samples here.
    pub distribution: Vec<f64>,
}

impl Node {
    /// True if this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.left == usize::MAX
    }
}

/// A fitted CART decision tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    /// Flat node storage; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features the tree was trained on.
    pub n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on the rows `rows` of `ts` (duplicates allowed — pass a
    /// bootstrap sample for forests, or `0..n` for a plain tree).
    pub fn fit(ts: &TrainSet, rows: &[usize], cfg: &TreeConfig, rng: &mut Rng) -> DecisionTree {
        assert!(!rows.is_empty(), "DecisionTree::fit: empty row set");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: ts.n_classes,
            n_features: ts.num_features(),
        };
        let mut rows_scratch = rows.to_vec();
        let mut scratch = FitScratch {
            pairs: Vec::with_capacity(rows.len()),
            left: vec![0.0; ts.n_classes],
            right: vec![0.0; ts.n_classes],
            part: Vec::with_capacity(rows.len()),
        };
        tree.grow(ts, &mut rows_scratch, 0, cfg, rng, &mut scratch);
        tree
    }

    /// Recursively grows the subtree over `rows` (which it may reorder) and
    /// returns the index of the created node.
    fn grow(
        &mut self,
        ts: &TrainSet,
        rows: &mut [usize],
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut Rng,
        scratch: &mut FitScratch,
    ) -> usize {
        let counts = ts.class_counts(rows);
        let total: f64 = counts.iter().sum();
        let distribution: Vec<f64> = counts.iter().map(|&c| c / total).collect();
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: usize::MAX,
            right: usize::MAX,
            cover: total,
            distribution,
        });

        let impurity = gini(&counts);
        if depth >= cfg.max_depth || rows.len() < cfg.min_samples_split || impurity <= 0.0 {
            return node_idx;
        }

        let Some((feature, threshold)) = best_split(ts, rows, &counts, cfg, rng, scratch) else {
            return node_idx;
        };

        // Partition rows in place around the threshold (stable, via the
        // reused scratch buffer).
        let mid = partition_into(rows, &mut scratch.part, |&r| {
            ts.x.get(r, feature) <= threshold
        });
        debug_assert!(mid > 0 && mid < rows.len(), "degenerate split survived");
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.grow(ts, left_rows, depth + 1, cfg, rng, scratch);
        let right = self.grow(ts, right_rows, depth + 1, cfg, rng, scratch);
        let node = &mut self.nodes[node_idx];
        node.feature = feature;
        node.threshold = threshold;
        node.left = left;
        node.right = right;
        node_idx
    }

    /// Index of the leaf a sample lands in.
    pub fn leaf_for(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.n_features, "leaf_for: feature mismatch");
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.is_leaf() {
                return i;
            }
            i = if x[n.feature] <= n.threshold {
                n.left
            } else {
                n.right
            };
        }
    }

    /// Class probability distribution for a sample.
    pub fn predict_proba(&self, x: &[f64]) -> &[f64] {
        &self.nodes[self.leaf_for(x)].distribution
    }

    /// Most likely class for a sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        icn_stats::rank::argmax(self.predict_proba(x))
    }

    /// Maximum depth of the fitted tree (root = 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            let n = &nodes[i];
            if n.is_leaf() {
                0
            } else {
                1 + rec(nodes, n.left).max(rec(nodes, n.right))
            }
        }
        rec(&self.nodes, 0)
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }
}

/// Reusable per-fit scratch buffers: one allocation set per tree instead
/// of one per node (or per candidate feature, for `left`/`right`).
struct FitScratch {
    /// (value, label) pairs sorted per candidate feature.
    pairs: Vec<(f64, usize)>,
    /// Left-child class counts during the threshold scan.
    left: Vec<f64>,
    /// Right-child class counts during the threshold scan.
    right: Vec<f64>,
    /// Stable-partition buffer.
    part: Vec<usize>,
}

/// Finds the impurity-minimising `(feature, threshold)` over a random
/// feature subset, or `None` when no valid split exists (constant features
/// or `min_samples_leaf` unsatisfiable).
///
/// `parent_counts` must be `ts.class_counts(rows)` (the caller already has
/// it from the node's distribution).
///
/// The threshold scan is the fit's hot loop and is written for speed
/// without changing a single result bit:
///
/// * the per-feature sort is `sort_unstable_by` — tie order among equal
///   feature values is irrelevant because scores are only evaluated at
///   *distinct-value* boundaries, where the left/right class counts are
///   exact integers determined by the value multiset alone;
/// * the left and right Gini impurities are fused into one lane-widened
///   pass with four independent accumulator chains (`p_l`, `p_r` products
///   into `sl`, `sr`); each side keeps the exact per-class op order of
///   [`gini`], and the totals it would recompute (`n_left`, `n_right`) are
///   exact small integers, so every score is bit-identical to the
///   two-call form.
fn best_split(
    ts: &TrainSet,
    rows: &[usize],
    parent_counts: &[f64],
    cfg: &TreeConfig,
    rng: &mut Rng,
    scratch: &mut FitScratch,
) -> Option<(usize, f64)> {
    let m = ts.num_features();
    let k = cfg.max_features.resolve(m);
    let candidates = if k >= m {
        (0..m).collect::<Vec<usize>>()
    } else {
        rng.sample_indices(m, k)
    };

    let n = rows.len() as f64;
    let parent_gini = gini(parent_counts);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)

    let FitScratch {
        pairs, left, right, ..
    } = scratch;
    for &f in &candidates {
        pairs.clear();
        pairs.extend(rows.iter().map(|&r| (ts.x.get(r, f), ts.y[r])));
        pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
        if pairs[0].0 == pairs[pairs.len() - 1].0 {
            continue; // constant feature
        }
        left.fill(0.0);
        right.copy_from_slice(parent_counts);
        let mut n_left = 0.0f64;
        for w in 0..pairs.len() - 1 {
            let (v, y) = pairs[w];
            left[y] += 1.0;
            right[y] -= 1.0;
            n_left += 1.0;
            let next_v = pairs[w + 1].0;
            if v == next_v {
                continue; // can't split between equal values
            }
            let n_right = n - n_left;
            if (n_left as usize) < cfg.min_samples_leaf || (n_right as usize) < cfg.min_samples_leaf
            {
                continue;
            }
            // Fused two-sided Gini: independent accumulator lanes per side.
            let (mut sl, mut sr) = (0.0f64, 0.0f64);
            for c in 0..left.len() {
                let pl = left[c] / n_left;
                let pr = right[c] / n_right;
                sl += pl * pl;
                sr += pr * pr;
            }
            let score = (n_left / n) * (1.0 - sl) + (n_right / n) * (1.0 - sr);
            if score < parent_gini - 1e-12 && best.as_ref().is_none_or(|&(_, _, s)| score < s) {
                // Midpoint threshold is robust to unseen values.
                best = Some((f, 0.5 * (v + next_v), score));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

/// Stable in-place partition using a caller-provided scratch buffer;
/// returns the number of elements satisfying the predicate (moved to the
/// front).
fn partition_into<T: Copy>(xs: &mut [T], buf: &mut Vec<T>, pred: impl Fn(&T) -> bool) -> usize {
    buf.clear();
    let mut k = 0usize;
    for &x in xs.iter() {
        if pred(&x) {
            buf.push(x);
            k += 1;
        }
    }
    for &x in xs.iter() {
        if !pred(&x) {
            buf.push(x);
        }
    }
    xs.copy_from_slice(buf);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Matrix;

    fn xor_set() -> TrainSet {
        // XOR-ish: class = (x>0.5) ^ (y>0.5); needs depth 2.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(x, y, l) in &[
            (0.0, 0.0, 0usize),
            (0.1, 0.2, 0),
            (1.0, 1.0, 0),
            (0.9, 0.8, 0),
            (0.0, 1.0, 1),
            (0.2, 0.9, 1),
            (1.0, 0.0, 1),
            (0.8, 0.1, 1),
        ] {
            rows.push(vec![x, y]);
            labels.push(l);
        }
        TrainSet::new(Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn fits_xor_exactly() {
        let ts = xor_set();
        let rows: Vec<usize> = (0..ts.len()).collect();
        let mut rng = Rng::seed_from(1);
        let tree = DecisionTree::fit(&ts, &rows, &TreeConfig::default(), &mut rng);
        for i in 0..ts.len() {
            assert_eq!(tree.predict(ts.x.row(i)), ts.y[i], "row {i}");
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let ts = TrainSet::new(Matrix::from_rows(&[vec![1.0], vec![2.0]]), vec![0, 0]);
        let mut rng = Rng::seed_from(2);
        let tree = DecisionTree::fit(&ts, &[0, 1], &TreeConfig::default(), &mut rng);
        assert_eq!(tree.nodes.len(), 1);
        assert!(tree.nodes[0].is_leaf());
        assert_eq!(tree.predict(&[5.0]), 0);
    }

    #[test]
    fn max_depth_zero_is_majority_vote() {
        let ts = xor_set();
        let rows: Vec<usize> = (0..ts.len()).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let mut rng = Rng::seed_from(3);
        let tree = DecisionTree::fit(&ts, &rows, &cfg, &mut rng);
        assert_eq!(tree.nodes.len(), 1);
        // Balanced classes: distribution is 50/50.
        assert!((tree.nodes[0].distribution[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ts = xor_set();
        let rows: Vec<usize> = (0..ts.len()).collect();
        let cfg = TreeConfig {
            min_samples_leaf: 3,
            ..TreeConfig::default()
        };
        let mut rng = Rng::seed_from(4);
        let tree = DecisionTree::fit(&ts, &rows, &cfg, &mut rng);
        for n in tree.nodes.iter().filter(|n| n.is_leaf()) {
            assert!(n.cover >= 3.0, "leaf cover {}", n.cover);
        }
    }

    #[test]
    fn covers_are_consistent() {
        let ts = xor_set();
        let rows: Vec<usize> = (0..ts.len()).collect();
        let mut rng = Rng::seed_from(5);
        let tree = DecisionTree::fit(&ts, &rows, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.nodes[0].cover, ts.len() as f64);
        for n in &tree.nodes {
            if !n.is_leaf() {
                let sum = tree.nodes[n.left].cover + tree.nodes[n.right].cover;
                assert_eq!(sum, n.cover);
            }
            let s: f64 = n.distribution.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_features_yield_leaf() {
        let ts = TrainSet::new(
            Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]),
            vec![0, 1, 0],
        );
        let mut rng = Rng::seed_from(6);
        let tree = DecisionTree::fit(&ts, &[0, 1, 2], &TreeConfig::default(), &mut rng);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.predict(&[1.0]), 0); // majority
    }

    #[test]
    fn duplicate_rows_weighting() {
        // Duplicated minority rows flip the majority at the root.
        let ts = TrainSet::new(Matrix::from_rows(&[vec![0.0], vec![1.0]]), vec![0, 1]);
        let mut rng = Rng::seed_from(7);
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ts, &[1, 1, 1, 0], &cfg, &mut rng);
        assert_eq!(tree.predict(&[0.0]), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(73), 73);
        assert_eq!(MaxFeatures::Sqrt.resolve(73), 9);
        assert_eq!(MaxFeatures::Sqrt.resolve(1), 1);
        assert_eq!(MaxFeatures::Fixed(5).resolve(3), 3);
        assert_eq!(MaxFeatures::Fixed(0).resolve(3), 1);
    }

    #[test]
    fn partition_is_stable() {
        let mut xs = [5, 2, 8, 1, 9, 4];
        let k = partition_into(&mut xs, &mut Vec::new(), |&x| x < 5);
        assert_eq!(k, 3);
        assert_eq!(&xs[..3], &[2, 1, 4]);
        assert_eq!(&xs[3..], &[5, 8, 9]);
    }
}
