//! Structure-of-arrays tree layout — the shared hot-path representation.
//!
//! The pointer-light [`crate::tree::Node`] vec is convenient to grow, but
//! the pipeline's two dominant kernels — TreeSHAP over every indoor
//! antenna (stage 3) and surrogate classification of ~20k outdoor
//! antennas (stage 5) — walk fitted trees millions of times and never
//! mutate them. [`SoaTree`] freezes a fitted tree into parallel contiguous
//! arrays (feature / threshold / children / cover ratio / leaf
//! distribution offset), so a traversal touches a handful of dense `Vec`s
//! instead of hopping across 64-byte `Node`s with embedded `Vec<f64>`
//! distributions.
//!
//! Two quantities are precomputed because the TreeSHAP kernel needs them
//! at every internal node:
//!
//! * `ratio[i]` — `cover[i] / cover[parent(i)]`, the fraction of training
//!   samples flowing into `i` (1.0 at the root). This is exactly the
//!   `zero_fraction` factor of the path-dependent algorithm, computed with
//!   the same division as the on-the-fly version so results are
//!   bit-identical.
//! * `max_depth` — sizes the explainer's flat scratch arenas up front, so
//!   the per-sample walk performs no allocation at all.
//!
//! Leaf class distributions are concatenated into one `dist` array indexed
//! by `dist_off`, shared by forest prediction and SHAP accumulation.

use crate::forest::RandomForest;
use crate::tree::DecisionTree;
use icn_stats::{par, Matrix};

/// Child index marking a leaf (mirrors `Node::is_leaf`).
const LEAF: u32 = u32::MAX;

/// A fitted decision tree frozen into structure-of-arrays form.
#[derive(Clone, Debug)]
pub struct SoaTree {
    /// Split feature per node (meaningless at leaves).
    pub feature: Vec<u32>,
    /// Split threshold per node: `x[feature] <= threshold` goes left.
    pub threshold: Vec<f64>,
    /// Left child per node, `u32::MAX` at leaves.
    pub left: Vec<u32>,
    /// Right child per node, `u32::MAX` at leaves.
    pub right: Vec<u32>,
    /// `cover[i] / cover[parent(i)]` per node (1.0 at the root) — the
    /// TreeSHAP `zero_fraction` of descending into `i`.
    pub ratio: Vec<f64>,
    /// Offset of each **leaf**'s class distribution in [`SoaTree::dist`]
    /// (`u32::MAX` at internal nodes).
    pub dist_off: Vec<u32>,
    /// Concatenated leaf class distributions, `n_classes` each.
    pub dist: Vec<f64>,
    /// Offset of each **leaf**'s nonzero distribution entries in
    /// [`SoaTree::nz_class`] / [`SoaTree::nz_val`] (`u32::MAX` at internal
    /// nodes). Fully-grown CART leaves are pure, so the sparse view is
    /// usually a single `(class, value)` pair where the dense row is
    /// `n_classes` wide — the SHAP accumulator iterates this instead.
    pub nz_off: Vec<u32>,
    /// Number of nonzero distribution entries at each leaf (0 at internal
    /// nodes).
    pub nz_len: Vec<u32>,
    /// Concatenated class indices of nonzero leaf-distribution entries.
    pub nz_class: Vec<u32>,
    /// Concatenated values of nonzero leaf-distribution entries.
    pub nz_val: Vec<f64>,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features the tree was trained on.
    pub n_features: usize,
    /// Maximum depth of the tree (root = 0).
    pub max_depth: usize,
    /// Largest number of **unique** split features on any root→leaf path.
    /// TreeSHAP's per-leaf weight polynomial has degree `< max_unique_path`,
    /// so this bounds the quadrature order the kernel needs.
    pub max_unique_path: usize,
}

impl SoaTree {
    /// Freezes a fitted tree. Cover ratios use the identical division
    /// (`child cover / parent cover`) as the recursive TreeSHAP descent,
    /// so downstream results are bit-for-bit unchanged.
    pub fn from_tree(tree: &DecisionTree) -> SoaTree {
        let n = tree.nodes.len();
        let mut out = SoaTree {
            feature: Vec::with_capacity(n),
            threshold: Vec::with_capacity(n),
            left: Vec::with_capacity(n),
            right: Vec::with_capacity(n),
            ratio: vec![1.0; n],
            dist_off: Vec::with_capacity(n),
            dist: Vec::new(),
            nz_off: Vec::with_capacity(n),
            nz_len: Vec::with_capacity(n),
            nz_class: Vec::new(),
            nz_val: Vec::new(),
            n_classes: tree.n_classes,
            n_features: tree.n_features,
            max_depth: 0,
            max_unique_path: 0,
        };
        for node in &tree.nodes {
            out.feature.push(node.feature as u32);
            out.threshold.push(node.threshold);
            if node.is_leaf() {
                out.left.push(LEAF);
                out.right.push(LEAF);
                out.dist_off.push(out.dist.len() as u32);
                out.dist.extend_from_slice(&node.distribution);
                out.nz_off.push(out.nz_class.len() as u32);
                let mut nz = 0u32;
                for (c, &v) in node.distribution.iter().enumerate() {
                    if v != 0.0 {
                        out.nz_class.push(c as u32);
                        out.nz_val.push(v);
                        nz += 1;
                    }
                }
                out.nz_len.push(nz);
            } else {
                out.left.push(node.left as u32);
                out.right.push(node.right as u32);
                out.dist_off.push(u32::MAX);
                out.nz_off.push(u32::MAX);
                out.nz_len.push(0);
            }
        }
        // Cover ratios, depth and unique-path width in one iterative DFS.
        // Enter events push an exit marker that undoes the feature count,
        // so `unique` always reflects the distinct split features between
        // the root and the current node.
        let mut counts = vec![0u32; tree.n_features.max(1)];
        let mut unique = 0usize;
        enum Ev {
            Enter(usize, usize),
            Exit(usize),
        }
        let mut stack: Vec<Ev> = vec![Ev::Enter(0, 0)];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Exit(f) => {
                    counts[f] -= 1;
                    if counts[f] == 0 {
                        unique -= 1;
                    }
                }
                Ev::Enter(i, d) => {
                    out.max_depth = out.max_depth.max(d);
                    let node = &tree.nodes[i];
                    if node.is_leaf() {
                        out.max_unique_path = out.max_unique_path.max(unique);
                    } else {
                        out.ratio[node.left] = tree.nodes[node.left].cover / node.cover;
                        out.ratio[node.right] = tree.nodes[node.right].cover / node.cover;
                        if counts[node.feature] == 0 {
                            unique += 1;
                        }
                        counts[node.feature] += 1;
                        stack.push(Ev::Exit(node.feature));
                        stack.push(Ev::Enter(node.left, d + 1));
                        stack.push(Ev::Enter(node.right, d + 1));
                    }
                }
            }
        }
        out
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.left.len()
    }

    /// True if node `i` has no children.
    #[inline]
    pub fn is_leaf(&self, i: usize) -> bool {
        self.left[i] == LEAF
    }

    /// Index of the leaf a sample lands in.
    #[inline]
    pub fn leaf_for(&self, x: &[f64]) -> usize {
        let mut i = 0usize;
        while self.left[i] != LEAF {
            i = if x[self.feature[i] as usize] <= self.threshold[i] {
                self.left[i] as usize
            } else {
                self.right[i] as usize
            };
        }
        i
    }

    /// The class distribution stored at leaf `i`.
    #[inline]
    pub fn leaf_dist(&self, i: usize) -> &[f64] {
        let off = self.dist_off[i] as usize;
        &self.dist[off..off + self.n_classes]
    }

    /// The nonzero entries of leaf `i`'s distribution as parallel
    /// `(classes, values)` slices.
    #[inline]
    pub fn leaf_nonzero(&self, i: usize) -> (&[u32], &[f64]) {
        let off = self.nz_off[i] as usize;
        let end = off + self.nz_len[i] as usize;
        (&self.nz_class[off..end], &self.nz_val[off..end])
    }
}

/// A fitted random forest frozen into structure-of-arrays trees — the
/// layout shared by batch prediction, the TreeSHAP kernel and the stage-5
/// outdoor classification.
#[derive(Clone, Debug)]
pub struct SoaForest {
    /// Frozen member trees, in the forest's tree order.
    pub trees: Vec<SoaTree>,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features.
    pub n_features: usize,
    /// Largest `max_depth` over the member trees.
    pub max_depth: usize,
    /// Largest `max_unique_path` over the member trees.
    pub max_unique_path: usize,
}

impl SoaForest {
    /// Freezes every tree of a fitted forest.
    pub fn from_forest(forest: &RandomForest) -> SoaForest {
        let trees: Vec<SoaTree> = forest.trees.iter().map(SoaTree::from_tree).collect();
        let max_depth = trees.iter().map(|t| t.max_depth).max().unwrap_or(0);
        let max_unique_path = trees.iter().map(|t| t.max_unique_path).max().unwrap_or(0);
        SoaForest {
            trees,
            n_classes: forest.n_classes,
            n_features: forest.n_features,
            max_depth,
            max_unique_path,
        }
    }

    /// Soft-vote class probabilities for one sample, written into `acc`
    /// (length `n_classes`). Trees are accumulated in forest order with
    /// the same elementwise additions as `RandomForest::predict_proba`,
    /// so the result is bit-identical to the node-vec path.
    pub fn predict_proba_into(&self, x: &[f64], acc: &mut [f64]) {
        acc.fill(0.0);
        for tree in &self.trees {
            let leaf = tree.leaf_for(x);
            for (a, &p) in acc.iter_mut().zip(tree.leaf_dist(leaf)) {
                *a += p;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for a in acc.iter_mut() {
            *a *= inv;
        }
    }

    /// Most likely class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut acc = vec![0.0f64; self.n_classes];
        self.predict_proba_into(x, &mut acc);
        icn_stats::rank::argmax(&acc)
    }

    /// Predicts every row of a matrix in parallel (chunked so each worker
    /// reuses one probability accumulator across its samples). Emits the
    /// `forest.predict_rows_per_sec` throughput gauge when the global
    /// metrics registry is enabled.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        assert_eq!(x.cols(), self.n_features, "predict_batch: feature mismatch");
        let obs = icn_obs::global();
        let started = obs.is_enabled().then(std::time::Instant::now);
        let n = x.rows();
        let chunk = predict_chunk_size(n);
        let chunks: Vec<Vec<usize>> = par::map_chunks(n, chunk, |range| {
            let mut acc = vec![0.0f64; self.n_classes];
            range
                .map(|i| {
                    self.predict_proba_into(x.row(i), &mut acc);
                    icn_stats::rank::argmax(&acc)
                })
                .collect()
        });
        if let Some(t0) = started {
            let secs = t0.elapsed().as_secs_f64();
            if secs > 0.0 {
                obs.set_gauge("forest.predict_rows_per_sec", n as f64 / secs);
            }
        }
        chunks.into_iter().flatten().collect()
    }
}

/// Sample-chunk width for batched prediction: small enough to load-balance
/// across workers, large enough to amortize per-chunk bookkeeping. The
/// chunking never affects results — each row is classified independently.
fn predict_chunk_size(n: usize) -> usize {
    (n / (par::thread_count() * 8))
        .clamp(64, 4096)
        .min(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TrainSet;
    use crate::forest::ForestConfig;
    use crate::tree::TreeConfig;
    use icn_stats::{Matrix, Rng};

    fn blobs(n_per: usize, seed: u64) -> TrainSet {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [[0.0, 0.0, 0.0], [4.0, 4.0, 0.0], [0.0, 4.0, 4.0]];
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(center.iter().map(|&m| rng.normal(m, 0.7)).collect());
                labels.push(c);
            }
        }
        TrainSet::new(Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn soa_tree_mirrors_node_vec() {
        let ts = blobs(30, 1);
        let rows: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &rows, &TreeConfig::default(), &mut Rng::seed_from(1));
        let soa = SoaTree::from_tree(&tree);
        assert_eq!(soa.num_nodes(), tree.nodes.len());
        assert_eq!(soa.max_depth, tree.depth());
        for (i, node) in tree.nodes.iter().enumerate() {
            assert_eq!(soa.is_leaf(i), node.is_leaf(), "node {i}");
            if node.is_leaf() {
                assert_eq!(soa.leaf_dist(i), node.distribution.as_slice());
            } else {
                assert_eq!(soa.feature[i] as usize, node.feature);
                assert_eq!(soa.threshold[i], node.threshold);
                // Ratios are the exact divisions TreeSHAP performs.
                let wl = tree.nodes[node.left].cover / node.cover;
                assert_eq!(soa.ratio[node.left].to_bits(), wl.to_bits());
            }
        }
        // Same leaf for every training sample.
        for i in 0..ts.len() {
            assert_eq!(soa.leaf_for(ts.x.row(i)), tree.leaf_for(ts.x.row(i)));
        }
    }

    #[test]
    fn soa_forest_predictions_bit_match_node_vec() {
        let ts = blobs(25, 2);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 15,
                ..ForestConfig::default()
            },
        );
        let soa = SoaForest::from_forest(&forest);
        let mut acc = vec![0.0f64; soa.n_classes];
        for i in 0..ts.len() {
            let x = ts.x.row(i);
            soa.predict_proba_into(x, &mut acc);
            let want = forest.predict_proba(x);
            for (a, w) in acc.iter().zip(&want) {
                assert_eq!(a.to_bits(), w.to_bits(), "row {i}");
            }
            assert_eq!(soa.predict(x), forest.predict(x));
        }
    }

    #[test]
    fn batch_prediction_matches_per_sample() {
        let ts = blobs(40, 3);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 9,
                ..ForestConfig::default()
            },
        );
        let soa = SoaForest::from_forest(&forest);
        let batch = soa.predict_batch(&ts.x);
        let per: Vec<usize> = (0..ts.len()).map(|i| soa.predict(ts.x.row(i))).collect();
        assert_eq!(batch, per);
    }

    #[test]
    fn sparse_leaf_entries_reconstruct_dense_distributions() {
        let ts = blobs(30, 4);
        let rows: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &rows, &TreeConfig::default(), &mut Rng::seed_from(4));
        let soa = SoaTree::from_tree(&tree);
        for i in 0..soa.num_nodes() {
            if !soa.is_leaf(i) {
                assert_eq!(soa.nz_len[i], 0);
                continue;
            }
            let mut dense = vec![0.0f64; soa.n_classes];
            let (classes, vals) = soa.leaf_nonzero(i);
            assert!(!classes.is_empty(), "leaf {i} has an empty distribution");
            for (&c, &v) in classes.iter().zip(vals) {
                assert!(v != 0.0);
                dense[c as usize] = v;
            }
            assert_eq!(dense.as_slice(), soa.leaf_dist(i), "leaf {i}");
        }
    }

    #[test]
    fn max_unique_path_matches_recursive_walk() {
        fn walk(tree: &DecisionTree, i: usize, path: &mut Vec<usize>) -> usize {
            let node = &tree.nodes[i];
            if node.is_leaf() {
                let mut uniq: Vec<usize> = path.clone();
                uniq.sort_unstable();
                uniq.dedup();
                return uniq.len();
            }
            path.push(node.feature);
            let m = walk(tree, node.left, path).max(walk(tree, node.right, path));
            path.pop();
            m
        }
        for seed in 0..4u64 {
            let ts = blobs(25, 10 + seed);
            let rows: Vec<usize> = (0..ts.len()).collect();
            let tree = DecisionTree::fit(
                &ts,
                &rows,
                &TreeConfig::default(),
                &mut Rng::seed_from(seed),
            );
            let soa = SoaTree::from_tree(&tree);
            let want = walk(&tree, 0, &mut Vec::new());
            assert_eq!(soa.max_unique_path, want, "seed {seed}");
            assert!(soa.max_unique_path <= soa.max_depth);
            assert!(soa.max_unique_path <= soa.n_features);
        }
    }

    #[test]
    fn stump_forest_freezes() {
        let ts = TrainSet::new(Matrix::from_rows(&[vec![1.0], vec![1.0]]), vec![0, 0]);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 2,
                ..ForestConfig::default()
            },
        );
        let soa = SoaForest::from_forest(&forest);
        assert_eq!(soa.max_depth, 0);
        assert_eq!(soa.predict(&[1.0]), 0);
    }
}
