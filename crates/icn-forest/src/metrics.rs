//! Classification metrics: accuracy, confusion matrix, per-class and
//! macro-averaged precision / recall / F1.
//!
//! Used by the surrogate-fidelity experiment (B4): the paper's pipeline is
//! only trustworthy if the random forest faithfully reproduces the
//! clustering labels before SHAP explains it.

/// Confusion matrix: `m[truth][pred]` counts.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len(), "confusion: length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        assert!(
            t < n_classes && p < n_classes,
            "confusion: label out of range"
        );
        m[t][p] += 1;
    }
    m
}

/// Overall accuracy.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "accuracy: length mismatch");
    assert!(!truth.is_empty(), "accuracy: empty input");
    let hits = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// Per-class precision, recall and F1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassScore {
    /// Precision: TP / (TP + FP); 0 when the class is never predicted.
    pub precision: f64,
    /// Recall: TP / (TP + FN); 0 when the class never occurs.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
}

/// Computes per-class scores from a confusion matrix.
pub fn class_scores(confusion: &[Vec<usize>]) -> Vec<ClassScore> {
    let k = confusion.len();
    (0..k)
        .map(|c| {
            let tp = confusion[c][c] as f64;
            let fn_: f64 = (0..k)
                .filter(|&j| j != c)
                .map(|j| confusion[c][j] as f64)
                .sum();
            let fp: f64 = (0..k)
                .filter(|&i| i != c)
                .map(|i| confusion[i][c] as f64)
                .sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ClassScore {
                precision,
                recall,
                f1,
            }
        })
        .collect()
}

/// Unweighted mean of per-class F1 scores.
pub fn macro_f1(truth: &[usize], pred: &[usize], n_classes: usize) -> f64 {
    let scores = class_scores(&confusion_matrix(truth, pred, n_classes));
    scores.iter().map(|s| s.f1).sum::<f64>() / n_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = vec![0, 1, 2, 1];
        assert_eq!(accuracy(&y, &y), 1.0);
        assert_eq!(macro_f1(&y, &y, 3), 1.0);
        let cm = confusion_matrix(&y, &y, 3);
        assert_eq!(cm[1][1], 2);
        assert_eq!(cm[0][1], 0);
    }

    #[test]
    fn hand_computed_confusion_and_scores() {
        let truth = vec![0, 0, 0, 1, 1, 2];
        let pred_ = vec![0, 0, 1, 1, 0, 2];
        let cm = confusion_matrix(&truth, &pred_, 3);
        assert_eq!(cm, vec![vec![2, 1, 0], vec![1, 1, 0], vec![0, 0, 1]]);
        let scores = class_scores(&cm);
        // Class 0: tp=2, fp=1, fn=1 ⇒ p=2/3, r=2/3, f1=2/3.
        assert!((scores[0].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((scores[0].recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((scores[0].f1 - 2.0 / 3.0).abs() < 1e-12);
        // Class 2 perfect.
        assert_eq!(scores[2].f1, 1.0);
        assert!((accuracy(&truth, &pred_) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_scores_zero() {
        let truth = vec![0, 0];
        let pred_ = vec![0, 0];
        let scores = class_scores(&confusion_matrix(&truth, &pred_, 2));
        assert_eq!(scores[1].precision, 0.0);
        assert_eq!(scores[1].recall, 0.0);
        assert_eq!(scores[1].f1, 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_panics() {
        confusion_matrix(&[0, 3], &[0, 0], 2);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_accuracy_panics() {
        accuracy(&[], &[]);
    }
}
