//! Stratified k-fold cross-validation.
//!
//! The paper's surrogate is trusted because it generalises the clustering
//! (the outdoor antennas of Section 5.3 are unseen data). OOB error is one
//! generalisation estimate; stratified k-fold CV is the sturdier second
//! opinion used by the B4 ablation — stratification matters because the
//! cluster sizes are very unbalanced (963 vs 178 antennas at full scale).

use crate::data::TrainSet;
use crate::forest::{ForestConfig, RandomForest};
use crate::metrics::{accuracy, macro_f1};
use icn_stats::{Matrix, Rng};

/// Result of one cross-validation run.
#[derive(Clone, Debug)]
pub struct CvResult {
    /// Per-fold accuracy on the held-out fold.
    pub fold_accuracy: Vec<f64>,
    /// Per-fold macro-F1 on the held-out fold.
    pub fold_macro_f1: Vec<f64>,
}

impl CvResult {
    /// Mean held-out accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        self.fold_accuracy.iter().sum::<f64>() / self.fold_accuracy.len() as f64
    }

    /// Mean held-out macro-F1.
    pub fn mean_macro_f1(&self) -> f64 {
        self.fold_macro_f1.iter().sum::<f64>() / self.fold_macro_f1.len() as f64
    }
}

/// Splits sample indices into `k` stratified folds: each fold receives a
/// proportional share of every class, in shuffled order.
///
/// # Panics
/// If `k < 2` or `k` exceeds the size of the smallest class.
pub fn stratified_folds(y: &[usize], k: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
    assert!(k >= 2, "stratified_folds: need k ≥ 2");
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    // Bucket indices by class, shuffle each bucket, deal round-robin.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        buckets[c].push(i);
    }
    for b in &mut buckets {
        assert!(
            b.is_empty() || b.len() >= k,
            "stratified_folds: class with {} samples cannot fill {} folds",
            b.len(),
            k
        );
        rng.shuffle(b);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for bucket in buckets {
        for (pos, idx) in bucket.into_iter().enumerate() {
            folds[pos % k].push(idx);
        }
    }
    folds
}

/// Runs stratified k-fold CV of a random forest on `ts`.
pub fn cross_validate(ts: &TrainSet, cfg: &ForestConfig, k: usize, seed: u64) -> CvResult {
    let mut rng = Rng::seed_from(seed);
    let folds = stratified_folds(&ts.y, k, &mut rng);
    let mut fold_accuracy = Vec::with_capacity(k);
    let mut fold_macro_f1 = Vec::with_capacity(k);
    for test_fold in &folds {
        let test_set: std::collections::HashSet<usize> = test_fold.iter().copied().collect();
        let train_idx: Vec<usize> = (0..ts.len()).filter(|i| !test_set.contains(i)).collect();
        // Build the training subset.
        let train_x = ts.x.select_rows(&train_idx);
        let train_y: Vec<usize> = train_idx.iter().map(|&i| ts.y[i]).collect();
        let sub = TrainSet {
            x: train_x,
            y: train_y,
            n_classes: ts.n_classes,
        };
        let forest = RandomForest::fit(&sub, cfg);
        // Evaluate on the held-out fold.
        let test_x: Matrix = ts.x.select_rows(test_fold);
        let truth: Vec<usize> = test_fold.iter().map(|&i| ts.y[i]).collect();
        let pred = forest.predict_batch(&test_x);
        fold_accuracy.push(accuracy(&truth, &pred));
        fold_macro_f1.push(macro_f1(&truth, &pred, ts.n_classes));
    }
    CvResult {
        fold_accuracy,
        fold_macro_f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{MaxFeatures, TreeConfig};

    fn blobs() -> TrainSet {
        let mut rng = Rng::seed_from(3);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (6.0, 0.0), (3.0, 6.0)];
        // Unbalanced classes, like the study's clusters.
        for (c, &(x, y)) in centers.iter().enumerate() {
            for _ in 0..(12 + 10 * c) {
                rows.push(vec![rng.normal(x, 0.5), rng.normal(y, 0.5)]);
                labels.push(c);
            }
        }
        TrainSet::new(Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn folds_partition_everything() {
        let ts = blobs();
        let mut rng = Rng::seed_from(1);
        let folds = stratified_folds(&ts.y, 4, &mut rng);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..ts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        let ts = blobs();
        let mut rng = Rng::seed_from(2);
        let k = 4;
        let folds = stratified_folds(&ts.y, k, &mut rng);
        for fold in &folds {
            for c in 0..3 {
                let total = ts.y.iter().filter(|&&y| y == c).count();
                let in_fold = fold.iter().filter(|&&i| ts.y[i] == c).count();
                // Proportional within one sample.
                let expected = total as f64 / k as f64;
                assert!(
                    (in_fold as f64 - expected).abs() <= 1.0,
                    "class {c}: {in_fold} vs expected {expected}"
                );
            }
        }
    }

    #[test]
    fn cv_accuracy_high_on_separable_data() {
        let ts = blobs();
        let cfg = ForestConfig {
            n_trees: 15,
            tree: TreeConfig {
                max_features: MaxFeatures::Sqrt,
                ..TreeConfig::default()
            },
            seed: 5,
        };
        let cv = cross_validate(&ts, &cfg, 4, 7);
        assert_eq!(cv.fold_accuracy.len(), 4);
        assert!(cv.mean_accuracy() > 0.9, "acc {}", cv.mean_accuracy());
        assert!(cv.mean_macro_f1() > 0.9, "f1 {}", cv.mean_macro_f1());
    }

    #[test]
    fn cv_deterministic() {
        let ts = blobs();
        let cfg = ForestConfig {
            n_trees: 5,
            seed: 9,
            ..ForestConfig::default()
        };
        let a = cross_validate(&ts, &cfg, 3, 11);
        let b = cross_validate(&ts, &cfg, 3, 11);
        assert_eq!(a.fold_accuracy, b.fold_accuracy);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn too_many_folds_for_small_class_panics() {
        let ts = TrainSet::new(
            Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]),
            vec![0, 0, 0, 1],
        );
        stratified_folds(&ts.y, 3, &mut Rng::seed_from(0));
    }

    #[test]
    #[should_panic(expected = "need k")]
    fn k1_panics() {
        let ts = blobs();
        stratified_folds(&ts.y, 1, &mut Rng::seed_from(0));
    }
}
