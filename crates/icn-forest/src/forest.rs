//! Random forest classifier.
//!
//! The paper trains "a random forest classifier with 100 trees to infer the
//! antenna cluster based on the mobile service RSCA" (Section 5.1.2) as a
//! surrogate for the agglomerative clustering, then explains it with
//! TreeSHAP. This forest is the standard Breiman construction: bootstrap
//! bagging + per-node √M feature subsampling, soft voting over leaf class
//! distributions, and an out-of-bag error estimate.

use crate::data::TrainSet;
use crate::tree::{DecisionTree, MaxFeatures, TreeConfig};
use icn_stats::{par, Matrix, Rng};

/// Forest hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Number of trees (the paper uses 100).
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
    /// Master seed; each tree gets an independent derived stream.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig {
                max_features: MaxFeatures::Sqrt,
                ..TreeConfig::default()
            },
            seed: 0xF0_5E57,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug)]
pub struct RandomForest {
    /// The member trees.
    pub trees: Vec<DecisionTree>,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features.
    pub n_features: usize,
    /// Out-of-bag accuracy estimate (`None` if no row was ever OOB).
    pub oob_accuracy: Option<f64>,
}

impl RandomForest {
    /// Fits the forest on the full training set. Trees are trained in
    /// parallel; results are deterministic in `cfg.seed` regardless of the
    /// thread schedule (each tree owns a forked RNG stream).
    pub fn fit(ts: &TrainSet, cfg: &ForestConfig) -> RandomForest {
        assert!(cfg.n_trees >= 1, "RandomForest: need at least one tree");
        let _span = icn_obs::Span::enter("forest_fit");
        let root = Rng::seed_from(cfg.seed);
        let results: Vec<(DecisionTree, Vec<usize>)> = par::map_indexed(cfg.n_trees, |t| {
            let mut tree_span = icn_obs::Span::enter("fit_tree");
            tree_span.attr("tree", t as u64);
            let t0 = tree_span.path().is_some().then(std::time::Instant::now);
            let mut rng = root.fork(t as u64);
            let (in_bag, oob) = ts.bootstrap(&mut rng);
            let tree = DecisionTree::fit(ts, &in_bag, &cfg.tree, &mut rng);
            tree_span.attr("nodes", tree.nodes.len() as u64);
            if let Some(t0) = t0 {
                icn_obs::global().record_hist("forest.tree_fit_ns", t0.elapsed().as_nanos() as u64);
            }
            (tree, oob)
        });
        let obs = icn_obs::global();
        if obs.is_enabled() {
            obs.add_counter("forest.trees", results.len() as u64);
            obs.add_counter(
                "forest.nodes",
                results.iter().map(|(t, _)| t.nodes.len() as u64).sum(),
            );
            obs.add_counter("forest.training_rows", ts.len() as u64);
        }

        // OOB vote accumulation over one flat buffer (no per-row `Vec`s),
        // filled in parallel by disjoint row blocks. Every block walks the
        // trees in fit order and picks its rows out of each tree's OOB
        // list (ascending by construction) with a binary-searched window,
        // so each row's vote sum sees the exact tree-order additions of
        // the serial loop — bit-identical at any `ICN_THREADS`.
        let c = ts.n_classes;
        let mut votes = vec![0.0f64; ts.len() * c];
        let rows_per_chunk = ts.len().div_ceil(4 * par::thread_count()).max(64);
        par::fill_chunks(&mut votes, rows_per_chunk * c, |range, slice| {
            let (r0, r1) = (range.start / c, range.end / c);
            for (tree, oob) in &results {
                let lo = oob.partition_point(|&r| r < r0);
                let hi = oob.partition_point(|&r| r < r1);
                for &r in &oob[lo..hi] {
                    let p = tree.predict_proba(ts.x.row(r));
                    let row = &mut slice[(r - r0) * c..(r - r0 + 1) * c];
                    for (v, &pi) in row.iter_mut().zip(p) {
                        *v += pi;
                    }
                }
            }
        });
        let mut correct = 0usize;
        let mut counted = 0usize;
        for r in 0..ts.len() {
            let row = &votes[r * c..(r + 1) * c];
            // A row voted at least once iff it carries positive mass (each
            // OOB visit adds a distribution with some positive entry).
            if row.iter().any(|&v| v > 0.0) {
                counted += 1;
                if icn_stats::rank::argmax(row) == ts.y[r] {
                    correct += 1;
                }
            }
        }
        let oob_accuracy = if counted > 0 {
            Some(correct as f64 / counted as f64)
        } else {
            None
        };

        RandomForest {
            trees: results.into_iter().map(|(t, _)| t).collect(),
            n_classes: ts.n_classes,
            n_features: ts.num_features(),
            oob_accuracy,
        }
    }

    /// Mean class-probability vector over all trees (soft voting).
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        for tree in &self.trees {
            for (a, &p) in acc.iter_mut().zip(tree.predict_proba(x)) {
                *a += p;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Most likely class.
    pub fn predict(&self, x: &[f64]) -> usize {
        icn_stats::rank::argmax(&self.predict_proba(x))
    }

    /// Predicts every row of a matrix (in parallel). Freezes the forest
    /// into its structure-of-arrays form first; callers that classify many
    /// batches should freeze once via [`crate::soa::SoaForest`] and reuse
    /// it.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        assert_eq!(x.cols(), self.n_features, "predict_batch: feature mismatch");
        crate::soa::SoaForest::from_forest(self).predict_batch(x)
    }

    /// Training accuracy on a labelled set.
    pub fn accuracy(&self, ts: &TrainSet) -> f64 {
        let preds = self.predict_batch(&ts.x);
        let hits = preds.iter().zip(&ts.y).filter(|(p, y)| p == y).count();
        hits as f64 / ts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three Gaussian blobs in 4-D.
    fn blobs(n_per: usize, seed: u64) -> TrainSet {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [
            [0.0, 0.0, 0.0, 0.0],
            [4.0, 4.0, 0.0, 0.0],
            [0.0, 4.0, 4.0, 0.0],
        ];
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(center.iter().map(|&m| rng.normal(m, 0.6)).collect());
                labels.push(c);
            }
        }
        TrainSet::new(Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn learns_blobs_with_high_oob() {
        let ts = blobs(40, 1);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 30,
                ..ForestConfig::default()
            },
        );
        assert!(forest.accuracy(&ts) > 0.98);
        let oob = forest.oob_accuracy.expect("some OOB rows");
        assert!(oob > 0.9, "oob {oob}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ts = blobs(20, 2);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 10,
                ..ForestConfig::default()
            },
        );
        let p = forest.predict_proba(ts.x.row(0));
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_in_seed_despite_parallelism() {
        let ts = blobs(20, 3);
        let cfg = ForestConfig {
            n_trees: 12,
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(&ts, &cfg);
        let b = RandomForest::fit(&ts, &cfg);
        let pa = a.predict_batch(&ts.x);
        let pb = b.predict_batch(&ts.x);
        assert_eq!(pa, pb);
        assert_eq!(a.oob_accuracy, b.oob_accuracy);
        // Tree structures match too.
        for (ta, tb) in a.trees.iter().zip(&b.trees) {
            assert_eq!(ta.nodes.len(), tb.nodes.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let ts = blobs(20, 4);
        let a = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 5,
                seed: 1,
                ..ForestConfig::default()
            },
        );
        let b = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 5,
                seed: 2,
                ..ForestConfig::default()
            },
        );
        let differs = a
            .trees
            .iter()
            .zip(&b.trees)
            .any(|(x, y)| x.nodes.len() != y.nodes.len());
        assert!(differs || a.predict_proba(ts.x.row(0)) != b.predict_proba(ts.x.row(0)));
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let train = blobs(40, 5);
        let test = blobs(10, 99);
        let forest = RandomForest::fit(
            &train,
            &ForestConfig {
                n_trees: 30,
                ..ForestConfig::default()
            },
        );
        assert!(forest.accuracy(&test) > 0.9);
    }

    #[test]
    fn single_tree_forest_works() {
        let ts = blobs(15, 6);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 1,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.trees.len(), 1);
        assert!(forest.accuracy(&ts) > 0.6);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn batch_feature_mismatch_panics() {
        let ts = blobs(10, 7);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 2,
                ..ForestConfig::default()
            },
        );
        forest.predict_batch(&Matrix::zeros(3, 2));
    }
}
