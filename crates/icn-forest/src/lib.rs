//! # icn-forest — supervised-learning substrate
//!
//! A from-scratch random forest, the surrogate classifier of Section 5.1.2
//! of the paper: trained on the clustering labels, it both generalises the
//! unsupervised result to unseen antennas (the outdoor comparison of
//! Section 5.3 classifies ~20k outdoor antennas through it) and provides a
//! tree ensemble that `icn-shap`'s TreeSHAP implementation can explain.
//!
//! * [`data`] — labelled training sets, bootstrap sampling, Gini impurity.
//! * [`tree`] — CART decision trees with public flat node layout (cover +
//!   class distribution per node, as TreeSHAP requires).
//! * [`forest`] — bagging, √M feature subsampling, soft voting, OOB error,
//!   deterministic parallel training.
//! * [`importance`] — Gini and permutation importances (the classical
//!   second opinion next to SHAP).
//! * [`metrics`] — accuracy, confusion matrices, macro-F1 for the
//!   surrogate-fidelity experiment.
//! * [`soa`] — fitted trees frozen into structure-of-arrays form, the
//!   hot-path layout shared by batch prediction, TreeSHAP and the stage-5
//!   outdoor classification.
//! * [`crossval`] — stratified k-fold cross-validation, the sturdier
//!   generalisation estimate next to OOB error (B4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod data;
pub mod forest;
pub mod importance;
pub mod metrics;
pub mod soa;
pub mod tree;

pub use crossval::{cross_validate, stratified_folds, CvResult};
pub use data::{gini, TrainSet};
pub use forest::{ForestConfig, RandomForest};
pub use importance::{gini_importance, permutation_importance};
pub use metrics::{accuracy, class_scores, confusion_matrix, macro_f1, ClassScore};
pub use soa::{SoaForest, SoaTree};
pub use tree::{DecisionTree, MaxFeatures, Node, TreeConfig};
