//! Training-set container and sampling helpers.

use icn_stats::{Matrix, Rng};

/// A labelled training set: feature matrix plus dense class labels.
#[derive(Clone, Debug)]
pub struct TrainSet {
    /// Feature matrix (rows = samples).
    pub x: Matrix,
    /// Class label per row, dense in `0..n_classes`.
    pub y: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl TrainSet {
    /// Builds a training set, inferring `n_classes` as `max(y) + 1`.
    ///
    /// # Panics
    /// If lengths mismatch, the set is empty, or features are non-finite.
    pub fn new(x: Matrix, y: Vec<usize>) -> TrainSet {
        assert_eq!(x.rows(), y.len(), "TrainSet: row/label mismatch");
        assert!(x.rows() > 0, "TrainSet: empty");
        assert!(!x.has_non_finite(), "TrainSet: non-finite features");
        let n_classes = y.iter().copied().max().expect("non-empty") + 1;
        TrainSet { x, y, n_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.x.cols()
    }

    /// Draws a bootstrap sample (with replacement) of the row indices and
    /// returns `(in_bag, out_of_bag)` index lists. OOB rows power the
    /// forest's out-of-bag error estimate.
    pub fn bootstrap(&self, rng: &mut Rng) -> (Vec<usize>, Vec<usize>) {
        let n = self.len();
        let mut in_bag = Vec::with_capacity(n);
        let mut chosen = vec![false; n];
        for _ in 0..n {
            let i = rng.index(n);
            in_bag.push(i);
            chosen[i] = true;
        }
        let oob = (0..n).filter(|&i| !chosen[i]).collect();
        (in_bag, oob)
    }

    /// Class distribution (counts) over a set of row indices.
    pub fn class_counts(&self, rows: &[usize]) -> Vec<f64> {
        let mut c = vec![0.0; self.n_classes];
        for &r in rows {
            c[self.y[r]] += 1.0;
        }
        c
    }
}

/// Gini impurity of a class-count vector: `1 − Σ p²`.
pub fn gini(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c / total;
            p * p
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrainSet {
        let x = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 2.0],
            vec![3.0, 1.0],
        ]);
        TrainSet::new(x, vec![0, 0, 1, 2])
    }

    #[test]
    fn infers_class_count() {
        assert_eq!(tiny().n_classes, 3);
        assert_eq!(tiny().len(), 4);
        assert_eq!(tiny().num_features(), 2);
    }

    #[test]
    #[should_panic(expected = "row/label mismatch")]
    fn mismatch_panics() {
        TrainSet::new(Matrix::zeros(2, 2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_features_panic() {
        let mut x = Matrix::zeros(2, 2);
        x.set(0, 0, f64::NAN);
        TrainSet::new(x, vec![0, 1]);
    }

    #[test]
    fn bootstrap_covers_and_excludes() {
        let ts = tiny();
        let mut rng = Rng::seed_from(3);
        let (in_bag, oob) = ts.bootstrap(&mut rng);
        assert_eq!(in_bag.len(), ts.len());
        // OOB and in-bag are disjoint.
        for o in &oob {
            assert!(!in_bag.contains(o));
        }
        // Union of distinct in-bag rows and OOB is the full set.
        let mut distinct = in_bag.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len() + oob.len(), ts.len());
    }

    #[test]
    fn class_counts_per_rows() {
        let ts = tiny();
        assert_eq!(ts.class_counts(&[0, 1, 2, 3]), vec![2.0, 1.0, 1.0]);
        assert_eq!(ts.class_counts(&[2, 2]), vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[4.0, 0.0]), 0.0); // pure
        assert!((gini(&[2.0, 2.0]) - 0.5).abs() < 1e-12); // balanced binary
        assert!((gini(&[1.0, 1.0, 1.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(gini(&[0.0, 0.0]), 0.0); // empty
    }
}
