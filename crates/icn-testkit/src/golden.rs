//! Golden-snapshot hashing of the pipeline stage outputs.
//!
//! Each stage of a pinned study run (synthetic scale 0.05, fast study
//! configuration with the Figure 2 sweep enabled) is reduced to a stable
//! 64-bit FNV-1a hash over a *canonical rendering*: every float is
//! formatted with fixed precision (`{:.10e}`, `-0.0` collapsed to `0.0`),
//! every field is written in a fixed order, and the stage map is stored
//! with sorted keys. The hashes live under `tests/golden/` in the repo;
//! `icn testkit` recomputes and compares them, and `icn testkit --bless`
//! regenerates the file byte-identically.
//!
//! A hash, not the full output, is stored on purpose: the point is drift
//! *detection* (any behavioural change must be consciously blessed), while
//! the differential-oracle and metamorphic tiers explain *what* broke.

use icn_cluster::ClusterPath;
use icn_core::{IcnStudy, StudyConfig};
use icn_obs::Json;
use icn_stats::Matrix;
use icn_synth::{Dataset, SynthConfig};
use std::path::{Path, PathBuf};

/// Schema tag written into golden files.
pub const GOLDEN_SCHEMA: &str = "icn-golden/v1";

/// The scale the checked-in golden snapshots are pinned at.
pub const GOLDEN_SCALE: f64 = 0.05;

/// The scale the sampled-path golden snapshot is pinned at. Deliberately
/// larger than [`GOLDEN_SCALE`]: with the pinned
/// [`SAMPLED_GOLDEN_BUDGET_MB`] budget the population at this scale does
/// not fit the exact path, so the snapshot genuinely exercises the
/// sample-cluster-extend machinery (a budget that admits the whole
/// population would silently degrade the snapshot to exact Ward).
pub const SAMPLED_GOLDEN_SCALE: f64 = 0.1;

/// The memory budget the sampled-path golden run is pinned at. 1 MB caps
/// the sample at ~295 antennas, a strict ~60% sample of the scale-0.1
/// population.
pub const SAMPLED_GOLDEN_BUDGET_MB: usize = 1;

/// Canonical fixed-precision rendering of one float. `-0.0` collapses to
/// `0.0` so the hash cannot depend on sign-of-zero noise.
pub fn canon_f64(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let v = if v == 0.0 { 0.0 } else { v };
    format!("{v:.10e}")
}

/// Streaming FNV-1a 64-bit hasher over canonical renderings. All `feed`
/// methods separate values with `;` so adjacent fields cannot alias.
pub struct Canon {
    state: u64,
}

impl Default for Canon {
    fn default() -> Self {
        Canon::new()
    }
}

impl Canon {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Canon {
        Canon {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feeds raw text.
    pub fn text(&mut self, s: &str) -> &mut Self {
        for &b in s.as_bytes() {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.text_raw(";")
    }

    fn text_raw(&mut self, s: &str) -> &mut Self {
        for &b in s.as_bytes() {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Feeds one float in canonical form.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.text(&canon_f64(v))
    }

    /// Feeds one integer.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.text(&v.to_string())
    }

    /// Feeds a slice of floats.
    pub fn f64s(&mut self, vs: &[f64]) -> &mut Self {
        for &v in vs {
            self.f64(v);
        }
        self
    }

    /// Feeds a slice of integers.
    pub fn usizes(&mut self, vs: &[usize]) -> &mut Self {
        for &v in vs {
            self.usize(v);
        }
        self
    }

    /// Feeds a matrix: shape first, then all cells in row-major order.
    pub fn matrix(&mut self, m: &Matrix) -> &mut Self {
        self.usize(m.rows()).usize(m.cols()).f64s(m.as_slice())
    }

    /// The final hash as a fixed-width hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// Stage name → canonical hash for one pipeline run.
pub struct PipelineSnapshot {
    /// Synthetic scale the run was pinned at.
    pub scale: f64,
    /// `(stage name, hash)` pairs sorted by stage name.
    pub stages: Vec<(String, String)>,
}

/// Runs the pinned study (paper synth config at `scale`, fast study config
/// with the k-sweep enabled) and hashes every stage output.
pub fn snapshot_pipeline(scale: f64) -> PipelineSnapshot {
    let dataset = Dataset::generate(SynthConfig::paper().with_scale(scale));
    let config = StudyConfig {
        run_k_sweep: true,
        ..StudyConfig::fast()
    };
    let study = IcnStudy::run(&dataset, config);
    snapshot_study(scale, &dataset, &study)
}

/// Runs the pinned study down the **sampled** stage-2 path (scalable
/// large-N escape hatch forced on via [`SAMPLED_GOLDEN_BUDGET_MB`]) and
/// hashes every stage output. The sampled path has its own golden file —
/// see [`sampled_golden_file`] — so drift in the sampler, the
/// nearest-centroid extension or the refinement loop is caught exactly
/// like drift in the exact path, without touching the exact-path hashes.
pub fn snapshot_pipeline_sampled(scale: f64) -> PipelineSnapshot {
    let dataset = Dataset::generate(SynthConfig::paper().with_scale(scale));
    let config = StudyConfig {
        run_k_sweep: true,
        cluster_path: ClusterPath::Sampled,
        cluster_budget_mb: SAMPLED_GOLDEN_BUDGET_MB,
        ..StudyConfig::fast()
    };
    let study = IcnStudy::run(&dataset, config);
    snapshot_study(scale, &dataset, &study)
}

/// Hashes every stage of an already-run study (exposed so tests can reuse
/// a fixture instead of re-running the pipeline).
pub fn snapshot_study(scale: f64, dataset: &Dataset, study: &IcnStudy) -> PipelineSnapshot {
    let mut stages = Vec::new();

    let mut c = Canon::new();
    c.text("dataset")
        .matrix(&dataset.indoor_totals)
        .matrix(&dataset.outdoor_totals)
        .usize(dataset.num_antennas())
        .usize(dataset.num_services());
    stages.push(("dataset".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("transform")
        .usizes(&study.live_rows)
        .matrix(&study.rsca);
    stages.push(("stage1_transform".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("cluster");
    for m in &study.history.merges {
        c.usize(m.a).usize(m.b).f64(m.height).usize(m.size);
    }
    c.usizes(&study.labels)
        .usizes(&study.labels_coarse)
        .usizes(&study.consolidation);
    for q in &study.k_sweep {
        c.usize(q.k).f64(q.silhouette).f64(q.dunn);
    }
    stages.push(("stage2_cluster".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("surrogate").f64(study.surrogate_accuracy);
    match study.surrogate_oob {
        Some(oob) => c.f64(oob),
        None => c.text("no-oob"),
    };
    c.usizes(&study.surrogate.predict_batch(&study.rsca));
    for ex in &study.explanations {
        c.usize(ex.class);
        for inf in &ex.influences {
            c.usize(inf.feature)
                .f64(inf.mean_abs_shap)
                .f64(inf.shap_value_correlation)
                .f64(inf.mean_shap_on_members)
                .text(&format!("{:?}", inf.direction));
        }
    }
    stages.push(("stage3_surrogate".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("environments");
    for row in &study.crosstab.counts {
        c.usizes(row);
    }
    c.usizes(&study.crosstab.cluster_sizes)
        .usizes(&study.crosstab.env_sizes)
        .f64s(&study.crosstab.paris_share);
    stages.push(("stage4_environments".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("outdoor")
        .usizes(&study.outdoor.predicted)
        .f64s(&study.outdoor.distribution)
        .usize(study.outdoor.dominant.0)
        .f64(study.outdoor.dominant.1);
    stages.push(("stage5_outdoor".to_string(), c.hex()));

    stages.sort_by(|a, b| a.0.cmp(&b.0));
    PipelineSnapshot { scale, stages }
}

/// Runs the pinned study **with the stage-6 forecast phase enabled** and
/// hashes the forecast artefacts: the cluster series, all three model
/// forecasts, the backtest scores and the anomaly scores/hour sets. The
/// five pipeline stages are deliberately *not* re-hashed here — they have
/// their own golden file — so this snapshot moves only when forecasting
/// behaviour moves.
pub fn snapshot_forecast(scale: f64) -> PipelineSnapshot {
    let dataset = Dataset::generate(SynthConfig::paper().with_scale(scale));
    let config = StudyConfig {
        run_forecast: true,
        ..StudyConfig::fast()
    };
    let study = IcnStudy::run(&dataset, config);
    let report = study.forecast.as_ref().expect("run_forecast was set");
    let mut stages = Vec::new();

    let mut c = Canon::new();
    c.text("forecast_series");
    for cl in &report.clusters {
        c.usize(cl.cluster).usize(cl.n_antennas).f64s(&cl.series);
    }
    stages.push(("forecast_series".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("forecast_models")
        .usize(report.horizon)
        .text(report.model.as_str());
    for cl in &report.clusters {
        c.usize(cl.cluster)
            .f64s(&cl.naive)
            .f64s(&cl.ets)
            .f64s(&cl.forest)
            .usize(cl.busy_hour);
    }
    stages.push(("forecast_models".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("forecast_backtest");
    for cl in &report.clusters {
        for s in [cl.backtest.naive, cl.backtest.ets, cl.backtest.forest] {
            c.f64(s.mae).f64(s.smape);
        }
    }
    stages.push(("forecast_backtest".to_string(), c.hex()));

    let mut c = Canon::new();
    c.text("forecast_anomalies");
    for cl in &report.clusters {
        c.usize(cl.cluster)
            .usizes(&cl.anomalies.flagged)
            .f64s(&cl.anomalies.scores);
    }
    stages.push(("forecast_anomalies".to_string(), c.hex()));

    stages.sort_by(|a, b| a.0.cmp(&b.0));
    PipelineSnapshot { scale, stages }
}

/// The golden file for `scale` inside `dir` (e.g. `pipeline-0.05.json`).
pub fn golden_file(dir: &Path, scale: f64) -> PathBuf {
    dir.join(format!("pipeline-{scale}.json"))
}

/// The golden file for the forecast snapshot inside `dir`
/// (e.g. `forecast-0.05.json`).
pub fn forecast_golden_file(dir: &Path, scale: f64) -> PathBuf {
    dir.join(format!("forecast-{scale}.json"))
}

/// The golden file for the sampled-path snapshot inside `dir`. The name
/// carries the pinned scale so an accidental re-pin is visible in review.
pub fn sampled_golden_file(dir: &Path) -> PathBuf {
    dir.join(format!("pipeline-sampled-{SAMPLED_GOLDEN_SCALE}.json"))
}

/// The repo's checked-in golden directory (`tests/golden/` at the
/// workspace root), resolved relative to this crate's source location.
pub fn default_golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Renders a snapshot as the exact bytes stored in the golden file:
/// pretty-printed JSON with sorted stage keys and a trailing newline.
pub fn render_golden(snap: &PipelineSnapshot) -> String {
    let stages: Vec<(&str, Json)> = snap
        .stages
        .iter()
        .map(|(name, hash)| (name.as_str(), Json::str(hash)))
        .collect();
    let out = Json::obj(vec![
        ("schema", Json::str(GOLDEN_SCHEMA)),
        ("scale", Json::num(snap.scale)),
        ("stages", Json::obj(stages)),
    ]);
    out.to_pretty() // to_pretty already ends with a newline
}

/// Writes (blesses) the golden file for a snapshot, creating `dir` if
/// needed. Returns the path written.
pub fn write_golden(dir: &Path, snap: &PipelineSnapshot) -> std::io::Result<PathBuf> {
    let path = golden_file(dir, snap.scale);
    write_golden_at(&path, snap)?;
    Ok(path)
}

/// Writes (blesses) a snapshot to an explicit path, creating the parent
/// directory if needed. Used for snapshots whose file name does not follow
/// the `pipeline-<scale>.json` convention (e.g. the ingest golden).
pub fn write_golden_at(path: &Path, snap: &PipelineSnapshot) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render_golden(snap))
}

/// Compares a freshly computed snapshot against the blessed golden file.
/// `Ok(())` means no drift; `Err` carries one human-readable line per
/// divergence (missing file, missing/extra stage, hash mismatch).
pub fn compare_golden(dir: &Path, snap: &PipelineSnapshot) -> Result<(), Vec<String>> {
    compare_golden_at(&golden_file(dir, snap.scale), snap)
}

/// [`compare_golden`] against an explicit golden-file path.
pub fn compare_golden_at(path: &Path, snap: &PipelineSnapshot) -> Result<(), Vec<String>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            return Err(vec![format!(
                "golden file {} unreadable ({e}); run `icn testkit --bless`",
                path.display()
            )])
        }
    };
    let parsed = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            return Err(vec![format!(
                "golden file {} is not JSON: {e}",
                path.display()
            )])
        }
    };
    let mut drift = Vec::new();
    if parsed.get("schema").and_then(Json::as_str) != Some(GOLDEN_SCHEMA) {
        drift.push(format!(
            "golden file {} has unexpected schema",
            path.display()
        ));
    }
    let blessed: Vec<(String, String)> = parsed
        .get("stages")
        .and_then(Json::entries)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|h| (k.clone(), h.to_string())))
                .collect()
        })
        .unwrap_or_default();
    for (name, hash) in &snap.stages {
        match blessed.iter().find(|(k, _)| k == name) {
            None => drift.push(format!("stage {name}: no blessed hash")),
            Some((_, b)) if b != hash => {
                drift.push(format!(
                    "stage {name}: drift (blessed {b}, computed {hash})"
                ));
            }
            Some(_) => {}
        }
    }
    for (name, _) in &blessed {
        if !snap.stages.iter().any(|(k, _)| k == name) {
            drift.push(format!("stage {name}: blessed but no longer computed"));
        }
    }
    if drift.is_empty() {
        Ok(())
    } else {
        Err(drift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_f64_is_fixed_precision_and_sign_stable() {
        assert_eq!(canon_f64(0.0), canon_f64(-0.0));
        assert_eq!(canon_f64(1.0), "1.0000000000e0");
        assert_eq!(canon_f64(0.05), "5.0000000000e-2");
        assert_eq!(canon_f64(f64::INFINITY), "inf");
        // 10 fractional digits: quiet last-bit noise below that is absorbed.
        assert_eq!(canon_f64(1.0 + 1e-13), canon_f64(1.0));
        assert_ne!(canon_f64(1.0 + 1e-9), canon_f64(1.0));
    }

    #[test]
    fn hasher_separates_adjacent_fields() {
        let mut a = Canon::new();
        a.text("ab").text("c");
        let mut b = Canon::new();
        b.text("a").text("bc");
        assert_ne!(a.hex(), b.hex());
        // And is order sensitive.
        let mut c = Canon::new();
        c.usize(1).usize(2);
        let mut d = Canon::new();
        d.usize(2).usize(1);
        assert_ne!(c.hex(), d.hex());
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a 64 of "a" (no separator involved).
        let mut c = Canon::new();
        c.text_raw("a");
        assert_eq!(c.hex(), "af63dc4c8601ec8c");
    }

    #[test]
    fn render_is_byte_stable() {
        let snap = PipelineSnapshot {
            scale: 0.05,
            stages: vec![
                ("dataset".into(), "00ff".into()),
                ("stage1_transform".into(), "abcd".into()),
            ],
        };
        let a = render_golden(&snap);
        let b = render_golden(&snap);
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("icn-golden/v1"));
    }

    #[test]
    fn compare_reports_drift_and_missing_stages() {
        let dir = std::env::temp_dir().join(format!("icn-golden-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snap = PipelineSnapshot {
            scale: 0.5,
            stages: vec![("dataset".into(), "aa".into())],
        };
        // Missing file is drift.
        assert!(compare_golden(&dir, &snap).is_err());
        // Blessed copy matches itself.
        write_golden(&dir, &snap).unwrap();
        assert!(compare_golden(&dir, &snap).is_ok());
        // A changed hash is reported by stage name.
        let moved = PipelineSnapshot {
            scale: 0.5,
            stages: vec![("dataset".into(), "bb".into())],
        };
        let drift = compare_golden(&dir, &moved).unwrap_err();
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("dataset"), "{drift:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
