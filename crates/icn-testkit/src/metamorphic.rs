//! Metamorphic-testing helpers.
//!
//! Metamorphic tests assert that a pipeline stage *commutes* with an input
//! transformation whose effect on the output is known exactly: permuting
//! antenna rows must permute cluster labels the same way, uniformly
//! rescaling a row must leave its RCA untouched, relabeling services must
//! relabel SHAP attributions. This module provides the transformations and
//! the equivalence predicates; the per-crate `tests/stage*_oracles.rs`
//! files state the invariants.

use icn_forest::RandomForest;
use icn_stats::{Matrix, Rng};

/// A uniformly random permutation of `0..n` (Fisher–Yates over the
/// workspace's deterministic [`Rng`]).
pub fn permutation(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        p.swap(i, j);
    }
    p
}

/// The identity permutation of `0..n`.
pub fn identity_permutation(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// The inverse permutation: `invert(p)[p[i]] == i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Applies a permutation to a slice: `out[i] = v[perm[i]]`.
pub fn permute_slice<T: Clone>(v: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&p| v[p].clone()).collect()
}

/// Row permutation of a matrix: `out.row(i) == m.row(perm[i])`.
pub fn permute_rows(m: &Matrix, perm: &[usize]) -> Matrix {
    assert_eq!(perm.len(), m.rows(), "permute_rows: length mismatch");
    m.select_rows(perm)
}

/// Column permutation of a matrix: `out[(i, j)] == m[(i, perm[j])]`.
pub fn permute_cols(m: &Matrix, perm: &[usize]) -> Matrix {
    assert_eq!(perm.len(), m.cols(), "permute_cols: length mismatch");
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        for (j, &p) in perm.iter().enumerate() {
            out.set(i, j, m.get(i, p));
        }
    }
    out
}

/// Renames label *values* through a permutation: label `l` becomes
/// `perm[l]`. (Contrast with [`permute_slice`], which moves positions.)
pub fn permute_labels(labels: &[usize], perm: &[usize]) -> Vec<usize> {
    labels.iter().map(|&l| perm[l]).collect()
}

/// Multiplies each row `i` of `m` by `factors[i]` — the popularity-bias
/// transformation that RCA/RSCA must be invariant to.
pub fn scale_rows(m: &Matrix, factors: &[f64]) -> Matrix {
    assert_eq!(factors.len(), m.rows(), "scale_rows: length mismatch");
    let mut out = m.clone();
    for i in 0..out.rows() {
        let f = factors[i];
        for v in out.row_mut(i) {
            *v *= f;
        }
    }
    out
}

/// `true` when two labelings describe the same partition of the index set
/// (equal up to a bijective renaming of label values).
pub fn same_partition(a: &[usize], b: &[usize]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    use std::collections::HashMap;
    let mut fwd: HashMap<usize, usize> = HashMap::new();
    let mut bwd: HashMap<usize, usize> = HashMap::new();
    for (&la, &lb) in a.iter().zip(b) {
        if *fwd.entry(la).or_insert(lb) != lb || *bwd.entry(lb).or_insert(la) != la {
            return false;
        }
    }
    true
}

/// Rewrites every split in a fitted forest so that it reads its feature
/// from the permuted column layout produced by [`permute_cols`]: if
/// `x'[j] = x[perm[j]]`, a split on original feature `f` becomes a split
/// on `invert(perm)[f]`, and the two forests predict identically on
/// correspondingly permuted inputs. Used for the service-relabel
/// equivariance of SHAP attributions.
pub fn permute_forest_features(forest: &RandomForest, perm: &[usize]) -> RandomForest {
    assert_eq!(
        perm.len(),
        forest.n_features,
        "permute_forest_features: length mismatch"
    );
    let inv = invert_permutation(perm);
    let mut out = forest.clone();
    for tree in &mut out.trees {
        for node in &mut tree.nodes {
            if !node.is_leaf() {
                node.feature = inv[node.feature];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijective() {
        icn_stats::check::cases(16, |_, rng| {
            let n = icn_stats::check::len_in(rng, 1, 40);
            let p = permutation(rng, n);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, identity_permutation(n));
            let inv = invert_permutation(&p);
            for i in 0..n {
                assert_eq!(inv[p[i]], i);
            }
        });
    }

    #[test]
    fn permute_rows_then_inverse_is_identity() {
        icn_stats::check::cases(8, |_, rng| {
            let m = icn_stats::check::uniform_matrix(rng, 6, 4, -1.0, 1.0);
            let p = permutation(rng, 6);
            let back = permute_rows(&permute_rows(&m, &p), &invert_permutation(&p));
            assert_eq!(back.as_slice(), m.as_slice());
        });
    }

    #[test]
    fn permute_cols_moves_columns() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let p = vec![2, 0, 1];
        let out = permute_cols(&m, &p);
        assert_eq!(out.as_slice(), &[3.0, 1.0, 2.0, 6.0, 4.0, 5.0]);
    }

    #[test]
    fn same_partition_accepts_renaming_rejects_splits() {
        assert!(same_partition(&[0, 0, 1, 2], &[5, 5, 7, 9]));
        assert!(!same_partition(&[0, 0, 1, 2], &[0, 1, 1, 2]));
        assert!(!same_partition(&[0, 0, 1, 1], &[0, 0, 0, 1]));
        assert!(!same_partition(&[0, 1], &[0, 1, 1]));
    }

    #[test]
    fn scale_rows_scales_each_row_independently() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = scale_rows(&m, &[2.0, 10.0]);
        assert_eq!(out.as_slice(), &[2.0, 4.0, 30.0, 40.0]);
    }
}
