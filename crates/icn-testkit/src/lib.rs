//! # icn-testkit — correctness tooling for the ICN reproduction
//!
//! The analysis pipeline (RCA/RSCA → Ward agglomeration → k-selection →
//! RF surrogate → TreeSHAP) is a chain of numeric stages where a silent
//! regression in any link corrupts every downstream figure. This crate is
//! the workspace's defence in depth, three tiers of checks that every
//! pipeline crate pulls in as a dev-dependency:
//!
//! * [`oracle`] — **differential oracles**: small, obviously-correct naive
//!   reference implementations (per-cell RCA/RSCA, O(n³) greedy Ward,
//!   brute-force silhouette/Dunn, per-sample SHAP recomputation,
//!   sort-based histogram quantiles) that the optimized paths are
//!   compared against over seeded random inputs.
//! * [`metamorphic`] — **metamorphic invariants**: input-transformation
//!   helpers (row/column permutations, uniform row rescales, label
//!   relabelings) plus the partition/equivalence predicates that assert
//!   the pipeline commutes with them.
//! * [`golden`] — **golden snapshots**: a stable canonical hash
//!   (fixed-precision float formatting, sorted keys) of every pipeline
//!   stage's output at a pinned synthetic scale, stored under
//!   `tests/golden/` and regenerated via `icn testkit --bless`.
//! * [`ingest`] — the batch-vs-streaming differential oracle for
//!   `icn-ingest`: a naive sequential reference implementation, a
//!   bounded-reorder metamorphic transformation, and the pinned
//!   checkpoint/kill/resume golden recipe.
//! * [`forecast`] — oracles for `icn-forecast`: hand-walked
//!   seasonal-naive and Holt–Winters recurrences, a brute-force
//!   re-sorting rolling median/MAD, and the F1 set metric the anomaly
//!   detector is scored with.
//!
//! The shrinking/persistence side of the property harness lives in
//! [`icn_stats::check`] so that even the zero-dependency numeric substrate
//! can use it; this crate builds the pipeline-aware tiers on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forecast;
pub mod golden;
pub mod ingest;
pub mod metamorphic;
pub mod oracle;

pub use forecast::{brute_rolling_median_mad, oracle_ets, oracle_seasonal_naive, set_f1};
pub use golden::{
    compare_golden, compare_golden_at, default_golden_dir, forecast_golden_file, golden_file,
    render_golden, sampled_golden_file, snapshot_forecast, snapshot_pipeline,
    snapshot_pipeline_sampled, write_golden, write_golden_at, PipelineSnapshot,
};
pub use ingest::{
    assert_bits_eq, ingest_golden_file, ingest_golden_window, ingest_via_pipeline, naive_ingest,
    shuffle_within_blocks, snapshot_ingest, NaiveIngest,
};
pub use metamorphic::{
    identity_permutation, invert_permutation, permutation, permute_cols, permute_forest_features,
    permute_labels, permute_rows, permute_slice, same_partition, scale_rows,
};
pub use oracle::{
    hist_of, naive_accuracy, naive_agglomerate, naive_ari, naive_dunn, naive_forest_shap,
    naive_nmi, naive_predict_batch, naive_predict_proba, naive_rca, naive_rsca, naive_silhouette,
    naive_tree_shap, per_sample_shap_batch, sort_quantile,
};
