//! Naive reference implementations (differential oracles).
//!
//! Each function here is a deliberately slow, obviously-correct
//! re-statement of a pipeline algorithm, written straight from the
//! defining equation with no shared marginals, no NN-chain, no batching
//! and no parallelism. Tests generate random inputs and require the
//! optimized path to agree within floating-point tolerance — any
//! divergence is a real algorithmic regression, not a tuning artefact.

use icn_cluster::{Condensed, Linkage, Merge, MergeHistory};
use icn_forest::{DecisionTree, RandomForest, TrainSet};
use icn_stats::Matrix;

/// Eq. (1) computed per cell with all four marginals re-derived from
/// scratch inside the inner loop — O(N²M²) on purpose, so no intermediate
/// can be silently wrong.
pub fn naive_rca(t: &Matrix) -> Matrix {
    let (n, m) = t.shape();
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..m {
            total += t.get(i, j);
        }
    }
    assert!(total > 0.0, "naive_rca: matrix has no traffic");
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            let ti: f64 = (0..m).map(|jj| t.get(i, jj)).sum();
            let tj: f64 = (0..n).map(|ii| t.get(ii, j)).sum();
            if ti > 0.0 && tj > 0.0 {
                out.set(i, j, (t.get(i, j) / ti) / (tj / total));
            }
        }
    }
    out
}

/// Eq. (1) then Eq. (2), cell by cell.
pub fn naive_rsca(t: &Matrix) -> Matrix {
    naive_rca(t).map(|v| (v - 1.0) / (v + 1.0))
}

/// O(n³) greedy agglomeration: scan every alive pair for the global
/// minimum, merge it, update the remaining distances with the
/// Lance-Williams recurrence. For reducible linkages (all four in
/// [`Linkage::ALL`]) this produces the same hierarchy as the NN-chain
/// algorithm; it is the oracle `agglomerate` is tested against.
pub fn naive_agglomerate(data: &Matrix, linkage: Linkage) -> MergeHistory {
    let n = data.rows();
    assert!(n >= 2, "naive_agglomerate: need at least 2 observations");
    let metric = linkage.base_metric();
    let mut d = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            d[i][j] = metric.distance(data.row(i), data.row(j));
        }
    }
    let mut alive: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];
    let mut label: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n - 1);
    while alive.len() > 1 {
        let (mut bi, mut bj, mut bd) = (usize::MAX, usize::MAX, f64::INFINITY);
        for (ai, &i) in alive.iter().enumerate() {
            for &j in &alive[ai + 1..] {
                if d[i][j] < bd {
                    bd = d[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        for &k in &alive {
            if k == bi || k == bj {
                continue;
            }
            let v = linkage.update(
                d[bi][k],
                d[bj][k],
                bd,
                size[bi] as f64,
                size[bj] as f64,
                size[k] as f64,
            );
            d[bi][k] = v;
            d[k][bi] = v;
        }
        merges.push(Merge {
            a: label[bi],
            b: label[bj],
            height: linkage.to_height(bd),
            size: size[bi] + size[bj],
        });
        size[bi] += size[bj];
        label[bi] = n + merges.len() - 1;
        alive.retain(|&x| x != bj);
    }
    MergeHistory { n, linkage, merges }
}

/// Rousseeuw's silhouette computed point by point from the definition,
/// with no shared per-cluster sums and no parallel reduction.
pub fn naive_silhouette(cond: &Condensed, labels: &[usize]) -> f64 {
    let n = cond.len();
    assert_eq!(labels.len(), n, "naive_silhouette: label length mismatch");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(k >= 2, "naive_silhouette: need at least 2 clusters");
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        let own_size = labels.iter().filter(|&&l| l == own).count();
        if own_size <= 1 {
            continue; // singleton convention: contributes 0
        }
        let mean_to = |c: usize| -> f64 {
            let members: Vec<usize> = (0..n).filter(|&j| j != i && labels[j] == c).collect();
            members.iter().map(|&j| cond.get(i, j)).sum::<f64>() / members.len() as f64
        };
        let a = mean_to(own);
        let b = (0..k)
            .filter(|&c| c != own && labels.contains(&c))
            .map(mean_to)
            .fold(f64::INFINITY, f64::min);
        if a.max(b) > 0.0 {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Dunn index from the definition: min over inter-cluster pairs divided by
/// max over intra-cluster pairs, each found by a full pair scan.
pub fn naive_dunn(cond: &Condensed, labels: &[usize]) -> f64 {
    let n = cond.len();
    assert_eq!(labels.len(), n, "naive_dunn: label length mismatch");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(k >= 2, "naive_dunn: need at least 2 clusters");
    let mut min_inter = f64::INFINITY;
    let mut max_diam = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cond.get(i, j);
            if labels[i] == labels[j] {
                max_diam = max_diam.max(d);
            } else {
                min_inter = min_inter.min(d);
            }
        }
    }
    if max_diam == 0.0 {
        f64::INFINITY
    } else {
        min_inter / max_diam
    }
}

/// Adjusted Rand index by literal pair counting — O(n²) over every
/// unordered item pair, tallying the 2×2 co-membership table
/// (same/same, same/diff, diff/same, diff/diff) and applying the
/// Hubert–Arabie closed form `2(ad − bc) / ((a+b)(b+d) + (a+c)(c+d))`.
/// No contingency table, no binomial marginals — a genuinely different
/// derivation from `icn_cluster::adjusted_rand_index`, which works from
/// the contingency-table formula.
pub fn naive_ari(labels_a: &[usize], labels_b: &[usize]) -> f64 {
    let n = labels_a.len();
    assert_eq!(n, labels_b.len(), "naive_ari: length mismatch");
    assert!(n > 1, "naive_ari: need at least 2 items");
    // a = agree-agree, b = same in A only, c = same in B only, d = neither.
    let (mut a, mut b, mut c, mut d) = (0f64, 0f64, 0f64, 0f64);
    for i in 0..n {
        for j in i + 1..n {
            match (labels_a[i] == labels_a[j], labels_b[i] == labels_b[j]) {
                (true, true) => a += 1.0,
                (true, false) => b += 1.0,
                (false, true) => c += 1.0,
                (false, false) => d += 1.0,
            }
        }
    }
    let denom = (a + b) * (b + d) + (a + c) * (c + d);
    if denom == 0.0 {
        // Both partitions trivial: all pairs agree (b = c = 0) → 1.
        return if b == 0.0 && c == 0.0 { 1.0 } else { 0.0 };
    }
    2.0 * (a * d - b * c) / denom
}

/// Normalised mutual information straight from the definition:
/// `I(A;B) / ((H(A) + H(B)) / 2)`, with every probability re-counted by a
/// full scan per label value (no shared marginals, no contingency reuse).
pub fn naive_nmi(labels_a: &[usize], labels_b: &[usize]) -> f64 {
    let n = labels_a.len();
    assert_eq!(n, labels_b.len(), "naive_nmi: length mismatch");
    assert!(n > 0, "naive_nmi: empty labellings");
    let nf = n as f64;
    let count = |ls: &[usize], v: usize| ls.iter().filter(|&&l| l == v).count() as f64;
    let distinct = |ls: &[usize]| -> Vec<usize> {
        let mut vs: Vec<usize> = ls.to_vec();
        vs.sort_unstable();
        vs.dedup();
        vs
    };
    let entropy = |ls: &[usize]| -> f64 {
        distinct(ls)
            .iter()
            .map(|&v| {
                let p = count(ls, v) / nf;
                -p * p.ln()
            })
            .sum()
    };
    let mut mi = 0.0;
    for &va in &distinct(labels_a) {
        for &vb in &distinct(labels_b) {
            let joint = labels_a
                .iter()
                .zip(labels_b)
                .filter(|&(&la, &lb)| la == va && lb == vb)
                .count() as f64;
            if joint > 0.0 {
                let pij = joint / nf;
                mi += pij * ((pij * nf * nf) / (count(labels_a, va) * count(labels_b, vb))).ln();
            }
        }
    }
    let denom = 0.5 * (entropy(labels_a) + entropy(labels_b));
    if denom <= 0.0 {
        1.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Sort-based quantile oracle for [`icn_obs::Histogram`].
///
/// The histogram promises *exact* rank selection at bucket resolution:
/// `quantile(q)` must equal the bucket floor of the bucket containing the
/// `clamp(⌈q·n⌉, 1, n)`-th smallest sample. This oracle restates that
/// contract directly — sort the raw samples, pick the ranked one, round it
/// down through the same bucket layout — so a differential test over
/// random samples catches any drift in the cumulative-walk implementation
/// (off-by-one ranks, boundary buckets, saturation).
///
/// Panics on an empty sample set: the quantile of nothing is a test bug,
/// not a value.
pub fn sort_quantile(samples: &[u64], q: f64) -> u64 {
    assert!(!samples.is_empty(), "sort_quantile: no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = icn_obs::Histogram::quantile_rank(sorted.len() as u64, q);
    let v = sorted[(rank - 1) as usize];
    icn_obs::Histogram::bucket_floor(icn_obs::Histogram::bucket_index(v))
}

/// Builds a histogram from raw samples (convenience for differential and
/// metamorphic histogram tests).
pub fn hist_of(samples: &[u64]) -> icn_obs::Histogram {
    let mut h = icn_obs::Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Per-sample forest prediction, one row at a time (oracle for the
/// parallel `predict_batch`).
pub fn naive_predict_batch(forest: &RandomForest, x: &Matrix) -> Vec<usize> {
    (0..x.rows()).map(|i| forest.predict(x.row(i))).collect()
}

/// Soft-voting class probabilities recomputed by walking every tree by
/// hand through the public node layout, bypassing the forest's own
/// traversal code entirely.
pub fn naive_predict_proba(forest: &RandomForest, x: &[f64]) -> Vec<f64> {
    let mut acc = vec![0.0f64; forest.n_classes];
    for tree in &forest.trees {
        let mut node = 0usize;
        loop {
            let nd = &tree.nodes[node];
            if nd.is_leaf() {
                for (c, &p) in nd.distribution.iter().enumerate() {
                    acc[c] += p;
                }
                break;
            }
            node = if x[nd.feature] <= nd.threshold {
                nd.left
            } else {
                nd.right
            };
        }
    }
    for p in &mut acc {
        *p /= forest.trees.len() as f64;
    }
    acc
}

/// Training-set accuracy recomputed sample by sample.
pub fn naive_accuracy(forest: &RandomForest, ts: &TrainSet) -> f64 {
    let hits = (0..ts.x.rows())
        .filter(|&i| forest.predict(ts.x.row(i)) == ts.y[i])
        .count();
    hits as f64 / ts.x.rows() as f64
}

/// The original **recursive** path-dependent TreeSHAP implementation,
/// preserved verbatim as the differential oracle for the iterative,
/// allocation-free kernel that replaced it in `icn-shap`: it clones the
/// path `Vec` at every descent step and clone-unwinds per leaf feature,
/// exactly as the historical code did, so a `to_bits` comparison against
/// `icn_shap::tree_shap` pins the rewrite to bit-identical arithmetic.
pub fn naive_tree_shap(tree: &DecisionTree, x: &[f64]) -> Vec<Vec<f64>> {
    #[derive(Clone, Copy)]
    struct PathElem {
        feature: usize,
        zero_fraction: f64,
        one_fraction: f64,
        weight: f64,
    }

    fn extend(path: &mut Vec<PathElem>, zero_fraction: f64, one_fraction: f64, feature: usize) {
        let l = path.len();
        path.push(PathElem {
            feature,
            zero_fraction,
            one_fraction,
            weight: if l == 0 { 1.0 } else { 0.0 },
        });
        for i in (0..l).rev() {
            path[i + 1].weight += one_fraction * path[i].weight * (i + 1) as f64 / (l + 1) as f64;
            path[i].weight = zero_fraction * path[i].weight * (l - i) as f64 / (l + 1) as f64;
        }
    }

    fn unwind(path: &mut Vec<PathElem>, i: usize) {
        let l = path.len() - 1;
        let one = path[i].one_fraction;
        let zero = path[i].zero_fraction;
        let mut n = path[l].weight;
        if one != 0.0 {
            for j in (0..l).rev() {
                let t = path[j].weight;
                path[j].weight = n * (l + 1) as f64 / ((j + 1) as f64 * one);
                n = t - path[j].weight * zero * (l - j) as f64 / (l + 1) as f64;
            }
        } else {
            for j in (0..l).rev() {
                path[j].weight = path[j].weight * (l + 1) as f64 / (zero * (l - j) as f64);
            }
        }
        for j in i..l {
            path[j].feature = path[j + 1].feature;
            path[j].zero_fraction = path[j + 1].zero_fraction;
            path[j].one_fraction = path[j + 1].one_fraction;
        }
        path.pop();
    }

    fn unwound_weight_sum(path: &[PathElem], i: usize) -> f64 {
        let mut scratch = path.to_vec();
        unwind(&mut scratch, i);
        scratch.iter().map(|e| e.weight).sum()
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        tree: &DecisionTree,
        x: &[f64],
        phi: &mut [Vec<f64>],
        node_idx: usize,
        mut path: Vec<PathElem>,
        zero_fraction: f64,
        one_fraction: f64,
        feature: usize,
    ) {
        extend(&mut path, zero_fraction, one_fraction, feature);
        let node = &tree.nodes[node_idx];

        if node.is_leaf() {
            for i in 1..path.len() {
                let w = unwound_weight_sum(&path, i);
                let el = path[i];
                let scale = w * (el.one_fraction - el.zero_fraction);
                let f = el.feature;
                for (c, &v) in node.distribution.iter().enumerate() {
                    phi[f][c] += scale * v;
                }
            }
            return;
        }

        let (hot, cold) = if x[node.feature] <= node.threshold {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        let hot_zero = tree.nodes[hot].cover / node.cover;
        let cold_zero = tree.nodes[cold].cover / node.cover;
        let mut incoming_zero = 1.0;
        let mut incoming_one = 1.0;

        if let Some(k) = path
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, e)| e.feature == node.feature)
            .map(|(k, _)| k)
        {
            incoming_zero = path[k].zero_fraction;
            incoming_one = path[k].one_fraction;
            unwind(&mut path, k);
        }

        recurse(
            tree,
            x,
            phi,
            hot,
            path.clone(),
            incoming_zero * hot_zero,
            incoming_one,
            node.feature,
        );
        recurse(
            tree,
            x,
            phi,
            cold,
            path,
            incoming_zero * cold_zero,
            0.0,
            node.feature,
        );
    }

    assert_eq!(
        x.len(),
        tree.n_features,
        "naive_tree_shap: feature mismatch"
    );
    let mut phi = vec![vec![0.0f64; tree.n_classes]; tree.n_features];
    if tree.nodes[0].is_leaf() {
        return phi;
    }
    recurse(
        tree,
        x,
        &mut phi,
        0,
        Vec::with_capacity(16),
        1.0,
        1.0,
        usize::MAX,
    );
    phi
}

/// Forest SHAP through [`naive_tree_shap`]: per-tree explanations summed
/// in forest order and scaled by 1/T — the historical accumulation
/// pattern, for bit-exact differential tests against the batched kernel.
pub fn naive_forest_shap(forest: &RandomForest, x: &[f64]) -> Vec<Vec<f64>> {
    let mut acc = vec![vec![0.0f64; forest.n_classes]; forest.n_features];
    for tree in &forest.trees {
        let phi = naive_tree_shap(tree, x);
        for (a_row, p_row) in acc.iter_mut().zip(&phi) {
            for (a, &p) in a_row.iter_mut().zip(p_row) {
                *a += p;
            }
        }
    }
    let inv = 1.0 / forest.trees.len() as f64;
    for row in &mut acc {
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    acc
}

/// Per-sample SHAP recomputation: runs the single-sample [`forest_shap`]
/// path row by row and reassembles the per-class matrices that the batched
/// `forest_shap_batch` produces in one pass.
///
/// [`forest_shap`]: icn_shap::forest_shap
pub fn per_sample_shap_batch(forest: &RandomForest, x: &Matrix) -> Vec<Matrix> {
    let (n, m) = x.shape();
    let mut per_class = vec![Matrix::zeros(n, m); forest.n_classes];
    for i in 0..n {
        let phi = icn_shap::forest_shap(forest, x.row(i));
        for (j, per_feature) in phi.iter().enumerate() {
            for (c, &v) in per_feature.iter().enumerate() {
                per_class[c].set(i, j, v);
            }
        }
    }
    per_class
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Metric;

    #[test]
    fn naive_rca_hand_computed() {
        let t = Matrix::from_vec(2, 2, vec![30.0, 10.0, 10.0, 30.0]);
        let r = naive_rca(&t);
        assert!((r.get(0, 0) - 1.5).abs() < 1e-12);
        assert!((r.get(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn naive_agglomerate_two_obvious_groups() {
        let m = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![9.0], vec![9.1]]);
        let h = naive_agglomerate(&m, Linkage::Ward);
        let labels = h.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn naive_dunn_hand_computed() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![12.0]]);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        assert!((naive_dunn(&cond, &[0, 0, 1, 1]) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn naive_ari_hand_computed() {
        // Classic contingency example: expected index equals the index.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 0, 0, 1];
        assert!(naive_ari(&a, &b).abs() < 1e-12);
        // Identical (up to renaming) partitions score 1.
        assert!((naive_ari(&a, &a) - 1.0).abs() < 1e-12);
        assert!((naive_ari(&a, &[5, 5, 2, 2]) - 1.0).abs() < 1e-12);
        // Trivial all-in-one vs itself is the degenerate-agreement case.
        assert!((naive_ari(&[0, 0, 0], &[1, 1, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_nmi_hand_computed() {
        let a = vec![0, 0, 1, 1];
        assert!((naive_nmi(&a, &a) - 1.0).abs() < 1e-12);
        assert!((naive_nmi(&a, &[3, 3, 0, 0]) - 1.0).abs() < 1e-12);
        // Independent halves share no information.
        assert!(naive_nmi(&[0, 0, 1, 1], &[0, 1, 0, 1]).abs() < 1e-12);
        // An all-in-one reference carries zero information about a real
        // split: MI = 0 but the split's entropy keeps the denominator
        // positive, so NMI = 0 (matching `normalized_mutual_info`).
        assert!(naive_nmi(&[0, 1, 2], &[0, 0, 0]).abs() < 1e-12);
        // Only when *both* partitions are trivial does the zero-entropy
        // denominator convention return 1.
        assert!((naive_nmi(&[0, 0, 0], &[1, 1, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_silhouette_singleton_convention() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0], vec![9.0, 9.0]]);
        let cond = Condensed::from_rows(&m, Metric::Euclidean);
        let s = naive_silhouette(&cond, &[0, 0, 1]);
        assert!((s - 2.0 / 3.0).abs() < 1e-12);
    }
}
