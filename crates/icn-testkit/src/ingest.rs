//! Batch-vs-streaming differential oracle for the ingest subsystem.
//!
//! The headline invariant of `icn-ingest` is that streaming construction
//! of `T` — any chunk size, any thread count, any bounded reordering — is
//! **bit-identical** to the batch matrix. This module provides:
//!
//! * [`naive_ingest`] — an independent, obviously-correct sequential
//!   reference: validate each record in the fixed priority order, reject
//!   late/duplicate records against a running watermark, then fold all
//!   accepted records in sorted `(hour, antenna, service)` order. No
//!   buckets, no chunks, no parallelism.
//! * [`ingest_via_pipeline`] — the production [`IngestPipeline`] run over
//!   an in-memory source, for differential comparison.
//! * [`shuffle_within_blocks`] — the metamorphic input transformation:
//!   a bounded reordering that must not change any pipeline output.
//! * [`snapshot_ingest`] — the golden-snapshot recipe: a pinned
//!   checkpoint/kill/resume ingest run at a fixed scale, hashed together
//!   with the stage hashes of the study built *from* the streamed matrix.

use std::collections::BTreeSet;

use icn_core::{IcnStudy, StudyConfig};
use icn_ingest::{
    Checkpoint, HourlyRecord, IngestConfig, IngestPipeline, IngestResult, IngestSchema,
    RecordSource, VecSource,
};
use icn_stats::{Matrix, Rng};
use icn_synth::{record_stream, Date, StudyCalendar};

use crate::golden::{snapshot_study, Canon, PipelineSnapshot};

/// Accept/quarantine accounting of the naive reference ingest.
#[derive(Clone, Debug, PartialEq)]
pub struct NaiveIngest {
    /// The folded totals matrix.
    pub totals: Matrix,
    /// Accepted volume per window hour.
    pub hourly_volume: Vec<f64>,
    /// Accepted records per window hour.
    pub hourly_records: Vec<u64>,
    /// Accepted record count.
    pub ok: u64,
    /// Quarantined counts keyed by reason label, sorted.
    pub quarantined: Vec<(String, u64)>,
}

/// Sequential reference implementation of the whole ingest semantics,
/// deliberately structured nothing like the production pipeline: one pass
/// of per-record accept/reject decisions, then one sort-and-fold.
pub fn naive_ingest(records: &[HourlyRecord], schema: IngestSchema, lateness: u32) -> NaiveIngest {
    let mut accepted: Vec<HourlyRecord> = Vec::new();
    let mut seen: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    let mut max_hour: Option<u32> = None;
    let mut quarantine: Vec<(&'static str, u64)> = Vec::new();
    let count = |q: &mut Vec<(&'static str, u64)>, label: &'static str| match q
        .iter_mut()
        .find(|(l, _)| *l == label)
    {
        Some((_, n)) => *n += 1,
        None => q.push((label, 1)),
    };
    for r in records {
        // Structural checks, spelled out in the fixed priority order.
        let reason = if !r.bytes_dl.is_finite() || !r.bytes_ul.is_finite() {
            Some("non_finite_volume")
        } else if r.bytes_dl < 0.0 || r.bytes_ul < 0.0 {
            Some("negative_volume")
        } else if r.antenna >= schema.antennas {
            Some("unknown_antenna")
        } else if r.service >= schema.services {
            Some("unknown_service")
        } else if r.hour >= schema.hours {
            Some("out_of_window_hour")
        } else if max_hour.is_some_and(|m| r.hour + lateness < m) {
            Some("late_arrival")
        } else if seen.contains(&(r.hour, r.antenna, r.service)) {
            Some("duplicate_key")
        } else {
            None
        };
        match reason {
            Some(label) => count(&mut quarantine, label),
            None => {
                seen.insert((r.hour, r.antenna, r.service));
                max_hour = Some(max_hour.map_or(r.hour, |m| m.max(r.hour)));
                accepted.push(*r);
            }
        }
    }
    // Canonical fold order: ascending (hour, antenna, service). Sealed
    // hours in the production accumulator fold exactly this way.
    accepted.sort_by_key(|r| (r.hour, r.antenna, r.service));
    let mut totals = Matrix::zeros(schema.antennas as usize, schema.services as usize);
    let mut hourly_volume = vec![0.0; schema.hours as usize];
    let mut hourly_records = vec![0u64; schema.hours as usize];
    for r in &accepted {
        let v = r.bytes_dl + r.bytes_ul;
        let (i, j) = (r.antenna as usize, r.service as usize);
        totals.set(i, j, totals.get(i, j) + v);
        hourly_volume[r.hour as usize] += v;
        hourly_records[r.hour as usize] += 1;
    }
    let mut quarantined: Vec<(String, u64)> = quarantine
        .into_iter()
        .map(|(l, n)| (l.to_string(), n))
        .collect();
    quarantined.sort();
    NaiveIngest {
        totals,
        hourly_volume,
        hourly_records,
        ok: accepted.len() as u64,
        quarantined,
    }
}

/// Runs the production pipeline over an in-memory copy of `records`.
pub fn ingest_via_pipeline(
    records: &[HourlyRecord],
    schema: IngestSchema,
    config: IngestConfig,
) -> IngestResult {
    let mut pipe = IngestPipeline::new(schema, config);
    pipe.run(&mut VecSource::new(records.to_vec()))
        .expect("VecSource never errors");
    pipe.finish()
}

/// Asserts two float slices are bit-identical, reporting the first
/// diverging index.
pub fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit divergence at index {i}: {x} vs {y}"
        );
    }
}

/// Metamorphic input transformation: shuffles each consecutive block of
/// `block` records independently. For an hour-ordered stream whose hours
/// each span many blocks, this is a *bounded* reordering — every record
/// stays within the lateness window — so the pipeline must accept every
/// record and produce bit-identical totals.
pub fn shuffle_within_blocks(
    records: &[HourlyRecord],
    block: usize,
    seed: u64,
) -> Vec<HourlyRecord> {
    assert!(block > 0, "shuffle_within_blocks: block must be positive");
    let mut rng = Rng::seed_from(seed);
    let mut out = records.to_vec();
    for chunk in out.chunks_mut(block) {
        rng.shuffle(chunk);
    }
    out
}

/// The golden file for the pinned ingest snapshot inside `dir`.
pub fn ingest_golden_file(dir: &std::path::Path) -> std::path::PathBuf {
    dir.join("ingest_scale005.json")
}

/// The pinned ingest-window length in days (a 72-hour slice of the study
/// period starting Monday 9 Jan 2023).
pub const INGEST_GOLDEN_DAYS: usize = 3;

/// The pinned ingest window used by the golden snapshot and the CI smoke.
pub fn ingest_golden_window() -> StudyCalendar {
    StudyCalendar::custom(Date::new(2023, 1, 9), INGEST_GOLDEN_DAYS)
}

/// Runs the pinned ingest scenario at `scale` and hashes everything that
/// must stay stable:
///
/// * `ingest_checkpoint` — the canonical checkpoint hash taken mid-stream
///   (after half the chunks), exercising the kill point;
/// * `ingest_result` — the resumed run's totals, temporal accumulators and
///   accounting (the resume path feeds the final hash, so a resume bug
///   cannot hide);
/// * every stage hash of the study built via `IcnStudy::from_ingest` on
///   the streamed matrix.
pub fn snapshot_ingest(scale: f64) -> PipelineSnapshot {
    let dataset = icn_synth::Dataset::generate(icn_synth::SynthConfig::paper().with_scale(scale));
    let window = ingest_golden_window();
    let config = IngestConfig::default();

    // First leg: run half the chunks, checkpoint, and "crash".
    let mut stream = record_stream(&dataset, &window);
    let schema = stream.schema();
    let total_chunks = schema.total_records().div_ceil(config.chunk_size as u64);
    let mut first = IngestPipeline::new(schema, config);
    first
        .run_until(&mut stream, Some(total_chunks / 2))
        .expect("clean stream");
    let ck = first.checkpoint();
    let checkpoint_hash = ck.hash();
    let rendered = ck.render();
    drop(first);

    // Second leg: resume from the *parsed* checkpoint against a fresh
    // stream advanced past the consumed prefix.
    let ck = Checkpoint::parse(&rendered).expect("round-trip checkpoint");
    let consumed = ck.records_consumed;
    let mut resumed = IngestPipeline::from_checkpoint(ck, config).expect("compatible checkpoint");
    let mut stream = record_stream(&dataset, &window);
    stream.skip_records(consumed).expect("skip prefix");
    resumed.run(&mut stream).expect("clean stream");
    let result = resumed.finish();

    let study = IcnStudy::from_ingest(
        &dataset,
        &result,
        StudyConfig {
            run_k_sweep: true,
            ..StudyConfig::fast()
        },
    )
    .expect("streamed matrix validates");

    let mut snap = snapshot_study(scale, &dataset, &study);
    snap.stages
        .push(("ingest_checkpoint".to_string(), checkpoint_hash));
    let mut c = Canon::new();
    c.text("ingest_result")
        .matrix(&result.totals)
        .f64s(&result.hourly_volume);
    for &n in &result.hourly_records {
        c.usize(n as usize);
    }
    c.usize(result.stats.ok as usize)
        .usize(result.stats.quarantined_total() as usize)
        .usize(result.records_consumed as usize);
    snap.stages.push(("ingest_result".to_string(), c.hex()));
    snap.stages.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> IngestSchema {
        IngestSchema {
            antennas: 6,
            services: 4,
            hours: 12,
        }
    }

    fn clean_records() -> Vec<HourlyRecord> {
        let mut out = Vec::new();
        for h in 0..12u32 {
            for a in 0..6u32 {
                for s in 0..4u32 {
                    out.push(HourlyRecord {
                        antenna: a,
                        service: s,
                        hour: h,
                        bytes_dl: f64::from(h * 31 + a * 5 + s).mul_add(0.173, 0.9),
                        bytes_ul: 0.21,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn naive_and_pipeline_agree_on_clean_stream() {
        let recs = clean_records();
        let want = naive_ingest(&recs, schema(), 2);
        let got = ingest_via_pipeline(&recs, schema(), IngestConfig::default());
        assert_bits_eq(want.totals.as_slice(), got.totals.as_slice(), "totals");
        assert_bits_eq(&want.hourly_volume, &got.hourly_volume, "hourly_volume");
        assert_eq!(want.hourly_records, got.hourly_records);
        assert_eq!(want.ok, got.stats.ok);
        assert_eq!(got.stats.quarantined_total(), 0);
    }

    #[test]
    fn naive_and_pipeline_agree_on_dirty_stream() {
        let mut recs = clean_records();
        recs.insert(20, recs[3]); // duplicate within the open window
        recs.push(HourlyRecord {
            antenna: 0,
            service: 0,
            hour: 0,
            bytes_dl: 1.0,
            bytes_ul: 0.0,
        }); // late by the end of the stream
        recs.push(HourlyRecord {
            antenna: 99,
            service: 0,
            hour: 11,
            bytes_dl: 1.0,
            bytes_ul: 0.0,
        });
        let want = naive_ingest(&recs, schema(), 2);
        let got = ingest_via_pipeline(&recs, schema(), IngestConfig::default());
        assert_bits_eq(want.totals.as_slice(), got.totals.as_slice(), "totals");
        assert_eq!(want.ok, got.stats.ok);
        let got_q: Vec<(String, u64)> = got
            .stats
            .quarantined
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        assert_eq!(want.quarantined, got_q);
    }

    #[test]
    fn block_shuffle_is_invisible_to_the_pipeline() {
        let recs = clean_records();
        let base = ingest_via_pipeline(&recs, schema(), IngestConfig::default());
        let shuffled = shuffle_within_blocks(&recs, 16, 99);
        assert_ne!(
            recs.iter().map(|r| r.key()).collect::<Vec<_>>(),
            shuffled.iter().map(|r| r.key()).collect::<Vec<_>>(),
            "shuffle must actually move records"
        );
        let got = ingest_via_pipeline(&shuffled, schema(), IngestConfig::default());
        assert_eq!(got.stats.quarantined_total(), 0);
        assert_bits_eq(base.totals.as_slice(), got.totals.as_slice(), "totals");
        assert_bits_eq(&base.hourly_volume, &got.hourly_volume, "hourly_volume");
    }
}
