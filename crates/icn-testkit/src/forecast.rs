//! Differential oracles for `icn-forecast`.
//!
//! Same philosophy as [`crate::oracle`]: small, obviously-correct
//! reference implementations arranged *differently* from the optimized
//! paths, compared over seeded inputs.
//!
//! * [`oracle_seasonal_naive`] — closed-form modular indexing instead of
//!   the production walk-back loop.
//! * [`oracle_ets`] — textbook Holt–Winters with full per-`t` state
//!   vectors instead of the production scalar-state + seasonal ring
//!   buffer.
//! * [`brute_rolling_median_mad`] — re-sorts the trailing window at every
//!   position (O(n·w log w)) instead of the incremental sorted buffer and
//!   two-pointer MAD walk of `icn_forecast::RollingRobust`.
//! * [`set_f1`] — precision/recall/F1 of a predicted hour set against a
//!   ground-truth hour set (the detector's scoring metric).

use icn_forecast::EtsParams;

/// Seasonal-naive reference: `ŷ[h] = y[n − period + (h mod period)]`.
///
/// The production version walks back whole periods until it lands inside
/// the history; for any `n ≥ period` that always lands on the *last* full
/// period, which this closed form indexes directly.
pub fn oracle_seasonal_naive(history: &[f64], period: usize, horizon: usize) -> Vec<f64> {
    assert!(period > 0 && history.len() >= period);
    let base = history.len() - period;
    (0..horizon).map(|h| history[base + h % period]).collect()
}

/// Hand-walked additive Holt–Winters reference.
///
/// States are kept as full per-`t` vectors (`level[t]`, `trend[t]`, and a
/// seasonal matrix addressed as `seasonal[t][slot]` conceptually — here a
/// per-slot history of the latest value) so every recurrence reads like
/// the textbook equations. Initialisation matches the production
/// contract: trend as the median same-slot one-period difference, level
/// as the first period mean shifted to the period's end, seasonal slots
/// as the all-occurrences (partial periods included) average of
/// deviations from the global linear baseline.
pub fn oracle_ets(history: &[f64], params: &EtsParams, horizon: usize) -> Vec<f64> {
    let m = params.period;
    let n = history.len();
    assert!(m > 0 && n >= 2 * m, "oracle_ets: need two full periods");
    let mean_of = |j: usize| -> f64 {
        let mut s = 0.0;
        for t in j * m..(j + 1) * m {
            s += history[t];
        }
        s / m as f64
    };
    let mut diffs: Vec<f64> = (m..n)
        .map(|t| (history[t] - history[t - m]) / m as f64)
        .collect();
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("oracle_ets: NaN diff"));
    let b0 = if diffs.len() % 2 == 1 {
        diffs[diffs.len() / 2]
    } else {
        0.5 * (diffs[diffs.len() / 2 - 1] + diffs[diffs.len() / 2])
    };
    let mid = (m as f64 - 1.0) / 2.0;
    let l0 = mean_of(0) + b0 * mid;
    let mut season = vec![0.0f64; m];
    for (i, slot) in season.iter_mut().enumerate() {
        let occ: Vec<f64> = (0..n)
            .filter(|t| t % m == i)
            .map(|t| history[t] - (mean_of(0) + b0 * (t as f64 - mid)))
            .collect();
        *slot = occ.iter().sum::<f64>() / occ.len() as f64;
    }
    let mut level = vec![l0];
    let mut trend = vec![b0];
    for t in m..n {
        let l_prev = *level.last().unwrap();
        let b_prev = *trend.last().unwrap();
        let s_old = season[t % m];
        let l = params.alpha * (history[t] - s_old) + (1.0 - params.alpha) * (l_prev + b_prev);
        let b = params.beta * (l - l_prev) + (1.0 - params.beta) * b_prev;
        season[t % m] = params.gamma * (history[t] - l) + (1.0 - params.gamma) * s_old;
        level.push(l);
        trend.push(b);
    }
    let l_final = *level.last().unwrap();
    let b_final = *trend.last().unwrap();
    (0..horizon)
        .map(|h| l_final + (h + 1) as f64 * b_final + season[(n + h) % m])
        .collect()
}

/// Brute-force trailing-window robust statistics: for each position `t`
/// the window is the last `min(t+1, window)` values ending at `t`,
/// re-sorted from scratch; the median is the mean of the two mid values
/// when even, and the MAD is the same median rule applied to the sorted
/// absolute deviations. Returns `(median, mad)` vectors — the exact
/// quantities `icn_forecast::RollingRobust` maintains incrementally.
pub fn brute_rolling_median_mad(values: &[f64], window: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(window > 0, "brute_rolling_median_mad: zero window");
    let median_of_sorted = |s: &[f64]| -> f64 {
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    };
    let mut meds = Vec::with_capacity(values.len());
    let mut mads = Vec::with_capacity(values.len());
    for t in 0..values.len() {
        let lo = (t + 1).saturating_sub(window);
        let mut win: Vec<f64> = values[lo..=t].to_vec();
        win.sort_by(|a, b| a.partial_cmp(b).expect("NaN in window"));
        let med = median_of_sorted(&win);
        let mut dev: Vec<f64> = win.iter().map(|&x| (x - med).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).expect("NaN deviation"));
        meds.push(med);
        mads.push(median_of_sorted(&dev));
    }
    (meds, mads)
}

/// Precision, recall and F1 of a predicted index set against ground
/// truth. Both slices are sets of hour indices (order and duplicates are
/// ignored). An empty truth with an empty prediction scores F1 = 1.
pub fn set_f1(predicted: &[usize], truth: &[usize]) -> (f64, f64, f64) {
    use std::collections::BTreeSet;
    let p: BTreeSet<usize> = predicted.iter().copied().collect();
    let t: BTreeSet<usize> = truth.iter().copied().collect();
    if p.is_empty() && t.is_empty() {
        return (1.0, 1.0, 1.0);
    }
    let tp = p.intersection(&t).count() as f64;
    let precision = if p.is_empty() {
        0.0
    } else {
        tp / p.len() as f64
    };
    let recall = if t.is_empty() {
        0.0
    } else {
        tp / t.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_naive_replays_last_period() {
        let h: Vec<f64> = (0..340).map(|t| t as f64).collect();
        let f = oracle_seasonal_naive(&h, 168, 200);
        assert_eq!(f[0], h[340 - 168]);
        assert_eq!(f[167], h[339]);
        assert_eq!(f[168], h[340 - 168]); // wraps
    }

    #[test]
    fn oracle_ets_is_flat_on_a_constant_series() {
        let h = vec![5.0; 400];
        let f = oracle_ets(&h, &EtsParams::default(), 12);
        for &v in &f {
            assert!((v - 5.0).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn brute_rolling_handles_warmup_and_eviction() {
        let v = vec![1.0, 3.0, 5.0, 100.0];
        let (med, mad) = brute_rolling_median_mad(&v, 3);
        assert_eq!(med, vec![1.0, 2.0, 3.0, 5.0]);
        assert_eq!(mad, vec![0.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn f1_edge_cases() {
        assert_eq!(set_f1(&[], &[]), (1.0, 1.0, 1.0));
        let (_, _, f1) = set_f1(&[1, 2], &[1, 2]);
        assert_eq!(f1, 1.0);
        let (p, r, f1) = set_f1(&[1, 2, 3, 4], &[1, 2]);
        assert_eq!(p, 0.5);
        assert_eq!(r, 1.0);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
        let (_, _, f1) = set_f1(&[9], &[1, 2]);
        assert_eq!(f1, 0.0);
    }
}
