//! # icn-forecast — busy-hour forecasting & anomaly detection
//!
//! The temporal layer (`icn-core::temporal`, Section 6 of the paper) only
//! *describes* per-cluster demand; this crate makes it *predict*, in the
//! spirit of "Forecasting Busy-Hour Downlink Traffic in Cellular Networks"
//! (arXiv:2207.01373): per-cluster hourly series are forecast with three
//! models of increasing ambition and scored by rolling-origin backtest,
//! and an unsupervised detector flags the hours that depart from the
//! cluster's seasonal template.
//!
//! * [`series`] — raw (un-normalised) cluster median series, plus the
//!   signal-free control re-synthesis.
//! * [`models`] — seasonal-naive, additive Holt–Winters ETS, and a forest
//!   regressor reusing the `icn-forest` classifier via quantile binning.
//! * [`backtest`] — rolling-origin MAE/sMAPE harness; ETS and the forest
//!   must beat the naive baseline (gated in `tests/forecast_signals.rs`).
//! * [`detect`] — hour-of-week template + relative residuals + rolling
//!   robust z-scores. Against `icn_synth::signals` ground truth it must
//!   recover the planted Jan 19 strike and event bursts at F1 ≥ 0.9,
//!   and flag nothing on the signal-free control.
//!
//! Everything is deterministic and bit-identical at any `ICN_THREADS`:
//! all parallelism is order-preserving `par::map_indexed` — over
//! member-series synthesis, per-tree forest fitting, the per-cluster
//! model/detector work in [`forecast_series`], and the per-(origin ×
//! model) refits inside [`backtest_masked`] (whose error accumulation
//! stays serial in origin order, so scores never depend on the thread
//! count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backtest;
pub mod detect;
pub mod models;
pub mod series;

pub use backtest::{
    backtest, backtest_masked, mae, smape, BacktestConfig, BacktestScores, ModelScore,
};
pub use detect::{
    detect, robust_template, score_quantile, seasonal_template, Anomalies, DetectorConfig,
    RollingRobust, DIP_DAY_MAX,
};
pub use models::{
    ets_forecast, forest_forecast, seasonal_naive_forecast, EtsParams, ForestParams, Model, PERIOD,
};
pub use series::{cluster_series, cluster_series_signal_free, study_cluster_series, ClusterSeries};

use icn_synth::{StudyCalendar, Weekday};

/// Forecast-run configuration: the primary model and every sub-config.
#[derive(Clone, Copy, Debug)]
pub struct ForecastConfig {
    /// Hours to forecast past the window's end.
    pub horizon: usize,
    /// Model whose forecast is the primary `forecast` output (all three
    /// are always backtested).
    pub model: Model,
    /// ETS smoothing parameters.
    pub ets: EtsParams,
    /// Forest-regressor parameters.
    pub forest: ForestParams,
    /// Anomaly-detector parameters.
    pub detector: DetectorConfig,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        ForecastConfig {
            horizon: 24,
            model: Model::Ets,
            ets: EtsParams::default(),
            forest: ForestParams::default(),
            detector: DetectorConfig::default(),
        }
    }
}

/// Everything the subsystem produces for one cluster.
#[derive(Clone, Debug)]
pub struct ClusterForecast {
    /// Cluster id.
    pub cluster: usize,
    /// Member antennas behind the median series.
    pub n_antennas: usize,
    /// The observed series the models ran on.
    pub series: Vec<f64>,
    /// Primary-model forecast (`horizon` hours past the window).
    pub forecast: Vec<f64>,
    /// Seasonal-naive forecast (baseline, always computed).
    pub naive: Vec<f64>,
    /// ETS forecast.
    pub ets: Vec<f64>,
    /// Forest-regressor forecast.
    pub forest: Vec<f64>,
    /// Rolling-origin backtest scores (zeroed when the series is too
    /// short to split).
    pub backtest: BacktestScores,
    /// Anomaly-detection result.
    pub anomalies: Anomalies,
    /// Busiest forecast hour-of-day (argmax over the first forecast day).
    pub busy_hour: usize,
}

/// The full forecast stage output.
#[derive(Clone, Debug)]
pub struct ForecastReport {
    /// Per-cluster results, indexed by cluster id.
    pub clusters: Vec<ClusterForecast>,
    /// Horizon used.
    pub horizon: usize,
    /// Primary model used.
    pub model: Model,
}

impl ForecastReport {
    /// Mean backtest scores across forecastable clusters.
    pub fn mean_backtest(&self) -> BacktestScores {
        let scored: Vec<&BacktestScores> = self
            .clusters
            .iter()
            .filter(|c| c.backtest.naive.mae > 0.0)
            .map(|c| &c.backtest)
            .collect();
        if scored.is_empty() {
            return BacktestScores::default();
        }
        let k = scored.len() as f64;
        let mean = |f: fn(&BacktestScores) -> ModelScore| ModelScore {
            mae: scored.iter().map(|s| f(s).mae).sum::<f64>() / k,
            smape: scored.iter().map(|s| f(s).smape).sum::<f64>() / k,
        };
        BacktestScores {
            naive: mean(|s| s.naive),
            ets: mean(|s| s.ets),
            forest: mean(|s| s.forest),
        }
    }

    /// Total flagged hours across clusters.
    pub fn total_anomalous_hours(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| c.anomalies.flagged.len())
            .sum()
    }
}

/// Day-of-week index (0 = Monday … 6 = Sunday).
pub fn dow_index(wd: Weekday) -> usize {
    match wd {
        Weekday::Mon => 0,
        Weekday::Tue => 1,
        Weekday::Wed => 2,
        Weekday::Thu => 3,
        Weekday::Fri => 4,
        Weekday::Sat => 5,
        Weekday::Sun => 6,
    }
}

/// Runs models + backtest + detector over pre-built cluster series.
///
/// Instrumented under `forecast.*` when the global `icn-obs` registry is
/// enabled (child spans per phase, per-cluster latency histogram, summary
/// counters/gauges) — the stage-6 pipeline span wraps this call.
pub fn forecast_series(
    all: &[ClusterSeries],
    window: &StudyCalendar,
    cfg: &ForecastConfig,
) -> ForecastReport {
    let obs = icn_obs::global();
    let start_dow = dow_index(window.start().weekday());
    // Clusters are independent: detector + three model fits + backtest per
    // cluster run as one parallel job each (order-preserving map, so the
    // report is bit-identical at any `ICN_THREADS`); the backtest itself
    // fans its (origin × model) refits out further.
    let clusters: Vec<ClusterForecast> = icn_stats::par::map_indexed(all.len(), |ci| {
        let cs = &all[ci];
        {
            let t0 = std::time::Instant::now();
            let n = cs.values.len();
            let forecastable = n >= 2 * cfg.ets.period && n >= PERIOD + cfg.forest.bins;
            // Per-cluster forest seed: decorrelated but deterministic.
            let forest = ForestParams {
                seed: cfg.forest.seed ^ ((cs.cluster as u64) << 32),
                ..cfg.forest
            };
            let anomalies = detect(&cs.values, &cfg.detector);
            // Robust fitting series: detector-flagged hours are imputed
            // with the detection baseline (the event-free hour-of-week
            // level) so a strike day or a fixture night cannot drag the
            // smoothing state or the forest's lag features — classic
            // robust Holt–Winters outlier handling. The detector itself
            // always sees the raw series, and the backtest below scores
            // against the raw series too (flagged hours excluded).
            let fit = if anomalies.flagged.is_empty() || anomalies.template.is_empty() {
                cs.values.clone()
            } else {
                let mut fit = cs.values.clone();
                for &t in &anomalies.flagged {
                    fit[t] = anomalies.template[t % cfg.detector.period];
                }
                fit
            };
            let (naive, ets, forest_fc) = if forecastable {
                (
                    seasonal_naive_forecast(&fit, cfg.ets.period, cfg.horizon),
                    ets_forecast(&fit, &cfg.ets, cfg.horizon),
                    forest_forecast(&fit, &forest, start_dow, cfg.horizon),
                )
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
            let scores = match BacktestConfig::standard(n) {
                Some(bt) if forecastable => backtest_masked(
                    &fit,
                    &cs.values,
                    &anomalies.flagged,
                    &bt,
                    &cfg.ets,
                    &forest,
                    start_dow,
                ),
                _ => BacktestScores::default(),
            };
            let primary = match cfg.model {
                Model::SeasonalNaive => &naive,
                Model::Ets => &ets,
                Model::Forest => &forest_fc,
            };
            let busy_hour = primary
                .iter()
                .take(24)
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite forecast"))
                .map(|(h, _)| h)
                .unwrap_or(0);
            if obs.is_enabled() {
                obs.record_duration("forecast.cluster_ns", t0.elapsed());
            }
            ClusterForecast {
                cluster: cs.cluster,
                n_antennas: cs.n_antennas,
                series: cs.values.clone(),
                forecast: primary.clone(),
                naive,
                ets,
                forest: forest_fc,
                backtest: scores,
                anomalies,
                busy_hour,
            }
        }
    });
    let report = ForecastReport {
        clusters,
        horizon: cfg.horizon,
        model: cfg.model,
    };
    if obs.is_enabled() {
        obs.add_counter("forecast.clusters", report.clusters.len() as u64);
        obs.add_counter(
            "forecast.anomalous_hours",
            report.total_anomalous_hours() as u64,
        );
        obs.add_counter("forecast.horizon", report.horizon as u64);
        let mean = report.mean_backtest();
        obs.set_gauge("forecast.mae_naive", mean.naive.mae);
        obs.set_gauge("forecast.mae_ets", mean.ets.mae);
        obs.set_gauge("forecast.mae_forest", mean.forest.mae);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Rng;

    fn synthetic_cluster(cluster: usize, seed: u64) -> ClusterSeries {
        let mut rng = Rng::seed_from(seed);
        let values: Vec<f64> = (0..504)
            .map(|t| {
                let how = t % 168;
                let clean = 40.0 + (how as f64 * 0.17).sin() * 15.0;
                clean * (1.0 + 0.10 * rng.gaussian())
            })
            .collect();
        ClusterSeries {
            cluster,
            n_antennas: 10,
            values,
        }
    }

    #[test]
    fn forecast_series_end_to_end() {
        let window = StudyCalendar::temporal_window();
        let all = vec![synthetic_cluster(0, 1), synthetic_cluster(1, 2)];
        let cfg = ForecastConfig::default();
        let r = forecast_series(&all, &window, &cfg);
        assert_eq!(r.clusters.len(), 2);
        for c in &r.clusters {
            assert_eq!(c.forecast.len(), 24);
            assert_eq!(c.forecast, c.ets);
            assert!(c.busy_hour < 24);
            assert!(c.backtest.naive.mae > 0.0);
        }
        let mean = r.mean_backtest();
        assert!(mean.ets.mae < mean.naive.mae);
    }

    #[test]
    fn short_series_degrade_gracefully() {
        let window = StudyCalendar::custom(icn_synth::Date::new(2023, 1, 9), 2);
        let all = vec![ClusterSeries {
            cluster: 0,
            n_antennas: 3,
            values: vec![1.0; 48],
        }];
        let r = forecast_series(&all, &window, &ForecastConfig::default());
        assert!(r.clusters[0].forecast.is_empty());
        assert_eq!(r.clusters[0].backtest, BacktestScores::default());
    }

    #[test]
    fn dow_index_is_monday_based() {
        assert_eq!(dow_index(Weekday::Mon), 0);
        assert_eq!(dow_index(Weekday::Sun), 6);
        // The temporal window starts Wednesday 4 Jan 2023.
        let w = StudyCalendar::temporal_window();
        assert_eq!(dow_index(w.start().weekday()), 2);
    }
}
