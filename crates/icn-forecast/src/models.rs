//! The three busy-hour forecasting models.
//!
//! All three consume a raw hourly series (the cluster median built by
//! [`crate::series`]) and emit an `horizon`-hour continuation:
//!
//! * **Seasonal naive** — copy the value of the same hour-of-week one
//!   period (168 h) earlier. The baseline every other model must beat: it
//!   nails the weekly shape but replays last week's measurement noise and
//!   one-off anomalies verbatim.
//! * **ETS** — additive Holt–Winters exponential smoothing
//!   (level/trend/seasonal recurrences with a 168-hour season). Smoothing
//!   averages the noise out of the seasonal template, which is where the
//!   MAE win over the naive baseline comes from.
//! * **Forest regressor** — reuses the `icn-forest` *classifier* for
//!   regression over **residuals**: each hour's deviation from its
//!   hour-of-week template is quantile-binned, a forest is fitted on
//!   lagged residuals (1 h, 24 h, 168 h) plus calendar features, and the
//!   forecast is the template plus the probability-weighted mean of the
//!   bin means. Multi-step forecasts feed predicted residuals back in as
//!   lags.
//!
//! Everything here is sequential per series and allocation-light; the
//! parallelism lives one level up (clusters fan out via `icn_stats::par`)
//! and forest fitting is already deterministic per-tree parallel.

use icn_forest::{ForestConfig, MaxFeatures, RandomForest, SoaForest, TrainSet, TreeConfig};
use icn_stats::Matrix;

/// Hours per seasonal period: the hour-of-week cycle.
pub const PERIOD: usize = 168;

/// Which forecasting model to run as the primary output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// Same hour-of-week, one period earlier.
    SeasonalNaive,
    /// Additive Holt–Winters exponential smoothing.
    Ets,
    /// Forest regressor on lagged + calendar features.
    Forest,
}

impl Model {
    /// All models, in report order.
    pub const ALL: [Model; 3] = [Model::SeasonalNaive, Model::Ets, Model::Forest];

    /// Stable identifier (CLI flag value, JSON field).
    pub fn as_str(&self) -> &'static str {
        match self {
            Model::SeasonalNaive => "naive",
            Model::Ets => "ets",
            Model::Forest => "forest",
        }
    }

    /// Parses the identifier produced by [`Model::as_str`].
    pub fn parse(s: &str) -> Option<Model> {
        match s {
            "naive" => Some(Model::SeasonalNaive),
            "ets" => Some(Model::Ets),
            "forest" => Some(Model::Forest),
            _ => None,
        }
    }
}

/// Seasonal-naive forecast: `ŷ[T+h] = y[T+h−k·period]` with the smallest
/// `k ≥ 1` that lands inside the history.
///
/// Requires `history.len() ≥ period`.
pub fn seasonal_naive_forecast(history: &[f64], period: usize, horizon: usize) -> Vec<f64> {
    assert!(period > 0, "seasonal_naive: zero period");
    assert!(
        history.len() >= period,
        "seasonal_naive: history {} shorter than period {period}",
        history.len()
    );
    let n = history.len();
    (0..horizon)
        .map(|h| {
            // Walk back whole periods until inside the observed range.
            let mut t = n + h;
            while t >= n {
                t -= period;
            }
            history[t]
        })
        .collect()
}

/// Smoothing parameters of the additive Holt–Winters recurrences.
#[derive(Clone, Copy, Debug)]
pub struct EtsParams {
    /// Level smoothing factor.
    pub alpha: f64,
    /// Trend smoothing factor.
    pub beta: f64,
    /// Seasonal smoothing factor.
    pub gamma: f64,
    /// Season length in hours.
    pub period: usize,
}

impl Default for EtsParams {
    fn default() -> Self {
        // Conservative smoothing: a 3-week history gives each of the 168
        // seasonal slots only 2–3 observations, so the robust
        // initialisation carries most of the signal and the recurrences
        // only fine-tune it. Textbook-aggressive constants (α ≈ 0.2)
        // would re-inject one draw's noise into the state and lose the
        // averaging edge over the seasonal-naive baseline.
        EtsParams {
            alpha: 0.02,
            beta: 0.001,
            gamma: 0.02,
            period: PERIOD,
        }
    }
}

/// Additive Holt–Winters forecast.
///
/// Initialisation: the trend starts from the **median same-slot
/// one-period difference** (a Theil–Sen-style robust slope — same-slot
/// differencing cancels the seasonal pattern exactly, and the median
/// keeps a residual event week from faking a trend the level recurrence
/// would then extrapolate), the level from the first period mean shifted
/// to the period's end, and each seasonal slot from the **average of its
/// deviations from
/// the global linear baseline over every occurrence in the history** —
/// trailing partial periods included, so the freshest day or two is never
/// discarded. Averaging `k` occurrences divides the measurement noise
/// baked into the seasonal state by `√k`, which is exactly the edge over
/// the seasonal-naive baseline (the naive copy carries one full noise
/// draw per slot). The recurrences then run over `t ∈ [period, n)`:
///
/// ```text
/// l[t] = α·(y[t] − s[t−m]) + (1−α)·(l[t−1] + b[t−1])
/// b[t] = β·(l[t] − l[t−1]) + (1−β)·b[t−1]
/// s[t] = γ·(y[t] − l[t]) + (1−γ)·s[t−m]
/// ŷ[T+h] = l[T] + (h+1)·b[T] + s[T+h+1−m·⌈(h+1)/m⌉]
/// ```
///
/// Requires `history.len() ≥ 2·period`.
pub fn ets_forecast(history: &[f64], params: &EtsParams, horizon: usize) -> Vec<f64> {
    let m = params.period;
    let n = history.len();
    assert!(m > 0, "ets: zero period");
    assert!(n >= 2 * m, "ets: history {n} shorter than two periods {m}");
    let first_period_mean = history[..m].iter().sum::<f64>() / m as f64;
    let mut diffs: Vec<f64> = (m..n)
        .map(|t| (history[t] - history[t - m]) / m as f64)
        .collect();
    let mut trend = icn_stats::summary::median_inplace(&mut diffs);
    let mid = (m as f64 - 1.0) / 2.0;
    // Level state as of the end of the first period (the recurrences take
    // over from t = m).
    let mut level = first_period_mean + trend * mid;
    // Seasonal ring buffer: s[t mod m] always holds the latest state of
    // that slot (slots are only ever read exactly one period after they
    // were written, so the ring never clobbers a pending value). Each slot
    // initialises to its deviation from the global linear baseline
    // `period_mean[0] + trend·(t − mid)`, averaged across every
    // occurrence in the history — including the trailing partial period.
    let mut seasonal: Vec<f64> = (0..m)
        .map(|i| {
            let mut acc = 0.0;
            let mut k = 0usize;
            let mut t = i;
            while t < n {
                acc += history[t] - (first_period_mean + trend * (t as f64 - mid));
                k += 1;
                t += m;
            }
            acc / k as f64
        })
        .collect();
    for t in m..n {
        let y = history[t];
        let s_prev = seasonal[t % m];
        let level_prev = level;
        level = params.alpha * (y - s_prev) + (1.0 - params.alpha) * (level + trend);
        trend = params.beta * (level - level_prev) + (1.0 - params.beta) * trend;
        seasonal[t % m] = params.gamma * (y - level) + (1.0 - params.gamma) * s_prev;
    }
    (0..horizon)
        .map(|h| level + (h + 1) as f64 * trend + seasonal[(n + h) % m])
        .collect()
}

/// Forest-regressor parameters.
#[derive(Clone, Copy, Debug)]
pub struct ForestParams {
    /// Trees in the regression forest.
    pub n_trees: usize,
    /// Quantile bins the target is discretised into.
    pub bins: usize,
    /// Fitting seed (forked per cluster by the caller).
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 50,
            bins: 16,
            seed: 0xF0_CA57,
        }
    }
}

/// Day-of-week index of hour `t` given the weekday index of day 0.
/// Indices are 0 = Monday … 6 = Sunday.
fn dow_of(start_dow: usize, t: usize) -> usize {
    (start_dow + t / 24) % 7
}

/// Feature row for predicting the residual at absolute hour `t`: the
/// caller guarantees `resid[t−1]`, `resid[t−24]` and `resid[t−168]` exist
/// (possibly as earlier predictions during multi-step forecasting).
fn feature_row(resid: &[f64], t: usize, start_dow: usize) -> [f64; 6] {
    let dow = dow_of(start_dow, t);
    [
        resid[t - 1],
        resid[t - 24],
        resid[t - PERIOD],
        (t % 24) as f64,
        dow as f64,
        if dow >= 5 { 1.0 } else { 0.0 },
    ]
}

/// Forest-regressor forecast.
///
/// The forest predicts the **residual** of each hour against the
/// per-slot hour-of-week template (the mean over every occurrence of the
/// slot in the history), not the absolute level: quantile-binning a
/// strongly seasonal series at absolute scale would spend all 16 bins on
/// the daily swing and quantise the forecast to bin means far coarser
/// than the measurement noise. At residual scale the bins resolve the
/// noise distribution itself, the template contributes the seasonal
/// shape with `√k`-averaged noise, and the lagged-residual features let
/// the forest pick up level drift (drift makes consecutive residuals
/// positively correlated). The forecast is `template[slot] + predicted
/// residual`, fed back recursively for multi-step horizons.
///
/// `start_dow` is the day-of-week index (0 = Monday) of the first day of
/// the series, so calendar features stay correct past the history's end.
/// Requires `history.len() ≥ period + bins` (one period of lag warm-up
/// plus at least one training row per quantile bin).
pub fn forest_forecast(
    history: &[f64],
    params: &ForestParams,
    start_dow: usize,
    horizon: usize,
) -> Vec<f64> {
    let n = history.len();
    assert!(params.bins >= 2, "forest: need at least two bins");
    assert!(
        n >= PERIOD + params.bins,
        "forest: history {n} too short for lag warm-up"
    );
    // Per-slot template: mean over all occurrences (partial periods
    // included), then the residual series the forest actually models.
    let mut slot_sum = [0.0f64; PERIOD];
    let mut slot_count = [0usize; PERIOD];
    for (t, &v) in history.iter().enumerate() {
        slot_sum[t % PERIOD] += v;
        slot_count[t % PERIOD] += 1;
    }
    let template: Vec<f64> = slot_sum
        .iter()
        .zip(&slot_count)
        .map(|(&s, &c)| s / c.max(1) as f64)
        .collect();
    let resid: Vec<f64> = history
        .iter()
        .enumerate()
        .map(|(t, &v)| v - template[t % PERIOD])
        .collect();
    // Quantile-bin the residual targets. Edges are the sorted targets at
    // bin boundaries; duplicate edges collapse, so bin ids are remapped
    // dense before fitting (TrainSet infers n_classes = max(y)+1).
    let targets: Vec<f64> = resid[PERIOD..].to_vec();
    let mut sorted = targets.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("forest: NaN target"));
    let edges: Vec<f64> = (1..params.bins)
        .map(|b| sorted[b * sorted.len() / params.bins])
        .collect();
    let raw_bin = |y: f64| edges.partition_point(|&e| e <= y);
    let mut used = vec![false; params.bins];
    for &y in &targets {
        used[raw_bin(y)] = true;
    }
    let remap: Vec<usize> = used
        .iter()
        .scan(0usize, |next, &u| {
            let id = *next;
            if u {
                *next += 1;
            }
            Some(id)
        })
        .collect();
    let n_classes = used.iter().filter(|&&u| u).count();
    if n_classes < 2 {
        // Degenerate residuals (the template explains everything up to a
        // constant): forecast template + that constant.
        return (0..horizon)
            .map(|h| template[(n + h) % PERIOD] + targets[0])
            .collect();
    }
    let y: Vec<usize> = targets.iter().map(|&v| remap[raw_bin(v)]).collect();
    // Bin value = mean of the training targets that landed in the bin.
    let mut bin_sum = vec![0.0f64; n_classes];
    let mut bin_count = vec![0usize; n_classes];
    for (&v, &b) in targets.iter().zip(&y) {
        bin_sum[b] += v;
        bin_count[b] += 1;
    }
    let bin_mean: Vec<f64> = bin_sum
        .iter()
        .zip(&bin_count)
        .map(|(&s, &c)| s / c.max(1) as f64)
        .collect();
    let rows = targets.len();
    let mut x = Matrix::zeros(rows, 6);
    for (i, t) in (PERIOD..n).enumerate() {
        for (j, v) in feature_row(&resid, t, start_dow).into_iter().enumerate() {
            x.set(i, j, v);
        }
    }
    // Leaf-size regularisation is what makes the regressor beat the naive
    // baseline: every leaf averages ≥6 noisy hours, so leaf predictions
    // carry ~σ/√6 of the measurement noise instead of memorising one draw
    // the way the seasonal-naive copy does.
    let forest = RandomForest::fit(
        &TrainSet::new(x, y),
        &ForestConfig {
            n_trees: params.n_trees,
            seed: params.seed,
            tree: TreeConfig {
                max_features: MaxFeatures::Sqrt,
                min_samples_leaf: 6,
                min_samples_split: 12,
                max_depth: usize::MAX,
            },
        },
    );
    // Recursive multi-step: predicted residuals extend the residual
    // series and feed the short lags of later steps (the 168 h lag stays
    // inside the history for any horizon ≤ period). The forest is frozen
    // into its structure-of-arrays form once and probed through a reused
    // scratch buffer — `SoaForest::predict_proba_into` is bit-identical to
    // `RandomForest::predict_proba`, without the per-step allocation.
    let soa = SoaForest::from_forest(&forest);
    let mut proba = vec![0.0f64; soa.n_classes];
    let mut extended = resid;
    let mut out = Vec::with_capacity(horizon);
    for h in 0..horizon {
        let feats = feature_row(&extended, n + h, start_dow);
        soa.predict_proba_into(&feats, &mut proba);
        let pred: f64 = proba.iter().zip(&bin_mean).map(|(p, m)| p * m).sum();
        extended.push(pred);
        out.push(template[(n + h) % PERIOD] + pred);
    }
    out
}

/// Dispatches to the model's forecast function.
pub fn forecast_with(
    model: Model,
    history: &[f64],
    ets: &EtsParams,
    forest: &ForestParams,
    start_dow: usize,
    horizon: usize,
) -> Vec<f64> {
    match model {
        Model::SeasonalNaive => seasonal_naive_forecast(history, ets.period, horizon),
        Model::Ets => ets_forecast(history, ets, horizon),
        Model::Forest => forest_forecast(history, forest, start_dow, horizon),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noiseless weekly pattern: value depends only on hour-of-week.
    fn weekly(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let how = t % PERIOD;
                10.0 + (how as f64 * 0.13).sin() * 4.0 + (how / 24) as f64
            })
            .collect()
    }

    #[test]
    fn model_ids_round_trip() {
        for m in Model::ALL {
            assert_eq!(Model::parse(m.as_str()), Some(m));
        }
        assert_eq!(Model::parse("bogus"), None);
    }

    #[test]
    fn naive_replays_last_period() {
        let h = weekly(3 * PERIOD);
        let f = seasonal_naive_forecast(&h, PERIOD, 24);
        for (i, &v) in f.iter().enumerate() {
            assert_eq!(v, h[2 * PERIOD + i]);
        }
    }

    #[test]
    fn naive_wraps_horizons_beyond_one_period() {
        let h = weekly(PERIOD);
        let f = seasonal_naive_forecast(&h, PERIOD, PERIOD + 5);
        assert_eq!(f[PERIOD + 2], h[2]);
    }

    #[test]
    fn ets_is_exact_on_noiseless_seasonal_series() {
        // With zero noise and zero trend the recurrences converge onto the
        // pattern; the forecast must track it closely.
        let h = weekly(3 * PERIOD);
        let f = ets_forecast(&h, &EtsParams::default(), 24);
        for (i, &v) in f.iter().enumerate() {
            let truth = 10.0
                + (((3 * PERIOD + i) % PERIOD) as f64 * 0.13).sin() * 4.0
                + (((3 * PERIOD + i) % PERIOD) / 24) as f64;
            assert!((v - truth).abs() < 0.8, "h{i}: {v} vs {truth}");
        }
    }

    #[test]
    fn ets_tracks_a_linear_trend() {
        let h: Vec<f64> = (0..3 * PERIOD).map(|t| 5.0 + 0.01 * t as f64).collect();
        let f = ets_forecast(&h, &EtsParams::default(), 10);
        let expect = 5.0 + 0.01 * (3 * PERIOD) as f64;
        assert!((f[0] - expect).abs() < 0.5, "{} vs {expect}", f[0]);
        assert!(f[9] > f[0]);
    }

    #[test]
    fn forest_learns_a_seasonal_pattern() {
        let h = weekly(3 * PERIOD);
        let f = forest_forecast(&h, &ForestParams::default(), 2, 24);
        // Leaf-size regularisation smooths over neighbouring hours, so
        // judge the day as a whole rather than pointwise.
        let mae: f64 = f
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - h[PERIOD + i]).abs()) // same hour-of-week
            .sum::<f64>()
            / f.len() as f64;
        assert!(mae < 1.5, "mae {mae}");
    }

    #[test]
    fn forest_constant_series_forecasts_the_constant() {
        let h = vec![7.5; 2 * PERIOD];
        let f = forest_forecast(&h, &ForestParams::default(), 0, 8);
        assert!(f.iter().all(|&v| v == 7.5));
    }

    #[test]
    fn forecasts_are_deterministic() {
        let h = weekly(3 * PERIOD);
        let p = ForestParams::default();
        assert_eq!(
            forest_forecast(&h, &p, 2, 24),
            forest_forecast(&h, &p, 2, 24)
        );
        let e = EtsParams::default();
        assert_eq!(ets_forecast(&h, &e, 24), ets_forecast(&h, &e, 24));
    }
}
