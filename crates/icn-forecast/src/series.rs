//! Cluster-level hourly series.
//!
//! The forecasting unit is the cluster: the per-hour **median across
//! member antennas** of aggregate (all-service) traffic, in raw MB/hour —
//! the same aggregation as the Figure 10 heatmaps but *not*
//! max-normalised, because forecasts and anomaly scores live on the
//! traffic scale. The median over members is what makes per-site
//! one-offs (a single stadium's extra fixture) vanish while
//! population-wide signals (the strike, the pinned NBA night) survive —
//! matching the cluster-majority ground-truth labels in
//! [`icn_synth::signals`].

use icn_stats::{par, summary, Rng};
use icn_synth::traffic::{aggregate_hourly_series, aggregate_hourly_series_signal_free};
use icn_synth::{Antenna, Service, StudyCalendar};

/// One cluster's raw hourly series.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSeries {
    /// Cluster id (index into the study's label space).
    pub cluster: usize,
    /// Member count the median runs over.
    pub n_antennas: usize,
    /// Median MB/hour, one entry per hour of the window.
    pub values: Vec<f64>,
}

/// Builds one cluster's series: parallel per-member synthesis (order
/// preserved by `par::map_indexed`), then a sequential per-hour median —
/// bit-identical at any `ICN_THREADS`.
pub fn cluster_series(
    cluster: usize,
    members: &[&Antenna],
    member_rows: &[&[f64]],
    services: &[Service],
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> ClusterSeries {
    assert_eq!(members.len(), member_rows.len(), "cluster_series: mismatch");
    assert!(!members.is_empty(), "cluster_series: no members");
    let per_member: Vec<Vec<f64>> = par::map_indexed(members.len(), |i| {
        aggregate_hourly_series(
            members[i],
            services,
            member_rows[i],
            full_period_days,
            window,
            root,
        )
    });
    ClusterSeries {
        cluster,
        n_antennas: members.len(),
        values: median_over(&per_member, window.num_hours()),
    }
}

/// Signal-free variant of [`cluster_series`] (same members, totals and
/// noise stream; planted anomalies stripped) — the control the detector
/// must stay silent on.
pub fn cluster_series_signal_free(
    cluster: usize,
    members: &[&Antenna],
    member_rows: &[&[f64]],
    services: &[Service],
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> ClusterSeries {
    assert_eq!(members.len(), member_rows.len(), "cluster_series: mismatch");
    assert!(!members.is_empty(), "cluster_series: no members");
    let per_member: Vec<Vec<f64>> = par::map_indexed(members.len(), |i| {
        aggregate_hourly_series_signal_free(
            members[i],
            services,
            member_rows[i],
            full_period_days,
            window,
            root,
        )
    });
    ClusterSeries {
        cluster,
        n_antennas: members.len(),
        values: median_over(&per_member, window.num_hours()),
    }
}

fn median_over(per_member: &[Vec<f64>], hours: usize) -> Vec<f64> {
    let mut scratch = vec![0.0f64; per_member.len()];
    (0..hours)
        .map(|h| {
            for (s, row) in scratch.iter_mut().zip(per_member) {
                *s = row[h];
            }
            summary::median_inplace(&mut scratch)
        })
        .collect()
}

/// Groups a study's live antennas by cluster label and builds every
/// cluster's series. `antennas[i]` and `totals_rows[i]` must align with
/// `labels[i]`; empty clusters yield an empty-series placeholder so the
/// output always has `k` entries indexed by cluster id.
#[allow(clippy::too_many_arguments)] // mirrors the study's stage-6 call site 1:1
pub fn study_cluster_series(
    antennas: &[Antenna],
    totals_rows: &[&[f64]],
    labels: &[usize],
    k: usize,
    services: &[Service],
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> Vec<ClusterSeries> {
    assert_eq!(antennas.len(), labels.len(), "study_cluster_series: labels");
    assert_eq!(
        antennas.len(),
        totals_rows.len(),
        "study_cluster_series: rows"
    );
    (0..k)
        .map(|c| {
            let idx: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
            if idx.is_empty() {
                return ClusterSeries {
                    cluster: c,
                    n_antennas: 0,
                    values: vec![0.0; window.num_hours()],
                };
            }
            let members: Vec<&Antenna> = idx.iter().map(|&i| &antennas[i]).collect();
            let rows: Vec<&[f64]> = idx.iter().map(|&i| totals_rows[i]).collect();
            cluster_series(c, &members, &rows, services, full_period_days, window, root)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_synth::{Archetype, Dataset, SynthConfig};

    fn setup() -> (Dataset, StudyCalendar) {
        (
            Dataset::generate(SynthConfig::small()),
            StudyCalendar::temporal_window(),
        )
    }

    fn archetype_cluster(d: &Dataset, arch: Archetype) -> (Vec<&Antenna>, Vec<&[f64]>) {
        let idx: Vec<usize> = (0..d.antennas.len())
            .filter(|&i| d.antennas[i].archetype == arch)
            .collect();
        let members: Vec<&Antenna> = idx.iter().map(|&i| &d.antennas[i]).collect();
        let rows: Vec<&[f64]> = idx.iter().map(|&i| d.indoor_totals.row(i)).collect();
        (members, rows)
    }

    #[test]
    fn series_has_window_length_and_is_finite() {
        let (d, w) = setup();
        let (members, rows) = archetype_cluster(&d, Archetype::ParisMetro);
        let s = cluster_series(0, &members, &rows, &d.services, 65, &w, d.root_rng());
        assert_eq!(s.values.len(), w.num_hours());
        assert!(s.values.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert_eq!(s.n_antennas, members.len());
    }

    #[test]
    fn metro_series_shows_strike_collapse() {
        let (d, w) = setup();
        let (members, rows) = archetype_cluster(&d, Archetype::ParisMetro);
        let s = cluster_series(0, &members, &rows, &d.services, 65, &w, d.root_rng());
        let strike = w.day_index(StudyCalendar::strike_day()).unwrap();
        let normal_thu = strike - 7;
        assert!(s.values[strike * 24 + 8] < 0.2 * s.values[normal_thu * 24 + 8]);
    }

    #[test]
    fn signal_free_series_has_no_strike_collapse() {
        let (d, w) = setup();
        let (members, rows) = archetype_cluster(&d, Archetype::ParisMetro);
        let s = cluster_series_signal_free(0, &members, &rows, &d.services, 65, &w, d.root_rng());
        let strike = w.day_index(StudyCalendar::strike_day()).unwrap();
        let normal_thu = strike - 7;
        let ratio = s.values[strike * 24 + 8] / s.values[normal_thu * 24 + 8];
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn study_grouping_covers_every_cluster() {
        let (d, w) = setup();
        let n = 40.min(d.antennas.len());
        let antennas: Vec<Antenna> = d.antennas[..n].to_vec();
        let rows: Vec<&[f64]> = (0..n).map(|i| d.indoor_totals.row(i)).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let all = study_cluster_series(
            &antennas,
            &rows,
            &labels,
            4,
            &d.services,
            65,
            &w,
            d.root_rng(),
        );
        assert_eq!(all.len(), 4);
        assert_eq!(all[3].n_antennas, 0); // empty cluster placeholder
        assert!(all[..3].iter().all(|s| s.n_antennas > 0));
    }
}
