//! Seasonal-baseline anomaly detection.
//!
//! The detector is unsupervised and works on one cluster series at a time:
//!
//! 1. **Baseline** — a *direction-aware* robust hour-of-week template
//!    ([`robust_template`]). The per-slot median is not enough: stadium
//!    fixtures concentrate on weekend evenings, so the same hour-of-week
//!    slot carries an event in two of the window's three weeks and the
//!    median locks onto the *event* level — event weeks score zero and
//!    the one quiet week false-flags as a dip. Instead the baseline is
//!    the per-slot **minimum over non-collapse days**: bursts only ever
//!    add traffic, so the slot minimum is the event-free level, and a
//!    day-level median-ratio guard ([`DIP_DAY_MAX`]) first removes
//!    whole-day collapses (the strike) so they cannot masquerade as the
//!    quiet baseline.
//! 2. **Relative residual** — `r[t] = (y[t] − baseline) / max(baseline,
//!    floor)`. Measurement noise is multiplicative, so the *relative*
//!    residual is homoscedastic: a strike collapse at a quiet night hour
//!    scores as strongly as at the morning peak.
//! 3. **Robust z-score** — residuals are standardised by a rolling-window
//!    median/MAD (incrementally maintained sorted window), and hours with
//!    `|z| ≥ z_threshold` are flagged. The rolling median absorbs the
//!    minimum-statistic's small downward bias, and MAD tolerates up to
//!    half the window being anomalous, so the strike's 24 consecutive
//!    hours don't poison their own scale estimate.
//!
//! The threshold is *absolute* (default 7): under the generator's 10%
//! multiplicative noise a signal-free series never reaches it (the
//! minimum-baseline's residual bias pushes the clean-series max |z| to
//! ≈6, planted signals score ≥ 28), which is what the signal-free
//! control test pins.

use std::collections::VecDeque;

/// Consistency constant scaling MAD to the standard deviation of a normal.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Seasonal period in hours (hour-of-week).
    pub period: usize,
    /// Rolling-window length (hours) for the robust scale.
    pub window: usize,
    /// Absolute robust z-score at or above which an hour is flagged.
    pub z_threshold: f64,
    /// Residual denominator floor, as a fraction of the template mean
    /// (guards the near-zero venue base hours).
    pub floor_frac: f64,
    /// Lower bound on the robust scale (relative units): windows with
    /// near-zero dispersion don't produce unbounded z-scores.
    pub min_scale: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            period: crate::models::PERIOD,
            window: 168,
            z_threshold: 7.0,
            floor_frac: 0.05,
            min_scale: 0.02,
        }
    }
}

/// Detection result for one series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Anomalies {
    /// Robust z-score per hour (positive = above template).
    pub scores: Vec<f64>,
    /// Sorted indices of flagged hours (`|z| ≥ z_threshold`).
    pub flagged: Vec<usize>,
    /// The robust hour-of-week baseline the residuals ran against
    /// (length `period`; see [`robust_template`]).
    pub template: Vec<f64>,
}

impl Anomalies {
    /// Flagged hours with positive z (bursts).
    pub fn bursts(&self) -> Vec<usize> {
        self.flagged
            .iter()
            .copied()
            .filter(|&t| self.scores[t] > 0.0)
            .collect()
    }

    /// Flagged hours with negative z (dips).
    pub fn dips(&self) -> Vec<usize> {
        self.flagged
            .iter()
            .copied()
            .filter(|&t| self.scores[t] < 0.0)
            .collect()
    }
}

/// Day-level **upper-quartile** ratio (observed / per-slot-median
/// template) at or below which a whole day is treated as a one-off
/// collapse. A strike depresses *every* hour of the day (factors
/// 0.05–0.6, all below 0.7), so even the day's 75th-percentile ratio
/// sinks under the bound; an event only ever inflates part of a day
/// (fixtures 6 evening hours, expos 13 daytime hours), so on the quiet
/// week of an event-heavy slot more than a quarter of the day's hours
/// still sit near ratio 1 and the upper quartile stays clear.
pub const DIP_DAY_MAX: f64 = 0.7;

/// Direction-aware robust hour-of-week baseline.
///
/// Two passes over the series:
///
/// 1. Per-slot *median* template ([`seasonal_template`]) → upper-quartile
///    ratio per calendar day → days at or below [`DIP_DAY_MAX`] are
///    collapse days (the strike).
/// 2. The baseline of each slot is the **minimum across its occurrences
///    on non-collapse days** (falling back to the all-days minimum when
///    every occurrence is on a collapse day). Bursts only add traffic,
///    so the minimum recovers the event-free level even when most weeks
///    of the window carry an event at that slot; excluding collapse days
///    keeps the strike from posing as that quiet level.
pub fn robust_template(values: &[f64], period: usize, floor_frac: f64) -> Vec<f64> {
    let n = values.len();
    let med = seasonal_template(values, period);
    let med_mean = med.iter().sum::<f64>() / med.len().max(1) as f64;
    if !(med_mean > 0.0) {
        return med;
    }
    let floor = floor_frac * med_mean;
    let num_days = n.div_ceil(24);
    let mut dip_day = vec![false; num_days];
    let mut ratios: Vec<f64> = Vec::with_capacity(24);
    for (d, flag) in dip_day.iter_mut().enumerate() {
        ratios.clear();
        for t in (d * 24)..((d + 1) * 24).min(n) {
            ratios.push(values[t] / med[t % period].max(floor));
        }
        if !ratios.is_empty() {
            *flag = icn_stats::summary::quantile(&ratios, 0.75) <= DIP_DAY_MAX;
        }
    }
    (0..period)
        .map(|slot| {
            let mut clean = f64::INFINITY;
            let mut any = f64::INFINITY;
            let mut t = slot;
            while t < n {
                any = any.min(values[t]);
                if !dip_day[t / 24] {
                    clean = clean.min(values[t]);
                }
                t += period;
            }
            let v = if clean.is_finite() { clean } else { any };
            if v.is_finite() {
                v
            } else {
                0.0
            }
        })
        .collect()
}

/// Hour-of-week seasonal template: per-slot median across occurrences.
pub fn seasonal_template(values: &[f64], period: usize) -> Vec<f64> {
    assert!(period > 0, "seasonal_template: zero period");
    let mut out = Vec::with_capacity(period);
    let mut occ: Vec<f64> = Vec::with_capacity(values.len() / period + 1);
    for slot in 0..period {
        occ.clear();
        let mut t = slot;
        while t < values.len() {
            occ.push(values[t]);
            t += period;
        }
        out.push(if occ.is_empty() {
            0.0
        } else {
            icn_stats::summary::median_inplace(&mut occ)
        });
    }
    out
}

/// Incrementally maintained rolling window with exact robust statistics:
/// O(w) insert/evict (binary search + memmove in a sorted buffer), O(w)
/// median-absolute-deviation via a two-pointer walk outward from the
/// median. Exactly equivalent to re-sorting the trailing window at every
/// step — the brute-force differential oracle in `icn-testkit` pins that.
#[derive(Clone, Debug)]
pub struct RollingRobust {
    capacity: usize,
    fifo: VecDeque<f64>,
    sorted: Vec<f64>,
}

impl RollingRobust {
    /// New window holding at most `capacity` most-recent values.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RollingRobust: zero capacity");
        RollingRobust {
            capacity,
            fifo: VecDeque::with_capacity(capacity + 1),
            sorted: Vec::with_capacity(capacity + 1),
        }
    }

    /// Pushes a value, evicting the oldest once past capacity.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "RollingRobust: NaN value");
        if self.fifo.len() == self.capacity {
            let old = self.fifo.pop_front().expect("non-empty");
            let i = self.sorted.partition_point(|&v| v < old);
            debug_assert!(self.sorted[i] == old);
            self.sorted.remove(i);
        }
        self.fifo.push_back(x);
        let i = self.sorted.partition_point(|&v| v < x);
        self.sorted.insert(i, x);
    }

    /// Number of values currently in the window.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no value has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Median of the current window (mean of the two mid values when even).
    pub fn median(&self) -> f64 {
        let s = &self.sorted;
        assert!(!s.is_empty(), "RollingRobust: median of empty window");
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    }

    /// Median absolute deviation around [`RollingRobust::median`].
    ///
    /// The deviations `|x − med|`, in sorted order, are enumerated by two
    /// pointers walking outward from the median's position in the sorted
    /// buffer; the k-th smallest deviations are read off directly without
    /// materialising the deviation array.
    pub fn mad(&self) -> f64 {
        let s = &self.sorted;
        let n = s.len();
        assert!(n > 0, "RollingRobust: MAD of empty window");
        let med = self.median();
        // lo: largest index with s[lo] ≤ med (walk left); hi: smallest
        // index with s[hi] > med (walk right). Deviations come out in
        // nondecreasing order by always consuming the nearer side.
        let mut hi = s.partition_point(|&v| v <= med);
        let mut lo = hi as isize - 1;
        let mut kth = |k: usize| -> f64 {
            // Advances the pointers until k+1 deviations are consumed;
            // because k is called in increasing order, state carries over
            // (consumed-so-far falls out of the pointer positions).
            let mut consumed = (hi as isize - 1 - lo) as usize;
            let mut last = 0.0;
            while consumed <= k {
                let left = if lo >= 0 {
                    med - s[lo as usize]
                } else {
                    f64::INFINITY
                };
                let right = if hi < n { s[hi] - med } else { f64::INFINITY };
                if left <= right {
                    last = left;
                    lo -= 1;
                } else {
                    last = right;
                    hi += 1;
                }
                consumed += 1;
            }
            last
        };
        if n % 2 == 1 {
            kth(n / 2)
        } else {
            let a = kth(n / 2 - 1);
            let b = kth(n / 2);
            (a + b) / 2.0
        }
    }
}

/// Runs the detector over one series.
pub fn detect(values: &[f64], cfg: &DetectorConfig) -> Anomalies {
    let n = values.len();
    if n == 0 {
        return Anomalies::default();
    }
    let template = robust_template(values, cfg.period, cfg.floor_frac);
    let tmpl_mean = template.iter().sum::<f64>() / template.len() as f64;
    if !(tmpl_mean > 0.0) {
        // Silent series: nothing to deviate from.
        return Anomalies {
            scores: vec![0.0; n],
            flagged: Vec::new(),
            template,
        };
    }
    let floor = cfg.floor_frac * tmpl_mean;
    let rel: Vec<f64> = values
        .iter()
        .enumerate()
        .map(|(t, &v)| {
            let tm = template[t % cfg.period];
            (v - tm) / tm.max(floor)
        })
        .collect();
    // Trailing-window robust centre and scale. The first `window − 1`
    // positions would see a shrunken window, so they are backfilled with
    // the first full window's statistics (the detector is batch, not
    // streaming: the whole series is available).
    let w = cfg.window.min(n);
    let mut roll = RollingRobust::new(w);
    let mut med = vec![0.0f64; n];
    let mut mad = vec![0.0f64; n];
    for (t, &r) in rel.iter().enumerate() {
        roll.push(r);
        med[t] = roll.median();
        mad[t] = roll.mad();
    }
    for t in 0..w - 1 {
        med[t] = med[w - 1];
        mad[t] = mad[w - 1];
    }
    let scores: Vec<f64> = rel
        .iter()
        .zip(med.iter().zip(&mad))
        .map(|(&r, (&m, &d))| (r - m) / (MAD_TO_SIGMA * d).max(cfg.min_scale))
        .collect();
    let flagged: Vec<usize> = scores
        .iter()
        .enumerate()
        .filter(|(_, &z)| z.abs() >= cfg.z_threshold)
        .map(|(t, _)| t)
        .collect();
    Anomalies {
        scores,
        flagged,
        template,
    }
}

/// Quantile of the |z| score distribution — the threshold helper used to
/// report "top q" hours. Linear interpolation on the sorted scores,
/// matching `icn_stats::summary::quantile` (the sort-oracle test pins it).
pub fn score_quantile(scores: &[f64], q: f64) -> f64 {
    let abs: Vec<f64> = scores.iter().map(|z| z.abs()).collect();
    icn_stats::summary::quantile(&abs, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Rng;

    fn noisy_weekly(n: usize, sigma: f64, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|t| {
                let how = t % 168;
                let clean = 50.0 + (how as f64 * 0.21).sin() * 20.0;
                clean * (1.0 + sigma * rng.gaussian())
            })
            .collect()
    }

    #[test]
    fn template_is_per_slot_median() {
        // Three occurrences per slot: the middle one wins.
        let mut v = vec![0.0; 3 * 168];
        for t in 0..168 {
            v[t] = 10.0;
            v[168 + t] = 30.0;
            v[2 * 168 + t] = 20.0;
        }
        let tm = seasonal_template(&v, 168);
        assert!(tm.iter().all(|&x| x == 20.0));
    }

    #[test]
    fn rolling_robust_matches_simple_cases() {
        let mut r = RollingRobust::new(3);
        r.push(1.0);
        assert_eq!(r.median(), 1.0);
        assert_eq!(r.mad(), 0.0);
        r.push(3.0);
        assert_eq!(r.median(), 2.0);
        assert_eq!(r.mad(), 1.0);
        r.push(5.0);
        assert_eq!(r.median(), 3.0);
        assert_eq!(r.mad(), 2.0);
        r.push(100.0); // evicts 1.0 → window {3, 5, 100}
        assert_eq!(r.median(), 5.0);
        assert_eq!(r.mad(), 2.0);
    }

    #[test]
    fn clean_series_flags_nothing() {
        let v = noisy_weekly(504, 0.02, 7);
        let a = detect(&v, &DetectorConfig::default());
        assert!(a.flagged.is_empty(), "{:?}", a.flagged);
    }

    #[test]
    fn planted_dip_and_burst_are_flagged() {
        let mut v = noisy_weekly(504, 0.02, 8);
        // A strike-like collapse over hours 240..264 of week 2...
        for x in &mut v[240..264] {
            *x *= 0.05;
        }
        // ...and an event burst on the evening of day 18.
        for x in &mut v[450..455] {
            *x *= 8.0;
        }
        let a = detect(&v, &DetectorConfig::default());
        for t in 240..264 {
            assert!(a.flagged.contains(&t), "dip hour {t} missed");
            assert!(a.scores[t] < 0.0);
        }
        for t in 450..455 {
            assert!(a.flagged.contains(&t), "burst hour {t} missed");
            assert!(a.scores[t] > 0.0);
        }
        // And nothing outside the planted ranges.
        for &t in &a.flagged {
            assert!((240..264).contains(&t) || (450..455).contains(&t), "{t}");
        }
        assert_eq!(a.bursts(), (450..455).collect::<Vec<_>>());
        assert_eq!(a.dips(), (240..264).collect::<Vec<_>>());
    }

    #[test]
    fn silent_series_yields_no_anomalies() {
        let v = vec![0.0; 504];
        let a = detect(&v, &DetectorConfig::default());
        assert!(a.flagged.is_empty());
        assert!(a.scores.iter().all(|&z| z == 0.0));
    }

    #[test]
    fn score_quantile_spans_min_max() {
        let v = noisy_weekly(504, 0.02, 9);
        let a = detect(&v, &DetectorConfig::default());
        let q0 = score_quantile(&a.scores, 0.0);
        let q1 = score_quantile(&a.scores, 1.0);
        assert!(q0 <= q1);
        let max = a.scores.iter().fold(0.0f64, |m, z| m.max(z.abs()));
        assert_eq!(q1, max);
    }
}
