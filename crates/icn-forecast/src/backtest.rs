//! Rolling-origin backtesting.
//!
//! Each origin truncates the series at a training length, forecasts the
//! next `horizon` hours with every model, and scores the forecasts against
//! the held-out actuals with MAE and sMAPE. Scores aggregate as the mean
//! over origins — the standard time-series cross-validation that keeps
//! test hours strictly after training hours.
//!
//! This is where the tentpole's evaluation gate lives: the seasonal-naive
//! baseline replays last week's noise and anomalies verbatim, so a model
//! that actually smooths (ETS) or learns the seasonal structure (forest)
//! must post a lower MAE. `tests/forecast_signals.rs` pins that ordering.

use crate::models::{self, EtsParams, ForestParams, Model};
use icn_stats::par;

/// Backtest configuration: training lengths (in hours) and horizon.
#[derive(Clone, Debug)]
pub struct BacktestConfig {
    /// Training lengths; each must be ≥ 2 periods and leave `horizon`
    /// hours of actuals after it.
    pub origins: Vec<usize>,
    /// Forecast horizon scored at each origin.
    pub horizon: usize,
}

impl BacktestConfig {
    /// Default splits for an `n`-hour series: three origins across the
    /// final week, 24-hour horizon. Returns `None` when the series is too
    /// short to leave two full periods of training data.
    pub fn standard(n: usize) -> Option<BacktestConfig> {
        let horizon = 24;
        let min_train = 2 * models::PERIOD;
        if n < min_train + horizon {
            return None;
        }
        // Latest origin leaves exactly `horizon` actuals; earlier ones
        // step back a day at a time while enough training data remains.
        let origins: Vec<usize> = (0..3)
            .map(|i| n - horizon - 48 * i)
            .filter(|&o| o >= min_train)
            .collect();
        Some(BacktestConfig { origins, horizon })
    }
}

/// MAE/sMAPE pair for one model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModelScore {
    /// Mean absolute error over all origin × horizon points.
    pub mae: f64,
    /// Symmetric mean absolute percentage error (0..2).
    pub smape: f64,
}

/// Backtest scores for the three models.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BacktestScores {
    /// Seasonal-naive baseline.
    pub naive: ModelScore,
    /// Holt–Winters ETS.
    pub ets: ModelScore,
    /// Forest regressor.
    pub forest: ModelScore,
}

impl BacktestScores {
    /// Score of `model`.
    pub fn of(&self, model: Model) -> ModelScore {
        match model {
            Model::SeasonalNaive => self.naive,
            Model::Ets => self.ets,
            Model::Forest => self.forest,
        }
    }
}

/// Mean absolute error between a forecast and the actuals.
pub fn mae(forecast: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(forecast.len(), actual.len(), "mae: length mismatch");
    assert!(!forecast.is_empty(), "mae: empty");
    forecast
        .iter()
        .zip(actual)
        .map(|(f, a)| (f - a).abs())
        .sum::<f64>()
        / forecast.len() as f64
}

/// Symmetric MAPE: `mean(2·|f−a| / (|f|+|a|))`, with an exact-zero pair
/// contributing zero error.
pub fn smape(forecast: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(forecast.len(), actual.len(), "smape: length mismatch");
    assert!(!forecast.is_empty(), "smape: empty");
    forecast
        .iter()
        .zip(actual)
        .map(|(f, a)| {
            let denom = f.abs() + a.abs();
            if denom > 0.0 {
                2.0 * (f - a).abs() / denom
            } else {
                0.0
            }
        })
        .sum::<f64>()
        / forecast.len() as f64
}

/// Runs the rolling-origin backtest of all three models over one series.
///
/// `start_dow` is the day-of-week index (0 = Monday) of the series' first
/// day, forwarded to the forest's calendar features.
pub fn backtest(
    values: &[f64],
    cfg: &BacktestConfig,
    ets: &EtsParams,
    forest: &ForestParams,
    start_dow: usize,
) -> BacktestScores {
    backtest_masked(values, values, &[], cfg, ets, forest, start_dow)
}

/// Robust rolling-origin backtest: models are **fit** on `train_values`
/// (typically the anomaly-imputed series) and **scored** against
/// `actual_values` (the raw observations), with the hours listed in
/// `excluded` left out of the error aggregation.
///
/// This is the standard "score on normal hours" convention: an hour the
/// detector flagged as anomalous is unforecastable by construction (a
/// strike or a one-off fixture), so it belongs in neither the training
/// state nor the score. Origins whose entire horizon is excluded drop
/// out of the aggregate. With `train_values == actual_values` and an
/// empty exclusion list this is exactly the plain [`backtest`].
pub fn backtest_masked(
    train_values: &[f64],
    actual_values: &[f64],
    excluded: &[usize],
    cfg: &BacktestConfig,
    ets: &EtsParams,
    forest: &ForestParams,
    start_dow: usize,
) -> BacktestScores {
    assert!(!cfg.origins.is_empty(), "backtest: no origins");
    assert_eq!(
        train_values.len(),
        actual_values.len(),
        "backtest: train/actual length mismatch"
    );
    // Scorable origins and their kept (non-excluded) horizon offsets.
    let scorable: Vec<(usize, Vec<usize>)> = cfg
        .origins
        .iter()
        .map(|&origin| {
            assert!(
                origin + cfg.horizon <= actual_values.len(),
                "backtest: origin {origin} + horizon {} exceeds series {}",
                cfg.horizon,
                actual_values.len()
            );
            let kept: Vec<usize> = (0..cfg.horizon)
                .filter(|h| !excluded.contains(&(origin + h)))
                .collect();
            (origin, kept)
        })
        .filter(|(_, kept)| !kept.is_empty())
        .collect();
    // The model refits dominate the cost, so the (origin × model)
    // forecast vectors are produced in parallel; each is a pure function
    // of its truncated training slice. The error *accumulation* below
    // stays serial in the original (origin, model) order — the flat f64
    // `sums` chains are not reassociable — so the scores are bit-identical
    // to the fully serial loop at any `ICN_THREADS`.
    let n_models = Model::ALL.len();
    let forecasts: Vec<Vec<f64>> = par::map_indexed(scorable.len() * n_models, |j| {
        let (origin, _) = scorable[j / n_models];
        let model = Model::ALL[j % n_models];
        let train = &train_values[..origin];
        models::forecast_with(model, train, ets, forest, start_dow, cfg.horizon)
    });
    let mut sums = [(0.0f64, 0.0f64); 3]; // (mae, smape) per model
    let scored_origins = scorable.len();
    let mut f_kept: Vec<f64> = Vec::with_capacity(cfg.horizon);
    let mut a_kept: Vec<f64> = Vec::with_capacity(cfg.horizon);
    for (oi, (origin, kept)) in scorable.iter().enumerate() {
        for i in 0..n_models {
            let f = &forecasts[oi * n_models + i];
            f_kept.clear();
            a_kept.clear();
            for &h in kept {
                f_kept.push(f[h]);
                a_kept.push(actual_values[origin + h]);
            }
            sums[i].0 += mae(&f_kept, &a_kept);
            sums[i].1 += smape(&f_kept, &a_kept);
        }
    }
    if scored_origins == 0 {
        return BacktestScores::default();
    }
    let k = scored_origins as f64;
    let score = |i: usize| ModelScore {
        mae: sums[i].0 / k,
        smape: sums[i].1 / k,
    };
    BacktestScores {
        naive: score(0),
        ets: score(1),
        forest: score(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Rng;

    #[test]
    fn standard_splits_respect_bounds() {
        let cfg = BacktestConfig::standard(504).unwrap();
        assert_eq!(cfg.horizon, 24);
        assert_eq!(cfg.origins, vec![480, 432, 384]);
        assert!(BacktestConfig::standard(300).is_none());
    }

    #[test]
    fn mae_and_smape_basics() {
        assert_eq!(mae(&[1.0, 3.0], &[2.0, 1.0]), 1.5);
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
        assert!((smape(&[3.0], &[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_models_beat_naive_on_noisy_seasonal_series() {
        // The synthetic case mirroring the real gate: strong weekly shape
        // + multiplicative noise. Naive MAE carries two noise draws per
        // point; ETS and the forest smooth one away.
        let mut rng = Rng::seed_from(42);
        let v: Vec<f64> = (0..504)
            .map(|t| {
                let how = t % 168;
                let clean = 60.0 + (how as f64 * 0.19).sin() * 25.0 + ((how / 24) as f64) * 3.0;
                clean * (1.0 + 0.10 * rng.gaussian())
            })
            .collect();
        let cfg = BacktestConfig::standard(v.len()).unwrap();
        let s = backtest(&v, &cfg, &EtsParams::default(), &ForestParams::default(), 2);
        assert!(
            s.ets.mae < s.naive.mae,
            "ets {} naive {}",
            s.ets.mae,
            s.naive.mae
        );
        assert!(
            s.forest.mae < s.naive.mae,
            "forest {} naive {}",
            s.forest.mae,
            s.naive.mae
        );
    }

    #[test]
    fn backtest_is_deterministic() {
        let v: Vec<f64> = (0..504)
            .map(|t| ((t % 168) as f64 * 0.3).cos() + 5.0)
            .collect();
        let cfg = BacktestConfig::standard(v.len()).unwrap();
        let a = backtest(&v, &cfg, &EtsParams::default(), &ForestParams::default(), 0);
        let b = backtest(&v, &cfg, &EtsParams::default(), &ForestParams::default(), 0);
        assert_eq!(a, b);
    }

    /// Differential oracle: the parallel (origin × model) forecast fan-out
    /// plus serial accumulation must reproduce the naive fully-serial
    /// backtest loop **bit for bit** — including the masked variant, where
    /// kept-hour filtering interleaves with the error sums.
    #[test]
    fn parallel_backtest_matches_serial_oracle_bitwise() {
        fn serial_oracle(
            train_values: &[f64],
            actual_values: &[f64],
            excluded: &[usize],
            cfg: &BacktestConfig,
            ets: &EtsParams,
            forest: &ForestParams,
            start_dow: usize,
        ) -> BacktestScores {
            let mut sums = [(0.0f64, 0.0f64); 3];
            let mut scored = 0usize;
            for &origin in &cfg.origins {
                let kept: Vec<usize> = (0..cfg.horizon)
                    .filter(|h| !excluded.contains(&(origin + h)))
                    .collect();
                if kept.is_empty() {
                    continue;
                }
                scored += 1;
                for (i, &model) in Model::ALL.iter().enumerate() {
                    let f = models::forecast_with(
                        model,
                        &train_values[..origin],
                        ets,
                        forest,
                        start_dow,
                        cfg.horizon,
                    );
                    let f_kept: Vec<f64> = kept.iter().map(|&h| f[h]).collect();
                    let a_kept: Vec<f64> =
                        kept.iter().map(|&h| actual_values[origin + h]).collect();
                    sums[i].0 += mae(&f_kept, &a_kept);
                    sums[i].1 += smape(&f_kept, &a_kept);
                }
            }
            let k = scored as f64;
            let score = |i: usize| ModelScore {
                mae: sums[i].0 / k,
                smape: sums[i].1 / k,
            };
            BacktestScores {
                naive: score(0),
                ets: score(1),
                forest: score(2),
            }
        }

        let mut rng = Rng::seed_from(7);
        let v: Vec<f64> = (0..504)
            .map(|t| {
                let how = t % 168;
                (80.0 + (how as f64 * 0.21).sin() * 30.0) * (1.0 + 0.08 * rng.gaussian())
            })
            .collect();
        let cfg = BacktestConfig::standard(v.len()).unwrap();
        let ets = EtsParams::default();
        let forest = ForestParams::default();
        let bits = |s: BacktestScores| {
            [s.naive, s.ets, s.forest].map(|m| (m.mae.to_bits(), m.smape.to_bits()))
        };
        // Plain backtest and a masked one with a few excluded hours
        // straddling the latest origin's horizon.
        let excluded = [481usize, 482, 490];
        for exc in [&[][..], &excluded[..]] {
            let fast = backtest_masked(&v, &v, exc, &cfg, &ets, &forest, 2);
            let slow = serial_oracle(&v, &v, exc, &cfg, &ets, &forest, 2);
            assert_eq!(bits(fast), bits(slow), "excluded={exc:?}");
        }
    }
}
