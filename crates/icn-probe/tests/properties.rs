//! Property-based tests for the measurement-plane substrate, driven by
//! the deterministic [`icn_stats::check`] harness.

use icn_probe::{
    antenna_for_uli, decode, encode, sessions_for_cell_hour, uli_for_antenna, DpiClassifier,
    DpiConfig, DpiLabel,
};
use icn_stats::check::cases;
use icn_synth::services::catalog;

#[test]
fn uli_round_trip() {
    cases(64, |case, rng| {
        let id = rng.index(100_000);
        let uli = uli_for_antenna(id);
        assert_eq!(antenna_for_uli(uli, 200_000), Some(id), "case {case}");
        assert_eq!(decode(&encode(uli)), Some(uli), "case {case}");
    });
}

#[test]
fn uli_rejects_foreign_population() {
    cases(64, |case, rng| {
        let id = 5_000 + rng.index(95_000);
        let uli = uli_for_antenna(id);
        assert_eq!(antenna_for_uli(uli, 4_762), None, "case {case}");
    });
}

#[test]
fn session_bytes_conserved() {
    cases(64, |case, rng| {
        let svc_idx = rng.index(73);
        let volume = rng.uniform(0.1, 5_000.0);
        let services = catalog();
        let recs = sessions_for_cell_hour(7, svc_idx, &services[svc_idx], 3, volume, rng);
        assert!(!recs.is_empty(), "case {case}");
        let total_mb: f64 = recs.iter().map(|r| r.bytes_total() as f64 / 1e6).sum();
        // Byte rounding across n sessions loses at most ~n bytes.
        assert!(
            (total_mb - volume).abs() < 0.01 + recs.len() as f64 * 1e-6,
            "case {case}: total {total_mb} vs {volume}"
        );
        for r in &recs {
            assert_eq!(r.hour, 3, "case {case}");
            assert!(r.bytes_total() > 0, "case {case}");
        }
    });
}

#[test]
fn classifier_rates_bounded() {
    cases(64, |case, rng| {
        let confusion = rng.uniform(0.0, 1.0);
        let unclassified = rng.uniform(0.0, 0.5);
        let services = catalog();
        let dpi = DpiClassifier::new(
            &services,
            DpiConfig {
                confusion_rate: confusion,
                within_category: 0.8,
                unclassified_rate: unclassified,
            },
        );
        for truth in (0..73).step_by(11) {
            match dpi.classify(truth, rng) {
                DpiLabel::Service(s) => assert!(s < 73, "case {case}"),
                DpiLabel::Unclassified => {}
            }
        }
    });
}

#[test]
fn zero_confusion_is_identity() {
    cases(64, |case, rng| {
        let services = catalog();
        let dpi = DpiClassifier::new(&services, DpiConfig::perfect());
        for truth in 0..73 {
            assert_eq!(
                dpi.classify(truth, rng),
                DpiLabel::Service(truth),
                "case {case}"
            );
        }
    });
}
