//! Property-based tests for the measurement-plane substrate.

use icn_probe::{
    antenna_for_uli, decode, encode, sessions_for_cell_hour, uli_for_antenna, DpiClassifier,
    DpiConfig, DpiLabel,
};
use icn_stats::Rng;
use icn_synth::services::catalog;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uli_round_trip(id in 0usize..100_000) {
        let uli = uli_for_antenna(id);
        prop_assert_eq!(antenna_for_uli(uli, 200_000), Some(id));
        prop_assert_eq!(decode(&encode(uli)), Some(uli));
    }

    #[test]
    fn uli_rejects_foreign_population(id in 5_000usize..100_000) {
        let uli = uli_for_antenna(id);
        prop_assert_eq!(antenna_for_uli(uli, 4_762), None);
    }

    #[test]
    fn session_bytes_conserved(
        seed in any::<u64>(),
        svc_idx in 0usize..73,
        volume in 0.1f64..5_000.0,
    ) {
        let services = catalog();
        let mut rng = Rng::seed_from(seed);
        let recs = sessions_for_cell_hour(7, svc_idx, &services[svc_idx], 3, volume, &mut rng);
        prop_assert!(!recs.is_empty());
        let total_mb: f64 = recs.iter().map(|r| r.bytes_total() as f64 / 1e6).sum();
        // Byte rounding across n sessions loses at most ~n bytes.
        prop_assert!((total_mb - volume).abs() < 0.01 + recs.len() as f64 * 1e-6,
            "total {} vs {}", total_mb, volume);
        for r in &recs {
            prop_assert_eq!(r.hour, 3);
            prop_assert!(r.bytes_total() > 0);
        }
    }

    #[test]
    fn classifier_rates_bounded(
        seed in any::<u64>(),
        confusion in 0.0f64..1.0,
        unclassified in 0.0f64..0.5,
    ) {
        let services = catalog();
        let dpi = DpiClassifier::new(
            &services,
            DpiConfig {
                confusion_rate: confusion,
                within_category: 0.8,
                unclassified_rate: unclassified,
            },
        );
        let mut rng = Rng::seed_from(seed);
        for truth in (0..73).step_by(11) {
            match dpi.classify(truth, &mut rng) {
                DpiLabel::Service(s) => prop_assert!(s < 73),
                DpiLabel::Unclassified => {}
            }
        }
    }

    #[test]
    fn zero_confusion_is_identity(seed in any::<u64>()) {
        let services = catalog();
        let dpi = DpiClassifier::new(&services, DpiConfig::perfect());
        let mut rng = Rng::seed_from(seed);
        for truth in 0..73 {
            prop_assert_eq!(dpi.classify(truth, &mut rng), DpiLabel::Service(truth));
        }
    }
}
