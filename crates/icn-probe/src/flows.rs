//! IP-session synthesis.
//!
//! The paper's feed is built from "each TCP and UDP session recorded by the
//! probes" (Section 3). This module turns an antenna-service-hour's
//! expected traffic volume into a stream of individual session records:
//! a Poisson number of sessions whose sizes follow a heavy-tailed
//! log-normal, split into downlink/uplink with a service-dependent ratio
//! and carried over TCP or UDP with a service-dependent mix (streaming is
//! QUIC/UDP-heavy, mail is TCP). Aggregating the records reproduces the
//! hourly volumes; tests assert the conservation.

use icn_stats::Rng;
use icn_synth::{Category, Service};

use crate::uli::{uli_for_antenna, Uli};

/// Transport protocol of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol (incl. QUIC).
    Udp,
}

/// One recorded IP session, as the probe would export it after GTP-C
/// correlation.
#[derive(Clone, Debug)]
pub struct SessionRecord {
    /// ULI of the serving cell (geo-reference).
    pub uli: Uli,
    /// Service index assigned by DPI — here still the ground truth; the
    /// classifier in [`crate::dpi`] may relabel it.
    pub service: usize,
    /// Hour slot index within the observation window.
    pub hour: usize,
    /// Downlink bytes.
    pub bytes_down: u64,
    /// Uplink bytes.
    pub bytes_up: u64,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl SessionRecord {
    /// Total bytes both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_down + self.bytes_up
    }
}

/// Mean session size (MB) by category — streaming sessions are large and
/// few, messaging sessions tiny and many.
fn mean_session_mb(cat: Category) -> f64 {
    match cat {
        Category::VideoStreaming => 60.0,
        Category::Music => 15.0,
        Category::AppStore => 40.0,
        Category::Gaming => 12.0,
        Category::Cloud => 25.0,
        Category::VideoCall => 30.0,
        Category::SocialMedia => 8.0,
        Category::Work => 10.0,
        Category::Messaging => 0.8,
        Category::Mail => 0.6,
        Category::Navigation => 1.5,
        Category::WebPortal => 2.0,
        Category::Shopping => 3.0,
        Category::Wellbeing => 1.5,
        Category::News => 2.5,
        Category::Finance => 0.5,
    }
}

/// Downlink fraction by category (uplink-heavy only for cloud sync and
/// video calls).
fn downlink_fraction(cat: Category) -> f64 {
    match cat {
        Category::Cloud => 0.45,
        Category::VideoCall => 0.55,
        Category::Messaging => 0.7,
        _ => 0.92,
    }
}

/// Probability that a session of this category runs over UDP/QUIC.
fn udp_probability(cat: Category) -> f64 {
    match cat {
        Category::VideoStreaming | Category::Music => 0.75,
        Category::VideoCall | Category::Gaming => 0.85,
        Category::SocialMedia | Category::WebPortal => 0.5,
        Category::Mail | Category::Finance | Category::Work => 0.1,
        _ => 0.3,
    }
}

/// Generates the session records of one antenna-service-hour whose total
/// volume is `volume_mb`. The number of sessions is Poisson with mean
/// `volume / mean_session_size`; individual sizes are log-normal and then
/// rescaled so the records sum exactly to `volume_mb` (the probe observes
/// actual bytes; our target volume is the ground truth being carried).
pub fn sessions_for_cell_hour(
    antenna_id: usize,
    service_idx: usize,
    service: &Service,
    hour: usize,
    volume_mb: f64,
    rng: &mut Rng,
) -> Vec<SessionRecord> {
    assert!(volume_mb >= 0.0, "sessions: negative volume");
    if volume_mb <= 0.0 {
        return Vec::new();
    }
    let mean_mb = mean_session_mb(service.category);
    let expected = (volume_mb / mean_mb).max(1e-9);
    let n = rng.poisson(expected).max(1) as usize;

    // Draw heavy-tailed sizes, then rescale to conserve the hour's bytes.
    let mut sizes: Vec<f64> = (0..n).map(|_| rng.lognormal(0.0, 1.0)).collect();
    let raw_total: f64 = sizes.iter().sum();
    for s in &mut sizes {
        *s = *s / raw_total * volume_mb;
    }

    let uli = uli_for_antenna(antenna_id);
    let dl_frac = downlink_fraction(service.category);
    let udp_p = udp_probability(service.category);
    sizes
        .into_iter()
        .map(|mb| {
            let bytes = (mb * 1_000_000.0).round().max(1.0) as u64;
            let down = (bytes as f64 * dl_frac).round() as u64;
            SessionRecord {
                uli,
                service: service_idx,
                hour,
                bytes_down: down,
                bytes_up: bytes - down,
                protocol: if rng.chance(udp_p) {
                    Protocol::Udp
                } else {
                    Protocol::Tcp
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_synth::services::{catalog, index_of};

    fn svc(name: &str) -> (usize, Service) {
        let c = catalog();
        let i = index_of(&c, name).unwrap();
        (i, c[i].clone())
    }

    #[test]
    fn bytes_conserved() {
        let (i, netflix) = svc("Netflix");
        let mut rng = Rng::seed_from(1);
        let recs = sessions_for_cell_hour(42, i, &netflix, 7, 500.0, &mut rng);
        let total: u64 = recs.iter().map(|r| r.bytes_total()).sum();
        let total_mb = total as f64 / 1e6;
        assert!(
            (total_mb - 500.0).abs() < 0.01,
            "total {total_mb} MB vs 500"
        );
    }

    #[test]
    fn zero_volume_zero_sessions() {
        let (i, s) = svc("Gmail");
        let mut rng = Rng::seed_from(2);
        assert!(sessions_for_cell_hour(0, i, &s, 0, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn tiny_volume_still_one_session() {
        let (i, s) = svc("Gmail");
        let mut rng = Rng::seed_from(3);
        let recs = sessions_for_cell_hour(0, i, &s, 0, 1e-6, &mut rng);
        assert!(!recs.is_empty());
    }

    #[test]
    fn streaming_sessions_fewer_than_messaging() {
        let (i_nf, netflix) = svc("Netflix");
        let (i_wa, whatsapp) = svc("WhatsApp");
        let mut rng = Rng::seed_from(4);
        let nf = sessions_for_cell_hour(1, i_nf, &netflix, 0, 300.0, &mut rng);
        let wa = sessions_for_cell_hour(1, i_wa, &whatsapp, 0, 300.0, &mut rng);
        assert!(
            wa.len() > 5 * nf.len(),
            "whatsapp {} vs netflix {}",
            wa.len(),
            nf.len()
        );
    }

    #[test]
    fn protocol_mix_follows_category() {
        let (i, netflix) = svc("Netflix");
        let mut rng = Rng::seed_from(5);
        let recs = sessions_for_cell_hour(1, i, &netflix, 0, 5000.0, &mut rng);
        let udp = recs.iter().filter(|r| r.protocol == Protocol::Udp).count();
        let frac = udp as f64 / recs.len() as f64;
        assert!((frac - 0.75).abs() < 0.15, "udp fraction {frac}");
    }

    #[test]
    fn downlink_dominates_streaming() {
        let (i, netflix) = svc("Netflix");
        let mut rng = Rng::seed_from(6);
        let recs = sessions_for_cell_hour(1, i, &netflix, 0, 100.0, &mut rng);
        for r in recs {
            assert!(r.bytes_down > 5 * r.bytes_up);
        }
    }

    #[test]
    fn uli_matches_antenna() {
        let (i, s) = svc("Waze");
        let mut rng = Rng::seed_from(7);
        let recs = sessions_for_cell_hour(321, i, &s, 3, 10.0, &mut rng);
        for r in recs {
            assert_eq!(crate::uli::antenna_for_uli(r.uli, 1000), Some(321));
            assert_eq!(r.hour, 3);
        }
    }

    #[test]
    fn deterministic() {
        let (i, s) = svc("Spotify");
        let a = sessions_for_cell_hour(9, i, &s, 1, 50.0, &mut Rng::seed_from(8));
        let b = sessions_for_cell_hour(9, i, &s, 1, 50.0, &mut Rng::seed_from(8));
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].bytes_down, b[0].bytes_down);
    }
}
