//! Hourly aggregation and privacy suppression.
//!
//! The paper's probe data "is aggregated over time within intervals of one
//! hour" per BTS and service (Section 3), and the Ethics appendix stresses
//! that personal identifiers are deleted on aggregation and that the
//! spatio-temporal granularity prevents re-identification. This module is
//! that aggregation stage: it consumes classified session records, folds
//! them into an `(antenna, service, hour)` cube and the antenna × service
//! totals matrix, and optionally applies **k-suppression** — dropping
//! cells with fewer than `k` sessions, the standard guard against single
//! subscriber re-identification in released aggregates.

use crate::dpi::DpiLabel;
use crate::flows::SessionRecord;
use crate::uli::antenna_for_uli;
use icn_stats::Matrix;

/// The aggregated hourly measurement cube.
#[derive(Clone, Debug)]
pub struct HourlyCube {
    n_antennas: usize,
    n_services: usize,
    n_hours: usize,
    /// MB per (antenna, service, hour), flattened.
    mb: Vec<f64>,
    /// Session count per cell (for suppression decisions).
    sessions: Vec<u32>,
    /// Records dropped because the ULI could not be resolved.
    pub dropped_bad_uli: usize,
    /// Records dropped because DPI left them unclassified.
    pub dropped_unclassified: usize,
}

impl HourlyCube {
    /// Creates an empty cube.
    pub fn new(n_antennas: usize, n_services: usize, n_hours: usize) -> Self {
        HourlyCube {
            n_antennas,
            n_services,
            n_hours,
            mb: vec![0.0; n_antennas * n_services * n_hours],
            sessions: vec![0; n_antennas * n_services * n_hours],
            dropped_bad_uli: 0,
            dropped_unclassified: 0,
        }
    }

    #[inline]
    fn idx(&self, a: usize, s: usize, h: usize) -> usize {
        (a * self.n_services + s) * self.n_hours + h
    }

    /// Ingests one classified record. Records with unresolvable ULIs or
    /// without a DPI label are counted and dropped — the probe cannot
    /// attribute them.
    pub fn ingest(&mut self, record: &SessionRecord, label: DpiLabel) {
        let Some(antenna) = antenna_for_uli(record.uli, self.n_antennas) else {
            self.dropped_bad_uli += 1;
            return;
        };
        let DpiLabel::Service(service) = label else {
            self.dropped_unclassified += 1;
            return;
        };
        assert!(service < self.n_services, "ingest: bad service index");
        assert!(record.hour < self.n_hours, "ingest: hour out of window");
        let i = self.idx(antenna, service, record.hour);
        self.mb[i] += record.bytes_total() as f64 / 1e6;
        self.sessions[i] += 1;
    }

    /// Adds a pre-aggregated cell (used when merging per-worker partial
    /// cubes).
    pub fn add_cell(
        &mut self,
        antenna: usize,
        service: usize,
        hour: usize,
        mb: f64,
        sessions: u32,
    ) {
        let i = self.idx(antenna, service, hour);
        self.mb[i] += mb;
        self.sessions[i] += sessions;
    }

    /// MB in one cell.
    pub fn get_mb(&self, antenna: usize, service: usize, hour: usize) -> f64 {
        self.mb[self.idx(antenna, service, hour)]
    }

    /// Session count in one cell.
    pub fn get_sessions(&self, antenna: usize, service: usize, hour: usize) -> u32 {
        self.sessions[self.idx(antenna, service, hour)]
    }

    /// Applies k-suppression: zeroes every cell carrying fewer than
    /// `min_sessions` sessions. Returns the number of suppressed cells.
    pub fn suppress_below(&mut self, min_sessions: u32) -> usize {
        let mut suppressed = 0;
        for (mb, count) in self.mb.iter_mut().zip(&mut self.sessions) {
            if *count > 0 && *count < min_sessions {
                *mb = 0.0;
                *count = 0;
                suppressed += 1;
            }
        }
        suppressed
    }

    /// Folds hours away into the antenna × service totals matrix — the `T`
    /// the analysis pipeline consumes.
    pub fn totals_matrix(&self) -> Matrix {
        let mut t = Matrix::zeros(self.n_antennas, self.n_services);
        for a in 0..self.n_antennas {
            for s in 0..self.n_services {
                let mut acc = 0.0;
                for h in 0..self.n_hours {
                    acc += self.mb[self.idx(a, s, h)];
                }
                t.set(a, s, acc);
            }
        }
        t
    }

    /// Hourly series of one antenna summed over services.
    pub fn antenna_series(&self, antenna: usize) -> Vec<f64> {
        (0..self.n_hours)
            .map(|h| {
                (0..self.n_services)
                    .map(|s| self.mb[self.idx(antenna, s, h)])
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{Protocol, SessionRecord};
    use crate::uli::uli_for_antenna;

    fn record(antenna: usize, service: usize, hour: usize, mb: f64) -> SessionRecord {
        SessionRecord {
            uli: uli_for_antenna(antenna),
            service,
            hour,
            bytes_down: (mb * 1e6) as u64,
            bytes_up: 0,
            protocol: Protocol::Tcp,
        }
    }

    #[test]
    fn ingestion_accumulates() {
        let mut cube = HourlyCube::new(4, 3, 24);
        cube.ingest(&record(1, 2, 5, 10.0), DpiLabel::Service(2));
        cube.ingest(&record(1, 2, 5, 4.0), DpiLabel::Service(2));
        assert!((cube.get_mb(1, 2, 5) - 14.0).abs() < 1e-9);
        assert_eq!(cube.get_sessions(1, 2, 5), 2);
        assert_eq!(cube.get_mb(0, 0, 0), 0.0);
    }

    #[test]
    fn dpi_label_overrides_ground_truth() {
        // The cube files bytes under the classifier's label, not truth —
        // that's how DPI confusion perturbs the downstream matrix.
        let mut cube = HourlyCube::new(2, 3, 1);
        cube.ingest(&record(0, 1, 0, 5.0), DpiLabel::Service(2));
        assert_eq!(cube.get_mb(0, 1, 0), 0.0);
        assert!((cube.get_mb(0, 2, 0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bad_uli_and_unclassified_dropped() {
        let mut cube = HourlyCube::new(2, 2, 1);
        // Antenna 5 does not exist in a 2-antenna cube.
        cube.ingest(&record(5, 0, 0, 1.0), DpiLabel::Service(0));
        cube.ingest(&record(0, 0, 0, 1.0), DpiLabel::Unclassified);
        assert_eq!(cube.dropped_bad_uli, 1);
        assert_eq!(cube.dropped_unclassified, 1);
        assert_eq!(cube.totals_matrix().total(), 0.0);
    }

    #[test]
    fn totals_matrix_folds_hours() {
        let mut cube = HourlyCube::new(2, 2, 3);
        cube.ingest(&record(0, 1, 0, 1.0), DpiLabel::Service(1));
        cube.ingest(&record(0, 1, 2, 2.0), DpiLabel::Service(1));
        let t = cube.totals_matrix();
        assert!((t.get(0, 1) - 3.0).abs() < 1e-9);
        assert_eq!(t.get(1, 0), 0.0);
    }

    #[test]
    fn suppression_zeroes_sparse_cells() {
        let mut cube = HourlyCube::new(1, 1, 2);
        // Hour 0: one session (sparse). Hour 1: three sessions.
        cube.ingest(&record(0, 0, 0, 9.0), DpiLabel::Service(0));
        for _ in 0..3 {
            cube.ingest(&record(0, 0, 1, 1.0), DpiLabel::Service(0));
        }
        let suppressed = cube.suppress_below(3);
        assert_eq!(suppressed, 1);
        assert_eq!(cube.get_mb(0, 0, 0), 0.0);
        assert!((cube.get_mb(0, 0, 1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn antenna_series_sums_services() {
        let mut cube = HourlyCube::new(1, 2, 2);
        cube.ingest(&record(0, 0, 0, 1.0), DpiLabel::Service(0));
        cube.ingest(&record(0, 1, 0, 2.0), DpiLabel::Service(1));
        cube.ingest(&record(0, 1, 1, 4.0), DpiLabel::Service(1));
        assert_eq!(cube.antenna_series(0), vec![3.0, 4.0]);
    }
}
