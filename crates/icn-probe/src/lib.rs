//! # icn-probe — measurement-plane substrate
//!
//! The paper's dataset is produced by "passive measurement probes" on the
//! Gi/SGi/Gn interfaces of a nationwide Evolved Packet Core: every TCP/UDP
//! session is geo-referenced to a BTS via the GTP-C User Location
//! Information field, attributed to a mobile service by DPI classifiers,
//! and aggregated hourly (Section 3; the Ethics appendix adds that
//! identifiers are deleted on aggregation). This crate rebuilds that
//! collection path against the synthetic population, so the totals matrix
//! can be produced *the way the operator produced theirs* — including the
//! failure modes (malformed ULIs, DPI confusion, unclassified flows) and
//! the privacy suppression step:
//!
//! * [`flows`] — IP-session synthesis: Poisson session counts, heavy-tailed
//!   sizes, down/uplink split and TCP/UDP mix per service category.
//! * [`uli`] — ULI (TAC + ECI) numbering plan, wire encoding, resolution
//!   back to antennas, corruption detection.
//! * [`dpi`] — the service classifier with a category-structured confusion
//!   model and an unclassified fraction.
//! * [`aggregate`] — the hourly (antenna, service, hour) cube, k-anonymity
//!   suppression, and folding into the totals matrix.
//! * [`campaign`] — end-to-end orchestration with conservation tests
//!   against the direct generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod campaign;
pub mod dpi;
pub mod flows;
pub mod uli;

pub use aggregate::HourlyCube;
pub use campaign::{run_campaign, CampaignConfig, CampaignResult};
pub use dpi::{DpiClassifier, DpiConfig, DpiLabel};
pub use flows::{sessions_for_cell_hour, Protocol, SessionRecord};
pub use uli::{antenna_for_uli, decode, encode, uli_for_antenna, Uli};
