//! User Location Information (ULI) geo-referencing.
//!
//! Section 3 of the paper: each IP session is "geo-referenced at the level
//! of Base Transceiver Station (BTS), by exploiting the User Location
//! Information (ULI) field present in the PDP Contexts and EPS Bearers over
//! the GPRS Tunneling Protocol control plane (GTP-C)". We model the ULI as
//! a `(tracking area code, E-UTRAN cell id)` pair with a deterministic
//! mapping to antenna ids, an encoder/decoder, and a corruption model for
//! malformed control-plane records (which real probes do see and must
//! discard).

/// A decoded ULI: tracking area + cell identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Uli {
    /// Tracking Area Code (16-bit in LTE).
    pub tac: u16,
    /// E-UTRAN Cell Identity (28-bit; we use the low 28 bits of a u32).
    pub eci: u32,
}

/// Cells per tracking area in our synthetic numbering plan.
const CELLS_PER_TA: usize = 256;

/// Maps an antenna id to its ULI. The plan packs antennas into tracking
/// areas of `CELLS_PER_TA` (256) cells; the ECI low byte enumerates the cell
/// within the area.
pub fn uli_for_antenna(antenna_id: usize) -> Uli {
    let tac = (antenna_id / CELLS_PER_TA) as u16;
    let within = (antenna_id % CELLS_PER_TA) as u32;
    // eNodeB id in the high bits, cell id in the low byte.
    let eci = ((tac as u32) << 8 | within) & 0x0FFF_FFFF;
    Uli { tac, eci }
}

/// Recovers the antenna id from a ULI, if the ULI belongs to the plan and
/// `n_antennas` bounds the valid id space.
pub fn antenna_for_uli(uli: Uli, n_antennas: usize) -> Option<usize> {
    let within = (uli.eci & 0xFF) as usize;
    let enb = (uli.eci >> 8) as u16;
    if enb != uli.tac {
        return None; // inconsistent TAC/ECI — malformed record
    }
    let id = uli.tac as usize * CELLS_PER_TA + within;
    if id < n_antennas {
        Some(id)
    } else {
        None
    }
}

/// Serialises a ULI into the 6-byte wire layout we use (2-byte TAC +
/// 4-byte ECI, both big-endian).
pub fn encode(uli: Uli) -> [u8; 6] {
    let mut out = [0u8; 6];
    out[..2].copy_from_slice(&uli.tac.to_be_bytes());
    out[2..].copy_from_slice(&uli.eci.to_be_bytes());
    out
}

/// Parses the 6-byte layout back. Returns `None` if the ECI has bits above
/// its 28-bit range (corrupted record).
pub fn decode(bytes: &[u8; 6]) -> Option<Uli> {
    let tac = u16::from_be_bytes([bytes[0], bytes[1]]);
    let eci = u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
    if eci > 0x0FFF_FFFF {
        return None;
    }
    Some(Uli { tac, eci })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn antenna_round_trip() {
        for id in [0usize, 1, 255, 256, 4761, 10_000] {
            let uli = uli_for_antenna(id);
            assert_eq!(antenna_for_uli(uli, 20_000), Some(id), "id {id}");
        }
    }

    #[test]
    fn out_of_population_is_none() {
        let uli = uli_for_antenna(5000);
        assert_eq!(antenna_for_uli(uli, 4762), None);
    }

    #[test]
    fn inconsistent_tac_rejected() {
        let mut uli = uli_for_antenna(300);
        uli.tac = 0; // now ECI says eNodeB 1 but TAC says 0
        assert_eq!(antenna_for_uli(uli, 4762), None);
    }

    #[test]
    fn wire_round_trip() {
        let uli = uli_for_antenna(1234);
        let bytes = encode(uli);
        assert_eq!(decode(&bytes), Some(uli));
    }

    #[test]
    fn corrupted_eci_rejected() {
        let mut bytes = encode(uli_for_antenna(7));
        bytes[2] = 0xFF; // set bits above the 28-bit ECI range
        assert_eq!(decode(&bytes), None);
    }

    #[test]
    fn distinct_antennas_distinct_ulis() {
        use std::collections::HashSet;
        let ulis: HashSet<Uli> = (0..5000).map(uli_for_antenna).collect();
        assert_eq!(ulis.len(), 5000);
    }
}
