//! End-to-end measurement campaign through the probe plane.
//!
//! Orchestrates the full Section 3 collection path over a synthetic
//! population: for every antenna, service and hour of an observation
//! window, generate the hourly ground-truth volume (via `icn-synth`'s
//! temporal machinery), explode it into IP sessions, run each session
//! through the ULI resolver and the DPI classifier, and aggregate the
//! surviving records hourly. The result is a totals matrix produced the
//! way the operator actually produced theirs — and tests verify it agrees
//! with the direct generator up to classifier noise.

use crate::aggregate::HourlyCube;
use crate::dpi::{DpiClassifier, DpiConfig};
use crate::flows::sessions_for_cell_hour;
use icn_stats::{par, Matrix, Rng};
use icn_synth::traffic::hourly_series_for_window;
use icn_synth::{Dataset, StudyCalendar};

/// Outcome of a probe-plane campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The aggregated antenna × service totals (MB) over the window.
    pub totals: Matrix,
    /// Total sessions observed.
    pub sessions: usize,
    /// Records dropped for unresolvable ULIs.
    pub dropped_bad_uli: usize,
    /// Records dropped as unclassified.
    pub dropped_unclassified: usize,
    /// Cells zeroed by k-suppression.
    pub suppressed_cells: usize,
}

/// Campaign options.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// DPI error model.
    pub dpi: DpiConfig,
    /// k-suppression threshold (0 disables suppression).
    pub min_sessions_per_cell: u32,
    /// RNG seed for the probe plane (independent of the dataset seed).
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            dpi: DpiConfig::default(),
            min_sessions_per_cell: 0,
            seed: 0x9B_0B_E5,
        }
    }
}

/// Runs the probe-plane campaign over `window` for every indoor antenna of
/// `dataset`, producing the aggregated totals matrix the analysis pipeline
/// would consume. Deterministic in `config.seed`.
///
/// The per-antenna work (session synthesis + classification) runs in
/// parallel; each antenna owns a forked RNG stream, so results do not
/// depend on the thread schedule.
pub fn run_campaign(
    dataset: &Dataset,
    window: &StudyCalendar,
    config: &CampaignConfig,
) -> CampaignResult {
    let _span = icn_obs::Span::enter("probe_campaign");
    let n_antennas = dataset.num_antennas();
    let n_services = dataset.num_services();
    let n_hours = window.num_hours();
    let root = Rng::seed_from(config.seed);
    let full_days = dataset.calendar.num_days();

    // Per-antenna partial cubes, merged at the end.
    let partials: Vec<HourlyCube> = par::map_indexed(n_antennas, |a| {
        let antenna = &dataset.antennas[a];
        let mut rng = root.fork(a as u64);
        let dpi = DpiClassifier::new(&dataset.services, config.dpi);
        let mut cube = HourlyCube::new(n_antennas, n_services, n_hours);
        for (s, svc) in dataset.services.iter().enumerate() {
            let total = dataset.indoor_totals.get(a, s);
            let series = hourly_series_for_window(
                antenna,
                svc,
                total,
                full_days,
                window,
                dataset.root_rng(),
            );
            for (hour, &mb) in series.iter().enumerate() {
                if mb <= 0.0 {
                    continue;
                }
                for record in sessions_for_cell_hour(a, s, svc, hour, mb, &mut rng) {
                    let label = dpi.classify(record.service, &mut rng);
                    cube.ingest(&record, label);
                }
            }
        }
        cube
    });

    // Merge partial cubes.
    let mut cube = HourlyCube::new(n_antennas, n_services, n_hours);
    let mut sessions = 0usize;
    for p in &partials {
        cube.dropped_bad_uli += p.dropped_bad_uli;
        cube.dropped_unclassified += p.dropped_unclassified;
        for a in 0..n_antennas {
            for s in 0..n_services {
                for h in 0..n_hours {
                    let mb = p.get_mb(a, s, h);
                    let n = p.get_sessions(a, s, h);
                    if n > 0 {
                        cube.add_cell(a, s, h, mb, n);
                        sessions += n as usize;
                    }
                }
            }
        }
    }

    let suppressed_cells = if config.min_sessions_per_cell > 1 {
        cube.suppress_below(config.min_sessions_per_cell)
    } else {
        0
    };

    let obs = icn_obs::global();
    if obs.is_enabled() {
        obs.add_counter("probe.antennas", n_antennas as u64);
        obs.add_counter("probe.sessions", sessions as u64);
        obs.add_counter("probe.dropped_bad_uli", cube.dropped_bad_uli as u64);
        obs.add_counter(
            "probe.dropped_unclassified",
            cube.dropped_unclassified as u64,
        );
        obs.add_counter("probe.suppressed_cells", suppressed_cells as u64);
    }

    CampaignResult {
        totals: cube.totals_matrix(),
        sessions,
        dropped_bad_uli: cube.dropped_bad_uli,
        dropped_unclassified: cube.dropped_unclassified,
        suppressed_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_synth::{Date, SynthConfig};

    fn tiny_setup() -> (Dataset, StudyCalendar) {
        let ds = Dataset::generate(SynthConfig::small().with_scale(0.01));
        // Two days keeps the session volume manageable in tests.
        let window = StudyCalendar::custom(Date::new(2023, 1, 9), 2);
        (ds, window)
    }

    #[test]
    fn perfect_probe_conserves_volume() {
        let (ds, window) = tiny_setup();
        let cfg = CampaignConfig {
            dpi: DpiConfig::perfect(),
            ..CampaignConfig::default()
        };
        let result = run_campaign(&ds, &window, &cfg);
        // Expected: the window-scaled fraction of the two-month totals.
        let scale = window.num_days() as f64 / ds.calendar.num_days() as f64;
        let expected = ds.indoor_totals.total() * scale;
        let got = result.totals.total();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "probe total {got} vs expected {expected}"
        );
        assert_eq!(result.dropped_bad_uli, 0);
        assert_eq!(result.dropped_unclassified, 0);
        assert!(result.sessions > 100);
    }

    #[test]
    fn perfect_probe_matches_per_cell() {
        let (ds, window) = tiny_setup();
        let cfg = CampaignConfig {
            dpi: DpiConfig::perfect(),
            ..CampaignConfig::default()
        };
        let result = run_campaign(&ds, &window, &cfg);
        let scale = window.num_days() as f64 / ds.calendar.num_days() as f64;
        // Spot-check a handful of big cells: the probe path reproduces the
        // expected window share of each antenna-service total.
        let mut checked = 0;
        for a in 0..ds.num_antennas() {
            for s in 0..ds.num_services() {
                let expected = ds.indoor_totals.get(a, s) * scale;
                if expected < 500.0 {
                    continue; // small cells carry more relative noise
                }
                let got = result.totals.get(a, s);
                assert!(
                    (got - expected).abs() / expected < 0.25,
                    "cell ({a},{s}): {got} vs {expected}"
                );
                checked += 1;
            }
        }
        assert!(checked > 3, "too few large cells checked ({checked})");
    }

    #[test]
    fn dpi_noise_preserves_totals_but_moves_services() {
        let (ds, window) = tiny_setup();
        let noisy = run_campaign(
            &ds,
            &window,
            &CampaignConfig {
                dpi: DpiConfig {
                    confusion_rate: 0.3,
                    within_category: 0.5,
                    unclassified_rate: 0.0,
                },
                ..CampaignConfig::default()
            },
        );
        let clean = run_campaign(
            &ds,
            &window,
            &CampaignConfig {
                dpi: DpiConfig::perfect(),
                ..CampaignConfig::default()
            },
        );
        // Per-antenna totals survive confusion (bytes only change label)...
        for a in 0..ds.num_antennas() {
            let tn: f64 = noisy.totals.row(a).iter().sum();
            let tc: f64 = clean.totals.row(a).iter().sum();
            assert!((tn - tc).abs() / tc.max(1.0) < 0.05, "antenna {a}");
        }
        // ...but the per-service breakdown changes.
        let mut moved = 0.0;
        for a in 0..ds.num_antennas() {
            for s in 0..ds.num_services() {
                moved += (noisy.totals.get(a, s) - clean.totals.get(a, s)).abs();
            }
        }
        assert!(moved > 0.01 * clean.totals.total(), "moved {moved}");
    }

    #[test]
    fn unclassified_drops_volume() {
        let (ds, window) = tiny_setup();
        let result = run_campaign(
            &ds,
            &window,
            &CampaignConfig {
                dpi: DpiConfig {
                    confusion_rate: 0.0,
                    within_category: 1.0,
                    unclassified_rate: 0.2,
                },
                ..CampaignConfig::default()
            },
        );
        assert!(result.dropped_unclassified > 0);
        let scale = window.num_days() as f64 / ds.calendar.num_days() as f64;
        let expected_full = ds.indoor_totals.total() * scale;
        let got = result.totals.total();
        let kept = got / expected_full;
        assert!(
            (kept - 0.8).abs() < 0.05,
            "kept fraction {kept} (expected ~0.8)"
        );
    }

    #[test]
    fn suppression_reduces_total() {
        let (ds, window) = tiny_setup();
        let base = run_campaign(&ds, &window, &CampaignConfig::default());
        let suppressed = run_campaign(
            &ds,
            &window,
            &CampaignConfig {
                min_sessions_per_cell: 5,
                ..CampaignConfig::default()
            },
        );
        assert!(suppressed.suppressed_cells > 0);
        assert!(suppressed.totals.total() < base.totals.total());
    }

    #[test]
    fn campaign_is_deterministic() {
        let (ds, window) = tiny_setup();
        let a = run_campaign(&ds, &window, &CampaignConfig::default());
        let b = run_campaign(&ds, &window, &CampaignConfig::default());
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.sessions, b.sessions);
    }
}
