//! Deep-packet-inspection service classification.
//!
//! The operator "identifies the mobile service associated with each TCP and
//! UDP session ... by running Deep Packet Inspection and analyzing the
//! results via proprietary traffic classifiers" (Section 3). Real DPI is
//! imperfect: encrypted flows of similar services get confused, and some
//! flows stay unlabelled. This module models a classifier with a
//! configurable confusion structure — misclassification prefers services of
//! the *same category* (a Netflix flow misread as Disney+ is far more
//! likely than as Gmail) — plus an unclassified fraction, and reports the
//! realised confusion statistics for calibration tests.

use icn_stats::Rng;
use icn_synth::Service;

/// The DPI label assigned to one session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DpiLabel {
    /// Classified as the service with this catalog index.
    Service(usize),
    /// The classifier could not attribute the flow.
    Unclassified,
}

/// Classifier error model.
#[derive(Clone, Copy, Debug)]
pub struct DpiConfig {
    /// Probability a session is misclassified (assigned a wrong label).
    pub confusion_rate: f64,
    /// Given a misclassification, probability the wrong label is at least
    /// in the correct category.
    pub within_category: f64,
    /// Probability a session gets no label at all.
    pub unclassified_rate: f64,
}

impl Default for DpiConfig {
    fn default() -> Self {
        DpiConfig {
            confusion_rate: 0.03,
            within_category: 0.8,
            unclassified_rate: 0.01,
        }
    }
}

impl DpiConfig {
    /// A perfect classifier (used to verify exact aggregation).
    pub fn perfect() -> Self {
        DpiConfig {
            confusion_rate: 0.0,
            within_category: 1.0,
            unclassified_rate: 0.0,
        }
    }
}

/// A DPI classifier over a service catalog.
pub struct DpiClassifier<'a> {
    services: &'a [Service],
    config: DpiConfig,
    /// For each service, the indices of other services in its category.
    same_category: Vec<Vec<usize>>,
}

impl<'a> DpiClassifier<'a> {
    /// Builds the classifier for a catalog.
    pub fn new(services: &'a [Service], config: DpiConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.confusion_rate)
                && (0.0..=1.0).contains(&config.within_category)
                && (0.0..=1.0).contains(&config.unclassified_rate),
            "DpiConfig: rates out of [0,1]"
        );
        let same_category = services
            .iter()
            .enumerate()
            .map(|(i, s)| {
                services
                    .iter()
                    .enumerate()
                    .filter(|(j, t)| *j != i && t.category == s.category)
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        DpiClassifier {
            services,
            config,
            same_category,
        }
    }

    /// Classifies one session whose ground-truth service is `truth`.
    pub fn classify(&self, truth: usize, rng: &mut Rng) -> DpiLabel {
        assert!(truth < self.services.len(), "classify: bad service index");
        if rng.chance(self.config.unclassified_rate) {
            return DpiLabel::Unclassified;
        }
        if !rng.chance(self.config.confusion_rate) {
            return DpiLabel::Service(truth);
        }
        // Misclassified: same category with probability `within_category`,
        // uniformly wrong otherwise.
        let peers = &self.same_category[truth];
        if !peers.is_empty() && rng.chance(self.config.within_category) {
            DpiLabel::Service(peers[rng.index(peers.len())])
        } else {
            // Uniform over all other services.
            let mut j = rng.index(self.services.len() - 1);
            if j >= truth {
                j += 1;
            }
            DpiLabel::Service(j)
        }
    }

    /// The service catalog being classified against.
    pub fn services(&self) -> &[Service] {
        self.services
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_synth::services::{catalog, index_of};

    #[test]
    fn perfect_classifier_is_identity() {
        let c = catalog();
        let dpi = DpiClassifier::new(&c, DpiConfig::perfect());
        let mut rng = Rng::seed_from(1);
        for truth in 0..c.len() {
            assert_eq!(dpi.classify(truth, &mut rng), DpiLabel::Service(truth));
        }
    }

    #[test]
    fn confusion_rate_is_calibrated() {
        let c = catalog();
        let cfg = DpiConfig {
            confusion_rate: 0.2,
            within_category: 1.0,
            unclassified_rate: 0.0,
        };
        let dpi = DpiClassifier::new(&c, cfg);
        let mut rng = Rng::seed_from(2);
        let truth = index_of(&c, "Netflix").unwrap();
        let n = 50_000;
        let wrong = (0..n)
            .filter(|_| dpi.classify(truth, &mut rng) != DpiLabel::Service(truth))
            .count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn confusion_prefers_same_category() {
        let c = catalog();
        let cfg = DpiConfig {
            confusion_rate: 1.0, // always wrong, to observe the structure
            within_category: 0.8,
            unclassified_rate: 0.0,
        };
        let dpi = DpiClassifier::new(&c, cfg);
        let mut rng = Rng::seed_from(3);
        let truth = index_of(&c, "Netflix").unwrap();
        let n = 20_000;
        let mut same_cat = 0usize;
        for _ in 0..n {
            if let DpiLabel::Service(j) = dpi.classify(truth, &mut rng) {
                assert_ne!(j, truth, "confusion_rate 1.0 must always relabel");
                if c[j].category == c[truth].category {
                    same_cat += 1;
                }
            }
        }
        let frac = same_cat as f64 / n as f64;
        // 0.8 within-category plus the chance hits of the uniform branch.
        assert!(frac > 0.78, "same-category fraction {frac}");
    }

    #[test]
    fn unclassified_rate_observed() {
        let c = catalog();
        let cfg = DpiConfig {
            confusion_rate: 0.0,
            within_category: 1.0,
            unclassified_rate: 0.1,
        };
        let dpi = DpiClassifier::new(&c, cfg);
        let mut rng = Rng::seed_from(4);
        let n = 50_000;
        let unlabeled = (0..n)
            .filter(|_| dpi.classify(0, &mut rng) == DpiLabel::Unclassified)
            .count();
        let rate = unlabeled as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "rates out of")]
    fn invalid_config_panics() {
        let c = catalog();
        DpiClassifier::new(
            &c,
            DpiConfig {
                confusion_rate: 1.5,
                within_category: 1.0,
                unclassified_rate: 0.0,
            },
        );
    }
}
