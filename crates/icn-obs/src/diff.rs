//! Report comparison (`icn obs diff`), self-time treetable
//! (`icn obs top`) and allocation treetable (`icn obs mem`).
//!
//! [`diff_reports`] compares two [`BenchReport`]s — a blessed baseline
//! `a` and a candidate `b` — against per-metric thresholds and classifies
//! every metric as pass / fail / informational. CI perf-smoke uses it as
//! a regression gate: generous thresholds (default: fail only when a
//! stage or p99 gets more than 2× slower) keep the gate insensitive to
//! shared-runner noise while still catching real regressions. Tiny
//! absolute walls (below [`DiffThresholds::min_wall_ms`]) are skipped
//! entirely — a 3 ms stage doubling to 6 ms is scheduler noise, not a
//! regression.
//!
//! The comparison is deliberately asymmetric: `b` getting *faster* never
//! fails, and metrics present only in `b` (new instrumentation) are
//! informational. A stage present in `a` but missing from `b` fails — a
//! silently skipped stage must not read as a speedup — unless
//! [`DiffThresholds::skip_missing`] opts into a cross-baseline
//! comparison where the candidate legitimately runs fewer stages.
//! [`DiffThresholds::stage_wall_ratios`] holds individual hot stages to
//! tighter bounds than the global ratio.

use crate::report::BenchReport;
use crate::trace::self_times;
use std::fmt::Write as _;

/// Per-metric thresholds for [`diff_reports`].
#[derive(Clone, Debug)]
pub struct DiffThresholds {
    /// Maximum allowed `b/a` wall-time ratio for stages and spans
    /// (default 2.0 — fail only on >2× regressions).
    pub max_wall_ratio: f64,
    /// Stages with baseline wall below this (milliseconds) are skipped
    /// (default 5.0).
    pub min_wall_ms: f64,
    /// Maximum allowed `b/a` ratio for histogram p99s (default 2.0).
    pub max_hist_ratio: f64,
    /// Histograms with baseline p99 below this (nanoseconds) are skipped
    /// (default 10_000 = 10 µs).
    pub min_hist_ns: u64,
    /// Maximum allowed `b/a` ratio for `*_bytes` gauges (default 1.2).
    /// Memory footprints are arithmetic consequences of the input size,
    /// not scheduler-noisy walls, so the gate is tight: a sampled-path
    /// run that quietly starts materializing a bigger matrix fails even
    /// when the extra allocation happens to be fast.
    pub max_bytes_ratio: f64,
    /// Maximum allowed `b/a` ratio for the allocator window peak in the
    /// v3 `memory` section (default 1.5 — looser than the hand gauges
    /// because the measured peak includes every transient the allocator
    /// sees, but far tighter than the wall gates because allocation is
    /// deterministic). Asymmetric like all gates: shrinkage passes.
    /// When either report has no memory section the comparison is
    /// informational, so v2 baselines keep diffing against v3
    /// candidates.
    pub max_peak_ratio: f64,
    /// When set, any counter value change fails (same-machine,
    /// same-seed determinism checks); by default counters are
    /// informational.
    pub strict_counters: bool,
    /// When set, a stage present in the baseline but missing from the
    /// candidate is [`DiffStatus::Skipped`] instead of failing. For
    /// cross-PR baselines where the candidate legitimately runs a
    /// different stage set (e.g. a forecast-only bench diffed against a
    /// full-pipeline one) — keep it off for like-for-like gates.
    pub skip_missing: bool,
    /// Per-stage overrides of [`max_wall_ratio`]: `(stage_name, ratio)`
    /// pairs, later entries winning. Lets CI hold a hot stage to a
    /// tighter bound than the noise-tolerant global default (e.g.
    /// `stage3_surrogate` at 1.3× after an optimisation pass) without
    /// tightening every small stage into flakiness.
    ///
    /// [`max_wall_ratio`]: DiffThresholds::max_wall_ratio
    pub stage_wall_ratios: Vec<(String, f64)>,
}

impl Default for DiffThresholds {
    fn default() -> DiffThresholds {
        DiffThresholds {
            max_wall_ratio: 2.0,
            min_wall_ms: 5.0,
            max_hist_ratio: 2.0,
            min_hist_ns: 10_000,
            max_bytes_ratio: 1.2,
            max_peak_ratio: 1.5,
            strict_counters: false,
            skip_missing: false,
            stage_wall_ratios: Vec::new(),
        }
    }
}

impl DiffThresholds {
    /// The wall-ratio bound for a stage: the last matching
    /// [`stage_wall_ratios`] override, else the global default.
    ///
    /// [`stage_wall_ratios`]: DiffThresholds::stage_wall_ratios
    pub fn wall_ratio_for(&self, stage: &str) -> f64 {
        self.stage_wall_ratios
            .iter()
            .rev()
            .find(|(name, _)| name == stage)
            .map(|&(_, r)| r)
            .unwrap_or(self.max_wall_ratio)
    }
}

/// Classification of one compared metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within thresholds.
    Ok,
    /// Regressed beyond the threshold (or disappeared).
    Fail,
    /// Reported for context only; never gates.
    Info,
    /// Skipped: baseline too small to compare meaningfully.
    Skipped,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Metric identifier (`stage:stage3_surrogate`, `hist:shap.chunk_ns p99`).
    pub metric: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value (`NaN` when missing).
    pub b: f64,
    /// `b / a` (regression factor; `NaN` when not comparable).
    pub ratio: f64,
    /// Classification.
    pub status: DiffStatus,
}

/// The result of [`diff_reports`].
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// All compared metrics, gating lines first.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Number of failing metrics.
    pub fn failures(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.status == DiffStatus::Fail)
            .count()
    }

    /// Whether the candidate passes the gate.
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    /// Renders a human-readable table (one line per metric).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let tag = match line.status {
                DiffStatus::Ok => "ok  ",
                DiffStatus::Fail => "FAIL",
                DiffStatus::Info => "info",
                DiffStatus::Skipped => "skip",
            };
            let ratio = if line.ratio.is_finite() {
                format!("{:>7.3}x", line.ratio)
            } else {
                "      --".to_string()
            };
            let b = if line.b.is_finite() {
                format!("{:>14.3}", line.b)
            } else {
                "       missing".to_string()
            };
            let _ = writeln!(
                out,
                "{tag}  {ratio}  {:>14.3} -> {b}  {}",
                line.a, line.metric
            );
        }
        let _ = writeln!(
            out,
            "{} metrics compared, {} failed",
            self.lines.len(),
            self.failures()
        );
        out
    }
}

/// Compares candidate `b` against baseline `a`. See the module docs for
/// semantics.
pub fn diff_reports(a: &BenchReport, b: &BenchReport, t: &DiffThresholds) -> DiffReport {
    let mut lines = Vec::new();

    // Reports at different scales measure different workloads.
    if (a.scale - b.scale).abs() > 1e-12 {
        lines.push(DiffLine {
            metric: "scale".into(),
            a: a.scale,
            b: b.scale,
            ratio: f64::NAN,
            status: DiffStatus::Fail,
        });
    }

    for stage in &a.stages {
        let metric = format!("stage:{} wall_ms", stage.name);
        match b.stage(&stage.name) {
            None => lines.push(DiffLine {
                metric,
                a: stage.wall_ms,
                b: f64::NAN,
                ratio: f64::NAN,
                status: if t.skip_missing {
                    DiffStatus::Skipped
                } else {
                    DiffStatus::Fail
                },
            }),
            Some(cand) => {
                if stage.wall_ms < t.min_wall_ms {
                    lines.push(DiffLine {
                        metric,
                        a: stage.wall_ms,
                        b: cand.wall_ms,
                        ratio: f64::NAN,
                        status: DiffStatus::Skipped,
                    });
                    continue;
                }
                let ratio = cand.wall_ms / stage.wall_ms;
                lines.push(DiffLine {
                    metric,
                    a: stage.wall_ms,
                    b: cand.wall_ms,
                    ratio,
                    status: if ratio > t.wall_ratio_for(&stage.name) {
                        DiffStatus::Fail
                    } else {
                        DiffStatus::Ok
                    },
                });
            }
        }
    }

    for (name, hist) in &a.histograms {
        let metric = format!("hist:{name} p99_ns");
        let base = hist.quantile(0.99) as f64;
        match b.histograms.get(name) {
            // New/removed instrumentation is informational: histogram
            // coverage changes with the code, unlike the stage set.
            None => lines.push(DiffLine {
                metric,
                a: base,
                b: f64::NAN,
                ratio: f64::NAN,
                status: DiffStatus::Info,
            }),
            Some(cand) => {
                if hist.quantile(0.99) < t.min_hist_ns {
                    lines.push(DiffLine {
                        metric,
                        a: base,
                        b: cand.quantile(0.99) as f64,
                        ratio: f64::NAN,
                        status: DiffStatus::Skipped,
                    });
                    continue;
                }
                let candp = cand.quantile(0.99) as f64;
                let ratio = candp / base;
                lines.push(DiffLine {
                    metric,
                    a: base,
                    b: candp,
                    ratio,
                    status: if ratio > t.max_hist_ratio {
                        DiffStatus::Fail
                    } else {
                        DiffStatus::Ok
                    },
                });
            }
        }
    }

    // Throughput gauges: higher is better, so the regression factor is
    // a/b (how much throughput was lost).
    for (name, &base) in &a.gauges {
        if !name.ends_with("_per_sec") || base <= 0.0 {
            continue;
        }
        let metric = format!("gauge:{name}");
        match b.gauges.get(name) {
            None => lines.push(DiffLine {
                metric,
                a: base,
                b: f64::NAN,
                ratio: f64::NAN,
                status: DiffStatus::Info,
            }),
            Some(&cand) => {
                let ratio = if cand > 0.0 {
                    base / cand
                } else {
                    f64::INFINITY
                };
                lines.push(DiffLine {
                    metric,
                    a: base,
                    b: cand,
                    ratio,
                    status: if ratio > t.max_wall_ratio {
                        DiffStatus::Fail
                    } else {
                        DiffStatus::Ok
                    },
                });
            }
        }
    }

    // Footprint gauges: lower is better and the values are deterministic
    // functions of the workload, so the candidate gates directly on b/a.
    // Missing in the candidate is informational (instrumentation
    // coverage, like histograms) — the stage set is what must not shrink.
    for (name, &base) in &a.gauges {
        if !name.ends_with("_bytes") || base <= 0.0 {
            continue;
        }
        let metric = format!("gauge:{name}");
        match b.gauges.get(name) {
            None => lines.push(DiffLine {
                metric,
                a: base,
                b: f64::NAN,
                ratio: f64::NAN,
                status: DiffStatus::Info,
            }),
            Some(&cand) => {
                let ratio = cand / base;
                lines.push(DiffLine {
                    metric,
                    a: base,
                    b: cand,
                    ratio,
                    status: if ratio > t.max_bytes_ratio {
                        DiffStatus::Fail
                    } else {
                        DiffStatus::Ok
                    },
                });
            }
        }
    }

    // Allocator window peak (v3 memory section): the number
    // `--mem-budget-mb` enforces at run time, gated across PRs here.
    // Like every gate it is asymmetric — shrinkage passes. A report
    // without a memory section (v1/v2 baseline, or a binary that did not
    // count allocations) degrades to informational, so cross-version
    // lineage diffs keep working.
    match (&a.memory, &b.memory) {
        (Some(ma), Some(mb)) if ma.peak_bytes > 0 => {
            let base = ma.peak_bytes as f64;
            let cand = mb.peak_bytes as f64;
            let ratio = cand / base;
            lines.push(DiffLine {
                metric: "mem:allocator_peak_bytes".into(),
                a: base,
                b: cand,
                ratio,
                status: if ratio > t.max_peak_ratio {
                    DiffStatus::Fail
                } else {
                    DiffStatus::Ok
                },
            });
        }
        (Some(ma), _) => lines.push(DiffLine {
            metric: "mem:allocator_peak_bytes".into(),
            a: ma.peak_bytes as f64,
            b: b.memory.as_ref().map_or(f64::NAN, |m| m.peak_bytes as f64),
            ratio: f64::NAN,
            status: DiffStatus::Info,
        }),
        (None, Some(mb)) => lines.push(DiffLine {
            metric: "mem:allocator_peak_bytes".into(),
            a: f64::NAN,
            b: mb.peak_bytes as f64,
            ratio: f64::NAN,
            status: DiffStatus::Info,
        }),
        (None, None) => {}
    }

    for (name, &base) in &a.counters {
        let cand = b.counters.get(name).copied();
        let changed = cand != Some(base);
        if !changed && !t.strict_counters {
            continue; // unchanged counters are noise in the output
        }
        lines.push(DiffLine {
            metric: format!("counter:{name}"),
            a: base as f64,
            b: cand.map(|c| c as f64).unwrap_or(f64::NAN),
            ratio: f64::NAN,
            status: if changed && t.strict_counters {
                DiffStatus::Fail
            } else {
                DiffStatus::Info
            },
        });
    }

    lines.sort_by_key(|l| match l.status {
        DiffStatus::Fail => 0,
        DiffStatus::Ok => 1,
        DiffStatus::Skipped => 2,
        DiffStatus::Info => 3,
    });
    DiffReport { lines }
}

/// Renders the `icn obs top` self-time treetable for a report: every span
/// path as an indented tree with calls, total wall and self time (total
/// minus direct children), sorted within each level by self time
/// descending.
pub fn render_top(report: &BenchReport) -> String {
    let times = self_times(&report.spans);
    let mut entries: Vec<(&String, &(u64, std::time::Duration, std::time::Duration))> =
        times.iter().collect();
    // Stable tree order: parents before children (BTreeMap path order),
    // then self-time descending among siblings.
    entries.sort_by(|(pa, ta), (pb, tb)| {
        let depth_a = pa.matches('/').count();
        let depth_b = pb.matches('/').count();
        let parent_a = pa.rsplit_once('/').map(|(p, _)| p).unwrap_or("");
        let parent_b = pb.rsplit_once('/').map(|(p, _)| p).unwrap_or("");
        (parent_a, depth_a)
            .cmp(&(parent_b, depth_b))
            .then(tb.2.cmp(&ta.2))
    });
    let mut out = String::new();
    // When the report carries a v3 memory section, the treetable gains
    // self/cumulative allocation columns next to the time columns.
    let mem = report.memory.as_ref();
    if mem.is_some() {
        let _ = writeln!(
            out,
            "{:>8}  {:>12}  {:>12}  {:>14}  {:>14}  span",
            "calls", "total_ms", "self_ms", "self_alloc_b", "cum_alloc_b"
        );
    } else {
        let _ = writeln!(
            out,
            "{:>8}  {:>12}  {:>12}  span",
            "calls", "total_ms", "self_ms"
        );
    }
    // Emit as a tree: walk paths depth-first using the path prefix.
    let mut ordered: Vec<&String> = Vec::new();
    fn push_children<'a>(
        parent: &str,
        entries: &[(&'a String, &(u64, std::time::Duration, std::time::Duration))],
        ordered: &mut Vec<&'a String>,
    ) {
        for (path, _) in entries {
            let is_child = match path.rsplit_once('/') {
                Some((p, _)) => p == parent,
                None => parent.is_empty(),
            };
            if is_child {
                ordered.push(path);
                push_children(path, entries, ordered);
            }
        }
    }
    push_children("", &entries, &mut ordered);
    for path in ordered {
        let &(calls, total, own) = &times[path];
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        if let Some(m) = mem {
            let self_b = m.spans.get(path).map_or(0, |a| a.bytes);
            let _ = writeln!(
                out,
                "{:>8}  {:>12.3}  {:>12.3}  {:>14}  {:>14}  {}{}",
                calls,
                total.as_secs_f64() * 1e3,
                own.as_secs_f64() * 1e3,
                self_b,
                cumulative_bytes(&m.spans, path),
                "  ".repeat(depth),
                leaf
            );
        } else {
            let _ = writeln!(
                out,
                "{:>8}  {:>12.3}  {:>12.3}  {}{}",
                calls,
                total.as_secs_f64() * 1e3,
                own.as_secs_f64() * 1e3,
                "  ".repeat(depth),
                leaf
            );
        }
    }
    out
}

/// Cumulative allocation bytes for a path: its own self bytes plus every
/// descendant's (path-prefix sum). Valid at any thread count because the
/// table stores *self* figures per path — cross-thread children carry
/// their own rows, never double-counted in the dispatcher's.
fn cumulative_bytes(
    spans: &std::collections::BTreeMap<String, crate::SpanAlloc>,
    path: &str,
) -> u64 {
    spans
        .iter()
        .filter(|(p, _)| {
            p.as_str() == path
                || (p.starts_with(path) && p.as_bytes().get(path.len()) == Some(&b'/'))
        })
        .map(|(_, a)| a.bytes)
        .sum()
}

/// Renders the `icn obs mem` allocation treetable for a report: the
/// allocator window summary followed by every span path as an indented
/// tree with self bytes, cumulative bytes (self + descendants), self
/// allocation count, and the path's largest single-occurrence peak
/// contribution. Reports without a memory section (pre-v3, or produced
/// by a binary without a counting allocator) render an explanatory line
/// instead.
pub fn render_mem(report: &BenchReport) -> String {
    let Some(mem) = &report.memory else {
        return "no memory section: report predates icn-obs/v3 or its \
                producing binary did not count allocations\n"
            .to_string();
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "allocator window: peak {} B, net live {} B, churn {} B ({} allocs / {} frees)",
        mem.peak_bytes, mem.live_bytes, mem.total_alloc_bytes, mem.total_allocs, mem.total_frees
    );
    if let Some(hwm) = mem.vm_hwm_bytes {
        let _ = writeln!(out, "process VmHWM: {hwm} B (whole lifetime, not windowed)");
    }
    if let Some(budget) = mem.budget_mb {
        let _ = writeln!(
            out,
            "budget: {budget} MiB -> {}",
            mem.budget_verdict.as_deref().unwrap_or("unknown")
        );
    }
    let _ = writeln!(
        out,
        "{:>14}  {:>14}  {:>8}  {:>14}  span",
        "self_bytes", "cum_bytes", "allocs", "peak_growth_b"
    );
    // Same depth-first tree walk as `render_top`, ordered by cumulative
    // bytes descending among siblings.
    let mut ordered: Vec<&String> = Vec::new();
    fn push_children<'a>(
        parent: &str,
        spans: &'a std::collections::BTreeMap<String, crate::SpanAlloc>,
        ordered: &mut Vec<&'a String>,
    ) {
        let mut level: Vec<&String> = spans
            .keys()
            .filter(|path| match path.rsplit_once('/') {
                Some((p, _)) => p == parent,
                None => parent.is_empty(),
            })
            .collect();
        level.sort_by_key(|path| std::cmp::Reverse(cumulative_bytes(spans, path)));
        for path in level {
            ordered.push(path);
            push_children(path, spans, ordered);
        }
    }
    push_children("", &mem.spans, &mut ordered);
    for path in ordered {
        let a = &mem.spans[path.as_str()];
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let _ = writeln!(
            out,
            "{:>14}  {:>14}  {:>8}  {:>14}  {}{}",
            a.bytes,
            cumulative_bytes(&mem.spans, path),
            a.allocs,
            a.peak_growth_bytes,
            "  ".repeat(depth),
            leaf
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::registry::Registry;
    use std::time::Duration;

    fn report_with(stage_ms: f64, p99_base_ns: u64, throughput: f64) -> BenchReport {
        let r = Registry::new();
        r.enable();
        r.record_span_parts(
            "stage3_surrogate".into(),
            Duration::from_secs_f64(stage_ms / 1e3),
        );
        r.record_span_parts(
            "stage3_surrogate/shap_batch".into(),
            Duration::from_secs_f64(stage_ms / 2e3),
        );
        let mut h = Histogram::new();
        for i in 0..100u64 {
            h.record(p99_base_ns + i);
        }
        r.merge_hist("shap.chunk_ns", &h);
        r.set_gauge("shap.samples_per_sec", throughput);
        r.add_counter("shap.tree_walks", 1234);
        BenchReport::build(&r.snapshot(), "t", 1.0)
    }

    #[test]
    fn self_diff_passes() {
        let a = report_with(100.0, 50_000, 1000.0);
        let d = diff_reports(&a, &a, &DiffThresholds::default());
        assert!(d.passed(), "self-diff must pass:\n{}", d.render());
    }

    #[test]
    fn wall_regression_fails_and_speedup_passes() {
        let a = report_with(100.0, 50_000, 1000.0);
        let slow = report_with(250.0, 50_000, 1000.0);
        let fast = report_with(40.0, 50_000, 1000.0);
        assert!(!diff_reports(&a, &slow, &DiffThresholds::default()).passed());
        assert!(diff_reports(&a, &fast, &DiffThresholds::default()).passed());
    }

    #[test]
    fn tiny_stages_are_skipped() {
        let a = report_with(2.0, 50_000, 1000.0);
        let b = report_with(4.9, 50_000, 1000.0); // 2.45x but under min_wall_ms
        let d = diff_reports(&a, &b, &DiffThresholds::default());
        assert!(d.passed());
        assert!(d
            .lines
            .iter()
            .any(|l| l.status == DiffStatus::Skipped && l.metric.starts_with("stage:")));
    }

    #[test]
    fn histogram_p99_regression_fails() {
        let a = report_with(100.0, 50_000, 1000.0);
        let b = report_with(100.0, 200_000, 1000.0);
        let d = diff_reports(&a, &b, &DiffThresholds::default());
        assert!(!d.passed());
        assert!(d
            .lines
            .iter()
            .any(|l| l.status == DiffStatus::Fail && l.metric.starts_with("hist:")));
    }

    #[test]
    fn throughput_drop_fails() {
        let a = report_with(100.0, 50_000, 1000.0);
        let b = report_with(100.0, 50_000, 400.0);
        assert!(!diff_reports(&a, &b, &DiffThresholds::default()).passed());
    }

    #[test]
    fn scale_mismatch_fails() {
        let a = report_with(100.0, 50_000, 1000.0);
        let mut b = report_with(100.0, 50_000, 1000.0);
        b.scale = 0.5;
        assert!(!diff_reports(&a, &b, &DiffThresholds::default()).passed());
    }

    #[test]
    fn bytes_gauges_gate_on_growth_not_shrinkage() {
        let mut a = report_with(100.0, 50_000, 1000.0);
        a.gauges
            .insert("cluster.condensed_bytes".into(), 1_000_000.0);
        // Within the 1.2x default: passes.
        let mut b = report_with(100.0, 50_000, 1000.0);
        b.gauges
            .insert("cluster.condensed_bytes".into(), 1_100_000.0);
        assert!(diff_reports(&a, &b, &DiffThresholds::default()).passed());
        // Shrinking is a win, never a failure.
        b.gauges.insert("cluster.condensed_bytes".into(), 10_000.0);
        assert!(diff_reports(&a, &b, &DiffThresholds::default()).passed());
        // Growth past the ratio fails, even with identical walls.
        b.gauges
            .insert("cluster.condensed_bytes".into(), 2_000_000.0);
        let diff = diff_reports(&a, &b, &DiffThresholds::default());
        assert!(!diff.passed());
        assert!(diff
            .lines
            .iter()
            .any(|l| l.metric == "gauge:cluster.condensed_bytes" && l.status == DiffStatus::Fail));
        // A looser explicit threshold admits it again.
        let loose = DiffThresholds {
            max_bytes_ratio: 3.0,
            ..DiffThresholds::default()
        };
        assert!(diff_reports(&a, &b, &loose).passed());
        // Missing in the candidate is informational, like histograms.
        let c = report_with(100.0, 50_000, 1000.0);
        assert!(diff_reports(&a, &c, &DiffThresholds::default()).passed());
    }

    #[test]
    fn missing_stage_fails_unless_skip_missing() {
        let a = report_with(100.0, 50_000, 1000.0);
        let r = Registry::new();
        r.enable();
        r.record_span_parts("other_stage".into(), Duration::from_millis(10));
        let b = BenchReport::build(&r.snapshot(), "t", 1.0);
        let strict = diff_reports(&a, &b, &DiffThresholds::default());
        assert!(!strict.passed());
        let lax = DiffThresholds {
            skip_missing: true,
            ..DiffThresholds::default()
        };
        let d = diff_reports(&a, &b, &lax);
        assert!(d.passed(), "{}", d.render());
        assert!(d
            .lines
            .iter()
            .any(|l| l.metric.starts_with("stage:stage3_surrogate")
                && l.status == DiffStatus::Skipped));
    }

    #[test]
    fn per_stage_wall_ratio_overrides_the_global_bound() {
        let a = report_with(100.0, 50_000, 1000.0);
        let b = report_with(150.0, 50_000, 1000.0); // 1.5x: under the 2x default
        assert!(diff_reports(&a, &b, &DiffThresholds::default()).passed());
        let tight = DiffThresholds {
            stage_wall_ratios: vec![("stage3_surrogate".into(), 1.3)],
            ..DiffThresholds::default()
        };
        let d = diff_reports(&a, &b, &tight);
        assert!(!d.passed());
        assert!(d
            .lines
            .iter()
            .any(|l| l.metric == "stage:stage3_surrogate wall_ms" && l.status == DiffStatus::Fail));
        // Last matching override wins.
        let loosened = DiffThresholds {
            stage_wall_ratios: vec![
                ("stage3_surrogate".into(), 1.3),
                ("stage3_surrogate".into(), 1.8),
            ],
            ..DiffThresholds::default()
        };
        assert!(diff_reports(&a, &b, &loosened).passed());
    }

    #[test]
    fn counters_gate_only_in_strict_mode() {
        let a = report_with(100.0, 50_000, 1000.0);
        let mut b = report_with(100.0, 50_000, 1000.0);
        b.counters.insert("shap.tree_walks".into(), 999);
        assert!(diff_reports(&a, &b, &DiffThresholds::default()).passed());
        let strict = DiffThresholds {
            strict_counters: true,
            ..DiffThresholds::default()
        };
        assert!(!diff_reports(&a, &b, &strict).passed());
    }

    #[test]
    fn top_table_is_a_tree() {
        let a = report_with(100.0, 50_000, 1000.0);
        let table = render_top(&a);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].contains("stage3_surrogate"));
        assert!(lines[2].contains("  shap_batch"));
    }

    fn memory_with(peak: u64) -> crate::MemoryReport {
        crate::MemoryReport {
            live_bytes: 1024,
            peak_bytes: peak,
            total_alloc_bytes: peak * 2,
            total_allocs: 10,
            total_frees: 8,
            vm_hwm_bytes: None,
            budget_mb: None,
            budget_verdict: None,
            spans: std::collections::BTreeMap::new(),
        }
    }

    #[test]
    fn allocator_peak_gates_growth_not_shrinkage() {
        let mut a = report_with(100.0, 50_000, 1000.0);
        a.memory = Some(memory_with(100 << 20));
        // 1.4x growth: under the 1.5x default.
        let mut b = report_with(100.0, 50_000, 1000.0);
        b.memory = Some(memory_with(140 << 20));
        assert!(diff_reports(&a, &b, &DiffThresholds::default()).passed());
        // Shrinkage is a win, never a failure.
        b.memory = Some(memory_with(10 << 20));
        assert!(diff_reports(&a, &b, &DiffThresholds::default()).passed());
        // 2.5x growth fails, even with identical walls and gauges.
        b.memory = Some(memory_with(250 << 20));
        let d = diff_reports(&a, &b, &DiffThresholds::default());
        assert!(!d.passed());
        assert!(d
            .lines
            .iter()
            .any(|l| l.metric == "mem:allocator_peak_bytes" && l.status == DiffStatus::Fail));
        // A looser explicit threshold admits it again.
        let loose = DiffThresholds {
            max_peak_ratio: 3.0,
            ..DiffThresholds::default()
        };
        assert!(diff_reports(&a, &b, &loose).passed());
    }

    #[test]
    fn missing_memory_section_is_informational_both_ways() {
        // v2 baseline against a v3 candidate (and vice versa) must not
        // fail the gate — cross-version lineage diffs degrade gracefully.
        let plain = report_with(100.0, 50_000, 1000.0);
        let mut counted = report_with(100.0, 50_000, 1000.0);
        counted.memory = Some(memory_with(100 << 20));
        for (base, cand) in [(&plain, &counted), (&counted, &plain)] {
            let d = diff_reports(base, cand, &DiffThresholds::default());
            assert!(d.passed(), "{}", d.render());
            assert!(d
                .lines
                .iter()
                .any(|l| l.metric == "mem:allocator_peak_bytes" && l.status == DiffStatus::Info));
        }
        // Neither side counted: no line at all.
        let d = diff_reports(&plain, &plain, &DiffThresholds::default());
        assert!(!d.lines.iter().any(|l| l.metric.starts_with("mem:")));
    }

    #[test]
    fn mem_table_renders_summary_and_tree() {
        let mut rep = report_with(100.0, 50_000, 1000.0);
        let mut mem = memory_with(5000);
        mem.budget_mb = Some(512);
        mem.budget_verdict = Some("ok".into());
        mem.spans.insert(
            "stage3_surrogate".into(),
            crate::SpanAlloc {
                bytes: 1000,
                allocs: 3,
                peak_growth_bytes: 5000,
            },
        );
        mem.spans.insert(
            "stage3_surrogate/shap_batch".into(),
            crate::SpanAlloc {
                bytes: 250,
                allocs: 2,
                peak_growth_bytes: 250,
            },
        );
        rep.memory = Some(mem);
        let table = render_mem(&rep);
        assert!(table.contains("peak 5000 B"));
        assert!(table.contains("budget: 512 MiB -> ok"));
        let lines: Vec<&str> = table.lines().collect();
        let root = lines
            .iter()
            .find(|l| l.ends_with("stage3_surrogate"))
            .unwrap();
        // Cumulative = self (1000) + child (250).
        assert!(root.contains("1250"));
        assert!(table.contains("  shap_batch"));
        // A report without a memory section explains itself.
        let plain = report_with(100.0, 50_000, 1000.0);
        assert!(render_mem(&plain).contains("no memory section"));
    }

    #[test]
    fn top_table_gains_alloc_columns_with_memory() {
        let mut rep = report_with(100.0, 50_000, 1000.0);
        assert!(!render_top(&rep).contains("cum_alloc_b"));
        let mut mem = memory_with(5000);
        mem.spans.insert(
            "stage3_surrogate".into(),
            crate::SpanAlloc {
                bytes: 4096,
                allocs: 1,
                peak_growth_bytes: 4096,
            },
        );
        rep.memory = Some(mem);
        let table = render_top(&rep);
        assert!(table.contains("cum_alloc_b"));
        assert!(table.contains("4096"));
    }
}
