//! Bounded ring-buffer structured event log with levels and an `ICN_LOG`
//! filter.
//!
//! Library code emits structured records through [`crate::Registry::log`]
//! (or the [`crate::obs_log!`] convenience macro). Records are only
//! retained while the registry is collecting — with the registry disabled
//! the log path is the same single-relaxed-load no-op as every other
//! mutator, preserving the overhead-guard contract.
//!
//! The `ICN_LOG` environment variable filters what is kept, with the
//! familiar `level[,target=level]*` grammar:
//!
//! ```text
//! ICN_LOG=debug                 # keep debug and above for every target
//! ICN_LOG=warn,ingest=trace     # warn+ globally, everything for ingest
//! ICN_LOG=off                   # keep nothing
//! ```
//!
//! When `ICN_LOG` is set explicitly, matching records are additionally
//! echoed to stderr as they happen (like `env_logger`); when unset, the
//! default filter is `info` and records are only retained in the ring
//! buffer (capacity [`LOG_CAPACITY`]; the oldest records are dropped and
//! counted once full). The retained records ride along in registry
//! snapshots and appear as instant events in the Chrome trace export.

use std::time::Duration;

/// Maximum number of retained log records; older records are dropped
/// (and the drop count reported in [`crate::Snapshot::logs_dropped`]).
pub const LOG_CAPACITY: usize = 4096;

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error,
    /// Suspicious conditions (quarantines, retries).
    Warn,
    /// Stage-level progress.
    Info,
    /// Chunk-level detail.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    /// Lower-case name (`"warn"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive). `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// One retained log record.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// Monotonic sequence number (never reset within a process).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem target (`"ingest"`, `"pipeline"`, …).
    pub target: String,
    /// Preformatted message.
    pub message: String,
    /// Offset from the registry epoch.
    pub at: Duration,
    /// Dense thread index (same numbering as [`crate::SpanData::thread`]).
    pub thread: u64,
}

/// A parsed `ICN_LOG` filter: a default maximum level plus per-target
/// overrides (longest matching target prefix wins).
#[derive(Clone, Debug, PartialEq)]
pub struct LogFilter {
    /// Maximum level kept for targets without an override; `None` = off.
    pub default: Option<Level>,
    /// `(target, max level)` overrides; `None` silences the target.
    pub targets: Vec<(String, Option<Level>)>,
    /// Whether matching records are echoed to stderr as they happen.
    pub echo: bool,
}

impl LogFilter {
    /// The filter used when `ICN_LOG` is unset: keep `info` and above,
    /// no stderr echo.
    pub fn default_filter() -> LogFilter {
        LogFilter {
            default: Some(Level::Info),
            targets: Vec::new(),
            echo: false,
        }
    }

    /// Parses an `ICN_LOG` specification (`level[,target=level]*`;
    /// `off`/`none` silence). Unknown level names fall back to the
    /// default filter's level rather than erroring — observability must
    /// never take a process down.
    pub fn from_spec(spec: &str) -> LogFilter {
        let mut filter = LogFilter {
            default: Some(Level::Info),
            targets: Vec::new(),
            echo: true,
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    let lv = match level.trim().to_ascii_lowercase().as_str() {
                        "off" | "none" => None,
                        other => Level::parse(other).map(Some).unwrap_or(Some(Level::Info)),
                    };
                    filter.targets.push((target.trim().to_string(), lv));
                }
                None => {
                    filter.default = match part.to_ascii_lowercase().as_str() {
                        "off" | "none" => None,
                        other => Level::parse(other).map(Some).unwrap_or(Some(Level::Info)),
                    };
                }
            }
        }
        filter
    }

    /// Reads the process-wide filter from `ICN_LOG` (cached after the
    /// first call).
    pub fn from_env() -> &'static LogFilter {
        static FILTER: std::sync::OnceLock<LogFilter> = std::sync::OnceLock::new();
        FILTER.get_or_init(|| match std::env::var("ICN_LOG") {
            Ok(spec) => LogFilter::from_spec(&spec),
            Err(_) => LogFilter::default_filter(),
        })
    }

    /// Whether a record at `level` for `target` passes the filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let mut best: Option<&(String, Option<Level>)> = None;
        for entry in &self.targets {
            let longer = match best {
                Some(b) => entry.0.len() > b.0.len(),
                None => true,
            };
            if longer && target.starts_with(entry.0.as_str()) {
                best = Some(entry);
            }
        }
        let max = match best {
            Some((_, lv)) => *lv,
            None => self.default,
        };
        max.is_some_and(|m| level <= m)
    }
}

/// Emits a structured log record to the global registry. The message is
/// only formatted when the registry is collecting — with observability
/// disabled this compiles down to one relaxed atomic load.
///
/// ```
/// icn_obs::obs_log!(Warn, "ingest", "quarantined {} records", 3);
/// ```
#[macro_export]
macro_rules! obs_log {
    ($level:ident, $target:expr, $($arg:tt)*) => {
        if $crate::global().is_enabled() {
            $crate::global().log($crate::Level::$level, $target, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_is_severity_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn default_filter_keeps_info_and_above() {
        let f = LogFilter::default_filter();
        assert!(f.enabled(Level::Error, "any"));
        assert!(f.enabled(Level::Info, "any"));
        assert!(!f.enabled(Level::Debug, "any"));
        assert!(!f.echo);
    }

    #[test]
    fn spec_with_target_overrides() {
        let f = LogFilter::from_spec("warn,ingest=trace,shap=off");
        assert!(f.echo);
        assert!(f.enabled(Level::Warn, "pipeline"));
        assert!(!f.enabled(Level::Info, "pipeline"));
        assert!(f.enabled(Level::Trace, "ingest"));
        assert!(!f.enabled(Level::Error, "shap"));
    }

    #[test]
    fn longest_target_prefix_wins() {
        let f = LogFilter::from_spec("info,ingest=off,ingest.seal=debug");
        assert!(!f.enabled(Level::Error, "ingest"));
        assert!(f.enabled(Level::Debug, "ingest.seal"));
    }

    #[test]
    fn off_and_garbage_specs() {
        assert!(!LogFilter::from_spec("off").enabled(Level::Error, "x"));
        // Unknown level names degrade to info rather than erroring.
        let f = LogFilter::from_spec("nonsense");
        assert!(f.enabled(Level::Info, "x"));
        assert!(!f.enabled(Level::Debug, "x"));
    }

    #[test]
    fn level_names_round_trip() {
        for lv in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(lv.name()), Some(lv));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
    }
}
