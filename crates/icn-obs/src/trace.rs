//! Structured trace data: finished spans with tree linkage, attributes
//! and point events.
//!
//! [`crate::Span`] timers record one [`SpanData`] each into the registry
//! when dropped. Unlike the flat path aggregation of `icn-obs/v1`, a
//! `SpanData` carries the full tree structure — a unique `id`, the
//! `parent` id (linked **across threads** when the span ran on an
//! `icn_stats::par` worker, via the handoff mechanism in
//! [`crate::span`]), the thread it ran on, and its start offset from the
//! registry epoch — which is exactly what the Chrome trace-event exporter
//! ([`crate::chrome`]) and the span-tree shape tests need.

use std::time::Duration;

/// An attribute value attached to a span (key = value pairs).
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute (counts, indices).
    U64(u64),
    /// Floating-point attribute (ratios, throughputs).
    F64(f64),
    /// String attribute.
    Str(String),
}

impl AttrValue {
    /// Renders the value as a [`crate::Json`] node.
    pub fn to_json(&self) -> crate::Json {
        match self {
            AttrValue::U64(v) => crate::Json::Num(*v as f64),
            AttrValue::F64(v) => crate::Json::Num(*v),
            AttrValue::Str(s) => crate::Json::Str(s.clone()),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

/// A point event recorded inside a span (`span.event("sealed")`).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Event name.
    pub name: String,
    /// Offset from the owning span's start.
    pub at: Duration,
}

/// One finished span occurrence with full tree linkage.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanData {
    /// Unique id within the registry (monotonic, assigned at enter).
    pub id: u64,
    /// Id of the enclosing span: the previous span on the same thread's
    /// stack, or — for the first span opened on an `icn_stats::par`
    /// worker — the span that was open on the *dispatching* thread.
    pub parent: Option<u64>,
    /// Leaf name (`shap_chunk`).
    pub name: String,
    /// Slash-joined nesting path (`stage3_surrogate/shap_batch/shap_chunk`);
    /// identical to the `icn-obs/v1` aggregation key.
    pub path: String,
    /// Small dense index of the OS thread the span ran on (0 is the first
    /// thread that ever opened a span, usually the main thread).
    pub thread: u64,
    /// Start offset from the registry epoch (set at `enable`).
    pub start: Duration,
    /// Wall time of this occurrence.
    pub wall: Duration,
    /// *Self* allocation bytes: bytes allocated on this span's thread
    /// while it was open, minus the bytes attributed to same-thread
    /// child spans. Zero unless a [`crate::mem::CountingAlloc`] is
    /// installed and counting. Attribution is threads-advisory — see
    /// the [`crate::mem`] module docs.
    pub alloc_bytes: u64,
    /// *Self* allocation count, same attribution rules as
    /// [`SpanData::alloc_bytes`].
    pub allocs: u64,
    /// How far the process-wide allocation window peak rose while this
    /// span was open (its peak contribution; zero when the high-water
    /// mark was set elsewhere).
    pub peak_growth_bytes: u64,
    /// Attached key = value attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
    /// Point events recorded inside the span, in time order.
    pub events: Vec<SpanEvent>,
}

impl SpanData {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Aggregates per-occurrence *self* allocation attribution by span path:
/// `path → (self bytes, self allocs, max peak growth)`. Because every
/// occurrence carries self (not cumulative) figures — cross-thread
/// children subtract nothing from their dispatcher — a path's cumulative
/// bytes are simply the sum of self bytes over its subtree, which the
/// treetable renderers compute by path prefix.
pub fn alloc_by_path(
    span_tree: &[SpanData],
) -> std::collections::BTreeMap<String, (u64, u64, u64)> {
    let mut out: std::collections::BTreeMap<String, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for s in span_tree {
        let e = out.entry(s.path.clone()).or_insert((0, 0, 0));
        e.0 += s.alloc_bytes;
        e.1 += s.allocs;
        e.2 = e.2.max(s.peak_growth_bytes);
    }
    out
}

/// Computes per-path self time (total wall minus the wall of direct
/// children) from the v1-style path aggregation. Returns
/// `path → (calls, total, self)` in path order. Self time is clamped at
/// zero: concurrent children (worker spans adopted from several threads)
/// can legitimately sum to more wall time than their parent.
pub fn self_times(
    spans: &std::collections::BTreeMap<String, (u64, Duration)>,
) -> std::collections::BTreeMap<String, (u64, Duration, Duration)> {
    let mut child_sum: std::collections::BTreeMap<&str, Duration> =
        std::collections::BTreeMap::new();
    for (path, &(_, wall)) in spans {
        if let Some(cut) = path.rfind('/') {
            let parent = &path[..cut];
            *child_sum.entry(parent).or_default() += wall;
        }
    }
    spans
        .iter()
        .map(|(path, &(calls, wall))| {
            let children = child_sum.get(path.as_str()).copied().unwrap_or_default();
            let own = wall.saturating_sub(children);
            (path.clone(), (calls, wall, own))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn self_time_subtracts_direct_children() {
        let mut spans: BTreeMap<String, (u64, Duration)> = BTreeMap::new();
        spans.insert("a".into(), (1, Duration::from_millis(100)));
        spans.insert("a/b".into(), (2, Duration::from_millis(60)));
        spans.insert("a/b/c".into(), (2, Duration::from_millis(10)));
        spans.insert("d".into(), (1, Duration::from_millis(5)));
        let t = self_times(&spans);
        assert_eq!(t["a"].2, Duration::from_millis(40));
        assert_eq!(t["a/b"].2, Duration::from_millis(50));
        assert_eq!(t["a/b/c"].2, Duration::from_millis(10));
        assert_eq!(t["d"].2, Duration::from_millis(5));
    }

    #[test]
    fn concurrent_children_clamp_to_zero_self() {
        let mut spans: BTreeMap<String, (u64, Duration)> = BTreeMap::new();
        spans.insert("p".into(), (1, Duration::from_millis(10)));
        // 4 workers x 8ms wall under a 10ms parent: self clamps to 0.
        spans.insert("p/w".into(), (4, Duration::from_millis(32)));
        let t = self_times(&spans);
        assert_eq!(t["p"].2, Duration::ZERO);
    }

    fn span_at(path: &str, alloc_bytes: u64, allocs: u64, peak: u64) -> SpanData {
        SpanData {
            id: 1,
            parent: None,
            name: path.rsplit('/').next().unwrap_or(path).into(),
            path: path.into(),
            thread: 0,
            start: Duration::ZERO,
            wall: Duration::ZERO,
            alloc_bytes,
            allocs,
            peak_growth_bytes: peak,
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn attr_lookup() {
        let mut d = span_at("x", 0, 0, 0);
        d.attrs = vec![("rows".into(), AttrValue::U64(9))];
        assert_eq!(d.attr("rows"), Some(&AttrValue::U64(9)));
        assert_eq!(d.attr("missing"), None);
    }

    #[test]
    fn alloc_by_path_sums_self_and_maxes_peak_growth() {
        let tree = vec![
            span_at("a", 100, 2, 50),
            span_at("a/b", 30, 1, 10),
            span_at("a/b", 20, 1, 40),
            span_at("c", 0, 0, 0),
        ];
        let agg = alloc_by_path(&tree);
        assert_eq!(agg["a"], (100, 2, 50));
        // Repeated occurrences sum bytes/allocs but keep the max peak
        // growth — peaks are high-water marks, not additive.
        assert_eq!(agg["a/b"], (50, 2, 40));
        assert_eq!(agg["c"], (0, 0, 0));
    }
}
