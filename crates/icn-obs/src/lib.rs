//! # icn-obs — zero-dependency observability for the ICN reproduction
//!
//! The ROADMAP's north star is a system that runs "as fast as the hardware
//! allows"; this crate is how the workspace *measures* that. It is built
//! from `std` only (the workspace must compile fully offline) and has
//! four layers:
//!
//! * [`Span`] — an RAII stage timer with per-thread nesting
//!   (`stage2_cluster/condensed`), key=value attributes and point events.
//!   Spans form a real tree ([`SpanData`]): parent/child by id, linked
//!   **across threads** when work fans out through `icn_stats::par` (the
//!   dispatching stage hands a [`span::Handoff`] to each worker). Inert
//!   and allocation-free while collection is disabled.
//! * [`Registry`] — a thread-safe store of counters, gauges, log-bucketed
//!   [`Histogram`]s and structured logs (ring-buffered, `ICN_LOG`-filtered
//!   — see [`obs_log!`]). The process-global instance ([`global`]) starts
//!   disabled; every mutating call short-circuits on one relaxed atomic
//!   load, so instrumented library code costs nothing unless a harness
//!   opts in. Hot loops tally locally and flush once per call, so enabling
//!   metrics can never perturb numeric results either.
//! * [`mem`] — allocation accounting: [`CountingAlloc`], a counting
//!   `#[global_allocator]` wrapper over `System` that harness binaries
//!   install, tracking window live/peak bytes globally and attributing
//!   allocation churn to the span open on the allocating thread. Gated
//!   on the same single-flag contract as the registry.
//! * Exporters — [`BenchReport`], a stable JSON schema (`icn-obs/v3`,
//!   still reading `v1`/`v2`) written to `BENCH_*.json` files, giving
//!   every perf PR a machine-readable baseline to beat; and
//!   [`chrome::chrome_trace`], a Chrome trace-event export
//!   (`chrome://tracing` / Perfetto) of the full span tree.
//! * Tooling — [`diff::diff_reports`] compares two reports against
//!   per-metric thresholds (the CI perf regression gate, including the
//!   asymmetric peak-memory gate), [`diff::render_top`] prints a
//!   self-time treetable and [`diff::render_mem`] the allocation
//!   treetable behind `icn obs mem`.
//!
//! Typical harness usage:
//!
//! ```
//! let reg = icn_obs::global();
//! reg.reset();
//! reg.enable();
//! {
//!     let mut span = icn_obs::Span::enter("stage1_transform");
//!     span.attr("rows", 123u64);
//!     reg.add_counter("transform.live_rows", 123);
//! }
//! let report = icn_obs::BenchReport::build(&reg.snapshot(), "doc-test", 0.1);
//! assert!(report.stage("stage1_transform").is_some());
//! reg.disable();
//! reg.reset();
//! ```

// `deny`, not `forbid`: the counting global-allocator wrapper in `mem`
// is the workspace's one sanctioned `unsafe` block and carries its own
// scoped allow + SAFETY argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod diff;
pub mod hist;
pub mod json;
pub mod log;
pub mod mem;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use chrome::{chrome_trace, write_chrome_trace};
pub use diff::{diff_reports, render_mem, render_top, DiffReport, DiffStatus, DiffThresholds};
pub use hist::Histogram;
pub use json::Json;
pub use log::{Level, LogFilter, LogRecord};
pub use mem::{gauge_bytes, vm_hwm_bytes, CountingAlloc, MemStats};
pub use registry::{Registry, Snapshot};
pub use report::{
    pair_reports, stage_for_counter, BenchReport, BenchReportSet, EnvInfo, MemoryReport, SpanAlloc,
    StageReport, FORECAST_STAGE, PIPELINE_STAGES, SCHEMA, SET_SCHEMA,
};
pub use span::{current_handoff, Handoff, Span};
pub use trace::{self_times, AttrValue, SpanData, SpanEvent};

static GLOBAL: Registry = Registry::new();

/// Serializes unit tests that touch the process-global allocation
/// window (`mem` counters are process state, like the global registry).
#[cfg(test)]
pub(crate) static MEM_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The process-global registry that library instrumentation reports to.
/// Disabled (and therefore free) by default; harness binaries enable it
/// behind `--metrics-out` / `--trace-out`.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Convenience: time a closure as a named span on the global registry.
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(name);
    f()
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_starts_disabled() {
        // Other tests enable/disable the global registry under a lock; this
        // only asserts the accessor is stable.
        assert!(std::ptr::eq(super::global(), super::global()));
    }
}
