//! # icn-obs — zero-dependency observability for the ICN reproduction
//!
//! The ROADMAP's north star is a system that runs "as fast as the hardware
//! allows"; this crate is how the workspace *measures* that. It is built
//! from `std` only (the workspace must compile fully offline) and has
//! four layers:
//!
//! * [`Span`] — an RAII stage timer with per-thread nesting
//!   (`stage2_cluster/condensed`), key=value attributes and point events.
//!   Spans form a real tree ([`SpanData`]): parent/child by id, linked
//!   **across threads** when work fans out through `icn_stats::par` (the
//!   dispatching stage hands a [`span::Handoff`] to each worker). Inert
//!   and allocation-free while collection is disabled.
//! * [`Registry`] — a thread-safe store of counters, gauges, log-bucketed
//!   [`Histogram`]s and structured logs (ring-buffered, `ICN_LOG`-filtered
//!   — see [`obs_log!`]). The process-global instance ([`global`]) starts
//!   disabled; every mutating call short-circuits on one relaxed atomic
//!   load, so instrumented library code costs nothing unless a harness
//!   opts in. Hot loops tally locally and flush once per call, so enabling
//!   metrics can never perturb numeric results either.
//! * Exporters — [`BenchReport`], a stable JSON schema (`icn-obs/v2`,
//!   still reading `v1`) written to `BENCH_*.json` files, giving every
//!   perf PR a machine-readable baseline to beat; and
//!   [`chrome::chrome_trace`], a Chrome trace-event export
//!   (`chrome://tracing` / Perfetto) of the full span tree.
//! * Tooling — [`diff::diff_reports`] compares two reports against
//!   per-metric thresholds (the CI perf regression gate) and
//!   [`diff::render_top`] prints a self-time treetable.
//!
//! Typical harness usage:
//!
//! ```
//! let reg = icn_obs::global();
//! reg.reset();
//! reg.enable();
//! {
//!     let mut span = icn_obs::Span::enter("stage1_transform");
//!     span.attr("rows", 123u64);
//!     reg.add_counter("transform.live_rows", 123);
//! }
//! let report = icn_obs::BenchReport::build(&reg.snapshot(), "doc-test", 0.1);
//! assert!(report.stage("stage1_transform").is_some());
//! reg.disable();
//! reg.reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod diff;
pub mod hist;
pub mod json;
pub mod log;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use chrome::{chrome_trace, write_chrome_trace};
pub use diff::{diff_reports, render_top, DiffReport, DiffStatus, DiffThresholds};
pub use hist::Histogram;
pub use json::Json;
pub use log::{Level, LogFilter, LogRecord};
pub use registry::{Registry, Snapshot};
pub use report::{
    pair_reports, stage_for_counter, BenchReport, BenchReportSet, EnvInfo, StageReport,
    FORECAST_STAGE, PIPELINE_STAGES, SCHEMA, SET_SCHEMA,
};
pub use span::{current_handoff, Handoff, Span};
pub use trace::{self_times, AttrValue, SpanData, SpanEvent};

static GLOBAL: Registry = Registry::new();

/// The process-global registry that library instrumentation reports to.
/// Disabled (and therefore free) by default; harness binaries enable it
/// behind `--metrics-out` / `--trace-out`.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Convenience: time a closure as a named span on the global registry.
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(name);
    f()
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_starts_disabled() {
        // Other tests enable/disable the global registry under a lock; this
        // only asserts the accessor is stable.
        assert!(std::ptr::eq(super::global(), super::global()));
    }
}
