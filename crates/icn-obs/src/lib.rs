//! # icn-obs — zero-dependency observability for the ICN reproduction
//!
//! The ROADMAP's north star is a system that runs "as fast as the hardware
//! allows"; this crate is how the workspace *measures* that. It is built
//! from `std` only (the workspace must compile fully offline) and has
//! three layers:
//!
//! * [`Span`] — an RAII stage timer with per-thread nesting
//!   (`stage2_cluster/condensed`), inert and allocation-free while
//!   collection is disabled.
//! * [`Registry`] — a thread-safe store of counters, gauges and duration
//!   statistics. The process-global instance ([`global`]) starts disabled;
//!   every mutating call short-circuits on one relaxed atomic load, so
//!   instrumented library code costs nothing unless a harness opts in.
//!   Hot loops tally locally and flush once per call, so enabling metrics
//!   can never perturb numeric results either.
//! * [`BenchReport`] — a stable JSON export schema (`icn-obs/v1`) written
//!   to `BENCH_*.json` files, giving every perf PR a machine-readable
//!   baseline to beat. [`json::Json`] is the tiny JSON value type backing
//!   it (also used by the synth/config serialisation elsewhere in the
//!   workspace).
//!
//! Typical harness usage:
//!
//! ```
//! let reg = icn_obs::global();
//! reg.reset();
//! reg.enable();
//! {
//!     let _span = icn_obs::Span::enter("stage1_transform");
//!     reg.add_counter("transform.live_rows", 123);
//! }
//! let report = icn_obs::BenchReport::build(&reg.snapshot(), "doc-test", 0.1);
//! assert!(report.stage("stage1_transform").is_some());
//! reg.disable();
//! reg.reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod report;
pub mod span;

pub use json::Json;
pub use registry::{DurationStat, Registry, Snapshot};
pub use report::{stage_for_counter, BenchReport, EnvInfo, StageReport, PIPELINE_STAGES, SCHEMA};
pub use span::Span;

static GLOBAL: Registry = Registry::new();

/// The process-global registry that library instrumentation reports to.
/// Disabled (and therefore free) by default; harness binaries enable it
/// behind `--metrics-out`.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Convenience: time a closure as a named span on the global registry.
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(name);
    f()
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_starts_disabled() {
        // Other tests enable/disable the global registry under a lock; this
        // only asserts the accessor is stable.
        assert!(std::ptr::eq(super::global(), super::global()));
    }
}
