//! Minimal JSON value type, writer and parser.
//!
//! The workspace cannot rely on external crates (builds must succeed fully
//! offline), so the observability layer carries its own small JSON
//! implementation. It covers exactly what the repo needs: building report
//! documents, serialising configuration structs, and parsing reports back
//! in tests. Numbers are `f64`; object key order is insertion order, which
//! keeps exported reports deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number node.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object entries, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns an error message with a byte offset
    /// on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Convenience: an object node built from a string-keyed map of counters.
pub fn counters_obj(counters: &BTreeMap<String, u64>) -> Json {
    Json::Obj(
        counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
            .collect(),
    )
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Re-synchronise on UTF-8 boundaries: step back and take
                    // the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::str("stage \"one\"\n")),
            ("wall_ms", Json::num(12.25)),
            ("n", Json::num(42.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::num(-1.5), Json::str("α/β"), Json::Bool(false)]),
            ),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42.0).to_compact(), "42");
        assert_eq!(Json::num(-3.0).to_compact(), "-3");
        assert_eq!(Json::num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn get_and_accessors() {
        let doc = Json::parse(r#"{"a": [1, 2], "b": "x", "c": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\tbA\n""#).unwrap();
        assert_eq!(v.as_str(), Some("a\tbA\n"));
    }

    #[test]
    fn whitespace_tolerant() {
        let v = Json::parse(" { \"k\" :\n[ 1 , 2 ]\t} ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }
}
