//! Allocation accounting: a counting [`GlobalAlloc`] wrapper and the
//! process-wide byte window behind the `icn-obs/v3` `memory` report
//! section.
//!
//! Harness binaries install [`CountingAlloc`] as their global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: icn_obs::CountingAlloc = icn_obs::CountingAlloc::system();
//! ```
//!
//! Every allocation then updates a small set of process-global relaxed
//! atomics (net live bytes, window peak, cumulative bytes/counts) plus
//! two plain `Cell` thread-locals that attribute allocation churn to the
//! span open on the allocating thread (see [`crate::Span`]). The
//! counting is gated on one static [`AtomicBool`]: while the registry is
//! disabled the allocator forwards straight to [`System`] after a single
//! relaxed load — the zero-overhead contract `tests/overhead_guard.rs`
//! pins. Library crates never talk to this module directly; the flag is
//! flipped by [`crate::Registry::enable`]/`disable` on the process-global
//! registry only, so unit tests driving private registries cannot
//! perturb the window.
//!
//! **Windowed semantics.** [`reset_window`] zeroes every counter, so
//! `live_bytes` is the *net* allocation balance since the last
//! [`crate::Registry::reset`] — memory allocated before the window and
//! freed inside it legitimately drives the balance negative, which is
//! why it is signed. `peak_bytes` is the high-water mark of that net
//! balance, the quantity `icn obs diff --max-peak-ratio` gates and
//! `--mem-budget-mb` enforces.
//!
//! **Attribution is threads-advisory.** Bytes are attributed to the span
//! stack of the thread that allocated them. Worker spans adopted across
//! threads (see [`crate::Handoff`]) carry their own attribution under
//! the dispatching stage's path, but allocations made by a worker
//! *outside* any span are visible only in the global totals. Canonical
//! per-span numbers are recorded at `ICN_THREADS=1`; the global peak is
//! exact at every thread count.
//!
//! The allocator hooks touch only `Cell<u64>` thread-locals (const-init,
//! no destructor, accessed with `try_with`) and relaxed atomics — never
//! a lock, a `RefCell` or an allocation — so counting is reentrancy- and
//! teardown-safe by construction.

#![allow(unsafe_code)] // the GlobalAlloc impl; everything else is safe

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static MEM_ENABLED: AtomicBool = AtomicBool::new(false);

/// Net live bytes in the current window (signed: frees of pre-window
/// allocations can outweigh in-window allocations).
static LIVE: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE`] within the window (never negative).
static PEAK: AtomicI64 = AtomicI64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Per-thread cumulative attribution counters. Plain `Cell`s with
    // const initializers: no lazy init, no Drop registration, so the
    // allocator can bump them from inside any allocation without
    // re-entering itself. Never reset — span attribution works on
    // deltas, so only monotonicity matters.
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Flips the process-wide counting flag. Crate-internal: only
/// [`crate::Registry::enable`]/`disable` on the global registry call
/// this, so the window tracks exactly the metered portion of a run.
pub(crate) fn set_enabled(on: bool) {
    MEM_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
pub fn counting_enabled() -> bool {
    MEM_ENABLED.load(Ordering::Relaxed)
}

/// Zeroes the window counters (live, peak, totals). Thread-local
/// attribution counters are left alone — they are only ever consumed as
/// deltas between span enter and drop.
pub(crate) fn reset_window() {
    LIVE.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
    TOTAL_ALLOCS.store(0, Ordering::Relaxed);
    TOTAL_FREES.store(0, Ordering::Relaxed);
}

/// A snapshot of the window counters — see [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Net bytes allocated minus freed since the window reset (signed —
    /// see the module docs).
    pub live_bytes: i64,
    /// High-water mark of [`MemStats::live_bytes`] within the window.
    pub peak_bytes: u64,
    /// Cumulative bytes passed to `alloc`/`realloc` in the window
    /// (allocation churn, not net footprint).
    pub total_alloc_bytes: u64,
    /// Number of allocations in the window.
    pub allocs: u64,
    /// Number of deallocations in the window.
    pub frees: u64,
}

/// Reads the current window counters. All-zero (in particular
/// `allocs == 0`) when no [`CountingAlloc`] is installed in the running
/// binary or counting never ran — which is how report building decides
/// whether a `memory` section is meaningful.
pub fn stats() -> MemStats {
    MemStats {
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed).max(0) as u64,
        total_alloc_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
        frees: TOTAL_FREES.load(Ordering::Relaxed),
    }
}

/// The calling thread's cumulative attribution counters:
/// `(bytes, allocation count)`. Monotonic; consumed as enter/drop deltas
/// by [`crate::Span`].
pub(crate) fn thread_totals() -> (u64, u64) {
    let bytes = THREAD_BYTES.try_with(Cell::get).unwrap_or(0);
    let allocs = THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0);
    (bytes, allocs)
}

/// Current window peak — cheaper than [`stats`] for the per-span peak
/// growth snapshot.
pub(crate) fn window_peak() -> u64 {
    PEAK.load(Ordering::Relaxed).max(0) as u64
}

fn bump_peak(live: i64) {
    let mut seen = PEAK.load(Ordering::Relaxed);
    while live > seen {
        match PEAK.compare_exchange_weak(seen, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => seen = now,
        }
    }
}

/// Counting hook for one allocation of `size` bytes. Kept separate from
/// the `GlobalAlloc` impl (which only adds the enablement branch) so the
/// arithmetic is unit-testable without installing an allocator.
pub(crate) fn on_alloc(size: u64) {
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    bump_peak(live);
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// Counting hook for one deallocation of `size` bytes.
pub(crate) fn on_free(size: u64) {
    LIVE.fetch_sub(size as i64, Ordering::Relaxed);
    TOTAL_FREES.fetch_add(1, Ordering::Relaxed);
}

/// Counting hook for a reallocation: accounted as a free of the old
/// block plus an allocation of the new one, so live bytes track the net
/// change while churn counts the full new size.
pub(crate) fn on_realloc(old_size: u64, new_size: u64) {
    let delta = new_size as i64 - old_size as i64;
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    bump_peak(live);
    TOTAL_BYTES.fetch_add(new_size, Ordering::Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_FREES.fetch_add(1, Ordering::Relaxed);
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get().wrapping_add(new_size)));
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// A counting allocator over [`System`]. Install as the binary's
/// `#[global_allocator]`; while the global registry is disabled every
/// method is a single relaxed load plus the `System` call.
pub struct CountingAlloc {
    _private: (),
}

impl CountingAlloc {
    /// The wrapper over [`System`] (const, so it can initialize a
    /// `static`).
    pub const fn system() -> CountingAlloc {
        CountingAlloc { _private: () }
    }
}

// SAFETY: pure delegation to `System`; the counting side effects touch
// only atomics and const-init `Cell` thread-locals, never allocate and
// never unwind, so every `GlobalAlloc` contract obligation is `System`'s
// own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && MEM_ENABLED.load(Ordering::Relaxed) {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && MEM_ENABLED.load(Ordering::Relaxed) {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if MEM_ENABLED.load(Ordering::Relaxed) {
            on_free(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && MEM_ENABLED.load(Ordering::Relaxed) {
            on_realloc(layout.size() as u64, new_size as u64);
        }
        p
    }
}

/// The process's peak resident set (`VmHWM` from `/proc/self/status`) in
/// bytes. `None` off Linux or when the pseudo-file is unreadable —
/// report building treats it as optional context next to the allocator
/// window peak (which only sees heap traffic inside the window).
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Sets a `*_bytes` gauge on the global registry — the one helper behind
/// every hand-maintained footprint gauge (`cluster.condensed_bytes`,
/// `cluster.budget_bytes`, ...), so they all share the unit convention
/// the `icn obs diff` bytes gate keys on.
///
/// Debug builds assert the `_bytes` suffix; release builds trust the
/// caller (the gauge would merely escape the bytes gate).
pub fn gauge_bytes(name: &str, bytes: usize) {
    debug_assert!(
        name.ends_with("_bytes"),
        "gauge_bytes wants a name ending in _bytes, got {name:?}"
    );
    crate::global().set_gauge(name, bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests mutate the process-global window counters directly via
    // the counting hooks (no allocator is installed in the unit-test
    // binary), so they serialize on the crate-wide mem lock — shared with
    // the span tests that also drive the hooks.
    use crate::MEM_TEST_LOCK as LOCK;

    #[test]
    fn window_tracks_live_peak_and_totals() {
        let _guard = LOCK.lock().unwrap();
        reset_window();
        on_alloc(1000);
        on_alloc(500);
        on_free(800);
        on_alloc(100);
        let s = stats();
        assert_eq!(s.live_bytes, 800);
        assert_eq!(s.peak_bytes, 1500);
        assert_eq!(s.total_alloc_bytes, 1600);
        assert_eq!(s.allocs, 3);
        assert_eq!(s.frees, 1);
        reset_window();
        assert_eq!(stats(), MemStats::default());
    }

    #[test]
    fn pre_window_frees_drive_live_negative_but_peak_stays_unsigned() {
        let _guard = LOCK.lock().unwrap();
        reset_window();
        on_free(4096); // allocated before the window opened
        let s = stats();
        assert_eq!(s.live_bytes, -4096);
        assert_eq!(s.peak_bytes, 0);
        on_alloc(1024);
        // Net balance is still negative: peak never moved.
        assert_eq!(stats().live_bytes, -3072);
        assert_eq!(stats().peak_bytes, 0);
        reset_window();
    }

    #[test]
    fn realloc_counts_net_live_and_full_churn() {
        let _guard = LOCK.lock().unwrap();
        reset_window();
        on_alloc(100);
        on_realloc(100, 300);
        let s = stats();
        assert_eq!(s.live_bytes, 300);
        assert_eq!(s.peak_bytes, 300);
        assert_eq!(s.total_alloc_bytes, 400);
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
        reset_window();
    }

    #[test]
    fn thread_totals_are_monotonic_and_survive_window_resets() {
        let _guard = LOCK.lock().unwrap();
        reset_window();
        let (b0, a0) = thread_totals();
        on_alloc(64);
        on_alloc(64);
        reset_window(); // must not clear thread attribution
        on_alloc(64);
        let (b1, a1) = thread_totals();
        assert_eq!(b1 - b0, 192);
        assert_eq!(a1 - a0, 3);
    }

    #[test]
    fn vm_hwm_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let hwm = vm_hwm_bytes().expect("VmHWM readable on Linux");
            assert!(hwm > 0, "VmHWM must be positive, got {hwm}");
        }
    }
}
