//! Thread-safe metrics and trace registry.
//!
//! A [`Registry`] collects named counters, gauges, log-bucketed
//! [`Histogram`]s, structured [`LogRecord`]s and finished
//! [`crate::Span`] occurrences (with full tree linkage — see
//! [`SpanData`]). The process-global instance returned by
//! [`crate::global`] starts **disabled**: every mutating call first
//! checks one relaxed atomic load and returns immediately, so code paths
//! instrumented against the global registry pay nothing measurable unless
//! a harness opts in with [`Registry::enable`].
//!
//! Hot loops should tally into a local variable and flush once per stage
//! call (`registry.add_counter("cluster.merges", local_tally)`); for
//! per-step latencies, tally into a local [`Histogram`] and flush once
//! with [`Registry::merge_hist`] — the fixed bucket layout makes the
//! merge independent of flush order. This keeps instrumentation both
//! cheap and incapable of perturbing results: the library never branches
//! on metric values.

use crate::hist::Histogram;
use crate::log::{Level, LogFilter, LogRecord, LOG_CAPACITY};
use crate::trace::SpanData;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<SpanData>,
    logs: VecDeque<LogRecord>,
    logs_dropped: u64,
    /// Time origin for span starts and log timestamps; set when
    /// collection starts, cleared by [`Registry::reset`].
    epoch: Option<Instant>,
}

impl Inner {
    fn offset_from_epoch(&mut self, at: Instant) -> Duration {
        let epoch = *self.epoch.get_or_insert(at);
        at.checked_duration_since(epoch).unwrap_or(Duration::ZERO)
    }
}

/// A thread-safe collection of metrics and trace data. See the module
/// docs.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    log_seq: AtomicU64,
    inner: Mutex<Inner>,
}

/// An immutable copy of a registry's state.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Log-bucketed histograms by name (durations in nanoseconds by
    /// convention).
    pub histograms: BTreeMap<String, Histogram>,
    /// Span occurrences aggregated by path: `(calls, total wall)` — the
    /// `icn-obs/v1` view, derived from [`Snapshot::span_tree`].
    pub spans: BTreeMap<String, (u64, Duration)>,
    /// Every finished span occurrence with tree linkage, in completion
    /// order.
    pub span_tree: Vec<SpanData>,
    /// Retained log records, oldest first.
    pub logs: Vec<LogRecord>,
    /// Number of log records dropped because the ring buffer was full.
    pub logs_dropped: u64,
}

impl Snapshot {
    /// Looks up a span occurrence by id in [`Snapshot::span_tree`].
    pub fn span_by_id(&self, id: u64) -> Option<&SpanData> {
        self.span_tree.iter().find(|s| s.id == id)
    }

    /// The root ancestor (a span with no parent) of the given occurrence,
    /// found by walking `parent` links. Returns `span` itself when it has
    /// no parent; `None` if a parent id is missing from the tree (a
    /// broken link — the shape tests treat that as a failure).
    pub fn root_of<'a>(&'a self, span: &'a SpanData) -> Option<&'a SpanData> {
        let mut cur = span;
        let mut hops = 0;
        while let Some(pid) = cur.parent {
            cur = self.span_by_id(pid)?;
            hops += 1;
            if hops > 1_000 {
                return None; // cycle guard; cannot happen with monotonic ids
            }
        }
        Some(cur)
    }
}

impl Registry {
    /// A fresh, disabled registry.
    pub const fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(false),
            next_span_id: AtomicU64::new(1),
            log_seq: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                spans: Vec::new(),
                logs: VecDeque::new(),
                logs_dropped: 0,
                epoch: None,
            }),
        }
    }

    /// Starts collecting and anchors the trace epoch (if not already
    /// set). Previously collected data is kept; call [`Registry::reset`]
    /// for a clean slate. On the process-global registry this also
    /// starts allocation counting (see [`crate::mem`]) — private
    /// registries never touch the process-wide allocator window.
    pub fn enable(&self) {
        {
            let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
            inner.epoch.get_or_insert_with(Instant::now);
        }
        if self.is_global() {
            crate::mem::set_enabled(true);
        }
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stops collecting (mutating calls become single-load no-ops again,
    /// and — on the global registry — the allocator counting branch goes
    /// back to its disabled fast path).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
        if self.is_global() {
            crate::mem::set_enabled(false);
        }
    }

    fn is_global(&self) -> bool {
        std::ptr::eq(self, crate::global())
    }

    /// Whether the registry is currently collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clears all collected data and the trace epoch (enabled state is
    /// unchanged; span ids keep growing so ids never repeat within a
    /// process). On the global registry this also zeroes the allocation
    /// window ([`crate::mem::reset_window`]), so a threads-sweep loop
    /// gets one clean byte window per member run.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        *inner = Inner::default();
        if self.is_enabled() {
            inner.epoch = Some(Instant::now());
        }
        if self.is_global() {
            crate::mem::reset_window();
        }
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn add_counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    #[inline]
    pub fn incr(&self, name: &str) {
        self.add_counter(name, 1);
    }

    /// Sets the named gauge (last write wins).
    #[inline]
    pub fn set_gauge(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram.
    #[inline]
    pub fn record_hist(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges a locally-tallied histogram into the named one — the
    /// flush-once pattern for per-step latencies in hot loops. The fixed
    /// bucket layout makes the result independent of flush order.
    pub fn merge_hist(&self, name: &str, local: &Histogram) {
        if !self.is_enabled() || local.count() == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .merge(local);
    }

    /// Records one duration observation under `name`, as nanoseconds in
    /// the named histogram.
    #[inline]
    pub fn record_duration(&self, name: &str, d: Duration) {
        self.record_hist(name, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Emits a structured log record (subject to the `ICN_LOG` filter;
    /// retained only while collecting). Prefer the [`crate::obs_log!`]
    /// macro, which formats lazily at the call site.
    pub fn log(&self, level: Level, target: &str, message: &str) {
        if !self.is_enabled() {
            return;
        }
        let filter = LogFilter::from_env();
        if !filter.enabled(level, target) {
            return;
        }
        if filter.echo {
            eprintln!("[{:<5} {target}] {message}", level.name());
        }
        let now = Instant::now();
        let seq = self.log_seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        let at = inner.offset_from_epoch(now);
        if inner.logs.len() >= LOG_CAPACITY {
            inner.logs.pop_front();
            inner.logs_dropped += 1;
        }
        inner.logs.push_back(LogRecord {
            seq,
            level,
            target: target.to_string(),
            message: message.to_string(),
            at,
            thread: crate::span::thread_index(),
        });
    }

    /// Allocates a process-unique span id (monotonic from 1).
    pub(crate) fn alloc_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a finished span occurrence. `start` is the wall-clock
    /// instant the span was entered; the registry converts it into an
    /// epoch offset under the lock.
    pub(crate) fn record_span(&self, mut data: SpanData, start: Instant) {
        // Callers (Span::drop) already checked enablement at entry; check
        // again so a span straddling a disable() can't record.
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        data.start = inner.offset_from_epoch(start);
        inner.spans.push(data);
    }

    /// Test/report helper: records a minimal span occurrence with just a
    /// path and wall time (no tree linkage).
    #[doc(hidden)]
    pub fn record_span_parts(&self, path: String, wall: Duration) {
        if !self.is_enabled() {
            return;
        }
        let id = self.alloc_span_id();
        let name = path.rsplit('/').next().unwrap_or(&path).to_string();
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        inner.spans.push(SpanData {
            id,
            parent: None,
            name,
            path,
            thread: 0,
            start: Duration::ZERO,
            wall,
            alloc_bytes: 0,
            allocs: 0,
            peak_growth_bytes: 0,
            attrs: Vec::new(),
            events: Vec::new(),
        });
    }

    /// Copies out the current state.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("icn-obs registry poisoned");
        let mut spans: BTreeMap<String, (u64, Duration)> = BTreeMap::new();
        for s in &inner.spans {
            let e = spans.entry(s.path.clone()).or_insert((0, Duration::ZERO));
            e.0 += 1;
            e.1 += s.wall;
        }
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans,
            span_tree: inner.spans.clone(),
            logs: inner.logs.iter().cloned().collect(),
            logs_dropped: inner.logs_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_collects_nothing() {
        let r = Registry::new();
        r.add_counter("a", 5);
        r.set_gauge("g", 1.0);
        r.record_duration("d", Duration::from_millis(1));
        r.record_hist("h", 42);
        r.log(Level::Error, "t", "dropped");
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty());
        assert!(s.histograms.is_empty() && s.logs.is_empty());
        assert!(s.span_tree.is_empty());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let r = Registry::new();
        r.enable();
        r.add_counter("x", 2);
        r.incr("x");
        assert_eq!(r.snapshot().counters["x"], 3);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn durations_become_histograms() {
        let r = Registry::new();
        r.enable();
        r.record_duration("d", Duration::from_nanos(10));
        r.record_duration("d", Duration::from_nanos(30));
        let h = &r.snapshot().histograms["d"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert_eq!(h.sum(), 40);
    }

    #[test]
    fn local_histograms_flush_by_merge() {
        let r = Registry::new();
        r.enable();
        let mut local = Histogram::new();
        for v in [1u64, 2, 3] {
            local.record(v);
        }
        r.merge_hist("steps", &local);
        r.merge_hist("steps", &local);
        let h = &r.snapshot().histograms["steps"];
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 12);
        // Empty locals are a no-op (no empty entry created).
        r.merge_hist("empty", &Histogram::new());
        assert!(!r.snapshot().histograms.contains_key("empty"));
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let r = std::sync::Arc::new(Registry::new());
        r.enable();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.incr("hits");
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counters["hits"], 8000);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        r.enable();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", 2.5);
        assert_eq!(r.snapshot().gauges["g"], 2.5);
    }

    #[test]
    fn log_ring_is_bounded() {
        let r = Registry::new();
        r.enable();
        for i in 0..(LOG_CAPACITY + 10) {
            r.log(Level::Error, "t", &format!("m{i}"));
        }
        let s = r.snapshot();
        assert_eq!(s.logs.len(), LOG_CAPACITY);
        assert_eq!(s.logs_dropped, 10);
        // Oldest records were the ones dropped.
        assert_eq!(s.logs.first().unwrap().message, "m10");
    }

    #[test]
    fn log_below_default_filter_is_skipped() {
        // The default ICN_LOG filter keeps info and above.
        let r = Registry::new();
        r.enable();
        r.log(Level::Debug, "t", "too detailed");
        r.log(Level::Info, "t", "kept");
        let s = r.snapshot();
        assert_eq!(s.logs.len(), 1);
        assert_eq!(s.logs[0].message, "kept");
    }
}
