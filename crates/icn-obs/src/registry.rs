//! Thread-safe metrics registry.
//!
//! A [`Registry`] collects named counters, gauges, duration statistics and
//! finished [`crate::Span`] records. The process-global instance returned
//! by [`crate::global`] starts **disabled**: every mutating call first
//! checks one relaxed atomic load and returns immediately, so code paths
//! instrumented against the global registry pay nothing measurable unless
//! a harness opts in with [`Registry::enable`].
//!
//! Hot loops should tally into a local variable and flush once per stage
//! call (`registry.add_counter("cluster.merges", local_tally)`), which
//! keeps instrumentation both cheap and incapable of perturbing results:
//! the library never branches on metric values.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Aggregate statistics of one named duration series.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DurationStat {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all durations in nanoseconds.
    pub total_ns: u128,
    /// Shortest recorded duration in nanoseconds.
    pub min_ns: u128,
    /// Longest recorded duration in nanoseconds.
    pub max_ns: u128,
}

impl DurationStat {
    fn record(&mut self, ns: u128) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Total wall time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// One finished span occurrence (aggregated by path in [`Snapshot`]).
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Slash-separated nesting path, e.g. `stage2_cluster/condensed`.
    pub path: String,
    /// Wall time of this occurrence.
    pub wall: Duration,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    durations: BTreeMap<String, DurationStat>,
    spans: Vec<SpanRecord>,
}

/// A thread-safe collection of metrics. See the module docs.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

/// An immutable copy of a registry's state.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Duration statistics by name.
    pub durations: BTreeMap<String, DurationStat>,
    /// Span occurrences aggregated by path: `(calls, total wall)`.
    pub spans: BTreeMap<String, (u64, Duration)>,
}

impl Registry {
    /// A fresh, disabled registry.
    pub const fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                durations: BTreeMap::new(),
                spans: Vec::new(),
            }),
        }
    }

    /// Starts collecting. Previously collected data is kept; call
    /// [`Registry::reset`] for a clean slate.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stops collecting (mutating calls become single-load no-ops again).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether the registry is currently collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clears all collected data (enabled state is unchanged).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        *inner = Inner::default();
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn add_counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    #[inline]
    pub fn incr(&self, name: &str) {
        self.add_counter(name, 1);
    }

    /// Sets the named gauge (last write wins).
    #[inline]
    pub fn set_gauge(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records one duration observation under `name`.
    #[inline]
    pub fn record_duration(&self, name: &str, d: Duration) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        inner
            .durations
            .entry(name.to_string())
            .or_default()
            .record(d.as_nanos());
    }

    pub(crate) fn record_span(&self, path: String, wall: Duration) {
        // Callers (Span::drop) already checked enablement at entry; check
        // again so a span straddling a disable() can't record.
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("icn-obs registry poisoned");
        inner.spans.push(SpanRecord { path, wall });
    }

    /// Copies out the current state.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("icn-obs registry poisoned");
        let mut spans: BTreeMap<String, (u64, Duration)> = BTreeMap::new();
        for s in &inner.spans {
            let e = spans.entry(s.path.clone()).or_insert((0, Duration::ZERO));
            e.0 += 1;
            e.1 += s.wall;
        }
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            durations: inner.durations.clone(),
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_collects_nothing() {
        let r = Registry::new();
        r.add_counter("a", 5);
        r.set_gauge("g", 1.0);
        r.record_duration("d", Duration::from_millis(1));
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.durations.is_empty());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let r = Registry::new();
        r.enable();
        r.add_counter("x", 2);
        r.incr("x");
        assert_eq!(r.snapshot().counters["x"], 3);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn duration_stats_track_min_max() {
        let r = Registry::new();
        r.enable();
        r.record_duration("d", Duration::from_nanos(10));
        r.record_duration("d", Duration::from_nanos(30));
        let d = r.snapshot().durations["d"];
        assert_eq!(d.count, 2);
        assert_eq!(d.min_ns, 10);
        assert_eq!(d.max_ns, 30);
        assert_eq!(d.total_ns, 40);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let r = std::sync::Arc::new(Registry::new());
        r.enable();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.incr("hits");
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counters["hits"], 8000);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        r.enable();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", 2.5);
        assert_eq!(r.snapshot().gauges["g"], 2.5);
    }
}
