//! Chrome trace-event JSON export (`chrome://tracing` / Perfetto).
//!
//! [`chrome_trace`] renders a registry snapshot into the Trace Event
//! Format's JSON object form: a `traceEvents` array of
//!
//! * `"ph": "X"` *complete* events — one per finished span, with `ts`
//!   (start offset from the registry epoch) and `dur` in **microseconds**
//!   as the format requires, `tid` = the dense icn-obs thread index, and
//!   the span id/parent/path plus all attributes under `args`;
//! * `"ph": "i"` *instant* events — span point events and retained log
//!   records (thread-scoped);
//! * `"ph": "M"` *metadata* events naming the process and each thread.
//!
//! Load the written file directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) to see the stage → worker span
//! tree laid out per thread over time. The export is lossless with
//! respect to span structure: a consumer can rebuild the exact tree from
//! `args.id` / `args.parent`, which is what the round-trip test in
//! `tests/observability.rs` pins.

use crate::json::Json;
use crate::registry::Snapshot;
use std::collections::BTreeSet;

/// The process id used for all events (the export covers one process).
const PID: f64 = 1.0;

fn micros(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Renders a snapshot as a Chrome trace-event JSON document.
pub fn chrome_trace(snapshot: &Snapshot) -> Json {
    let mut events: Vec<Json> = Vec::new();

    // Metadata: name the process and every thread that appears.
    let mut threads: BTreeSet<u64> = snapshot.span_tree.iter().map(|s| s.thread).collect();
    threads.extend(snapshot.logs.iter().map(|l| l.thread));
    events.push(Json::obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::num(PID)),
        ("tid", Json::num(0.0)),
        ("args", Json::obj(vec![("name", Json::str("icn pipeline"))])),
    ]));
    for &tid in &threads {
        let label = if tid == 0 {
            "main".to_string()
        } else {
            format!("worker-{tid}")
        };
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num(PID)),
            ("tid", Json::num(tid as f64)),
            ("args", Json::obj(vec![("name", Json::str(&label))])),
        ]));
    }

    for span in &snapshot.span_tree {
        let cat = span.path.split('/').next().unwrap_or("span");
        let mut args = vec![
            ("id", Json::num(span.id as f64)),
            ("path", Json::str(&span.path)),
        ];
        if let Some(parent) = span.parent {
            args.push(("parent", Json::num(parent as f64)));
        }
        // Allocation attribution from the counting allocator, when the
        // producing binary counted (zero otherwise — omitted to keep
        // uncounted traces byte-stable).
        if span.alloc_bytes > 0 {
            args.push(("alloc_bytes", Json::num(span.alloc_bytes as f64)));
        }
        for (key, value) in &span.attrs {
            args.push((key.as_str(), value.to_json()));
        }
        events.push(Json::obj(vec![
            ("name", Json::str(&span.name)),
            ("cat", Json::str(cat)),
            ("ph", Json::str("X")),
            ("ts", Json::num(micros(span.start))),
            ("dur", Json::num(micros(span.wall))),
            ("pid", Json::num(PID)),
            ("tid", Json::num(span.thread as f64)),
            ("args", Json::Obj(own_entries(args))),
        ]));
        for event in &span.events {
            events.push(Json::obj(vec![
                ("name", Json::str(&event.name)),
                ("cat", Json::str("event")),
                ("ph", Json::str("i")),
                ("ts", Json::num(micros(span.start + event.at))),
                ("pid", Json::num(PID)),
                ("tid", Json::num(span.thread as f64)),
                ("s", Json::str("t")),
                ("args", Json::obj(vec![("span", Json::num(span.id as f64))])),
            ]));
        }
    }

    for log in &snapshot.logs {
        events.push(Json::obj(vec![
            ("name", Json::str(&log.message)),
            ("cat", Json::str("log")),
            ("ph", Json::str("i")),
            ("ts", Json::num(micros(log.at))),
            ("pid", Json::num(PID)),
            ("tid", Json::num(log.thread as f64)),
            ("s", Json::str("t")),
            (
                "args",
                Json::obj(vec![
                    ("level", Json::str(log.level.name())),
                    ("target", Json::str(&log.target)),
                    ("seq", Json::num(log.seq as f64)),
                ]),
            ),
        ]));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

fn own_entries(entries: Vec<(&str, Json)>) -> Vec<(String, Json)> {
    entries
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Writes the Chrome trace rendering of `snapshot` to `path` (pretty
/// JSON; both `chrome://tracing` and Perfetto accept it).
pub fn write_chrome_trace(snapshot: &Snapshot, path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(snapshot).to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Level, LogRecord};
    use crate::trace::{AttrValue, SpanData, SpanEvent};
    use std::time::Duration;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.span_tree.push(SpanData {
            id: 1,
            parent: None,
            name: "stage3_surrogate".into(),
            path: "stage3_surrogate".into(),
            thread: 0,
            start: Duration::from_micros(100),
            wall: Duration::from_micros(900),
            alloc_bytes: 2048,
            allocs: 2,
            peak_growth_bytes: 2048,
            attrs: vec![("rows".into(), AttrValue::U64(64))],
            events: vec![SpanEvent {
                name: "fitted".into(),
                at: Duration::from_micros(400),
            }],
        });
        snap.span_tree.push(SpanData {
            id: 2,
            parent: Some(1),
            name: "shap_chunk".into(),
            path: "stage3_surrogate/shap_chunk".into(),
            thread: 3,
            start: Duration::from_micros(200),
            wall: Duration::from_micros(300),
            alloc_bytes: 0,
            allocs: 0,
            peak_growth_bytes: 0,
            attrs: Vec::new(),
            events: Vec::new(),
        });
        snap.logs.push(LogRecord {
            seq: 0,
            level: Level::Warn,
            target: "ingest".into(),
            message: "quarantined 2 records".into(),
            at: Duration::from_micros(50),
            thread: 0,
        });
        snap
    }

    #[test]
    fn trace_has_complete_events_with_parent_links() {
        let doc = chrome_trace(&sample_snapshot());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        let chunk = complete
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("shap_chunk"))
            .unwrap();
        let args = chunk.get("args").unwrap();
        assert_eq!(args.get("parent").and_then(Json::as_f64), Some(1.0));
        // Zero allocation attribution is omitted; nonzero is exported.
        assert!(args.get("alloc_bytes").is_none());
        let surrogate = complete
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("stage3_surrogate"))
            .unwrap();
        assert_eq!(
            surrogate
                .get("args")
                .unwrap()
                .get("alloc_bytes")
                .and_then(Json::as_f64),
            Some(2048.0)
        );
        assert_eq!(chunk.get("tid").and_then(Json::as_f64), Some(3.0));
        assert_eq!(chunk.get("ts").and_then(Json::as_f64), Some(200.0));
        assert_eq!(chunk.get("dur").and_then(Json::as_f64), Some(300.0));
    }

    #[test]
    fn trace_includes_logs_events_and_metadata() {
        let doc = chrome_trace(&sample_snapshot());
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let instants: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .collect();
        // One span point event + one log record.
        assert_eq!(instants.len(), 2);
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("name").and_then(Json::as_str) == Some("thread_name")));
        // The export parses back as JSON (what the browser does).
        let text = doc.to_pretty();
        assert!(Json::parse(&text).is_ok());
    }
}
