//! Log-bucketed histograms with a fixed, deterministic bucket layout.
//!
//! A [`Histogram`] records `u64` observations (by convention nanoseconds
//! for duration series, but any unit works) into HDR-style logarithmic
//! buckets: every power-of-two octave is split into [`SUB_BUCKETS`]
//! sub-buckets, giving a worst-case relative bucket width of
//! `1 / SUB_BUCKETS` (~3%). The layout is a compile-time constant — it
//! never adapts to the data — so two histograms recorded on different
//! threads, machines or runs can be merged by element-wise bucket
//! addition and the result is independent of merge order ("deterministic
//! merges"). `count`, `sum`, `min` and `max` are tracked exactly.
//!
//! Quantile extraction is **rank-based and exact with respect to the
//! bucketing**: `quantile(q)` returns the lower bound of the bucket that
//! contains the `⌈q·count⌉`-th smallest recorded value. This makes the
//! result reproducible and checkable against a sort-based oracle — sort
//! the raw samples, pick the `⌈q·count⌉`-th, and map it through
//! [`Histogram::bucket_floor`]`(`[`Histogram::bucket_index`]`(v))`; the
//! two agree *exactly* for every sample set (the cumulative bucket walk
//! and the sorted walk locate the same bucket). `icn-testkit` ships that
//! oracle and the root test-suite pins the agreement over seeded samples.

use std::fmt;

/// log2 of the number of sub-buckets per octave.
pub const LOG_SUB_BUCKETS: u32 = 5;
/// Sub-buckets per power-of-two octave (relative error ≤ 1/32 ≈ 3%).
pub const SUB_BUCKETS: u64 = 1 << LOG_SUB_BUCKETS;
/// Total number of buckets in the fixed layout. Values `0..SUB_BUCKETS`
/// get exact unit buckets; each octave above contributes `SUB_BUCKETS`
/// more, up to the full `u64` range.
pub const N_BUCKETS: usize = ((64 - LOG_SUB_BUCKETS as usize) + 1) * SUB_BUCKETS as usize;

/// A mergeable log-bucketed histogram. See the module docs for layout and
/// determinism guarantees.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("nonzero_buckets", &self.nonzero_buckets().count())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram (all buckets zero).
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The fixed bucket index of `v`. Values below [`SUB_BUCKETS`] map to
    /// exact unit buckets; larger values map to
    /// `(octave − log₂S + 1)·S + sub` where `S` = [`SUB_BUCKETS`] and
    /// `sub` keeps the top `log₂S + 1` significant bits.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros(); // >= LOG_SUB_BUCKETS
        let shift = octave - LOG_SUB_BUCKETS;
        let sub = (v >> shift) - SUB_BUCKETS;
        ((octave - LOG_SUB_BUCKETS + 1) as u64 * SUB_BUCKETS + sub) as usize
    }

    /// The smallest value that maps to bucket `idx` (the bucket's
    /// representative: quantiles report this lower bound).
    pub fn bucket_floor(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let octave = idx / SUB_BUCKETS + LOG_SUB_BUCKETS as u64 - 1;
        let sub = idx % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << (octave - LOG_SUB_BUCKETS as u64)
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` by element-wise bucket addition. Because
    /// the layout is fixed, merging is associative and commutative: any
    /// merge order over any partition of the observations yields
    /// bit-identical bucket counts (pinned by the testkit metamorphic
    /// suite).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The rank a quantile `q` maps to: `clamp(⌈q·count⌉, 1, count)`.
    /// Exposed so the sort-based oracle uses the identical rule.
    pub fn quantile_rank(count: u64, q: f64) -> u64 {
        ((q * count as f64).ceil() as u64).clamp(1, count.max(1))
    }

    /// The lower bound of the bucket containing the `⌈q·count⌉`-th
    /// smallest recorded value (0 when empty). Deterministic: depends only
    /// on the bucket counts, never on recording or merge order.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = Self::quantile_rank(self.count, q);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        Self::bucket_floor(N_BUCKETS - 1)
    }

    /// Iterator over `(bucket_index, count)` for non-empty buckets, in
    /// index (= value) order. This is the sparse form exported to JSON.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuilds a histogram from its exported sparse form. `count` is
    /// recomputed from the buckets; `sum`, `min` and `max` are taken as
    /// given (they are tracked exactly at record time and cannot be
    /// recovered from buckets alone).
    pub fn from_sparse(buckets: &[(usize, u64)], sum: u128, min: u64, max: u64) -> Histogram {
        let mut h = Histogram::new();
        for &(idx, c) in buckets {
            if idx < N_BUCKETS {
                h.counts[idx] += c;
                h.count += c;
            }
        }
        h.sum = sum;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_floor_are_consistent() {
        // floor(index(v)) <= v, and v is below the next bucket's floor.
        for v in (0..2048u64).chain([
            4095,
            4096,
            4097,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let idx = Histogram::bucket_index(v);
            assert!(idx < N_BUCKETS, "index {idx} out of range for {v}");
            let lo = Histogram::bucket_floor(idx);
            assert!(lo <= v, "floor {lo} > value {v}");
            if idx + 1 < N_BUCKETS {
                assert!(
                    Histogram::bucket_floor(idx + 1) > v,
                    "value {v} not below next floor"
                );
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(Histogram::bucket_floor(Histogram::bucket_index(v)), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1 << 30, 987_654_321_987] {
            let lo = Histogram::bucket_floor(Histogram::bucket_index(v));
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "error {err} for {v}");
        }
    }

    #[test]
    fn exact_aggregates() {
        let mut h = Histogram::new();
        for v in [5u64, 1000, 3, 77, 77] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1162);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 232.4).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_matches_sorted_walk() {
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 37) % 100_000).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            let rank = Histogram::quantile_rank(sorted.len() as u64, q) as usize;
            let oracle = Histogram::bucket_floor(Histogram::bucket_index(sorted[rank - 1]));
            assert_eq!(h.quantile(q), oracle, "q = {q}");
        }
    }

    #[test]
    fn merge_equals_single_histogram() {
        let mut all = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for i in 0..1000u64 {
            let v = (i * 7919) % 1_000_000;
            all.record(v);
            parts[(i % 3) as usize].record(v);
        }
        let mut merged = Histogram::new();
        // Merge in a scrambled order.
        merged.merge(&parts[2]);
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged, all);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 31, 32, 1000, 123_456_789] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_sparse(&sparse, h.sum(), h.min(), h.max());
        assert_eq!(back, h);
    }
}
