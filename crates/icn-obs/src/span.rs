//! RAII stage timers with nesting, attributes and cross-thread adoption.
//!
//! ```
//! let reg = icn_obs::global();
//! reg.enable();
//! {
//!     let _outer = icn_obs::Span::enter("stage2_cluster");
//!     let mut inner = icn_obs::Span::enter("condensed");
//!     inner.attr("pairs", 42u64);
//!     inner.event("allocated");
//!     // ... work ...
//! } // both spans record their wall time on drop
//! let snap = reg.snapshot();
//! assert!(snap.spans.contains_key("stage2_cluster/condensed"));
//! reg.disable();
//! reg.reset();
//! ```
//!
//! Nesting is tracked per thread: a span entered while another is open on
//! the same thread records under the parent's path joined with `/`, and
//! links to it by id in the span tree ([`crate::SpanData`]).
//!
//! **Cross-thread adoption.** Worker threads spawned by `icn_stats::par`
//! have empty span stacks, so their spans would become disconnected
//! roots. Instead, the dispatching thread captures a [`Handoff`] of its
//! innermost open span ([`current_handoff`]) and each worker installs it
//! with [`Handoff::adopt`]; the first span the worker opens then parents
//! to the dispatching span — by id *and* by path — so e.g. per-chunk
//! SHAP spans appear under `stage3_surrogate/shap_batch` at any
//! `ICN_THREADS`, exactly as they do on the sequential fallback path.
//!
//! When the global registry is disabled, [`Span::enter`] is a no-op that
//! takes no timestamp and touches no thread-local state, and
//! [`current_handoff`] returns `None` after a single relaxed load.

use crate::registry::Registry;
use crate::trace::{AttrValue, SpanData, SpanEvent};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct Frame {
    id: u64,
    path: String,
    /// Allocation bytes attributed to already-dropped same-thread child
    /// spans, accumulated so this span can report *self* attribution
    /// (its own thread delta minus its children's).
    child_alloc_bytes: u64,
    /// Allocation count attributed to same-thread child spans.
    child_allocs: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static ADOPTED: RefCell<Option<Handoff>> = const { RefCell::new(None) };
    static THREAD_INDEX: Cell<Option<u64>> = const { Cell::new(None) };
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Dense per-process index of the calling OS thread (0 for the first
/// thread that asks, usually the main thread). Used to label spans and
/// log records; stable for the lifetime of the thread.
pub(crate) fn thread_index() -> u64 {
    THREAD_INDEX.with(|cell| match cell.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(i));
            i
        }
    })
}

/// A capture of the dispatching thread's innermost open span, used to
/// parent worker spans across threads. Obtained with [`current_handoff`]
/// on the dispatching thread; installed on a worker with
/// [`Handoff::adopt`].
#[derive(Clone, Debug)]
pub struct Handoff {
    id: u64,
    path: String,
}

impl Handoff {
    /// Installs this handoff on the current thread: until the returned
    /// guard drops, the first span opened with an empty stack parents to
    /// the captured span.
    pub fn adopt(&self) -> AdoptGuard {
        let previous = ADOPTED.with(|a| a.borrow_mut().replace(self.clone()));
        AdoptGuard { previous }
    }
}

/// Restores the thread's previous adoption state on drop. See
/// [`Handoff::adopt`].
#[must_use = "adoption lasts only while the guard is alive"]
pub struct AdoptGuard {
    previous: Option<Handoff>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        ADOPTED.with(|a| *a.borrow_mut() = previous);
    }
}

/// Captures the innermost open span on the current thread for cross-thread
/// parenting. Returns `None` when the global registry is disabled (one
/// relaxed load, no thread-local access) or when no span is open.
///
/// A worker thread that has adopted a [`Handoff`] but not opened any span
/// of its own re-exports that adoption: nested parallel sections (a
/// parallel model fit inside a parallel per-cluster loop) chain the
/// dispatcher's span through every level instead of dropping to
/// disconnected roots one level down.
pub fn current_handoff() -> Option<Handoff> {
    if !crate::global().is_enabled() {
        return None;
    }
    STACK
        .with(|stack| {
            stack.borrow().last().map(|f| Handoff {
                id: f.id,
                path: f.path.clone(),
            })
        })
        .or_else(|| ADOPTED.with(|a| a.borrow().clone()))
}

/// An RAII timer that records one [`SpanData`] into the global registry
/// when dropped. Create with [`Span::enter`]; hold it for the duration of
/// the stage (`let _span = Span::enter("stage");`).
#[must_use = "a span records on drop; bind it to a variable for the stage's duration"]
pub struct Span {
    state: Option<SpanState>,
}

struct SpanState {
    registry: &'static Registry,
    id: u64,
    parent: Option<u64>,
    name: String,
    path: String,
    start: Instant,
    /// Thread-cumulative allocation counters at enter; the drop-time
    /// difference is this span's allocation delta (self + same-thread
    /// children). Zero-cost when no counting allocator is installed —
    /// the counters just stay at zero.
    bytes_at_enter: u64,
    allocs_at_enter: u64,
    /// Window peak at enter, so the drop can report how far the
    /// process-wide high-water mark rose during the span.
    peak_at_enter: u64,
    attrs: Vec<(String, AttrValue)>,
    events: Vec<SpanEvent>,
}

impl Span {
    /// Opens a span on the global registry. No-op (and allocation-free)
    /// while the registry is disabled.
    pub fn enter(name: &str) -> Span {
        Span::enter_on(crate::global(), name)
    }

    /// Opens a span on a specific (static) registry.
    pub fn enter_on(registry: &'static Registry, name: &str) -> Span {
        if !registry.is_enabled() {
            return Span { state: None };
        }
        let id = registry.alloc_span_id();
        let (parent, path) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (parent, path) = match stack.last() {
                Some(top) => (Some(top.id), format!("{}/{name}", top.path)),
                None => match ADOPTED.with(|a| a.borrow().clone()) {
                    Some(h) => (Some(h.id), format!("{}/{name}", h.path)),
                    None => (None, name.to_string()),
                },
            };
            stack.push(Frame {
                id,
                path: path.clone(),
                child_alloc_bytes: 0,
                child_allocs: 0,
            });
            (parent, path)
        });
        let (bytes_at_enter, allocs_at_enter) = crate::mem::thread_totals();
        Span {
            state: Some(SpanState {
                registry,
                id,
                parent,
                name: name.to_string(),
                path,
                start: Instant::now(),
                bytes_at_enter,
                allocs_at_enter,
                peak_at_enter: crate::mem::window_peak(),
                attrs: Vec::new(),
                events: Vec::new(),
            }),
        }
    }

    /// The full nesting path of this span (`None` when disabled).
    pub fn path(&self) -> Option<&str> {
        self.state.as_ref().map(|s| s.path.as_str())
    }

    /// Attaches a key = value attribute (last write appends; keys are not
    /// deduplicated). No-op while disabled.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if let Some(state) = self.state.as_mut() {
            state.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Records a named point event at the current offset into the span.
    /// No-op while disabled.
    pub fn event(&mut self, name: &str) {
        if let Some(state) = self.state.as_mut() {
            state.events.push(SpanEvent {
                name: name.to_string(),
                at: state.start.elapsed(),
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let wall = state.start.elapsed();
        // This thread's allocation delta over the span covers self plus
        // same-thread children; subtracting the child frames' deltas
        // leaves self attribution. Cross-thread (adopted) children keep
        // their own deltas, so nothing is double-counted — subtree sums
        // stay consistent at any thread count.
        let (bytes_now, allocs_now) = crate::mem::thread_totals();
        let delta_bytes = bytes_now.saturating_sub(state.bytes_at_enter);
        let delta_allocs = allocs_now.saturating_sub(state.allocs_at_enter);
        let peak_growth = crate::mem::window_peak().saturating_sub(state.peak_at_enter);
        let (child_bytes, child_allocs) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop up to and including this span's frame; tolerates
            // out-of-order drops without panicking.
            let children = match stack.iter().rposition(|f| f.id == state.id) {
                Some(pos) => {
                    let own = (stack[pos].child_alloc_bytes, stack[pos].child_allocs);
                    stack.truncate(pos);
                    own
                }
                None => (0, 0),
            };
            if let Some(parent) = stack.last_mut() {
                parent.child_alloc_bytes += delta_bytes;
                parent.child_allocs += delta_allocs;
            }
            children
        });
        state.registry.record_span(
            SpanData {
                id: state.id,
                parent: state.parent,
                name: state.name,
                path: state.path,
                thread: thread_index(),
                start: std::time::Duration::ZERO, // set from epoch by the registry
                wall,
                alloc_bytes: delta_bytes.saturating_sub(child_bytes),
                allocs: delta_allocs.saturating_sub(child_allocs),
                peak_growth_bytes: peak_growth,
                attrs: state.attrs,
                events: state.events,
            },
            state.start,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global registry; serialise them.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn nested_spans_record_paths() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _a = Span::enter("outer");
            {
                let _b = Span::enter("inner");
            }
            let _c = Span::enter("inner");
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        assert_eq!(snap.spans["outer"].0, 1);
        assert_eq!(snap.spans["outer/inner"].0, 2);
    }

    #[test]
    fn nested_spans_link_by_id() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _a = Span::enter("outer");
            let _b = Span::enter("inner");
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        let outer = snap.span_tree.iter().find(|s| s.path == "outer").unwrap();
        let inner = snap
            .span_tree
            .iter()
            .find(|s| s.path == "outer/inner")
            .unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.name, "inner");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        let mut s = Span::enter("ghost");
        assert!(s.path().is_none());
        s.attr("k", 1u64);
        s.event("e");
        drop(s);
        assert!(reg.snapshot().spans.is_empty());
        assert!(current_handoff().is_none());
    }

    #[test]
    fn sibling_spans_share_parent_path() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _p = Span::enter("pipeline");
            {
                let _s1 = Span::enter("s1");
            }
            {
                let _s2 = Span::enter("s2");
            }
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        assert!(snap.spans.contains_key("pipeline/s1"));
        assert!(snap.spans.contains_key("pipeline/s2"));
    }

    #[test]
    fn attrs_and_events_survive_to_snapshot() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let mut s = Span::enter("work");
            s.attr("rows", 128u64);
            s.attr("ratio", 0.5f64);
            s.attr("mode", "batch");
            s.event("halfway");
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        let s = &snap.span_tree[0];
        assert_eq!(s.attr("rows"), Some(&AttrValue::U64(128)));
        assert_eq!(s.attr("ratio"), Some(&AttrValue::F64(0.5)));
        assert_eq!(s.attr("mode"), Some(&AttrValue::Str("batch".into())));
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].name, "halfway");
    }

    #[test]
    fn adopted_spans_parent_across_threads() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _stage = Span::enter("stage");
            let handoff = current_handoff().expect("span open, registry enabled");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _adopt = handoff.adopt();
                    let _w = Span::enter("worker");
                    let _inner = Span::enter("step");
                });
            });
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        let stage = snap.span_tree.iter().find(|s| s.path == "stage").unwrap();
        let worker = snap
            .span_tree
            .iter()
            .find(|s| s.path == "stage/worker")
            .unwrap();
        let step = snap
            .span_tree
            .iter()
            .find(|s| s.path == "stage/worker/step")
            .unwrap();
        assert_eq!(worker.parent, Some(stage.id));
        assert_eq!(step.parent, Some(worker.id));
        assert_ne!(worker.thread, stage.thread);
        // Top-level aggregation is unchanged: only "stage" is a root.
        assert_eq!(
            snap.span_tree.iter().filter(|s| s.parent.is_none()).count(),
            1
        );
    }

    #[test]
    fn handoff_chains_through_nested_dispatch() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _stage = Span::enter("stage");
            let outer = current_handoff().expect("span open");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    // Outer worker adopts but opens no span of its own —
                    // exactly what a dispatch-only parallel layer does.
                    let _adopt = outer.adopt();
                    let inner =
                        current_handoff().expect("adoption must re-export as the current handoff");
                    std::thread::scope(|scope2| {
                        scope2.spawn(|| {
                            let _adopt2 = inner.adopt();
                            let _leaf = Span::enter("leaf");
                        });
                    });
                });
            });
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        // Two levels of worker threads down, the leaf still roots to the
        // dispatching stage instead of becoming a disconnected root.
        assert!(snap.spans.contains_key("stage/leaf"));
        assert_eq!(
            snap.span_tree.iter().filter(|s| s.parent.is_none()).count(),
            1
        );
    }

    #[test]
    fn alloc_deltas_attribute_self_vs_children() {
        let _guard = LOCK.lock().unwrap();
        // Also drives the process-global mem counters (always span LOCK
        // first, then the mem lock — same order everywhere).
        let _mem = crate::MEM_TEST_LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _outer = Span::enter("outer");
            crate::mem::on_alloc(1000); // outer self
            {
                let _inner = Span::enter("inner");
                crate::mem::on_alloc(300); // inner self
            }
            crate::mem::on_alloc(50); // outer self, after the child closed
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        let outer = snap.span_tree.iter().find(|s| s.path == "outer").unwrap();
        let inner = snap
            .span_tree
            .iter()
            .find(|s| s.path == "outer/inner")
            .unwrap();
        assert_eq!(inner.alloc_bytes, 300);
        assert_eq!(inner.allocs, 1);
        // The child's 300 bytes are subtracted from the parent's delta.
        assert_eq!(outer.alloc_bytes, 1050);
        assert_eq!(outer.allocs, 2);
    }

    #[test]
    fn cross_thread_worker_spans_carry_their_own_deltas() {
        let _guard = LOCK.lock().unwrap();
        let _mem = crate::MEM_TEST_LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _stage = Span::enter("stage");
            crate::mem::on_alloc(500);
            let handoff = current_handoff().expect("span open");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _adopt = handoff.adopt();
                    let _w = Span::enter("worker");
                    crate::mem::on_alloc(200);
                });
            });
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        let stage = snap.span_tree.iter().find(|s| s.path == "stage").unwrap();
        let worker = snap
            .span_tree
            .iter()
            .find(|s| s.path == "stage/worker")
            .unwrap();
        // The worker allocated on its own thread: its bytes show up under
        // its own path and are NOT double-counted in the dispatcher's
        // self figure (subtree sum = 700, exactly what was allocated).
        assert_eq!(worker.alloc_bytes, 200);
        assert_eq!(stage.alloc_bytes, 500);
    }

    #[test]
    fn adopt_guard_restores_previous_state() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _a = Span::enter("a");
            let ha = current_handoff().unwrap();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    {
                        let _adopt = ha.adopt();
                        let _w = Span::enter("w1");
                    }
                    // Guard dropped: a fresh span is a root again.
                    let _w2 = Span::enter("w2");
                });
            });
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        assert!(snap.spans.contains_key("a/w1"));
        assert!(snap.spans.contains_key("w2"));
        let w2 = snap.span_tree.iter().find(|s| s.path == "w2").unwrap();
        assert_eq!(w2.parent, None);
    }
}
