//! RAII stage timers with nesting.
//!
//! ```
//! let reg = icn_obs::global();
//! reg.enable();
//! {
//!     let _outer = icn_obs::Span::enter("stage2_cluster");
//!     let _inner = icn_obs::Span::enter("condensed");
//!     // ... work ...
//! } // both spans record their wall time on drop
//! let snap = reg.snapshot();
//! assert!(snap.spans.contains_key("stage2_cluster/condensed"));
//! reg.disable();
//! reg.reset();
//! ```
//!
//! Nesting is tracked per thread: a span entered while another is open on
//! the same thread records under the parent's path joined with `/`. When
//! the global registry is disabled, [`Span::enter`] is a no-op that takes
//! no timestamp and touches no thread-local state.

use crate::registry::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An RAII timer that records its wall time into the global registry when
/// dropped. Create with [`Span::enter`]; hold it for the duration of the
/// stage (`let _span = Span::enter("stage");`).
#[must_use = "a span records on drop; bind it to a variable for the stage's duration"]
pub struct Span {
    state: Option<SpanState>,
}

struct SpanState {
    registry: &'static Registry,
    path: String,
    start: Instant,
}

impl Span {
    /// Opens a span on the global registry. No-op (and allocation-free)
    /// while the registry is disabled.
    pub fn enter(name: &str) -> Span {
        Span::enter_on(crate::global(), name)
    }

    /// Opens a span on a specific (static) registry.
    pub fn enter_on(registry: &'static Registry, name: &str) -> Span {
        if !registry.is_enabled() {
            return Span { state: None };
        }
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span {
            state: Some(SpanState {
                registry,
                path,
                start: Instant::now(),
            }),
        }
    }

    /// The full nesting path of this span (`None` when disabled).
    pub fn path(&self) -> Option<&str> {
        self.state.as_ref().map(|s| s.path.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let wall = state.start.elapsed();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop up to and including this span's path; tolerates
            // out-of-order drops without panicking.
            if let Some(pos) = stack.iter().rposition(|p| *p == state.path) {
                stack.truncate(pos);
            }
        });
        state.registry.record_span(state.path, wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global registry; serialise them.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn nested_spans_record_paths() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _a = Span::enter("outer");
            {
                let _b = Span::enter("inner");
            }
            let _c = Span::enter("inner");
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        assert_eq!(snap.spans["outer"].0, 1);
        assert_eq!(snap.spans["outer/inner"].0, 2);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        let s = Span::enter("ghost");
        assert!(s.path().is_none());
        drop(s);
        assert!(reg.snapshot().spans.is_empty());
    }

    #[test]
    fn sibling_spans_share_parent_path() {
        let _guard = LOCK.lock().unwrap();
        let reg = crate::global();
        reg.reset();
        reg.enable();
        {
            let _p = Span::enter("pipeline");
            {
                let _s1 = Span::enter("s1");
            }
            {
                let _s2 = Span::enter("s2");
            }
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        assert!(snap.spans.contains_key("pipeline/s1"));
        assert!(snap.spans.contains_key("pipeline/s2"));
    }
}
