//! Machine-readable performance reports (`BENCH_*.json`).
//!
//! A [`BenchReport`] freezes a [`crate::Registry`] snapshot into a stable
//! JSON schema (`icn-obs/v3`) that the perf trajectory tooling can diff
//! across PRs:
//!
//! ```json
//! {
//!   "schema": "icn-obs/v3",
//!   "run_id": "all_experiments",
//!   "scale": 1.0,
//!   "env": {"os": "linux", "arch": "x86_64", "threads": 16, "unix_time": 0,
//!           "git_commit": "a9df246...", "scale": 1.0, "chunk": 512},
//!   "stages": [
//!     {"name": "stage2_cluster", "wall_ms": 1234.5,
//!      "counters": {"cluster.merges": 4761, "cluster.pairs": 11335641}}
//!   ],
//!   "spans": [{"path": "stage2_cluster/condensed", "calls": 1,
//!              "wall_ms": 200.0, "self_ms": 200.0}],
//!   "histograms": [{"name": "shap.chunk_ns", "unit": "ns", "count": 64,
//!                   "sum": 123456, "min": 900, "max": 4100,
//!                   "p50": 1920, "p90": 3584, "p99": 4096,
//!                   "buckets": [[61, 10], [70, 54]]}],
//!   "counters": {"cluster.merges": 4761},
//!   "gauges": {"shap.samples_per_sec": 1234.5},
//!   "memory": {
//!     "allocator": {"live_bytes": 104857, "peak_bytes": 412000000,
//!                   "total_alloc_bytes": 900000000,
//!                   "allocs": 120000, "frees": 119000},
//!     "vm_hwm_bytes": 523000000,
//!     "spans": [{"path": "stage2_cluster/condensed", "alloc_bytes": 4096,
//!                "allocs": 1, "peak_growth_bytes": 4096}]
//!   }
//! }
//! ```
//!
//! **Versioning.** Each schema revision is a strict superset of the one
//! before: v2 added the `histograms` section, per-span `self_ms`, and
//! the `git_commit` / `scale` / `chunk` environment fields; v3 adds the
//! optional `memory` section ([`MemoryReport`]) — the allocator window
//! from [`crate::mem`], `VmHWM` where readable, the per-span *self*
//! allocation table, and the `--mem-budget-mb` verdict when a budget was
//! enforced. [`BenchReport::parse`] reads all three versions (older
//! reports simply come back without the newer sections), so the
//! committed `BENCH_pr*.json` trajectory stays diffable end to end. The
//! `memory` section is emitted only when the run actually counted
//! allocations (a [`crate::mem::CountingAlloc`] was installed and the
//! window saw traffic) — reports from uncounted binaries are
//! byte-compatible with v2 modulo the schema tag.
//!
//! Stages are the **top-level** spans of the run (nesting path without a
//! `/`). Counters attach to stages by name prefix — see
//! [`stage_for_counter`] — so tallies flushed from worker threads land on
//! the right stage without any thread-local bookkeeping.

use crate::hist::Histogram;
use crate::json::{counters_obj, Json};
use crate::registry::Snapshot;
use std::collections::BTreeMap;
use std::time::Duration;

/// Schema identifier embedded in every report this crate writes.
pub const SCHEMA: &str = "icn-obs/v3";

/// The previous schema identifier; [`BenchReport::parse`] still reads it.
pub const SCHEMA_V2: &str = "icn-obs/v2";

/// The original schema identifier; [`BenchReport::parse`] still reads it.
pub const SCHEMA_V1: &str = "icn-obs/v1";

/// Schema identifier for a multi-configuration report *set* — the file
/// `icn <cmd> --threads-sweep 1,2 --metrics-out` writes: one
/// [`BenchReport`] per worker-thread count, produced by a single
/// invocation so every run shares the binary, dataset and machine state.
pub const SET_SCHEMA: &str = "icn-bench-set/1";

/// The five pipeline stages of `IcnStudy::run`, in execution order. The
/// observability tests pin the stage set of a metered pipeline run to
/// exactly this list.
pub const PIPELINE_STAGES: [&str; 5] = [
    "stage1_transform",
    "stage2_cluster",
    "stage3_surrogate",
    "stage4_environments",
    "stage5_outdoor",
];

/// The opt-in stage-6 forecast span (`StudyConfig::run_forecast`). Kept
/// out of [`PIPELINE_STAGES`] so the default five-stage pipeline — and
/// every golden pinned to it — is unchanged when forecasting is off.
pub const FORECAST_STAGE: &str = "stage6_forecast";

/// Maps a counter name to the stage it belongs to, by prefix convention:
/// `transform.*` → stage 1, `cluster.*` → stage 2, `forest.*` / `shap.*` →
/// stage 3, `env.*` → stage 4, `outdoor.*` → stage 5, `forecast.*` →
/// stage 6, `synth.*` → `generate`, `probe.*` → `probe_campaign`,
/// `ingest.*` → `ingest`. Unprefixed counters stay global-only.
pub fn stage_for_counter(name: &str) -> Option<&'static str> {
    let prefix = name.split('.').next().unwrap_or("");
    match prefix {
        "transform" => Some(PIPELINE_STAGES[0]),
        "cluster" => Some(PIPELINE_STAGES[1]),
        "forest" | "shap" => Some(PIPELINE_STAGES[2]),
        "env" => Some(PIPELINE_STAGES[3]),
        "outdoor" => Some(PIPELINE_STAGES[4]),
        "forecast" => Some(FORECAST_STAGE),
        "synth" => Some("generate"),
        "probe" => Some("probe_campaign"),
        "ingest" => Some("ingest"),
        _ => None,
    }
}

/// One pipeline stage in a report.
#[derive(Clone, Debug, PartialEq)]
pub struct StageReport {
    /// Stage name (top-level span name).
    pub name: String,
    /// Total wall time of the stage across all calls, in milliseconds.
    pub wall_ms: f64,
    /// Counters attributed to this stage (see [`stage_for_counter`]).
    pub counters: BTreeMap<String, u64>,
}

/// Execution environment fingerprint. v2 makes reports self-describing:
/// besides OS/arch/threads, it records the producing git commit (when the
/// working directory is inside a repository), the run's population scale,
/// and — for ingest runs — the chunk size.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Worker-thread count the run actually used: the `ICN_THREADS`
    /// override when set, otherwise the available hardware parallelism —
    /// the same resolution rule as `icn_stats::par::thread_count` (this
    /// crate is dependency-free, so it reads the variable itself).
    pub threads: usize,
    /// Seconds since the Unix epoch when the report was built.
    pub unix_time: u64,
    /// Git commit hash of the producing tree, when discoverable by
    /// walking up from the working directory (no subprocess is spawned —
    /// `.git/HEAD` and, if needed, `packed-refs` are read directly).
    pub git_commit: Option<String>,
    /// Population scale of the run, duplicated from the report root so
    /// the environment block alone identifies the configuration.
    pub scale: f64,
    /// Ingest chunk size in records, when the producing harness streams
    /// (`icn ingest --chunk N`); `None` for batch runs.
    pub chunk: Option<u64>,
}

impl EnvInfo {
    /// Captures the current environment. `scale` starts at 0.0 and is
    /// overwritten by [`BenchReport::build`]; `chunk` stays `None` unless
    /// the harness sets it.
    pub fn capture() -> EnvInfo {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = std::env::var("ICN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(hw);
        EnvInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads,
            unix_time: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            git_commit: detect_git_commit(),
            scale: 0.0,
            chunk: None,
        }
    }
}

/// Resolves the current git commit hash by reading `.git/HEAD` (and
/// following one level of `ref:` indirection through loose refs or
/// `packed-refs`), walking up from the current directory. Returns `None`
/// outside a repository or on any read failure — environment capture must
/// never fail a run.
pub fn detect_git_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return read_git_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn read_git_head(git: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    match head.strip_prefix("ref: ") {
        None => validate_hash(head),
        Some(refname) => {
            let refname = refname.trim();
            if let Ok(loose) = std::fs::read_to_string(git.join(refname)) {
                return validate_hash(loose.trim());
            }
            let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
            for line in packed.lines() {
                let line = line.trim();
                if line.starts_with('#') || line.starts_with('^') {
                    continue;
                }
                if let Some((hash, name)) = line.split_once(' ') {
                    if name.trim() == refname {
                        return validate_hash(hash);
                    }
                }
            }
            None
        }
    }
}

fn validate_hash(s: &str) -> Option<String> {
    let ok = s.len() >= 7 && s.len() <= 64 && s.chars().all(|c| c.is_ascii_hexdigit());
    if ok {
        Some(s.to_string())
    } else {
        None
    }
}

/// Per-span *self* allocation attribution in a report's memory section —
/// one row of the `icn obs mem` treetable. Cumulative figures are
/// derived by summing self bytes over a path's subtree (path-prefix sum).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanAlloc {
    /// Self allocation bytes (see [`crate::SpanData::alloc_bytes`]),
    /// summed over all occurrences of the path.
    pub bytes: u64,
    /// Self allocation count, summed over all occurrences.
    pub allocs: u64,
    /// Largest single-occurrence peak contribution
    /// ([`crate::SpanData::peak_growth_bytes`]) — max, not sum: peaks
    /// are high-water marks.
    pub peak_growth_bytes: u64,
}

/// The v3 `memory` section: the allocator window totals, optional OS
/// high-water mark, the per-span allocation table, and — when the run
/// enforced `--mem-budget-mb` — the budget and its verdict. Present only
/// when the producing binary counted allocations (see [`crate::mem`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemoryReport {
    /// Net bytes allocated minus freed over the metered window (signed:
    /// pre-window allocations freed inside the window drive it negative).
    pub live_bytes: i64,
    /// High-water mark of the window's net balance — the number the
    /// `--max-peak-ratio` diff gate and `--mem-budget-mb` enforce.
    pub peak_bytes: u64,
    /// Cumulative bytes requested in the window (allocation churn).
    pub total_alloc_bytes: u64,
    /// Allocation count in the window.
    pub total_allocs: u64,
    /// Deallocation count in the window.
    pub total_frees: u64,
    /// `VmHWM` from `/proc/self/status`, when readable (Linux). Whole
    /// process lifetime, not windowed — context, not a gate.
    pub vm_hwm_bytes: Option<u64>,
    /// The enforced memory budget in MiB, when the run had one.
    pub budget_mb: Option<u64>,
    /// `"ok"` or `"breached"`, when a budget was enforced.
    pub budget_verdict: Option<String>,
    /// Per-path self allocation attribution (threads-advisory — see
    /// [`crate::mem`]; canonical at `ICN_THREADS=1`).
    pub spans: BTreeMap<String, SpanAlloc>,
}

impl MemoryReport {
    /// Whether the run breached its enforced budget.
    pub fn breached(&self) -> bool {
        self.budget_verdict.as_deref() == Some("breached")
    }
}

/// A frozen, exportable run report. See the module docs for the schema.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Free-form identifier of the producing harness (e.g. binary name).
    pub run_id: String,
    /// Population scale of the run (1.0 = the paper's 4,762 antennas).
    pub scale: f64,
    /// Environment fingerprint.
    pub env: EnvInfo,
    /// Per-stage wall time and counters, in stage-name order.
    pub stages: Vec<StageReport>,
    /// All spans by nesting path: `(calls, total wall)`.
    pub spans: BTreeMap<String, (u64, Duration)>,
    /// Log-bucketed histograms by name (v2; empty when parsed from v1).
    pub histograms: BTreeMap<String, Histogram>,
    /// All counters, unattributed.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges (throughputs such as `shap.samples_per_sec`
    /// and `forest.predict_rows_per_sec`).
    pub gauges: BTreeMap<String, f64>,
    /// The v3 memory section; `None` when the producing binary did not
    /// count allocations (or the report predates v3).
    pub memory: Option<MemoryReport>,
}

impl BenchReport {
    /// Builds a report from a registry snapshot.
    pub fn build(snapshot: &Snapshot, run_id: &str, scale: f64) -> BenchReport {
        let mut stages: BTreeMap<String, StageReport> = BTreeMap::new();
        for (path, &(_calls, wall)) in &snapshot.spans {
            if path.contains('/') {
                continue; // nested span, not a stage
            }
            let stage = stages.entry(path.clone()).or_insert_with(|| StageReport {
                name: path.clone(),
                wall_ms: 0.0,
                counters: BTreeMap::new(),
            });
            stage.wall_ms += wall.as_secs_f64() * 1e3;
        }
        for (name, &value) in &snapshot.counters {
            if let Some(stage_name) = stage_for_counter(name) {
                if let Some(stage) = stages.get_mut(stage_name) {
                    stage.counters.insert(name.clone(), value);
                }
            }
        }
        let mut env = EnvInfo::capture();
        env.scale = scale;
        // A memory section is meaningful only when the running binary
        // installed a counting allocator and the window saw traffic;
        // `allocs == 0` otherwise, and the section is omitted so reports
        // from uncounted binaries stay v2-shaped.
        let mem = crate::mem::stats();
        let memory = (mem.allocs > 0).then(|| MemoryReport {
            live_bytes: mem.live_bytes,
            peak_bytes: mem.peak_bytes,
            total_alloc_bytes: mem.total_alloc_bytes,
            total_allocs: mem.allocs,
            total_frees: mem.frees,
            vm_hwm_bytes: crate::mem::vm_hwm_bytes(),
            budget_mb: None,
            budget_verdict: None,
            spans: crate::trace::alloc_by_path(&snapshot.span_tree)
                .into_iter()
                .map(|(path, (bytes, allocs, peak))| {
                    (
                        path,
                        SpanAlloc {
                            bytes,
                            allocs,
                            peak_growth_bytes: peak,
                        },
                    )
                })
                .collect(),
        });
        BenchReport {
            run_id: run_id.to_string(),
            scale,
            env,
            stages: stages.into_values().collect(),
            spans: snapshot.spans.clone(),
            histograms: snapshot.histograms.clone(),
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            memory,
        }
    }

    /// Renders the report as a pretty-printed JSON document.
    pub fn to_json(&self) -> Json {
        let stages: Vec<Json> = self
            .stages
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(&s.name)),
                    ("wall_ms", Json::num(s.wall_ms)),
                    ("counters", counters_obj(&s.counters)),
                ])
            })
            .collect();
        let self_ms = crate::trace::self_times(&self.spans);
        let spans: Vec<Json> = self
            .spans
            .iter()
            .map(|(path, &(calls, wall))| {
                let own = self_ms
                    .get(path)
                    .map(|&(_, _, own)| own.as_secs_f64() * 1e3)
                    .unwrap_or(0.0);
                Json::obj(vec![
                    ("path", Json::str(path)),
                    ("calls", Json::num(calls as f64)),
                    ("wall_ms", Json::num(wall.as_secs_f64() * 1e3)),
                    ("self_ms", Json::num(own)),
                ])
            })
            .collect();
        let histograms: Vec<Json> = self
            .histograms
            .iter()
            .map(|(name, h)| hist_to_json(name, h))
            .collect();
        let mut env_fields = vec![
            ("os", Json::str(&self.env.os)),
            ("arch", Json::str(&self.env.arch)),
            ("threads", Json::num(self.env.threads as f64)),
            ("unix_time", Json::num(self.env.unix_time as f64)),
            ("scale", Json::num(self.env.scale)),
        ];
        if let Some(commit) = &self.env.git_commit {
            env_fields.push(("git_commit", Json::str(commit)));
        }
        if let Some(chunk) = self.env.chunk {
            env_fields.push(("chunk", Json::num(chunk as f64)));
        }
        let mut fields = vec![
            ("schema", Json::str(SCHEMA)),
            ("run_id", Json::str(&self.run_id)),
            ("scale", Json::num(self.scale)),
            ("env", Json::obj(env_fields)),
            ("stages", Json::Arr(stages)),
            ("spans", Json::Arr(spans)),
            ("histograms", Json::Arr(histograms)),
            ("counters", counters_obj(&self.counters)),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v)))
                        .collect(),
                ),
            ),
        ];
        if let Some(mem) = &self.memory {
            fields.push(("memory", memory_to_json(mem)));
        }
        Json::obj(fields)
    }

    /// Writes the pretty JSON rendering to `path`.
    pub fn write_to_file(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }

    /// Parses a report back from its JSON rendering, validating the schema
    /// tag (`icn-obs/v2` or the older `icn-obs/v1`) and required fields.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        BenchReport::from_doc(&Json::parse(text)?)
    }

    /// Parses a report from an already-decoded JSON document (one entry
    /// of a [`BenchReportSet`], or a whole legacy single-report file).
    fn from_doc(doc: &Json) -> Result<BenchReport, String> {
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some(SCHEMA) && schema != Some(SCHEMA_V2) && schema != Some(SCHEMA_V1) {
            return Err(format!(
                "missing or unknown schema tag (want {SCHEMA}, {SCHEMA_V2} or {SCHEMA_V1})"
            ));
        }
        let run_id = doc
            .get("run_id")
            .and_then(Json::as_str)
            .ok_or("missing run_id")?
            .to_string();
        let scale = doc
            .get("scale")
            .and_then(Json::as_f64)
            .ok_or("missing scale")?;
        let env_doc = doc.get("env").ok_or("missing env")?;
        let env = EnvInfo {
            os: env_doc
                .get("os")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            arch: env_doc
                .get("arch")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            threads: env_doc.get("threads").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            unix_time: env_doc
                .get("unix_time")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
            git_commit: env_doc
                .get("git_commit")
                .and_then(Json::as_str)
                .map(str::to_string),
            // v1 reports carry scale only at the root; mirror it in.
            scale: env_doc.get("scale").and_then(Json::as_f64).unwrap_or(scale),
            chunk: env_doc
                .get("chunk")
                .and_then(Json::as_f64)
                .map(|c| c as u64),
        };
        let mut stages = Vec::new();
        for s in doc
            .get("stages")
            .and_then(Json::as_arr)
            .ok_or("missing stages")?
        {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or("stage missing name")?
                .to_string();
            let wall_ms = s
                .get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or("stage missing wall_ms")?;
            let mut counters = BTreeMap::new();
            if let Some(entries) = s.get("counters").and_then(Json::entries) {
                for (k, v) in entries {
                    counters.insert(k.clone(), v.as_f64().ok_or("non-numeric counter")? as u64);
                }
            }
            stages.push(StageReport {
                name,
                wall_ms,
                counters,
            });
        }
        let mut spans = BTreeMap::new();
        if let Some(items) = doc.get("spans").and_then(Json::as_arr) {
            for s in items {
                let path = s
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or("span missing path")?;
                let calls = s.get("calls").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let wall_ms = s.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                spans.insert(
                    path.to_string(),
                    (calls, Duration::from_secs_f64(wall_ms / 1e3)),
                );
            }
        }
        // Absent in v1 reports — optional.
        let mut histograms = BTreeMap::new();
        if let Some(items) = doc.get("histograms").and_then(Json::as_arr) {
            for h in items {
                let (name, hist) = hist_from_json(h)?;
                histograms.insert(name, hist);
            }
        }
        let mut counters = BTreeMap::new();
        if let Some(entries) = doc.get("counters").and_then(Json::entries) {
            for (k, v) in entries {
                counters.insert(k.clone(), v.as_f64().ok_or("non-numeric counter")? as u64);
            }
        }
        // Absent in pre-gauge reports (e.g. BENCH_baseline.json) — optional.
        let mut gauges = BTreeMap::new();
        if let Some(entries) = doc.get("gauges").and_then(Json::entries) {
            for (k, v) in entries {
                gauges.insert(k.clone(), v.as_f64().ok_or("non-numeric gauge")?);
            }
        }
        // Absent in v1/v2 reports and in v3 reports from uncounted
        // binaries — optional.
        let memory = match doc.get("memory") {
            Some(m) => Some(memory_from_json(m)?),
            None => None,
        };
        Ok(BenchReport {
            run_id,
            scale,
            env,
            stages,
            spans,
            histograms,
            counters,
            gauges,
            memory,
        })
    }

    /// The stage with the given name, if present.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// An ordered collection of reports from one invocation — one per
/// worker-thread count when produced by `--threads-sweep`. The JSON
/// rendering (`icn-bench-set/1`) wraps the individual `icn-obs/v2`
/// documents verbatim:
///
/// ```json
/// {"schema": "icn-bench-set/1", "reports": [{...}, {...}]}
/// ```
///
/// [`BenchReportSet::parse`] also accepts a legacy single-report file and
/// wraps it as a one-element set, so every consumer (`icn obs diff`,
/// trajectory tooling) reads old `BENCH_pr*.json` baselines and new sweep
/// files through one entry point.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReportSet {
    /// Member reports, in production order (ascending thread count for
    /// `--threads-sweep` output).
    pub reports: Vec<BenchReport>,
}

impl BenchReportSet {
    /// Renders the set as a pretty-printed JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(SET_SCHEMA)),
            (
                "reports",
                Json::Arr(self.reports.iter().map(BenchReport::to_json).collect()),
            ),
        ])
    }

    /// Writes the pretty JSON rendering to `path`.
    pub fn write_to_file(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }

    /// Parses a set file — or a legacy single report, returned as a
    /// one-element set. A set with zero reports is rejected: it carries
    /// no information and would silently pass every diff gate.
    pub fn parse(text: &str) -> Result<BenchReportSet, String> {
        let doc = Json::parse(text)?;
        if doc.get("schema").and_then(Json::as_str) == Some(SET_SCHEMA) {
            let mut reports = Vec::new();
            for entry in doc
                .get("reports")
                .and_then(Json::as_arr)
                .ok_or("report set missing reports array")?
            {
                reports.push(BenchReport::from_doc(entry)?);
            }
            if reports.is_empty() {
                return Err("report set has no reports".into());
            }
            return Ok(BenchReportSet { reports });
        }
        Ok(BenchReportSet {
            reports: vec![BenchReport::from_doc(&doc)?],
        })
    }

    /// The member report recorded at the given worker-thread count.
    pub fn by_threads(&self, threads: usize) -> Option<&BenchReport> {
        self.reports.iter().find(|r| r.env.threads == threads)
    }
}

/// Pairs a baseline set against a candidate set for diffing: when both
/// sides are single reports the two are compared directly (the legacy
/// `icn obs diff a.json b.json` contract); otherwise reports are matched
/// on the (`env.threads`, `scale`) configuration key, in baseline order —
/// so a multi-scale, multi-thread sweep diffs like-for-like, and a
/// pre-sweep single baseline gates exactly its own configuration of a
/// sweep file. Returns the matched pairs; configurations present on only
/// one side are dropped — an empty result means the files have no
/// comparable configuration.
pub fn pair_reports<'a>(
    a: &'a BenchReportSet,
    b: &'a BenchReportSet,
) -> Vec<(&'a BenchReport, &'a BenchReport)> {
    if a.reports.len() == 1 && b.reports.len() == 1 {
        return vec![(&a.reports[0], &b.reports[0])];
    }
    let matching = |base: &BenchReport| {
        b.reports
            .iter()
            .find(|r| r.env.threads == base.env.threads && (r.scale - base.scale).abs() < 1e-12)
    };
    a.reports
        .iter()
        .filter_map(|base| matching(base).map(|cand| (base, cand)))
        .collect()
}

/// Renders the v3 `memory` section. All byte counts are JSON numbers —
/// exact below 2^53, i.e. up to 8 PiB, far beyond any real window.
fn memory_to_json(mem: &MemoryReport) -> Json {
    let allocator = Json::obj(vec![
        ("live_bytes", Json::num(mem.live_bytes as f64)),
        ("peak_bytes", Json::num(mem.peak_bytes as f64)),
        ("total_alloc_bytes", Json::num(mem.total_alloc_bytes as f64)),
        ("allocs", Json::num(mem.total_allocs as f64)),
        ("frees", Json::num(mem.total_frees as f64)),
    ]);
    let mut fields = vec![("allocator", allocator)];
    if let Some(hwm) = mem.vm_hwm_bytes {
        fields.push(("vm_hwm_bytes", Json::num(hwm as f64)));
    }
    if let Some(budget) = mem.budget_mb {
        fields.push(("budget_mb", Json::num(budget as f64)));
    }
    if let Some(verdict) = &mem.budget_verdict {
        fields.push(("budget_verdict", Json::str(verdict)));
    }
    let spans: Vec<Json> = mem
        .spans
        .iter()
        .map(|(path, a)| {
            Json::obj(vec![
                ("path", Json::str(path)),
                ("alloc_bytes", Json::num(a.bytes as f64)),
                ("allocs", Json::num(a.allocs as f64)),
                ("peak_growth_bytes", Json::num(a.peak_growth_bytes as f64)),
            ])
        })
        .collect();
    fields.push(("spans", Json::Arr(spans)));
    Json::obj(fields)
}

fn memory_from_json(doc: &Json) -> Result<MemoryReport, String> {
    let alloc = doc.get("allocator").ok_or("memory missing allocator")?;
    let num = |d: &Json, key: &str| d.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let mut spans = BTreeMap::new();
    if let Some(items) = doc.get("spans").and_then(Json::as_arr) {
        for s in items {
            let path = s
                .get("path")
                .and_then(Json::as_str)
                .ok_or("memory span missing path")?;
            spans.insert(
                path.to_string(),
                SpanAlloc {
                    bytes: num(s, "alloc_bytes") as u64,
                    allocs: num(s, "allocs") as u64,
                    peak_growth_bytes: num(s, "peak_growth_bytes") as u64,
                },
            );
        }
    }
    Ok(MemoryReport {
        live_bytes: num(alloc, "live_bytes") as i64,
        peak_bytes: num(alloc, "peak_bytes") as u64,
        total_alloc_bytes: num(alloc, "total_alloc_bytes") as u64,
        total_allocs: num(alloc, "allocs") as u64,
        total_frees: num(alloc, "frees") as u64,
        vm_hwm_bytes: doc
            .get("vm_hwm_bytes")
            .and_then(Json::as_f64)
            .map(|v| v as u64),
        budget_mb: doc
            .get("budget_mb")
            .and_then(Json::as_f64)
            .map(|v| v as u64),
        budget_verdict: doc
            .get("budget_verdict")
            .and_then(Json::as_str)
            .map(str::to_string),
        spans,
    })
}

/// Renders one histogram as its v2 JSON object. Quantiles are included
/// for human readers and dashboards; [`hist_from_json`] recomputes them
/// from the buckets, which are the source of truth. `sum` is rendered as
/// a JSON number — exact below 2^53, which covers > 100 days of
/// nanoseconds.
fn hist_to_json(name: &str, h: &Histogram) -> Json {
    let buckets: Vec<Json> = h
        .nonzero_buckets()
        .map(|(idx, c)| Json::Arr(vec![Json::num(idx as f64), Json::num(c as f64)]))
        .collect();
    Json::obj(vec![
        ("name", Json::str(name)),
        ("unit", Json::str("ns")),
        ("count", Json::num(h.count() as f64)),
        ("sum", Json::num(h.sum() as f64)),
        ("min", Json::num(h.min() as f64)),
        ("max", Json::num(h.max() as f64)),
        ("mean", Json::num(h.mean())),
        ("p50", Json::num(h.quantile(0.50) as f64)),
        ("p90", Json::num(h.quantile(0.90) as f64)),
        ("p99", Json::num(h.quantile(0.99) as f64)),
        ("buckets", Json::Arr(buckets)),
    ])
}

fn hist_from_json(doc: &Json) -> Result<(String, Histogram), String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("histogram missing name")?
        .to_string();
    let sum = doc.get("sum").and_then(Json::as_f64).unwrap_or(0.0) as u128;
    let min = doc.get("min").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let max = doc.get("max").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let mut buckets = Vec::new();
    for b in doc
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing buckets")?
    {
        let pair = b.as_arr().ok_or("bucket is not a pair")?;
        if pair.len() != 2 {
            return Err("bucket is not a pair".into());
        }
        let idx = pair[0].as_f64().ok_or("non-numeric bucket index")? as usize;
        let count = pair[1].as_f64().ok_or("non-numeric bucket count")? as u64;
        buckets.push((idx, count));
    }
    Ok((name, Histogram::from_sparse(&buckets, sum, min, max)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.enable();
        r.add_counter("cluster.merges", 99);
        r.add_counter("forest.trees", 30);
        r.add_counter("unprefixed", 1);
        r.set_gauge("shap.samples_per_sec", 321.5);
        r.record_span_parts("stage2_cluster".into(), Duration::from_millis(20));
        r.record_span_parts("stage2_cluster/condensed".into(), Duration::from_millis(5));
        r.record_span_parts("stage3_surrogate".into(), Duration::from_millis(10));
        for v in [900u64, 1500, 2800, 4100] {
            r.record_hist("shap.chunk_ns", v);
        }
        r.snapshot()
    }

    #[test]
    fn stages_are_top_level_spans_with_attributed_counters() {
        let rep = BenchReport::build(&sample_snapshot(), "test", 0.1);
        assert_eq!(rep.stages.len(), 2);
        let s2 = rep.stage("stage2_cluster").unwrap();
        assert_eq!(s2.counters["cluster.merges"], 99);
        assert!((s2.wall_ms - 20.0).abs() < 1.0);
        let s3 = rep.stage("stage3_surrogate").unwrap();
        assert_eq!(s3.counters["forest.trees"], 30);
        // Unprefixed counters stay out of stages but survive globally.
        assert!(rep
            .stages
            .iter()
            .all(|s| !s.counters.contains_key("unprefixed")));
        assert_eq!(rep.counters["unprefixed"], 1);
        // The build stamps the run's scale into the env block.
        assert_eq!(rep.env.scale, 0.1);
    }

    #[test]
    fn json_round_trip_preserves_stages_counters_and_histograms() {
        let rep = BenchReport::build(&sample_snapshot(), "rt", 1.0);
        let back = BenchReport::parse(&rep.to_json().to_pretty()).unwrap();
        assert_eq!(back.run_id, "rt");
        assert_eq!(back.scale, 1.0);
        assert_eq!(back.counters, rep.counters);
        assert_eq!(back.gauges, rep.gauges);
        assert_eq!(back.gauges["shap.samples_per_sec"], 321.5);
        assert_eq!(back.stages.len(), rep.stages.len());
        for (a, b) in back.stages.iter().zip(&rep.stages) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.counters, b.counters);
            assert!((a.wall_ms - b.wall_ms).abs() < 1e-6);
        }
        // Histograms round-trip bit-exactly (buckets + exact aggregates).
        assert_eq!(back.histograms, rep.histograms);
        let h = &back.histograms["shap.chunk_ns"];
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 900);
        assert_eq!(h.max(), 4100);
        // Env extras survive too.
        assert_eq!(back.env.scale, rep.env.scale);
        assert_eq!(back.env.git_commit, rep.env.git_commit);
    }

    #[test]
    fn spans_carry_self_time_in_json() {
        let rep = BenchReport::build(&sample_snapshot(), "self", 1.0);
        let doc = rep.to_json();
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        let s2 = spans
            .iter()
            .find(|s| s.get("path").and_then(Json::as_str) == Some("stage2_cluster"))
            .unwrap();
        // 20ms total, 5ms in the nested condensed span.
        let self_ms = s2.get("self_ms").and_then(Json::as_f64).unwrap();
        assert!((self_ms - 15.0).abs() < 1e-6);
    }

    #[test]
    fn memory_section_builds_and_round_trips() {
        // Drives the process-global allocation window → mem lock.
        let _mem = crate::MEM_TEST_LOCK.lock().unwrap();
        crate::mem::reset_window();
        crate::mem::on_alloc(4096);
        crate::mem::on_free(1024);
        let mut rep = BenchReport::build(&sample_snapshot(), "mem", 1.0);
        crate::mem::reset_window();
        let m = rep.memory.as_mut().expect("window saw traffic");
        assert_eq!(m.peak_bytes, 4096);
        assert_eq!(m.live_bytes, 3072);
        assert_eq!(m.total_alloc_bytes, 4096);
        assert_eq!(m.total_allocs, 1);
        assert_eq!(m.total_frees, 1);
        if cfg!(target_os = "linux") {
            assert!(m.vm_hwm_bytes.is_some());
        }
        // Every snapshot span path appears in the attribution table (all
        // zeros here: record_span_parts carries no allocation data).
        assert!(m.spans.contains_key("stage2_cluster/condensed"));
        // Budget stamps survive the JSON round trip too.
        m.budget_mb = Some(512);
        m.budget_verdict = Some("ok".into());
        let back = BenchReport::parse(&rep.to_json().to_pretty()).unwrap();
        assert_eq!(back.memory, rep.memory);
        assert!(!back.memory.unwrap().breached());
    }

    #[test]
    fn memory_section_is_omitted_when_window_is_empty() {
        let _mem = crate::MEM_TEST_LOCK.lock().unwrap();
        crate::mem::reset_window();
        let rep = BenchReport::build(&sample_snapshot(), "nomem", 1.0);
        assert!(rep.memory.is_none());
        // And the JSON carries no memory key at all — v2-shaped.
        assert!(rep.to_json().get("memory").is_none());
    }

    #[test]
    fn parse_accepts_v2_reports_without_memory() {
        let v2 = r#"{
          "schema": "icn-obs/v2",
          "run_id": "prior",
          "scale": 1.0,
          "env": {"os": "linux", "arch": "x86_64", "threads": 2, "unix_time": 7,
                  "scale": 1.0},
          "stages": [{"name": "stage1_transform", "wall_ms": 12.0, "counters": {}}],
          "spans": [{"path": "stage1_transform", "calls": 1, "wall_ms": 12.0,
                     "self_ms": 12.0}],
          "histograms": [],
          "counters": {},
          "gauges": {}
        }"#;
        let rep = BenchReport::parse(v2).unwrap();
        assert_eq!(rep.run_id, "prior");
        assert!(rep.memory.is_none());
    }

    #[test]
    fn parse_accepts_v1_reports() {
        let v1 = r#"{
          "schema": "icn-obs/v1",
          "run_id": "legacy",
          "scale": 0.5,
          "env": {"os": "linux", "arch": "x86_64", "threads": 4, "unix_time": 7},
          "stages": [{"name": "stage1_transform", "wall_ms": 12.0,
                      "counters": {"transform.live_rows": 3}}],
          "spans": [{"path": "stage1_transform", "calls": 1, "wall_ms": 12.0}],
          "counters": {"transform.live_rows": 3}
        }"#;
        let rep = BenchReport::parse(v1).unwrap();
        assert_eq!(rep.run_id, "legacy");
        assert!(rep.histograms.is_empty());
        assert_eq!(rep.env.git_commit, None);
        assert_eq!(rep.env.chunk, None);
        // Root scale is mirrored into env for v1 inputs.
        assert_eq!(rep.env.scale, 0.5);
        assert_eq!(rep.stage("stage1_transform").unwrap().wall_ms, 12.0);
    }

    #[test]
    fn env_threads_honors_icn_threads_override() {
        std::env::set_var("ICN_THREADS", "3");
        let env = EnvInfo::capture();
        std::env::remove_var("ICN_THREADS");
        assert_eq!(env.threads, 3);
        // Garbage and zero fall back to hardware parallelism.
        std::env::set_var("ICN_THREADS", "0");
        let fallback = EnvInfo::capture();
        std::env::remove_var("ICN_THREADS");
        assert!(fallback.threads >= 1);
    }

    #[test]
    fn git_commit_is_detected_in_this_repository() {
        // The workspace itself is a git repository, so capture from within
        // it yields a plausible hash (hex, >= 7 chars). If the tests ever
        // run from an exported tarball this simply returns None, which is
        // also valid — only assert shape when present.
        if let Some(hash) = detect_git_commit() {
            assert!(hash.len() >= 7);
            assert!(hash.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(BenchReport::parse("{\"schema\": \"other/v9\"}").is_err());
        assert!(BenchReport::parse("not json").is_err());
    }

    fn report_at_threads(threads: usize) -> BenchReport {
        let mut rep = BenchReport::build(&sample_snapshot(), "sweep", 1.0);
        rep.env.threads = threads;
        rep
    }

    #[test]
    fn report_set_round_trips_and_indexes_by_threads() {
        let set = BenchReportSet {
            reports: vec![report_at_threads(1), report_at_threads(2)],
        };
        let back = BenchReportSet::parse(&set.to_json().to_pretty()).unwrap();
        assert_eq!(back.reports.len(), 2);
        assert_eq!(back, set);
        assert_eq!(back.by_threads(2).unwrap().env.threads, 2);
        assert!(back.by_threads(7).is_none());
    }

    #[test]
    fn report_set_parse_accepts_legacy_single_reports() {
        let single = report_at_threads(4);
        let set = BenchReportSet::parse(&single.to_json().to_pretty()).unwrap();
        assert_eq!(set.reports.len(), 1);
        assert_eq!(set.reports[0], single);
        // Empty sets and unknown schemas are rejected.
        assert!(
            BenchReportSet::parse("{\"schema\": \"icn-bench-set/1\", \"reports\": []}").is_err()
        );
        assert!(BenchReportSet::parse("{\"schema\": \"other/v9\"}").is_err());
    }

    #[test]
    fn pairing_matches_on_threads_with_singleton_fallback() {
        let set12 = BenchReportSet {
            reports: vec![report_at_threads(1), report_at_threads(2)],
        };
        let set28 = BenchReportSet {
            reports: vec![report_at_threads(2), report_at_threads(8)],
        };
        let pairs = pair_reports(&set12, &set28);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.env.threads, 2);
        assert_eq!(pairs[0].1.env.threads, 2);
        // Two singletons pair directly even across thread counts — the
        // legacy single-file diff contract.
        let solo1 = BenchReportSet {
            reports: vec![report_at_threads(1)],
        };
        let solo4 = BenchReportSet {
            reports: vec![report_at_threads(4)],
        };
        assert_eq!(pair_reports(&solo1, &solo4).len(), 1);
        // A singleton baseline picks its matching configuration out of a
        // sweep candidate, and misses cleanly when absent.
        let picked = pair_reports(&solo1, &set12);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].1.env.threads, 1);
        assert!(pair_reports(&solo4, &set12).is_empty());
        // The configuration key is (threads, scale): same thread count at
        // a different scale is a different workload, never a pair.
        let mut small = report_at_threads(1);
        small.scale = 0.05;
        small.env.scale = 0.05;
        let mixed = BenchReportSet {
            reports: vec![small, report_at_threads(1)],
        };
        let cross = pair_reports(&mixed, &set12);
        assert_eq!(cross.len(), 1);
        assert_eq!(cross[0].0.scale, 1.0);
    }

    #[test]
    fn counter_prefix_mapping_covers_pipeline() {
        assert_eq!(
            stage_for_counter("transform.live_rows"),
            Some("stage1_transform")
        );
        assert_eq!(stage_for_counter("cluster.pairs"), Some("stage2_cluster"));
        assert_eq!(
            stage_for_counter("shap.tree_walks"),
            Some("stage3_surrogate")
        );
        assert_eq!(stage_for_counter("env.sites"), Some("stage4_environments"));
        assert_eq!(
            stage_for_counter("outdoor.classified"),
            Some("stage5_outdoor")
        );
        assert_eq!(
            stage_for_counter("forecast.clusters"),
            Some("stage6_forecast")
        );
        assert_eq!(stage_for_counter("forecast.clusters"), Some(FORECAST_STAGE));
        assert_eq!(stage_for_counter("synth.antennas"), Some("generate"));
        assert_eq!(stage_for_counter("probe.sessions"), Some("probe_campaign"));
        assert_eq!(stage_for_counter("ingest.records_ok"), Some("ingest"));
        assert_eq!(stage_for_counter("misc"), None);
    }
}
