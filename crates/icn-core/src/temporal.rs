//! Temporal analysis (Section 6, Figures 10–11).
//!
//! The paper plots, per cluster, the hour-by-day heatmap of the
//! **normalised median traffic** across the cluster's antennas over
//! 4–24 January 2023 — both for total traffic (Figure 10) and for selected
//! services (Figure 11). This module synthesises the hourly series of the
//! cluster members (through `icn-synth`, consistently with the totals
//! matrix) and reduces them to those median heatmaps, plus the summary
//! statistics the prose reads off them (commute-peak ratios, strike-day
//! dips, weekend effects, event bursts).

use icn_stats::{normalize, par, summary, Rng};
use icn_synth::traffic::{aggregate_hourly_series, hourly_series_for_window};
use icn_synth::{Antenna, Service, StudyCalendar, Weekday};

/// An hour × day heatmap of normalised median traffic.
#[derive(Clone, Debug)]
pub struct TemporalHeatmap {
    /// The analysis window.
    pub window: StudyCalendar,
    /// `values[day][hour]`, max-normalised to `[0, 1]`.
    pub values: Vec<Vec<f64>>,
    /// How many antennas contributed.
    pub n_antennas: usize,
}

impl TemporalHeatmap {
    /// Flat row of one day.
    pub fn day(&self, d: usize) -> &[f64] {
        &self.values[d]
    }

    /// Mean value at a given hour across all days matching `filter`.
    pub fn mean_at_hour(&self, hour: usize, filter: impl Fn(usize) -> bool) -> f64 {
        let vals: Vec<f64> = self
            .values
            .iter()
            .enumerate()
            .filter(|(d, _)| filter(*d))
            .map(|(_, row)| row[hour])
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            summary::mean(&vals)
        }
    }

    /// Mean over all hours of one day.
    pub fn day_mean(&self, d: usize) -> f64 {
        summary::mean(&self.values[d])
    }

    /// Ratio of commute-hour traffic (07–09 h, 17–19 h) to midday traffic
    /// (11–15 h) on weekdays — ≫ 1 for the orange group, ≈ 1 for red.
    pub fn commute_ratio(&self) -> f64 {
        let weekdays: Vec<usize> = self
            .window
            .iter_days()
            .filter(|(_, date)| {
                !date.weekday().is_weekend() && *date != StudyCalendar::strike_day()
            })
            .map(|(i, _)| i)
            .collect();
        let mean_hours = |hours: &[usize]| -> f64 {
            let mut acc = Vec::new();
            for &d in &weekdays {
                for &h in hours {
                    acc.push(self.values[d][h]);
                }
            }
            if acc.is_empty() {
                0.0
            } else {
                summary::mean(&acc)
            }
        };
        let commute = mean_hours(&[7, 8, 9, 17, 18, 19]);
        let midday = mean_hours(&[11, 12, 13, 14, 15]);
        if midday <= 0.0 {
            f64::INFINITY
        } else {
            commute / midday
        }
    }

    /// Ratio of weekend to weekday daytime traffic.
    pub fn weekend_ratio(&self) -> f64 {
        let daytime = 9..=19;
        let mut wk = Vec::new();
        let mut we = Vec::new();
        for (d, date) in self.window.iter_days() {
            if date == StudyCalendar::strike_day() {
                continue;
            }
            let bucket = if date.weekday().is_weekend() {
                &mut we
            } else {
                &mut wk
            };
            for h in daytime.clone() {
                bucket.push(self.values[d][h]);
            }
        }
        if wk.is_empty() || summary::mean(&wk) <= 0.0 {
            return 0.0;
        }
        summary::mean(&we) / summary::mean(&wk)
    }

    /// Ratio of strike-day traffic to the mean same-weekday traffic
    /// (other Thursdays of the window) — ≪ 1 for Paris transit clusters.
    pub fn strike_dip(&self) -> f64 {
        let strike = StudyCalendar::strike_day();
        let Some(sd) = self.window.day_index(strike) else {
            return 1.0;
        };
        let strike_mean = self.day_mean(sd);
        let peers: Vec<f64> = self
            .window
            .iter_days()
            .filter(|(i, date)| *i != sd && date.weekday() == Weekday::Thu)
            .map(|(i, _)| self.day_mean(i))
            .collect();
        if peers.is_empty() {
            return 1.0;
        }
        let peer_mean = summary::mean(&peers);
        if peer_mean <= 0.0 {
            1.0
        } else {
            strike_mean / peer_mean
        }
    }

    /// The heatmap flattened back into one hourly series (day-major), for
    /// rhythm analysis with [`crate::periodicity`].
    pub fn flat_series(&self) -> Vec<f64> {
        self.values.iter().flatten().copied().collect()
    }

    /// Rhythm profile (lag-24 / lag-168 autocorrelation) of the cluster's
    /// median traffic — diurnal clusters score high, event venues low.
    pub fn rhythm(&self) -> crate::periodicity::Rhythm {
        crate::periodicity::Rhythm::of(&self.flat_series())
    }

    /// Peak-to-median ratio over all cells — large for bursty (event)
    /// clusters, small for diurnal ones.
    pub fn burstiness(&self) -> f64 {
        let flat: Vec<f64> = self.values.iter().flatten().copied().collect();
        let med = summary::median(&flat);
        let max = summary::max(&flat);
        if med <= 0.0 {
            f64::INFINITY
        } else {
            max / med
        }
    }
}

/// Builds the Figure 10 heatmap for one cluster: the per-hour **median over
/// member antennas** of aggregate traffic, max-normalised.
///
/// `member_rows` maps each member antenna to its row of the totals matrix.
pub fn cluster_heatmap(
    members: &[&Antenna],
    member_rows: &[&[f64]],
    services: &[Service],
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> TemporalHeatmap {
    assert_eq!(
        members.len(),
        member_rows.len(),
        "cluster_heatmap: mismatch"
    );
    assert!(!members.is_empty(), "cluster_heatmap: no members");
    let series: Vec<Vec<f64>> = par::map_indexed(members.len(), |i| {
        aggregate_hourly_series(
            members[i],
            services,
            member_rows[i],
            full_period_days,
            window,
            root,
        )
    });
    heatmap_from_series(&series, window)
}

/// Builds the Figure 11 heatmap for one cluster and one service.
pub fn service_heatmap(
    members: &[&Antenna],
    member_totals: &[f64],
    service: &Service,
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> TemporalHeatmap {
    assert_eq!(
        members.len(),
        member_totals.len(),
        "service_heatmap: mismatch"
    );
    assert!(!members.is_empty(), "service_heatmap: no members");
    let series: Vec<Vec<f64>> = par::map_indexed(members.len(), |i| {
        hourly_series_for_window(
            members[i],
            service,
            member_totals[i],
            full_period_days,
            window,
            root,
        )
    });
    heatmap_from_series(&series, window)
}

/// Median across antennas per hour, then max-normalise into day × hour.
fn heatmap_from_series(series: &[Vec<f64>], window: &StudyCalendar) -> TemporalHeatmap {
    let hours = window.num_hours();
    let mut medians = vec![0.0f64; hours];
    let mut scratch = vec![0.0f64; series.len()];
    for (h, m) in medians.iter_mut().enumerate() {
        for (s, row) in scratch.iter_mut().zip(series) {
            *s = row[h];
        }
        *m = summary::median_inplace(&mut scratch);
    }
    let norm = normalize::by_max(&medians);
    let values: Vec<Vec<f64>> = norm.chunks_exact(24).map(|c| c.to_vec()).collect();
    TemporalHeatmap {
        window: window.clone(),
        values,
        n_antennas: series.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Matrix;
    use icn_synth::services::index_of;
    use icn_synth::{Archetype, Dataset, SynthConfig};

    fn small() -> Dataset {
        Dataset::generate(SynthConfig::small())
    }

    fn members_of(d: &Dataset, arch: Archetype) -> (Vec<&Antenna>, Vec<&[f64]>) {
        let mut members = Vec::new();
        let mut rows: Vec<&[f64]> = Vec::new();
        for (i, a) in d.antennas.iter().enumerate() {
            if a.archetype == arch {
                members.push(a);
                rows.push(d.indoor_totals.row(i));
            }
        }
        (members, rows)
    }

    #[test]
    fn commuter_cluster_has_commute_peaks_and_strike_dip() {
        let d = small();
        let (members, rows) = members_of(&d, Archetype::ParisMetro);
        let window = StudyCalendar::temporal_window();
        let hm = cluster_heatmap(&members, &rows, &d.services, 65, &window, d.root_rng());
        assert!(
            hm.commute_ratio() > 1.5,
            "commute ratio {}",
            hm.commute_ratio()
        );
        assert!(hm.strike_dip() < 0.3, "strike dip {}", hm.strike_dip());
        assert!(
            hm.weekend_ratio() < 0.6,
            "weekend ratio {}",
            hm.weekend_ratio()
        );
    }

    #[test]
    fn office_cluster_idle_weekends_flat_day() {
        let d = small();
        let (members, rows) = members_of(&d, Archetype::Workspace);
        let window = StudyCalendar::temporal_window();
        let hm = cluster_heatmap(&members, &rows, &d.services, 65, &window, d.root_rng());
        assert!(
            hm.weekend_ratio() < 0.2,
            "weekend ratio {}",
            hm.weekend_ratio()
        );
        assert!(
            hm.commute_ratio() < 1.5,
            "commute ratio {}",
            hm.commute_ratio()
        );
    }

    #[test]
    fn event_cluster_is_bursty() {
        let d = small();
        let (members, rows) = members_of(&d, Archetype::ProvincialStadium);
        let window = StudyCalendar::temporal_window();
        let hm = cluster_heatmap(&members, &rows, &d.services, 65, &window, d.root_rng());
        let (members_r, rows_r) = members_of(&d, Archetype::RetailHospitality);
        let hm_r = cluster_heatmap(&members_r, &rows_r, &d.services, 65, &window, d.root_rng());
        assert!(
            hm.burstiness() > 2.0 * hm_r.burstiness().min(1e6),
            "stadium burstiness {} vs retail {}",
            hm.burstiness(),
            hm_r.burstiness()
        );
    }

    #[test]
    fn heatmap_shape_and_normalisation() {
        let d = small();
        let (members, rows) = members_of(&d, Archetype::GeneralUse);
        let window = StudyCalendar::temporal_window();
        let hm = cluster_heatmap(&members, &rows, &d.services, 65, &window, d.root_rng());
        assert_eq!(hm.values.len(), 21);
        assert!(hm.values.iter().all(|day| day.len() == 24));
        let max = hm
            .values
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 1.0).abs() < 1e-9, "max {max}");
        assert!(hm
            .values
            .iter()
            .flatten()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn teams_service_heatmap_follows_office_hours() {
        let d = small();
        let (members, _) = members_of(&d, Archetype::Workspace);
        let teams_idx = index_of(&d.services, "Microsoft Teams").unwrap();
        let totals: Vec<f64> = d
            .antennas
            .iter()
            .enumerate()
            .filter(|(_, a)| a.archetype == Archetype::Workspace)
            .map(|(i, _)| d.indoor_totals.get(i, teams_idx))
            .collect();
        let window = StudyCalendar::temporal_window();
        let hm = service_heatmap(
            &members,
            &totals,
            &d.services[teams_idx],
            65,
            &window,
            d.root_rng(),
        );
        // Weekday 11:00 activity far above weekday 22:00.
        let weekday = |d: usize| !hm.window.date(d).weekday().is_weekend();
        let work = hm.mean_at_hour(11, weekday);
        let night = hm.mean_at_hour(22, weekday);
        assert!(work > 3.0 * (night + 1e-9), "work {work} night {night}");
    }

    #[test]
    fn heatmap_from_series_uses_median() {
        // Two antennas: one silent, one loud — median of [0, x] = x/2;
        // with 3 antennas (two silent) the median is 0.
        let window = StudyCalendar::custom(icn_synth::Date::new(2023, 1, 9), 1);
        let loud = vec![2.0; 24];
        let silent = vec![0.0; 24];
        let hm = heatmap_from_series(&[silent.clone(), loud.clone(), silent], &window);
        assert!(hm.values[0].iter().all(|&v| v == 0.0));
        let hm2 = heatmap_from_series(&[loud.clone(), loud], &window);
        assert!(hm2.values[0].iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn matrix_roundtrip_guard() {
        // Guard: totals rows used above must match the matrix dimensions.
        let d = small();
        assert_eq!(d.indoor_totals.cols(), d.services.len());
        let _: &Matrix = &d.indoor_totals;
    }
}
