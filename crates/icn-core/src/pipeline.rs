//! The end-to-end study pipeline.
//!
//! [`IcnStudy::run`] executes the paper's whole analysis on a dataset:
//!
//! 1. filter dead antennas and compute RSCA (Section 4.1);
//! 2. agglomerative Ward clustering, optional Figure 2 k-sweep, cut at
//!    k = 9 plus the coarse k = 6 view (Section 4.2);
//! 3. train the random-forest surrogate on the cluster labels
//!    (Section 5.1.2) and extract the per-cluster SHAP explanations
//!    (Figure 5);
//! 4. mine environments from antenna names and build the
//!    cluster ↔ environment crosstab (Section 5.2, Figures 6–8);
//! 5. classify the outdoor antennas through the surrogate (Section 5.3,
//!    Figure 9).
//!
//! Temporal analysis (Section 6) is exposed separately via
//! [`crate::temporal`] because it synthesises hourly series on demand.

use crate::compare::{classify_outdoor_with, OutdoorComparison};
use crate::config::StudyConfig;
use crate::insights::EnvCrosstab;
use crate::profiles::{cluster_profiles, ClusterProfile};
use crate::rca::{filter_dead_rows, rsca};
use icn_cluster::{
    agglomerate_condensed, max_sample_for_budget, sampled_ward, sweep_k, ClusterPath, Condensed,
    Dendrogram, KQuality, Linkage, MergeHistory, SampledWardConfig,
};
use icn_forest::{RandomForest, SoaForest, TrainSet};
use icn_ingest::IngestResult;
use icn_shap::ClassExplanation;
use icn_stats::Matrix;
use icn_synth::Dataset;

/// All artefacts of one study run.
pub struct IcnStudy {
    /// Configuration used.
    pub config: StudyConfig,
    /// Row indices of the totals matrix that survived dead-row filtering.
    pub live_rows: Vec<usize>,
    /// RSCA feature matrix of the live antennas (N × M).
    pub rsca: Matrix,
    /// Full agglomerative merge history.
    pub history: MergeHistory,
    /// Navigable dendrogram (Figure 3).
    pub dendrogram: Dendrogram,
    /// Figure 2 sweep results (empty when `run_k_sweep` is off).
    pub k_sweep: Vec<KQuality>,
    /// Primary labels at `config.k` (per live antenna).
    pub labels: Vec<usize>,
    /// Coarse labels at `config.k_coarse`.
    pub labels_coarse: Vec<usize>,
    /// Map fine cluster → coarse cluster (the k = 9 → 6 consolidation).
    pub consolidation: Vec<usize>,
    /// Per-cluster mean-RSCA profiles (Figure 4).
    pub profiles: Vec<ClusterProfile>,
    /// The trained surrogate forest.
    pub surrogate: RandomForest,
    /// Surrogate accuracy against the clustering labels.
    pub surrogate_accuracy: f64,
    /// Surrogate out-of-bag accuracy.
    pub surrogate_oob: Option<f64>,
    /// Per-cluster SHAP explanations (Figure 5).
    pub explanations: Vec<ClassExplanation>,
    /// Cluster ↔ environment crosstab (Figures 6–8).
    pub crosstab: EnvCrosstab,
    /// Outdoor classification (Figure 9).
    pub outdoor: OutdoorComparison,
    /// Stage-6 forecasting & anomaly report (`Some` only when
    /// `config.run_forecast` is set; the default pipeline skips it).
    pub forecast: Option<icn_forecast::ForecastReport>,
}

impl IcnStudy {
    /// Fallible entry point: validates the dataset and configuration
    /// before running, reporting data problems as [`crate::StudyError`]
    /// values instead of panics. Prefer this in library consumers; the
    /// panicking [`IcnStudy::run`] is the convenience for examples and
    /// harnesses that control their inputs.
    pub fn try_run(dataset: &Dataset, config: StudyConfig) -> Result<IcnStudy, crate::StudyError> {
        if dataset.num_antennas() == 0 {
            return Err(crate::StudyError::EmptyDataset);
        }
        validate_totals(&dataset.indoor_totals, &config)?;
        Ok(IcnStudy::run(dataset, config))
    }

    /// Runs the pipeline on a **streaming-built** totals matrix: the
    /// `icn-ingest` entry point. The dataset still supplies the antenna
    /// metadata, service catalog and outdoor matrices; `ingest.totals`
    /// replaces `dataset.indoor_totals` as the study's `T`. For a clean
    /// stream the two are bit-identical and so is the whole study.
    pub fn from_ingest(
        dataset: &Dataset,
        ingest: &IngestResult,
        config: StudyConfig,
    ) -> Result<IcnStudy, crate::StudyError> {
        use crate::StudyError;
        if dataset.num_antennas() == 0 {
            return Err(StudyError::EmptyDataset);
        }
        if ingest.totals.shape() != dataset.indoor_totals.shape() {
            let (ir, ic) = ingest.totals.shape();
            let (dr, dc) = dataset.indoor_totals.shape();
            return Err(StudyError::BadConfig(format!(
                "ingest totals are {ir}×{ic} but the dataset is {dr}×{dc}"
            )));
        }
        validate_totals(&ingest.totals, &config)?;
        Ok(IcnStudy::run_on(dataset, &ingest.totals, config))
    }

    /// Runs the full pipeline on a dataset.
    ///
    /// When the global [`icn_obs`] registry is enabled, each of the five
    /// stages below runs under its own top-level span (named
    /// `stage1_transform` … `stage5_outdoor`, the set exported as
    /// [`icn_obs::PIPELINE_STAGES`]) and feeds stage-scoped counters, so a
    /// [`icn_obs::BenchReport`] snapshot covers the whole pipeline.
    pub fn run(dataset: &Dataset, config: StudyConfig) -> IcnStudy {
        IcnStudy::run_on(dataset, &dataset.indoor_totals, config)
    }

    /// The shared pipeline body: `totals` is the `T` matrix to analyse —
    /// `dataset.indoor_totals` for [`IcnStudy::run`], a streaming-built
    /// matrix for [`IcnStudy::from_ingest`].
    fn run_on(dataset: &Dataset, totals: &Matrix, config: StudyConfig) -> IcnStudy {
        let obs = icn_obs::global();

        // 1. Transform.
        let (t_live, live_rows, rsca_m) = {
            let mut span = icn_obs::Span::enter("stage1_transform");
            let (t_live, live_rows) = filter_dead_rows(totals);
            let rsca_m = rsca(&t_live);
            if obs.is_enabled() {
                obs.add_counter("transform.input_rows", totals.rows() as u64);
                obs.add_counter("transform.live_rows", live_rows.len() as u64);
                obs.add_counter("transform.services", rsca_m.cols() as u64);
                span.attr("input_rows", totals.rows() as u64);
                span.attr("live_rows", live_rows.len() as u64);
                icn_obs::obs_log!(
                    Info,
                    "pipeline",
                    "stage1: {} of {} antennas live",
                    live_rows.len(),
                    totals.rows()
                );
            }
            (t_live, live_rows, rsca_m)
        };

        // 2. Cluster.
        let (history, dendrogram, k_sweep, labels, labels_coarse, consolidation, profiles) = {
            let mut span = icn_obs::Span::enter("stage2_cluster");
            span.attr("k", config.k as u64);
            let budget_bytes = config.cluster_budget_mb.saturating_mul(1024 * 1024);
            let path = config.cluster_path.resolve(rsca_m.rows(), budget_bytes);
            let (history, dendrogram, k_sweep, labels, labels_coarse, consolidation) = match path {
                ClusterPath::Exact | ClusterPath::Auto => {
                    let cond = Condensed::from_rows(&rsca_m, Linkage::Ward.base_metric());
                    let history = agglomerate_condensed(&cond, Linkage::Ward);
                    let dendrogram = Dendrogram::from_history(&history);
                    let k_sweep = if config.run_k_sweep {
                        // Quality indices use Euclidean geometry (not the
                        // squared distances Ward works in). Ward's base
                        // metric is SqEuclidean, so the Euclidean matrix is
                        // the entry-wise square root of the one already
                        // computed — no second O(N²·M) pairwise pass.
                        let cond_eucl = cond.sqrt_values();
                        sweep_k(
                            &history,
                            &cond_eucl,
                            config.k_sweep_lo..=config.k_sweep_hi.min(history.n - 1),
                        )
                    } else {
                        Vec::new()
                    };
                    let labels = history.cut(config.k);
                    let labels_coarse = history.cut(config.k_coarse);
                    let consolidation = dendrogram.consolidation(config.k, config.k_coarse);
                    (
                        history,
                        dendrogram,
                        k_sweep,
                        labels,
                        labels_coarse,
                        consolidation,
                    )
                }
                ClusterPath::Sampled => {
                    // Large-N escape hatch: exact Ward on a budget-sized
                    // seeded sample, nearest-centroid extension to the
                    // rest. The hierarchy artefacts (history, dendrogram,
                    // sweep) describe the sample; the labels cover the
                    // full population.
                    let sample = max_sample_for_budget(budget_bytes)
                        .clamp(config.k_sweep_hi + 1, rsca_m.rows());
                    let sw = sampled_ward(
                        &rsca_m,
                        config.k,
                        &SampledWardConfig {
                            sample,
                            seed: config.seed,
                            refine_iters: config.cluster_refine_iters,
                        },
                    );
                    let dendrogram = Dendrogram::from_history(&sw.history);
                    let k_sweep = if config.run_k_sweep {
                        let cond_eucl = sw.sample_condensed.sqrt_values();
                        sweep_k(
                            &sw.history,
                            &cond_eucl,
                            config.k_sweep_lo..=config.k_sweep_hi.min(sw.history.n - 1),
                        )
                    } else {
                        Vec::new()
                    };
                    let consolidation = dendrogram.consolidation(config.k, config.k_coarse);
                    // Coarse labels extend to the population through the
                    // nested fine → coarse map.
                    let labels_coarse: Vec<usize> =
                        sw.labels.iter().map(|&l| consolidation[l]).collect();
                    (
                        sw.history,
                        dendrogram,
                        k_sweep,
                        sw.labels,
                        labels_coarse,
                        consolidation,
                    )
                }
            };
            let profiles = cluster_profiles(&rsca_m, &labels, config.k);
            if obs.is_enabled() {
                obs.add_counter("cluster.k_sweep_points", k_sweep.len() as u64);
                obs.add_counter("cluster.clusters", config.k as u64);
                icn_obs::obs_log!(
                    Info,
                    "pipeline",
                    "stage2: {} merges, cut at k = {}",
                    history.merges.len(),
                    config.k
                );
            }
            (
                history,
                dendrogram,
                k_sweep,
                labels,
                labels_coarse,
                consolidation,
                profiles,
            )
        };

        // 3. Surrogate + SHAP.
        let (surrogate, frozen, surrogate_accuracy, surrogate_oob, explanations) = {
            let mut span = icn_obs::Span::enter("stage3_surrogate");
            span.attr("trees", config.n_trees as u64);
            span.attr("samples", rsca_m.rows() as u64);
            let ts = TrainSet::new(rsca_m.clone(), labels.clone());
            let surrogate = RandomForest::fit(&ts, &config.forest_config());
            // Freeze the fitted forest into its structure-of-arrays form
            // once; training accuracy, the SHAP batch and the stage-5
            // outdoor classification all walk this shared layout.
            let frozen = SoaForest::from_forest(&surrogate);
            let preds = frozen.predict_batch(&ts.x);
            let hits = preds.iter().zip(&ts.y).filter(|(p, y)| p == y).count();
            let surrogate_accuracy = hits as f64 / ts.len() as f64;
            span.attr("accuracy", surrogate_accuracy);
            let surrogate_oob = surrogate.oob_accuracy;
            // One batched SHAP pass shares the per-sample tree walks across
            // all k classes (9x cheaper than explaining class by class).
            let shap_per_class = icn_shap::forest_shap_batch_soa(&frozen, &rsca_m);
            let explanations: Vec<ClassExplanation> = shap_per_class
                .iter()
                .enumerate()
                .map(|(c, shap)| icn_shap::explain_class(shap, &rsca_m, &labels, c))
                .collect();
            (
                surrogate,
                frozen,
                surrogate_accuracy,
                surrogate_oob,
                explanations,
            )
        };

        // 4. Environments.
        let crosstab = {
            let _span = icn_obs::Span::enter("stage4_environments");
            let live_antennas: Vec<icn_synth::Antenna> = live_rows
                .iter()
                .map(|&i| dataset.antennas[i].clone())
                .collect();
            let crosstab = EnvCrosstab::build(&live_antennas, &labels, config.k);
            if obs.is_enabled() {
                obs.add_counter("env.environments", crosstab.env_sizes.len() as u64);
            }
            crosstab
        };

        // 5. Outdoor.
        let outdoor = {
            let _span = icn_obs::Span::enter("stage5_outdoor");
            let outdoor = classify_outdoor_with(&dataset.outdoor_totals, &t_live, &frozen);
            if obs.is_enabled() {
                obs.add_counter("outdoor.antennas", outdoor.predicted.len() as u64);
            }
            outdoor
        };

        // 6. Forecast (opt-in; off by default so the five-stage span set
        // and its goldens are untouched).
        let forecast = if config.run_forecast {
            let mut span = icn_obs::Span::enter(icn_obs::FORECAST_STAGE);
            let live_antennas: Vec<icn_synth::Antenna> = live_rows
                .iter()
                .map(|&i| dataset.antennas[i].clone())
                .collect();
            let rows: Vec<&[f64]> = (0..t_live.rows()).map(|i| t_live.row(i)).collect();
            let window = icn_synth::StudyCalendar::temporal_window();
            let series = icn_forecast::study_cluster_series(
                &live_antennas,
                &rows,
                &labels,
                config.k,
                &dataset.services,
                icn_synth::StudyCalendar::paper_period().num_days(),
                &window,
                dataset.root_rng(),
            );
            let report = icn_forecast::forecast_series(&series, &window, &config.forecast_config());
            if obs.is_enabled() {
                span.attr("clusters", report.clusters.len() as u64);
                span.attr("horizon", report.horizon as u64);
            }
            Some(report)
        } else {
            None
        };

        IcnStudy {
            config,
            live_rows,
            rsca: rsca_m,
            history,
            dendrogram,
            k_sweep,
            labels,
            labels_coarse,
            consolidation,
            profiles,
            surrogate,
            surrogate_accuracy,
            surrogate_oob,
            explanations,
            crosstab,
            outdoor,
            forecast,
        }
    }

    /// Number of live antennas analysed.
    pub fn num_antennas(&self) -> usize {
        self.labels.len()
    }

    /// Size of each primary cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.config.k];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Matches discovered clusters to planted archetypes by majority vote:
    /// `map[discovered_cluster] = archetype_id`. Validation-only helper.
    pub fn cluster_to_archetype(&self, dataset: &Dataset) -> Vec<usize> {
        let planted = dataset.planted_labels();
        let mut votes = vec![vec![0usize; 9]; self.config.k];
        for (pos, &row) in self.live_rows.iter().enumerate() {
            votes[self.labels[pos]][planted[row]] += 1;
        }
        votes
            .into_iter()
            .map(|v| icn_stats::rank::argmax(&v.iter().map(|&x| x as f64).collect::<Vec<_>>()))
            .collect()
    }
}

/// Validates a totals matrix and configuration pair: the shared checks
/// behind [`IcnStudy::try_run`] and [`IcnStudy::from_ingest`].
fn validate_totals(totals: &Matrix, config: &StudyConfig) -> Result<(), crate::StudyError> {
    use crate::StudyError;
    if config.k < 2 {
        return Err(StudyError::BadConfig(format!(
            "k = {} must be ≥ 2",
            config.k
        )));
    }
    if config.k_coarse < 1 || config.k_coarse > config.k {
        return Err(StudyError::BadConfig(format!(
            "k_coarse = {} must be in 1..=k ({})",
            config.k_coarse, config.k
        )));
    }
    if config.n_trees == 0 {
        return Err(StudyError::BadConfig("n_trees = 0".into()));
    }
    if totals.has_non_finite() {
        return Err(StudyError::NonFiniteTraffic);
    }
    if totals.total() <= 0.0 {
        return Err(StudyError::NoTraffic);
    }
    let live = totals.row_sums().iter().filter(|&&s| s > 0.0).count();
    if live < config.k {
        return Err(StudyError::TooFewAntennas { live, k: config.k });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_cluster::adjusted_rand_index;
    use icn_synth::SynthConfig;

    fn run_small() -> (Dataset, IcnStudy) {
        let d = Dataset::generate(SynthConfig::small());
        let s = IcnStudy::run(&d, StudyConfig::fast());
        (d, s)
    }

    #[test]
    fn forecast_stage_is_off_by_default_and_opt_in() {
        let (_, s) = run_small();
        assert!(s.forecast.is_none());

        let d = Dataset::generate(SynthConfig::small());
        let cfg = StudyConfig {
            run_forecast: true,
            ..StudyConfig::fast()
        };
        let s = IcnStudy::run(&d, cfg);
        let report = s.forecast.as_ref().expect("forecast report");
        assert_eq!(report.clusters.len(), cfg.k);
        assert_eq!(report.horizon, cfg.forecast_horizon);
        for c in &report.clusters {
            if c.n_antennas > 0 {
                assert_eq!(c.forecast.len(), cfg.forecast_horizon);
                assert!(c.backtest.naive.mae > 0.0);
            }
        }
        let mean = report.mean_backtest();
        assert!(mean.ets.mae < mean.naive.mae, "{mean:?}");
    }

    #[test]
    fn pipeline_produces_k_clusters() {
        let (_, s) = run_small();
        let sizes = s.cluster_sizes();
        assert_eq!(sizes.len(), 9);
        assert!(sizes.iter().all(|&x| x > 0), "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), s.num_antennas());
    }

    #[test]
    fn clustering_recovers_planted_archetypes() {
        let (d, s) = run_small();
        let planted: Vec<usize> = s.live_rows.iter().map(|&i| d.planted_labels()[i]).collect();
        let ari = adjusted_rand_index(&s.labels, &planted);
        assert!(ari > 0.6, "ARI {ari}");
    }

    #[test]
    fn surrogate_is_faithful() {
        let (_, s) = run_small();
        assert!(s.surrogate_accuracy > 0.95, "acc {}", s.surrogate_accuracy);
        if let Some(oob) = s.surrogate_oob {
            assert!(oob > 0.7, "oob {oob}");
        }
    }

    #[test]
    fn explanations_cover_all_clusters() {
        let (_, s) = run_small();
        assert_eq!(s.explanations.len(), 9);
        for (c, ex) in s.explanations.iter().enumerate() {
            assert_eq!(ex.class, c);
            assert_eq!(ex.influences.len(), 73);
        }
    }

    #[test]
    fn consolidation_maps_fine_to_coarse() {
        let (_, s) = run_small();
        assert_eq!(s.consolidation.len(), 9);
        assert!(s.consolidation.iter().all(|&c| c < 6));
    }

    #[test]
    fn outdoor_distribution_is_concentrated() {
        let (_, s) = run_small();
        let d = &s.outdoor.distribution;
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let (_, share) = s.outdoor.dominant;
        assert!(share > 0.4, "dominant share {share}");
    }

    #[test]
    fn try_run_validates_inputs() {
        use crate::StudyError;
        let d = Dataset::generate(SynthConfig::small().with_scale(0.02));
        // Valid inputs succeed.
        assert!(IcnStudy::try_run(&d, StudyConfig::fast()).is_ok());
        // Bad k.
        let bad_k = StudyConfig {
            k: 1,
            ..StudyConfig::fast()
        };
        assert!(matches!(
            IcnStudy::try_run(&d, bad_k),
            Err(StudyError::BadConfig(_))
        ));
        // Coarse above fine.
        let bad_coarse = StudyConfig {
            k_coarse: 99,
            ..StudyConfig::fast()
        };
        assert!(matches!(
            IcnStudy::try_run(&d, bad_coarse),
            Err(StudyError::BadConfig(_))
        ));
        // NaN traffic.
        let mut poisoned = d.clone();
        poisoned.indoor_totals.set(0, 0, f64::NAN);
        assert_eq!(
            IcnStudy::try_run(&poisoned, StudyConfig::fast()).err(),
            Some(StudyError::NonFiniteTraffic)
        );
        // All-dead matrix.
        let mut silent = d.clone();
        silent.indoor_totals.map_inplace(|_| 0.0);
        assert_eq!(
            IcnStudy::try_run(&silent, StudyConfig::fast()).err(),
            Some(StudyError::NoTraffic)
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let d = Dataset::generate(SynthConfig::small());
        let a = IcnStudy::run(&d, StudyConfig::fast());
        let b = IcnStudy::run(&d, StudyConfig::fast());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.outdoor.predicted, b.outdoor.predicted);
        assert_eq!(a.surrogate_accuracy, b.surrogate_accuracy);
    }
}
