//! Study configuration.

use icn_cluster::Linkage;
use icn_forest::ForestConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the end-to-end study pipeline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of clusters for the primary cut (the paper selects 9).
    pub k: usize,
    /// Coarse cut discussed qualitatively by the paper (6).
    pub k_coarse: usize,
    /// Range of k swept for the Figure 2 quality indices.
    pub k_sweep_lo: usize,
    /// Upper end of the sweep (inclusive).
    pub k_sweep_hi: usize,
    /// Minimum relative drop in both indices for the stopping criterion.
    pub min_rel_drop: f64,
    /// Number of surrogate forest trees (the paper uses 100).
    pub n_trees: usize,
    /// Surrogate training seed.
    pub seed: u64,
    /// Whether to run the Figure 2 sweep (slowest step; the cut at `k`
    /// works without it).
    pub run_k_sweep: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            k: 9,
            k_coarse: 6,
            k_sweep_lo: 2,
            k_sweep_hi: 15,
            min_rel_drop: 0.05,
            n_trees: 100,
            seed: 0x1C9_5EED,
            run_k_sweep: true,
        }
    }
}

impl StudyConfig {
    /// Paper-faithful configuration.
    pub fn paper() -> Self {
        StudyConfig::default()
    }

    /// Faster configuration for tests: fewer trees, no sweep.
    pub fn fast() -> Self {
        StudyConfig {
            n_trees: 30,
            run_k_sweep: false,
            ..StudyConfig::default()
        }
    }

    /// Linkage used by the study (fixed to Ward, as in the paper; the
    /// ablation bench varies it directly through `icn-cluster`).
    pub fn linkage(&self) -> Linkage {
        Linkage::Ward
    }

    /// The surrogate forest configuration.
    pub fn forest_config(&self) -> ForestConfig {
        ForestConfig {
            n_trees: self.n_trees,
            seed: self.seed,
            ..ForestConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = StudyConfig::paper();
        assert_eq!(c.k, 9);
        assert_eq!(c.k_coarse, 6);
        assert_eq!(c.n_trees, 100);
        assert!(c.run_k_sweep);
    }

    #[test]
    fn fast_disables_sweep() {
        let c = StudyConfig::fast();
        assert!(!c.run_k_sweep);
        assert!(c.n_trees < 100);
    }

    #[test]
    fn forest_config_propagates() {
        let c = StudyConfig { n_trees: 7, seed: 3, ..StudyConfig::fast() };
        let f = c.forest_config();
        assert_eq!(f.n_trees, 7);
        assert_eq!(f.seed, 3);
    }

    #[test]
    fn serde_round_trip() {
        let c = StudyConfig::fast();
        let s = serde_json::to_string(&c).unwrap();
        let back: StudyConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back.k, c.k);
        assert_eq!(back.run_k_sweep, c.run_k_sweep);
    }
}
