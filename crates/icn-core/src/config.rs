//! Study configuration.

use icn_cluster::{ClusterPath, Linkage};
use icn_forecast::{ForecastConfig, Model};
use icn_forest::ForestConfig;
use icn_obs::Json;

/// Configuration of the end-to-end study pipeline.
#[derive(Clone, Copy, Debug)]
pub struct StudyConfig {
    /// Number of clusters for the primary cut (the paper selects 9).
    pub k: usize,
    /// Coarse cut discussed qualitatively by the paper (6).
    pub k_coarse: usize,
    /// Range of k swept for the Figure 2 quality indices.
    pub k_sweep_lo: usize,
    /// Upper end of the sweep (inclusive).
    pub k_sweep_hi: usize,
    /// Minimum relative drop in both indices for the stopping criterion.
    pub min_rel_drop: f64,
    /// Number of surrogate forest trees (the paper uses 100).
    pub n_trees: usize,
    /// Surrogate training seed.
    pub seed: u64,
    /// Whether to run the Figure 2 sweep (slowest step; the cut at `k`
    /// works without it).
    pub run_k_sweep: bool,
    /// Stage-2 clustering implementation (`Auto` resolves against the
    /// memory budget; paper-scale populations stay on the exact path).
    pub cluster_path: ClusterPath,
    /// Memory budget in MiB for the stage-2 distance structures; bounds
    /// the sample size on the sampled path and drives `Auto` selection.
    pub cluster_budget_mb: usize,
    /// Centroid-refinement rounds on the sampled path.
    pub cluster_refine_iters: usize,
    /// Whether to run the stage-6 forecasting/anomaly phase. Off by
    /// default: the five-stage pipeline and its goldens stay untouched
    /// unless a consumer opts in (`icn forecast` does).
    pub run_forecast: bool,
    /// Forecast horizon in hours past the temporal window.
    pub forecast_horizon: usize,
    /// Primary forecasting model (all three are always backtested).
    pub forecast_model: Model,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            k: 9,
            k_coarse: 6,
            k_sweep_lo: 2,
            k_sweep_hi: 15,
            min_rel_drop: 0.05,
            n_trees: 100,
            seed: 0x1C9_5EED,
            run_k_sweep: true,
            cluster_path: ClusterPath::Auto,
            cluster_budget_mb: 512,
            cluster_refine_iters: 2,
            run_forecast: false,
            forecast_horizon: 24,
            forecast_model: Model::Ets,
        }
    }
}

impl StudyConfig {
    /// Paper-faithful configuration.
    pub fn paper() -> Self {
        StudyConfig::default()
    }

    /// Faster configuration for tests: fewer trees, no sweep.
    pub fn fast() -> Self {
        StudyConfig {
            n_trees: 30,
            run_k_sweep: false,
            ..StudyConfig::default()
        }
    }

    /// Linkage used by the study (fixed to Ward, as in the paper; the
    /// ablation bench varies it directly through `icn-cluster`).
    pub fn linkage(&self) -> Linkage {
        Linkage::Ward
    }

    /// The stage-6 forecast configuration.
    pub fn forecast_config(&self) -> ForecastConfig {
        ForecastConfig {
            horizon: self.forecast_horizon,
            model: self.forecast_model,
            ..ForecastConfig::default()
        }
    }

    /// The surrogate forest configuration.
    pub fn forest_config(&self) -> ForestConfig {
        ForestConfig {
            n_trees: self.n_trees,
            seed: self.seed,
            ..ForestConfig::default()
        }
    }

    /// JSON view of the configuration (seeds must stay below 2^53 to
    /// round-trip exactly through the number representation).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("k", Json::num(self.k as f64)),
            ("k_coarse", Json::num(self.k_coarse as f64)),
            ("k_sweep_lo", Json::num(self.k_sweep_lo as f64)),
            ("k_sweep_hi", Json::num(self.k_sweep_hi as f64)),
            ("min_rel_drop", Json::num(self.min_rel_drop)),
            ("n_trees", Json::num(self.n_trees as f64)),
            ("seed", Json::num(self.seed as f64)),
            ("run_k_sweep", Json::Bool(self.run_k_sweep)),
            ("cluster_path", Json::str(self.cluster_path.as_str())),
            (
                "cluster_budget_mb",
                Json::num(self.cluster_budget_mb as f64),
            ),
            (
                "cluster_refine_iters",
                Json::num(self.cluster_refine_iters as f64),
            ),
            ("run_forecast", Json::Bool(self.run_forecast)),
            ("forecast_horizon", Json::num(self.forecast_horizon as f64)),
            ("forecast_model", Json::str(self.forecast_model.as_str())),
        ])
    }

    /// Parses a configuration previously produced by [`to_json`].
    ///
    /// [`to_json`]: StudyConfig::to_json
    pub fn from_json(v: &Json) -> Result<StudyConfig, String> {
        let num = |name: &str| {
            v.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("StudyConfig: missing numeric field `{name}`"))
        };
        let run_k_sweep = v
            .get("run_k_sweep")
            .and_then(Json::as_bool)
            .ok_or("StudyConfig: missing boolean field `run_k_sweep`")?;
        // Stage-2 path fields postdate some serialized configs: absent
        // fields fall back to the defaults rather than erroring, so old
        // study manifests keep loading.
        let defaults = StudyConfig::default();
        let cluster_path = match v.get("cluster_path").and_then(Json::as_str) {
            None => defaults.cluster_path,
            Some(s) => ClusterPath::parse(s)
                .ok_or_else(|| format!("StudyConfig: unknown cluster_path `{s}`"))?,
        };
        let opt_num = |name: &str, default: usize| {
            v.get(name)
                .and_then(Json::as_f64)
                .map_or(default, |x| x as usize)
        };
        // Forecast fields postdate PR 7: absent fields keep the defaults
        // (forecasting off) so earlier manifests load unchanged.
        let run_forecast = v
            .get("run_forecast")
            .and_then(Json::as_bool)
            .unwrap_or(defaults.run_forecast);
        let forecast_model = match v.get("forecast_model").and_then(Json::as_str) {
            None => defaults.forecast_model,
            Some(s) => Model::parse(s)
                .ok_or_else(|| format!("StudyConfig: unknown forecast_model `{s}`"))?,
        };
        Ok(StudyConfig {
            k: num("k")? as usize,
            k_coarse: num("k_coarse")? as usize,
            k_sweep_lo: num("k_sweep_lo")? as usize,
            k_sweep_hi: num("k_sweep_hi")? as usize,
            min_rel_drop: num("min_rel_drop")?,
            n_trees: num("n_trees")? as usize,
            seed: num("seed")? as u64,
            run_k_sweep,
            cluster_path,
            cluster_budget_mb: opt_num("cluster_budget_mb", defaults.cluster_budget_mb),
            cluster_refine_iters: opt_num("cluster_refine_iters", defaults.cluster_refine_iters),
            run_forecast,
            forecast_horizon: opt_num("forecast_horizon", defaults.forecast_horizon),
            forecast_model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = StudyConfig::paper();
        assert_eq!(c.k, 9);
        assert_eq!(c.k_coarse, 6);
        assert_eq!(c.n_trees, 100);
        assert!(c.run_k_sweep);
    }

    #[test]
    fn fast_disables_sweep() {
        let c = StudyConfig::fast();
        assert!(!c.run_k_sweep);
        assert!(c.n_trees < 100);
    }

    #[test]
    fn forest_config_propagates() {
        let c = StudyConfig {
            n_trees: 7,
            seed: 3,
            ..StudyConfig::fast()
        };
        let f = c.forest_config();
        assert_eq!(f.n_trees, 7);
        assert_eq!(f.seed, 3);
    }

    #[test]
    fn json_round_trip() {
        let c = StudyConfig::fast();
        let s = c.to_json().to_compact();
        let back = StudyConfig::from_json(&Json::parse(&s).unwrap()).unwrap();
        assert_eq!(back.k, c.k);
        assert_eq!(back.min_rel_drop, c.min_rel_drop);
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.run_k_sweep, c.run_k_sweep);
        assert_eq!(back.cluster_path, c.cluster_path);
        assert_eq!(back.cluster_budget_mb, c.cluster_budget_mb);
        assert_eq!(back.cluster_refine_iters, c.cluster_refine_iters);
    }

    #[test]
    fn json_without_cluster_fields_gets_defaults() {
        // Manifests written before the sampled path existed must keep
        // loading with the default path/budget.
        let mut c = StudyConfig::fast();
        c.cluster_path = ClusterPath::Sampled;
        c.cluster_budget_mb = 64;
        let full = c.to_json().to_compact();
        let legacy = {
            // Strip the three new fields out of the serialized form.
            let v = Json::parse(&full).unwrap();
            Json::obj(
                [
                    "k",
                    "k_coarse",
                    "k_sweep_lo",
                    "k_sweep_hi",
                    "min_rel_drop",
                    "n_trees",
                    "seed",
                    "run_k_sweep",
                ]
                .iter()
                .map(|&name| (name, v.get(name).unwrap().clone()))
                .collect(),
            )
        };
        let back = StudyConfig::from_json(&legacy).unwrap();
        let d = StudyConfig::default();
        assert_eq!(back.cluster_path, d.cluster_path);
        assert_eq!(back.cluster_budget_mb, d.cluster_budget_mb);
        assert_eq!(back.cluster_refine_iters, d.cluster_refine_iters);
        assert_eq!(back.k, c.k);
    }

    #[test]
    fn forecast_fields_round_trip() {
        let c = StudyConfig {
            run_forecast: true,
            forecast_horizon: 48,
            forecast_model: Model::Forest,
            ..StudyConfig::fast()
        };
        let s = c.to_json().to_compact();
        let back = StudyConfig::from_json(&Json::parse(&s).unwrap()).unwrap();
        assert!(back.run_forecast);
        assert_eq!(back.forecast_horizon, 48);
        assert_eq!(back.forecast_model, Model::Forest);
    }

    #[test]
    fn json_without_forecast_fields_gets_defaults() {
        // Manifests written before the forecast stage existed must keep
        // loading with forecasting off.
        let full = StudyConfig::fast().to_json().to_compact();
        let v = Json::parse(&full).unwrap();
        let legacy = Json::obj(
            [
                "k",
                "k_coarse",
                "k_sweep_lo",
                "k_sweep_hi",
                "min_rel_drop",
                "n_trees",
                "seed",
                "run_k_sweep",
            ]
            .iter()
            .map(|&name| (name, v.get(name).unwrap().clone()))
            .collect(),
        );
        let back = StudyConfig::from_json(&legacy).unwrap();
        assert!(!back.run_forecast);
        assert_eq!(back.forecast_horizon, 24);
        assert_eq!(back.forecast_model, Model::Ets);
    }

    #[test]
    fn bad_forecast_model_rejected() {
        let mut j = StudyConfig::fast().to_json().to_compact();
        j = j.replace("\"ets\"", "\"oracle\"");
        let err = StudyConfig::from_json(&Json::parse(&j).unwrap()).unwrap_err();
        assert!(err.contains("forecast_model"), "{err}");
    }

    #[test]
    fn bad_cluster_path_rejected() {
        let mut j = StudyConfig::fast().to_json().to_compact();
        j = j.replace("\"auto\"", "\"bogus\"");
        let err = StudyConfig::from_json(&Json::parse(&j).unwrap()).unwrap_err();
        assert!(err.contains("cluster_path"), "{err}");
    }
}
