//! # icn-core — the paper's analysis pipeline
//!
//! This crate implements the primary contribution of *Characterizing
//! Mobile Service Demands at Indoor Cellular Networks* (IMC '23): the
//! methodology that turns a nationwide per-antenna, per-service traffic
//! matrix into interpretable indoor-usage profiles.
//!
//! * [`mod@rca`] — the RCA / RSCA transforms (Eqs. 1–2) and the
//!   indoor-referenced outdoor RCA (Eq. 5).
//! * [`pipeline`] — [`pipeline::IcnStudy`]: transform → Ward clustering →
//!   k-selection → surrogate forest → TreeSHAP → environment crosstabs →
//!   outdoor comparison, in one deterministic call.
//! * [`profiles`] — per-cluster mean-RSCA profiles (Figure 4) and
//!   over-/under-utilisation rankings.
//! * [`insights`] — cluster ↔ environment correlation (Figures 6–8) and
//!   Paris-share statistics.
//! * [`compare`] — the outdoor classification and diversity-entropy
//!   statistics (Figure 9).
//! * [`temporal`] — per-cluster and per-service median-traffic heatmaps
//!   (Figures 10–11) with commute/strike/weekend/burstiness summaries.
//! * [`periodicity`] — autocorrelation rhythm analysis (diurnal/weekly
//!   strength per cluster, separating event venues from regular sites).
//! * [`config`] — study configuration (k = 9, 100 trees, ... as in the
//!   paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod config;
pub mod error;
pub mod insights;
pub mod periodicity;
pub mod pipeline;
pub mod profiles;
pub mod rca;
pub mod temporal;

pub use compare::{
    classify_outdoor, classify_outdoor_with, distribution_entropy, label_distribution,
    OutdoorComparison,
};
pub use config::StudyConfig;
pub use error::StudyError;
pub use insights::{env_index, EnvCrosstab, Flow};
pub use periodicity::{autocorrelation, dominant_period, Rhythm};
pub use pipeline::IcnStudy;
pub use profiles::{cluster_profiles, profile_similarity, ClusterProfile};
pub use rca::{
    apply_row_update, filter_dead_rows, outdoor_rca, outdoor_rsca, rca, rca_row_with, rca_sums,
    rsca, rsca_from_rca, rsca_row_with, RcaSums,
};
pub use temporal::{cluster_heatmap, service_heatmap, TemporalHeatmap};
