//! Periodicity analysis of hourly traffic series.
//!
//! Section 6 of the paper distinguishes clusters by how *regular* their
//! temporal patterns are: diurnal/weekly rhythms for commuter and daytime
//! clusters versus "sporadic, non-canonical bursts" for event venues. This
//! module quantifies that with the autocorrelation function of the hourly
//! series: a strong lag-24 peak means a daily rhythm, a strong lag-168
//! peak a weekly one, and event-driven clusters show neither. The Figure 10
//! harness reports both coefficients next to the heatmaps.

use icn_stats::summary::mean;

/// Autocorrelation of a series at a given lag — the standard *biased*
/// sample ACF (sum of `n − lag` products over the full-series variance),
/// so even a perfectly periodic series tops out at `(n − lag) / n`.
///
/// Returns 0.0 for degenerate inputs (constant series or lag ≥ length).
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if lag == 0 {
        return 1.0;
    }
    if lag >= n {
        return 0.0;
    }
    let m = mean(series);
    let mut num = 0.0;
    let mut den = 0.0;
    for &v in series {
        den += (v - m) * (v - m);
    }
    if den <= 0.0 {
        return 0.0;
    }
    for t in 0..(n - lag) {
        num += (series[t] - m) * (series[t + lag] - m);
    }
    num / den
}

/// Rhythm profile of an hourly traffic series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rhythm {
    /// Autocorrelation at lag 24 h — the diurnal rhythm strength.
    pub daily: f64,
    /// Autocorrelation at lag 168 h — the weekly rhythm strength.
    pub weekly: f64,
}

impl Rhythm {
    /// Computes the rhythm profile of an hourly series.
    pub fn of(series: &[f64]) -> Rhythm {
        Rhythm {
            daily: autocorrelation(series, 24),
            weekly: autocorrelation(series, 168),
        }
    }

    /// True when the series has a clear daily rhythm (the diurnal clusters
    /// of Figure 10; event venues fail this).
    pub fn is_diurnal(&self) -> bool {
        self.daily > 0.3
    }
}

/// The lag (within `min_lag..=max_lag`) with the highest autocorrelation —
/// the dominant period of the series. `min_lag` exists because smooth
/// series are trivially self-similar at lag 1; pass e.g. 12 when hunting
/// for daily periods. Returns `None` for degenerate inputs.
pub fn dominant_period(series: &[f64], min_lag: usize, max_lag: usize) -> Option<usize> {
    let lo = min_lag.max(1);
    let mut best: Option<(usize, f64)> = None;
    for lag in lo..=max_lag.min(series.len().saturating_sub(1)) {
        let ac = autocorrelation(series, lag);
        if best.is_none_or(|(_, b)| ac > b) {
            best = Some((lag, ac));
        }
    }
    best.map(|(lag, _)| lag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Rng;

    /// A clean diurnal signal: sin with 24 h period plus noise.
    fn diurnal_series(days: usize, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from(seed);
        (0..days * 24)
            .map(|h| {
                let phase = (h % 24) as f64 / 24.0 * std::f64::consts::TAU;
                10.0 + 5.0 * phase.sin() + rng.normal(0.0, noise)
            })
            .collect()
    }

    #[test]
    fn lag_zero_is_one_and_out_of_range_zero() {
        let s = diurnal_series(3, 0.1, 1);
        assert_eq!(autocorrelation(&s, 0), 1.0);
        assert_eq!(autocorrelation(&s, s.len()), 0.0);
    }

    #[test]
    fn constant_series_zero() {
        assert_eq!(autocorrelation(&[5.0; 100], 24), 0.0);
    }

    #[test]
    fn diurnal_signal_has_strong_lag24() {
        let s = diurnal_series(14, 0.5, 2);
        let r = Rhythm::of(&s);
        assert!(r.daily > 0.8, "daily {}", r.daily);
        assert!(r.is_diurnal());
    }

    #[test]
    fn white_noise_has_no_rhythm() {
        let mut rng = Rng::seed_from(3);
        let s: Vec<f64> = (0..500).map(|_| rng.gaussian()).collect();
        let r = Rhythm::of(&s);
        assert!(r.daily.abs() < 0.15, "daily {}", r.daily);
        assert!(!r.is_diurnal());
    }

    #[test]
    fn weekly_signal_detected() {
        // Weekdays high, weekends low, across 4 weeks. The biased ACF of a
        // perfect period-168 signal over 672 samples is (672-168)/672 = 0.75.
        let s: Vec<f64> = (0..4 * 7 * 24)
            .map(|h| {
                let day = (h / 24) % 7;
                if day < 5 {
                    10.0
                } else {
                    2.0
                }
            })
            .collect();
        let r = Rhythm::of(&s);
        assert!((r.weekly - 0.75).abs() < 0.02, "weekly {}", r.weekly);
    }

    #[test]
    fn dominant_period_finds_24() {
        let s = diurnal_series(10, 0.3, 4);
        // min_lag 12 skips the trivial smooth-signal lag-1 similarity.
        assert_eq!(dominant_period(&s, 12, 30), Some(24));
    }

    #[test]
    fn sporadic_bursts_are_aperiodic() {
        // Mostly silent with a few random bursts — the event-venue shape.
        let mut rng = Rng::seed_from(5);
        let mut s = vec![0.1; 21 * 24];
        for _ in 0..4 {
            let at = rng.index(s.len() - 6);
            for v in &mut s[at..at + 5] {
                *v = 50.0;
            }
        }
        let r = Rhythm::of(&s);
        assert!(r.daily < 0.3, "daily {}", r.daily);
    }
}
