//! Indoor vs outdoor comparison (Section 5.3, Figure 9).
//!
//! The paper computes the RCA of ~20,000 outdoor antennas **against the
//! indoor service-usage reference** (Eq. 5), symmetrises it, and feeds the
//! result to the trained random-forest surrogate. The predicted cluster
//! distribution (Figure 9) concentrates ~70 % of outdoor antennas in the
//! general-use cluster 1, with the transit/stadium/workspace clusters
//! nearly absent — evidence that indoor demand diversity is
//! environment-driven. This module reproduces that classification and the
//! distribution plus the concentration statistics the prose quotes.

use crate::rca::outdoor_rsca;
use icn_forest::{RandomForest, SoaForest};
use icn_stats::Matrix;

/// Outcome of classifying the outdoor population through the surrogate.
#[derive(Clone, Debug)]
pub struct OutdoorComparison {
    /// Predicted cluster per outdoor antenna.
    pub predicted: Vec<usize>,
    /// Fraction of outdoor antennas per cluster (sums to 1).
    pub distribution: Vec<f64>,
    /// The modal cluster and its share — the paper's "~70 % in cluster 1".
    pub dominant: (usize, f64),
}

/// Classifies outdoor antennas: Eq. 5 RCA → RSCA → surrogate prediction.
///
/// `t_out` is the outdoor totals matrix, `t_in` the indoor one (reference),
/// `surrogate` the forest trained on indoor RSCA with `k` classes.
pub fn classify_outdoor(
    t_out: &Matrix,
    t_in: &Matrix,
    surrogate: &RandomForest,
) -> OutdoorComparison {
    classify_outdoor_with(t_out, t_in, &SoaForest::from_forest(surrogate))
}

/// [`classify_outdoor`] over an already-frozen surrogate — the pipeline
/// freezes the forest once in stage 3 and reuses it here for the ~20k
/// outdoor antennas.
pub fn classify_outdoor_with(
    t_out: &Matrix,
    t_in: &Matrix,
    surrogate: &SoaForest,
) -> OutdoorComparison {
    let rsca = outdoor_rsca(t_out, t_in);
    assert_eq!(
        rsca.cols(),
        surrogate.n_features,
        "classify_outdoor: surrogate feature mismatch"
    );
    let predicted = surrogate.predict_batch(&rsca);
    let k = surrogate.n_classes;
    let mut counts = vec![0usize; k];
    for &p in &predicted {
        counts[p] += 1;
    }
    let n = predicted.len().max(1) as f64;
    let distribution: Vec<f64> = counts.iter().map(|&c| c as f64 / n).collect();
    let best = icn_stats::rank::argmax(&distribution);
    OutdoorComparison {
        dominant: (best, distribution[best]),
        predicted,
        distribution,
    }
}

/// Shannon entropy (nats) of a cluster distribution — lower for outdoor
/// (concentrated) than for indoor (diverse), quantifying the paper's
/// "diversity is absent outdoors" claim.
pub fn distribution_entropy(distribution: &[f64]) -> f64 {
    distribution
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Cluster distribution of a labelling (fractions summing to 1).
pub fn label_distribution(labels: &[usize], k: usize) -> Vec<f64> {
    let mut counts = vec![0usize; k];
    for &l in labels {
        assert!(l < k, "label_distribution: label out of range");
        counts[l] += 1;
    }
    let n = labels.len().max(1) as f64;
    counts.iter().map(|&c| c as f64 / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes() {
        assert_eq!(distribution_entropy(&[1.0, 0.0, 0.0]), 0.0);
        let uniform = vec![0.25; 4];
        assert!((distribution_entropy(&uniform) - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn label_distribution_sums_to_one() {
        let d = label_distribution(&[0, 1, 1, 2, 2, 2], 4);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d[3], 0.0);
        assert!((d[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        label_distribution(&[5], 2);
    }

    // End-to-end classification is exercised in the pipeline tests and in
    // tests/pipeline_recovery.rs where a full dataset + surrogate exist.
}
