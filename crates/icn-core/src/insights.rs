//! Cluster ↔ environment correlation (Section 5.2.2, Figures 6–8).
//!
//! Once the clusters exist and the environments are mined from antenna
//! names, the paper quantifies their relation three ways: the Sankey flows
//! of Figure 6 (cluster → environment mass), the per-cluster environment
//! composition of Figure 7, the per-environment cluster distribution of
//! Figure 8, plus the Paris-share statements sprinkled through the prose
//! ("more than 92 % of cluster 0/4 antennas are in Paris", ...). This
//! module computes all of them from a labelling and antenna metadata.

use icn_synth::{Antenna, Environment};

/// A cluster→environment flow for the Sankey diagram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Flow {
    /// Source cluster.
    pub cluster: usize,
    /// Destination environment.
    pub environment: Environment,
    /// Number of antennas on this edge.
    pub count: usize,
}

/// Cross-tabulation of clusters against environments with derived views.
#[derive(Clone, Debug)]
pub struct EnvCrosstab {
    /// `counts[cluster][env_index]` using [`Environment::ALL`] order.
    pub counts: Vec<Vec<usize>>,
    /// Antennas per cluster.
    pub cluster_sizes: Vec<usize>,
    /// Antennas per environment.
    pub env_sizes: Vec<usize>,
    /// Fraction of each cluster's antennas located in Paris.
    pub paris_share: Vec<f64>,
}

impl EnvCrosstab {
    /// Builds the crosstab from per-antenna labels and metadata.
    ///
    /// # Panics
    /// If lengths mismatch.
    pub fn build(antennas: &[Antenna], labels: &[usize], k: usize) -> EnvCrosstab {
        assert_eq!(antennas.len(), labels.len(), "EnvCrosstab: length mismatch");
        let ne = Environment::ALL.len();
        let mut counts = vec![vec![0usize; ne]; k];
        let mut cluster_sizes = vec![0usize; k];
        let mut env_sizes = vec![0usize; ne];
        let mut paris = vec![0usize; k];
        for (a, &l) in antennas.iter().zip(labels) {
            assert!(l < k, "EnvCrosstab: label out of range");
            let e = env_index(a.environment);
            counts[l][e] += 1;
            cluster_sizes[l] += 1;
            env_sizes[e] += 1;
            if a.is_paris() {
                paris[l] += 1;
            }
        }
        let paris_share = paris
            .iter()
            .zip(&cluster_sizes)
            .map(|(&p, &s)| if s > 0 { p as f64 / s as f64 } else { 0.0 })
            .collect();
        EnvCrosstab {
            counts,
            cluster_sizes,
            env_sizes,
            paris_share,
        }
    }

    /// Figure 7 view: the environment composition of one cluster
    /// (fractions summing to 1 over [`Environment::ALL`]).
    pub fn cluster_composition(&self, cluster: usize) -> Vec<f64> {
        let size = self.cluster_sizes[cluster].max(1) as f64;
        self.counts[cluster]
            .iter()
            .map(|&c| c as f64 / size)
            .collect()
    }

    /// Figure 8 view: the cluster distribution of one environment
    /// (fractions summing to 1 over clusters).
    pub fn env_distribution(&self, env: Environment) -> Vec<f64> {
        let e = env_index(env);
        let size = self.env_sizes[e].max(1) as f64;
        self.counts.iter().map(|row| row[e] as f64 / size).collect()
    }

    /// Figure 6 view: all non-zero flows, heaviest first.
    pub fn flows(&self) -> Vec<Flow> {
        let mut flows = Vec::new();
        for (c, row) in self.counts.iter().enumerate() {
            for (e, &count) in row.iter().enumerate() {
                if count > 0 {
                    flows.push(Flow {
                        cluster: c,
                        environment: Environment::ALL[e],
                        count,
                    });
                }
            }
        }
        flows.sort_by_key(|f| std::cmp::Reverse(f.count));
        flows
    }

    /// The environment holding the largest share of a cluster, with that
    /// share — e.g. (Workspaces, 0.7+) for the paper's cluster 3.
    pub fn dominant_environment(&self, cluster: usize) -> (Environment, f64) {
        let comp = self.cluster_composition(cluster);
        let best = icn_stats::rank::argmax(&comp);
        (Environment::ALL[best], comp[best])
    }

    /// The cluster holding the largest share of an environment, with that
    /// share — e.g. (cluster 1, ~0.9) for airports.
    pub fn dominant_cluster(&self, env: Environment) -> (usize, f64) {
        let dist = self.env_distribution(env);
        let best = icn_stats::rank::argmax(&dist);
        (best, dist[best])
    }
}

/// Index of an environment in [`Environment::ALL`].
pub fn env_index(env: Environment) -> usize {
    Environment::ALL
        .iter()
        .position(|&e| e == env)
        .expect("environment in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_stats::Rng;
    use icn_synth::{antennas::generate_antennas, Archetype};

    fn setup() -> (Vec<Antenna>, Vec<usize>) {
        let mut rng = Rng::seed_from(13);
        let ants = generate_antennas(0.08, &mut rng);
        // Use planted archetypes as a stand-in labelling.
        let labels: Vec<usize> = ants.iter().map(|a| a.archetype.id()).collect();
        (ants, labels)
    }

    #[test]
    fn counts_are_consistent() {
        let (ants, labels) = setup();
        let ct = EnvCrosstab::build(&ants, &labels, 9);
        let total: usize = ct.cluster_sizes.iter().sum();
        assert_eq!(total, ants.len());
        let total_env: usize = ct.env_sizes.iter().sum();
        assert_eq!(total_env, ants.len());
        let total_cells: usize = ct.counts.iter().flatten().sum();
        assert_eq!(total_cells, ants.len());
    }

    #[test]
    fn compositions_are_distributions() {
        let (ants, labels) = setup();
        let ct = EnvCrosstab::build(&ants, &labels, 9);
        for c in 0..9 {
            if ct.cluster_sizes[c] == 0 {
                continue;
            }
            let s: f64 = ct.cluster_composition(c).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "cluster {c}");
        }
        for env in Environment::ALL {
            let s: f64 = ct.env_distribution(env).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{env:?}");
        }
    }

    #[test]
    fn orange_clusters_are_transit_only() {
        // Planted truth: clusters 0/4/7 live in metro/train environments.
        let (ants, labels) = setup();
        let ct = EnvCrosstab::build(&ants, &labels, 9);
        for c in [0usize, 7] {
            let comp = ct.cluster_composition(c);
            let transit =
                comp[env_index(Environment::Metro)] + comp[env_index(Environment::TrainStation)];
            assert!(transit > 0.95, "cluster {c}: transit share {transit}");
        }
    }

    #[test]
    fn workspace_dominates_cluster3() {
        let (ants, labels) = setup();
        let ct = EnvCrosstab::build(&ants, &labels, 9);
        let (env, share) = ct.dominant_environment(Archetype::Workspace.id());
        assert_eq!(env, Environment::Workspace);
        assert!(share > 0.5, "share {share}");
    }

    #[test]
    fn paris_shares_match_construction() {
        let (ants, labels) = setup();
        let ct = EnvCrosstab::build(&ants, &labels, 9);
        // Cluster 0 (Paris metro) is all-Paris; cluster 7 all-provincial.
        assert!(ct.paris_share[0] > 0.99);
        assert!(ct.paris_share[7] < 0.01);
    }

    #[test]
    fn flows_cover_population_and_sorted() {
        let (ants, labels) = setup();
        let ct = EnvCrosstab::build(&ants, &labels, 9);
        let flows = ct.flows();
        let total: usize = flows.iter().map(|f| f.count).sum();
        assert_eq!(total, ants.len());
        for w in flows.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
    }

    #[test]
    fn dominant_cluster_for_airports_is_general_use() {
        let (ants, labels) = setup();
        let ct = EnvCrosstab::build(&ants, &labels, 9);
        let (c, share) = ct.dominant_cluster(Environment::Airport);
        assert_eq!(c, Archetype::GeneralUse.id());
        assert!(share > 0.7);
    }
}
