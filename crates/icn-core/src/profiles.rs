//! Per-cluster service-utilisation profiles (the data behind Figure 4).
//!
//! Figure 4 shows the RSCA heatmap with antennas grouped per cluster; the
//! visible pattern is the per-cluster mean RSCA per service. This module
//! computes those profiles plus the top over- and under-utilised services
//! of each cluster — the quantities the paper's prose reads off the
//! heatmap and the SHAP beeswarms.

use icn_stats::{rank, Matrix};

/// The utilisation profile of one cluster.
#[derive(Clone, Debug)]
pub struct ClusterProfile {
    /// Cluster id.
    pub cluster: usize,
    /// Number of member antennas.
    pub size: usize,
    /// Mean RSCA per service over the members.
    pub mean_rsca: Vec<f64>,
}

impl ClusterProfile {
    /// Indices of the `k` most over-utilised services (highest mean RSCA),
    /// descending.
    pub fn top_over(&self, k: usize) -> Vec<usize> {
        rank::top_k(&self.mean_rsca, k)
    }

    /// Indices of the `k` most under-utilised services (lowest mean RSCA),
    /// ascending.
    pub fn top_under(&self, k: usize) -> Vec<usize> {
        rank::bottom_k(&self.mean_rsca, k)
    }

    /// Root-mean-square RSCA across services — a flatness measure; the
    /// paper's cluster 5 ("treats most of its services equally") has a
    /// distinctly small value.
    pub fn rms(&self) -> f64 {
        let n = self.mean_rsca.len() as f64;
        (self.mean_rsca.iter().map(|v| v * v).sum::<f64>() / n).sqrt()
    }
}

/// Computes cluster profiles from an RSCA matrix and a labelling.
///
/// # Panics
/// If lengths mismatch or a label exceeds `k`.
pub fn cluster_profiles(rsca: &Matrix, labels: &[usize], k: usize) -> Vec<ClusterProfile> {
    assert_eq!(
        rsca.rows(),
        labels.len(),
        "cluster_profiles: length mismatch"
    );
    let mut sums = vec![vec![0.0f64; rsca.cols()]; k];
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < k, "cluster_profiles: label {l} out of range");
        counts[l] += 1;
        for (s, &v) in sums[l].iter_mut().zip(rsca.row(i)) {
            *s += v;
        }
    }
    (0..k)
        .map(|c| ClusterProfile {
            cluster: c,
            size: counts[c],
            mean_rsca: if counts[c] == 0 {
                vec![0.0; rsca.cols()]
            } else {
                sums[c].iter().map(|&s| s / counts[c] as f64).collect()
            },
        })
        .collect()
}

/// Cosine similarity between two profiles' mean RSCA vectors — used to
/// verify that clusters inside a dendrogram group resemble each other more
/// than clusters across groups (Section 4.2.2).
pub fn profile_similarity(a: &ClusterProfile, b: &ClusterProfile) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.mean_rsca.iter().zip(&b.mean_rsca) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rsca_fixture() -> (Matrix, Vec<usize>) {
        // 4 antennas × 3 services; cluster 0 loves service 0, cluster 1
        // loves service 2.
        let m = Matrix::from_rows(&[
            vec![0.8, -0.2, -0.6],
            vec![0.6, 0.0, -0.5],
            vec![-0.7, -0.1, 0.9],
            vec![-0.5, 0.1, 0.7],
        ]);
        (m, vec![0, 0, 1, 1])
    }

    #[test]
    fn means_are_correct() {
        let (m, labels) = rsca_fixture();
        let profiles = cluster_profiles(&m, &labels, 2);
        assert_eq!(profiles[0].size, 2);
        assert!((profiles[0].mean_rsca[0] - 0.7).abs() < 1e-12);
        assert!((profiles[1].mean_rsca[2] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn top_over_and_under() {
        let (m, labels) = rsca_fixture();
        let profiles = cluster_profiles(&m, &labels, 2);
        assert_eq!(profiles[0].top_over(1), vec![0]);
        assert_eq!(profiles[0].top_under(1), vec![2]);
        assert_eq!(profiles[1].top_over(1), vec![2]);
    }

    #[test]
    fn empty_cluster_is_flat_zero() {
        let (m, labels) = rsca_fixture();
        let profiles = cluster_profiles(&m, &labels, 3);
        assert_eq!(profiles[2].size, 0);
        assert!(profiles[2].mean_rsca.iter().all(|&v| v == 0.0));
        assert_eq!(profiles[2].rms(), 0.0);
    }

    #[test]
    fn rms_flags_flat_profiles() {
        let flat = ClusterProfile {
            cluster: 0,
            size: 5,
            mean_rsca: vec![0.01, -0.02, 0.01],
        };
        let spiky = ClusterProfile {
            cluster: 1,
            size: 5,
            mean_rsca: vec![0.8, -0.7, 0.6],
        };
        assert!(spiky.rms() > 10.0 * flat.rms());
    }

    #[test]
    fn similarity_of_self_is_one() {
        let (m, labels) = rsca_fixture();
        let profiles = cluster_profiles(&m, &labels, 2);
        assert!((profile_similarity(&profiles[0], &profiles[0]) - 1.0).abs() < 1e-12);
        // Opposed profiles are negatively similar.
        assert!(profile_similarity(&profiles[0], &profiles[1]) < 0.0);
    }

    #[test]
    #[should_panic(expected = "label 2 out of range")]
    fn out_of_range_label_panics() {
        let (m, _) = rsca_fixture();
        cluster_profiles(&m, &[0, 0, 1, 2], 2);
    }
}
