//! Revealed comparative advantage transforms (Section 4.1).
//!
//! The heart of the paper's preprocessing. Directly clustering raw traffic
//! groups antennas by popularity, so the paper borrows the **revealed
//! comparative advantage** (RCA) from international economics (Eq. 1):
//!
//! ```text
//! RCA[i][j] = (T[i][j] / T[i]) / (T[j] / T_tot)
//! ```
//!
//! and symmetrises it into the **revealed symmetric comparative advantage**
//! (RSCA, Eq. 2): `RSCA = (RCA − 1) / (RCA + 1) ∈ [−1, 1]`, negative for
//! under- and positive for over-utilisation.
//!
//! For the outdoor comparison (Eq. 5), the outdoor antenna's service mix is
//! referenced against the **indoor** service totals, measuring how an
//! outdoor antenna's usage compares to typical indoor usage.

use icn_stats::Matrix;

/// Computes the RCA matrix of Eq. (1).
///
/// ```
/// use icn_stats::Matrix;
/// // Antenna 0 skews to service 0, antenna 1 to service 1:
/// let t = Matrix::from_vec(2, 2, vec![30.0, 10.0, 10.0, 30.0]);
/// let r = icn_core::rca(&t);
/// assert!((r.get(0, 0) - 1.5).abs() < 1e-12); // over-utilised
/// assert!((r.get(0, 1) - 0.5).abs() < 1e-12); // under-utilised
/// ```
///
/// Rows whose total traffic is zero produce all-zero RCA rows (maximal
/// "disadvantage") rather than NaN — but upstream code should filter dead
/// antennas first; see [`filter_dead_rows`].
///
/// # Panics
/// If the matrix has no traffic at all or any negative entry.
pub fn rca(t: &Matrix) -> Matrix {
    assert!(
        t.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite()),
        "rca: negative or non-finite traffic"
    );
    let total = t.total();
    assert!(total > 0.0, "rca: matrix has no traffic");
    let row_sums = t.row_sums();
    let col_sums = t.col_sums();
    let m = t.cols();
    let mut out = Matrix::zeros(t.rows(), m);
    for i in 0..t.rows() {
        let ti = row_sums[i];
        if ti <= 0.0 {
            continue; // dead antenna: RCA row stays zero
        }
        // 4-lane row transform: every element is independent and keeps
        // the exact `(t_ij / ti) / (tj / total)` op order, so the widened
        // loop (overlapping the per-lane divide chains) is bit-identical
        // to the scalar one. A lane whose service total is zero computes
        // a discarded value and skips the store ("unused anywhere" stays
        // zero, as before).
        let src = t.row(i);
        let dst = out.row_mut(i);
        let mut j = 0usize;
        while j + 4 <= m {
            let v0 = (src[j] / ti) / (col_sums[j] / total);
            let v1 = (src[j + 1] / ti) / (col_sums[j + 1] / total);
            let v2 = (src[j + 2] / ti) / (col_sums[j + 2] / total);
            let v3 = (src[j + 3] / ti) / (col_sums[j + 3] / total);
            if col_sums[j] > 0.0 {
                dst[j] = v0;
            }
            if col_sums[j + 1] > 0.0 {
                dst[j + 1] = v1;
            }
            if col_sums[j + 2] > 0.0 {
                dst[j + 2] = v2;
            }
            if col_sums[j + 3] > 0.0 {
                dst[j + 3] = v3;
            }
            j += 4;
        }
        while j < m {
            if col_sums[j] > 0.0 {
                dst[j] = (src[j] / ti) / (col_sums[j] / total);
            }
            j += 1;
        }
    }
    out
}

/// Symmetrises an RCA matrix into RSCA per Eq. (2): `(rca−1)/(rca+1)`.
///
/// Element-wise and lane-widened like [`rca`]: four independent divide
/// chains per step, exact per-element ops, bit-identical to a scalar map.
pub fn rsca_from_rca(rca: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(rca.rows(), rca.cols());
    let sym = |v: f64| {
        debug_assert!(v >= 0.0, "rsca: negative RCA");
        (v - 1.0) / (v + 1.0)
    };
    for i in 0..rca.rows() {
        let src = rca.row(i);
        let dst = out.row_mut(i);
        let mut sc = src.chunks_exact(4);
        let mut dc = dst.chunks_exact_mut(4);
        for (s, d) in sc.by_ref().zip(dc.by_ref()) {
            d[0] = sym(s[0]);
            d[1] = sym(s[1]);
            d[2] = sym(s[2]);
            d[3] = sym(s[3]);
        }
        for (s, d) in sc.remainder().iter().zip(dc.into_remainder()) {
            *d = sym(*s);
        }
    }
    out
}

/// One-step RSCA of a traffic matrix (Eq. 1 then Eq. 2).
///
/// ```
/// use icn_stats::Matrix;
/// let t = Matrix::from_vec(2, 2, vec![30.0, 10.0, 10.0, 30.0]);
/// let s = icn_core::rsca(&t);
/// assert!(s.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
/// assert!(s.get(0, 0) > 0.0 && s.get(0, 1) < 0.0);
/// ```
pub fn rsca(t: &Matrix) -> Matrix {
    rsca_from_rca(&rca(t))
}

/// Outdoor RCA of Eq. (5): each outdoor antenna's per-service share is
/// referenced against the *indoor* share of that service
/// (`T_in[j] / T_tot_in`), so the result measures how outdoor usage
/// deviates from typical indoor usage.
///
/// # Panics
/// If shapes mismatch or the indoor matrix is empty of traffic.
pub fn outdoor_rca(t_out: &Matrix, t_in: &Matrix) -> Matrix {
    assert_eq!(
        t_out.cols(),
        t_in.cols(),
        "outdoor_rca: service dimension mismatch"
    );
    let total_in = t_in.total();
    assert!(total_in > 0.0, "outdoor_rca: indoor matrix has no traffic");
    let in_col = t_in.col_sums();
    let out_rows = t_out.row_sums();
    let mut out = Matrix::zeros(t_out.rows(), t_out.cols());
    for i in 0..t_out.rows() {
        let ti = out_rows[i];
        if ti <= 0.0 {
            continue;
        }
        for j in 0..t_out.cols() {
            let ref_share = in_col[j] / total_in;
            if ref_share <= 0.0 {
                continue;
            }
            out.set(i, j, (t_out.get(i, j) / ti) / ref_share);
        }
    }
    out
}

/// Outdoor RSCA: Eq. (5) then Eq. (2).
pub fn outdoor_rsca(t_out: &Matrix, t_in: &Matrix) -> Matrix {
    rsca_from_rca(&outdoor_rca(t_out, t_in))
}

/// The marginal sums RCA is defined against: per-row totals, per-column
/// totals and the grand total of a traffic matrix. Maintaining these
/// incrementally lets a streaming consumer recompute single RCA rows as
/// new hours land without re-reading the whole matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct RcaSums {
    /// Per-antenna traffic totals (`T[i]`).
    pub row_sums: Vec<f64>,
    /// Per-service traffic totals (`T[j]`).
    pub col_sums: Vec<f64>,
    /// Grand total (`T_tot`).
    pub total: f64,
}

/// Computes the marginal sums of `t`, using the same reductions as
/// [`rca`] itself so that [`rca_row_with`] on fresh sums is bit-identical
/// to the corresponding row of a full [`rca`] pass.
pub fn rca_sums(t: &Matrix) -> RcaSums {
    RcaSums {
        row_sums: t.row_sums(),
        col_sums: t.col_sums(),
        total: t.total(),
    }
}

/// Computes RCA for the single row `row` (antenna `i`'s traffic across all
/// services) against the marginals in `sums`. With sums freshly computed by
/// [`rca_sums`], this reproduces row `i` of [`rca`] exactly (bitwise); with
/// delta-updated sums (see [`apply_row_update`]) it is accurate to the
/// accumulated rounding of the updates.
pub fn rca_row_with(row: &[f64], i: usize, sums: &RcaSums) -> Vec<f64> {
    let ti = sums.row_sums[i];
    let mut out = vec![0.0; row.len()];
    if ti <= 0.0 {
        return out; // dead antenna: RCA row stays zero
    }
    for (j, o) in out.iter_mut().enumerate() {
        let tj = sums.col_sums[j];
        if tj <= 0.0 {
            continue; // service unused anywhere
        }
        *o = (row[j] / ti) / (tj / sums.total);
    }
    out
}

/// Single-row RSCA: [`rca_row_with`] then Eq. (2).
pub fn rsca_row_with(row: &[f64], i: usize, sums: &RcaSums) -> Vec<f64> {
    rca_row_with(row, i, sums)
        .into_iter()
        .map(|v| (v - 1.0) / (v + 1.0))
        .collect()
}

/// Folds an in-place replacement of row `i` (`old` → `new`) into the
/// marginal sums, so downstream [`rca_row_with`] calls see the updated
/// matrix without an O(N·M) recomputation. Deltas accumulate f64 rounding;
/// callers that need exactness should refresh with [`rca_sums`]
/// periodically.
pub fn apply_row_update(old: &[f64], new: &[f64], i: usize, sums: &mut RcaSums) {
    assert_eq!(old.len(), new.len(), "apply_row_update: length mismatch");
    assert_eq!(
        new.len(),
        sums.col_sums.len(),
        "apply_row_update: row width != col_sums"
    );
    let mut row_delta = 0.0;
    for (j, (&o, &n)) in old.iter().zip(new).enumerate() {
        let d = n - o;
        sums.col_sums[j] += d;
        row_delta += d;
    }
    sums.row_sums[i] += row_delta;
    sums.total += row_delta;
}

/// Splits a traffic matrix into `(live_matrix, live_row_indices)`,
/// dropping rows with zero total traffic. The paper's probes occasionally
/// see silent antennas; RCA needs positive row totals.
pub fn filter_dead_rows(t: &Matrix) -> (Matrix, Vec<usize>) {
    let live: Vec<usize> = t
        .row_sums()
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 0.0)
        .map(|(i, _)| i)
        .collect();
    (t.select_rows(&live), live)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 where antenna 0 skews to service 0 and antenna 1 to service 1.
    fn skewed() -> Matrix {
        Matrix::from_vec(2, 2, vec![30.0, 10.0, 10.0, 30.0])
    }

    #[test]
    fn rca_hand_computed() {
        let r = rca(&skewed());
        // T_i = 40 each; T_j = 40 each; T_tot = 80.
        // RCA[0][0] = (30/40)/(40/80) = 0.75/0.5 = 1.5.
        assert!((r.get(0, 0) - 1.5).abs() < 1e-12);
        assert!((r.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((r.get(1, 0) - 0.5).abs() < 1e-12);
        assert!((r.get(1, 1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_matrix_rca_is_one() {
        let t = Matrix::from_vec(3, 4, vec![5.0; 12]);
        let r = rca(&t);
        assert!(r.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-12));
        // And RSCA is identically zero.
        let s = rsca(&t);
        assert!(s.as_slice().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn rsca_bounds_and_signs() {
        let s = rsca(&skewed());
        for &v in s.as_slice() {
            assert!((-1.0..=1.0).contains(&v));
        }
        assert!(s.get(0, 0) > 0.0); // over-utilised
        assert!(s.get(0, 1) < 0.0); // under-utilised
                                    // RSCA(1.5) = 0.2; RSCA(0.5) = -1/3.
        assert!((s.get(0, 0) - 0.2).abs() < 1e-12);
        assert!((s.get(0, 1) + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rsca_is_antisymmetric_in_rca_inversion() {
        // RSCA(r) = -RSCA(1/r): over-use by factor f mirrors under-use.
        for r in [0.1, 0.5, 2.0, 7.0] {
            let m = Matrix::from_vec(1, 1, vec![r]);
            let inv = Matrix::from_vec(1, 1, vec![1.0 / r]);
            let a = rsca_from_rca(&m).get(0, 0);
            let b = rsca_from_rca(&inv).get(0, 0);
            assert!((a + b).abs() < 1e-12, "r={r}");
        }
    }

    #[test]
    fn dead_row_yields_zero_rca_not_nan() {
        let t = Matrix::from_vec(2, 2, vec![0.0, 0.0, 10.0, 10.0]);
        let r = rca(&t);
        assert_eq!(r.row(0), &[0.0, 0.0]);
        assert!(!r.has_non_finite());
    }

    #[test]
    fn dead_column_yields_zero_rca_not_nan() {
        let t = Matrix::from_vec(2, 2, vec![10.0, 0.0, 10.0, 0.0]);
        let r = rca(&t);
        assert_eq!(r.col(1), vec![0.0, 0.0]);
        assert!(!r.has_non_finite());
    }

    #[test]
    fn filter_dead_rows_drops_and_indexes() {
        let t = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, 0.0, 3.0, 4.0]);
        let (live, idx) = filter_dead_rows(&t);
        assert_eq!(idx, vec![0, 2]);
        assert_eq!(live.rows(), 2);
        assert_eq!(live.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn outdoor_rca_references_indoor_shares() {
        // Indoor: service shares 0.75 / 0.25.
        let t_in = Matrix::from_vec(1, 2, vec![75.0, 25.0]);
        // Outdoor antenna with shares 0.5 / 0.5.
        let t_out = Matrix::from_vec(1, 2, vec![10.0, 10.0]);
        let r = outdoor_rca(&t_out, &t_in);
        assert!((r.get(0, 0) - 0.5 / 0.75).abs() < 1e-12);
        assert!((r.get(0, 1) - 0.5 / 0.25).abs() < 1e-12);
    }

    #[test]
    fn outdoor_rsca_in_bounds() {
        let t_in = Matrix::from_vec(2, 3, vec![5.0, 1.0, 4.0, 2.0, 8.0, 1.0]);
        let t_out = Matrix::from_vec(2, 3, vec![1.0, 1.0, 8.0, 3.0, 3.0, 3.0]);
        let s = outdoor_rsca(&t_out, &t_in);
        assert!(s.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn rca_row_with_fresh_sums_matches_full_pass_bitwise() {
        let mut rng = icn_stats::Rng::seed_from(42);
        let vals: Vec<f64> = (0..6 * 5).map(|_| rng.uniform(0.0, 100.0)).collect();
        let t = Matrix::from_vec(6, 5, vals);
        let full = rca(&t);
        let sums = rca_sums(&t);
        for i in 0..t.rows() {
            let row = rca_row_with(t.row(i), i, &sums);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), full.get(i, j).to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn rsca_row_with_matches_full_rsca() {
        let t = skewed();
        let full = rsca(&t);
        let sums = rca_sums(&t);
        for i in 0..2 {
            let row = rsca_row_with(t.row(i), i, &sums);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), full.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn delta_updated_sums_track_recomputed_sums() {
        let mut rng = icn_stats::Rng::seed_from(7);
        let vals: Vec<f64> = (0..8 * 4).map(|_| rng.uniform(0.0, 50.0)).collect();
        let mut t = Matrix::from_vec(8, 4, vals);
        let mut sums = rca_sums(&t);
        for step in 0..10 {
            let i = step % t.rows();
            let old: Vec<f64> = t.row(i).to_vec();
            let new: Vec<f64> = old.iter().map(|v| v + rng.uniform(0.0, 5.0)).collect();
            apply_row_update(&old, &new, i, &mut sums);
            for (j, &v) in new.iter().enumerate() {
                t.set(i, j, v);
            }
            let fresh = rca_sums(&t);
            assert!((sums.total - fresh.total).abs() < 1e-9);
            for (a, b) in sums.row_sums.iter().zip(&fresh.row_sums) {
                assert!((a - b).abs() < 1e-9);
            }
            for (a, b) in sums.col_sums.iter().zip(&fresh.col_sums) {
                assert!((a - b).abs() < 1e-9);
            }
            // And the RCA row computed from the delta-updated sums is close
            // to one from a fresh full pass.
            let approx = rca_row_with(t.row(i), i, &sums);
            let exact = rca_row_with(t.row(i), i, &fresh);
            for (a, b) in approx.iter().zip(&exact) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no traffic")]
    fn all_zero_matrix_panics() {
        rca(&Matrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn negative_traffic_panics() {
        rca(&Matrix::from_vec(1, 2, vec![1.0, -2.0]));
    }

    #[test]
    #[should_panic(expected = "service dimension mismatch")]
    fn outdoor_shape_mismatch_panics() {
        outdoor_rca(&Matrix::zeros(1, 2), &Matrix::from_vec(1, 3, vec![1.0; 3]));
    }
}
