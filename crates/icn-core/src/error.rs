//! Error types for the fallible pipeline API.
//!
//! The substrates treat programmer errors (shape mismatches, out-of-range
//! indices) as panics, in the spirit of simple robust systems code. Data
//! problems, however, are *expected* in a measurement pipeline — silent
//! antennas, empty feeds, non-finite values from upstream — so the
//! top-level [`crate::IcnStudy::try_run`] entry point reports them as
//! values.

use std::fmt;

/// A data-level failure of the study pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StudyError {
    /// The dataset contains no antennas at all.
    EmptyDataset,
    /// Fewer live (non-silent) antennas than clusters requested.
    TooFewAntennas {
        /// Live antennas found.
        live: usize,
        /// Clusters requested.
        k: usize,
    },
    /// The traffic matrix contains NaN or infinite entries.
    NonFiniteTraffic,
    /// The traffic matrix carries no traffic at all.
    NoTraffic,
    /// Invalid study configuration.
    BadConfig(String),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::EmptyDataset => write!(f, "dataset contains no antennas"),
            StudyError::TooFewAntennas { live, k } => write!(
                f,
                "only {live} live antennas but k = {k} clusters requested"
            ),
            StudyError::NonFiniteTraffic => {
                write!(f, "traffic matrix contains NaN/infinite entries")
            }
            StudyError::NoTraffic => write!(f, "traffic matrix carries no traffic"),
            StudyError::BadConfig(msg) => write!(f, "invalid study configuration: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StudyError::TooFewAntennas { live: 3, k: 9 };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('9'));
        assert!(StudyError::EmptyDataset.to_string().contains("no antennas"));
        assert!(StudyError::BadConfig("k = 0".into())
            .to_string()
            .contains("k = 0"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StudyError::NoTraffic);
    }
}
