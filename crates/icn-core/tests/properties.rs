//! Property-based tests for the RCA/RSCA transforms — the algebraic
//! identities Eq. (1), (2) and (5) must satisfy on arbitrary traffic.

use icn_core::{outdoor_rca, outdoor_rsca, rca, rsca, rsca_from_rca};
use icn_stats::{Matrix, Rng};
use proptest::prelude::*;

fn traffic_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..12, 2usize..10, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = Rng::seed_from(seed);
        let data: Vec<f64> = (0..n * m).map(|_| rng.lognormal(3.0, 2.0)).collect();
        Matrix::from_vec(n, m, data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rca_is_nonnegative_finite(t in traffic_matrix()) {
        let r = rca(&t);
        prop_assert!(!r.has_non_finite());
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn rca_share_weighted_mean_is_one_per_row(t in traffic_matrix()) {
        // Σ_j (T_ij / T_i) RCA_ij ... actually Σ_j share_ij · (global_j)⁻¹-
        // weighted: the clean identity is Σ_j RCA_ij · (T_j / T_tot) = 1
        // for every live antenna i (the RCA is a ratio of distributions).
        let r = rca(&t);
        let col = t.col_sums();
        let total = t.total();
        for i in 0..t.rows() {
            let s: f64 = (0..t.cols())
                .map(|j| r.get(i, j) * col[j] / total)
                .sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "row {}: {}", i, s);
        }
    }

    #[test]
    fn rsca_bounded(t in traffic_matrix()) {
        let s = rsca(&t);
        prop_assert!(s.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn rsca_monotone_in_rca(a in 0.0f64..50.0, b in 0.0f64..50.0) {
        let ra = Matrix::from_vec(1, 1, vec![a]);
        let rb = Matrix::from_vec(1, 1, vec![b]);
        let sa = rsca_from_rca(&ra).get(0, 0);
        let sb = rsca_from_rca(&rb).get(0, 0);
        if a < b {
            prop_assert!(sa < sb);
        }
    }

    #[test]
    fn rca_invariant_to_global_rescale(t in traffic_matrix(), scale in 0.01f64..100.0) {
        // Multiplying ALL traffic by a constant changes nothing: RCA is a
        // ratio of shares.
        let scaled = t.map(|v| v * scale);
        let r1 = rca(&t);
        let r2 = rca(&scaled);
        for (a, b) in r1.as_slice().iter().zip(r2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6_f64.max(a.abs() * 1e-9));
        }
    }

    #[test]
    fn rca_invariant_to_row_rescale(t in traffic_matrix(), scale in 0.1f64..10.0) {
        // Scaling one antenna's entire row changes its popularity, not its
        // profile — its own RCA row must stay identical up to the induced
        // change in the global denominator... With a single-row scale the
        // column sums change, so only test the dominant invariance: when
        // every row is scaled by the SAME factor (popularity-neutral).
        let scaled = t.map(|v| v * scale);
        let r1 = rca(&t);
        let r2 = rca(&scaled);
        for (a, b) in r1.as_slice().iter().zip(r2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_antenna_has_unit_rca(m in 2usize..10, seed in any::<u64>()) {
        // An antenna whose service mix equals the global mix has RCA = 1
        // everywhere. Build: every row proportional to the same vector.
        let mut rng = Rng::seed_from(seed);
        let base: Vec<f64> = (0..m).map(|_| rng.uniform(1.0, 10.0)).collect();
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| base.iter().map(|&v| v * (i + 1) as f64).collect())
            .collect();
        let t = Matrix::from_rows(&rows);
        let r = rca(&t);
        prop_assert!(r.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn outdoor_rca_identity_when_outdoor_equals_indoor_mix(t in traffic_matrix()) {
        // Referencing the indoor matrix against itself: an outdoor antenna
        // whose share vector equals the aggregate indoor mix gets RCA = 1.
        let col = t.col_sums();
        let t_out = Matrix::from_rows(std::slice::from_ref(&col));
        let r = outdoor_rca(&t_out, &t);
        for j in 0..t.cols() {
            prop_assert!((r.get(0, j) - 1.0).abs() < 1e-9);
        }
        let s = outdoor_rsca(&t_out, &t);
        prop_assert!(s.as_slice().iter().all(|&v| v.abs() < 1e-9));
    }
}
