//! Property-based tests for the RCA/RSCA transforms — the algebraic
//! identities Eq. (1), (2) and (5) must satisfy on arbitrary traffic —
//! driven by the deterministic [`icn_stats::check`] harness.

use icn_core::{filter_dead_rows, outdoor_rca, outdoor_rsca, rca, rsca, rsca_from_rca};
use icn_stats::check::{cases, len_in};
use icn_stats::{Matrix, Rng};

fn traffic_matrix(rng: &mut Rng) -> Matrix {
    let n = len_in(rng, 1, 12);
    let m = len_in(rng, 2, 10);
    let data: Vec<f64> = (0..n * m).map(|_| rng.lognormal(3.0, 2.0)).collect();
    Matrix::from_vec(n, m, data)
}

#[test]
fn rca_is_nonnegative_finite() {
    cases(64, |case, rng| {
        let t = traffic_matrix(rng);
        let r = rca(&t);
        assert!(!r.has_non_finite(), "case {case}");
        assert!(r.as_slice().iter().all(|&v| v >= 0.0), "case {case}");
    });
}

#[test]
fn rca_share_weighted_mean_is_one_per_row() {
    // The RCA is a ratio of distributions, so Σ_j RCA_ij · (T_j / T_tot)
    // = 1 for every live antenna i.
    cases(64, |case, rng| {
        let t = traffic_matrix(rng);
        let r = rca(&t);
        let col = t.col_sums();
        let total = t.total();
        for i in 0..t.rows() {
            let s: f64 = (0..t.cols()).map(|j| r.get(i, j) * col[j] / total).sum();
            assert!((s - 1.0).abs() < 1e-9, "case {case} row {i}: {s}");
        }
    });
}

#[test]
fn rsca_bounded() {
    cases(64, |case, rng| {
        let t = traffic_matrix(rng);
        let s = rsca(&t);
        assert!(
            s.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)),
            "case {case}"
        );
    });
}

#[test]
fn rsca_monotone_in_rca() {
    cases(64, |case, rng| {
        let a = rng.uniform(0.0, 50.0);
        let b = rng.uniform(0.0, 50.0);
        let sa = rsca_from_rca(&Matrix::from_vec(1, 1, vec![a])).get(0, 0);
        let sb = rsca_from_rca(&Matrix::from_vec(1, 1, vec![b])).get(0, 0);
        if a < b {
            assert!(sa < sb, "case {case}: rsca({a})={sa} !< rsca({b})={sb}");
        }
    });
}

#[test]
fn rca_invariant_to_global_rescale() {
    // Multiplying ALL traffic by a constant changes nothing: RCA is a
    // ratio of shares.
    cases(64, |case, rng| {
        let t = traffic_matrix(rng);
        let scale = rng.uniform(0.01, 100.0);
        let scaled = t.map(|v| v * scale);
        let r1 = rca(&t);
        let r2 = rca(&scaled);
        for (a, b) in r1.as_slice().iter().zip(r2.as_slice()) {
            assert!(
                (a - b).abs() < 1e-6_f64.max(a.abs() * 1e-9),
                "case {case}: {a} vs {b}"
            );
        }
    });
}

#[test]
fn rca_rsca_invariant_to_uniform_row_rescale() {
    // Scaling every row by the SAME factor is popularity-neutral: both
    // the RCA and the RSCA must stay identical.
    cases(64, |case, rng| {
        let t = traffic_matrix(rng);
        let scale = rng.uniform(0.1, 10.0);
        let scaled = t.map(|v| v * scale);
        let r1 = rca(&t);
        let r2 = rca(&scaled);
        for (a, b) in r1.as_slice().iter().zip(r2.as_slice()) {
            assert!((a - b).abs() < 1e-6, "case {case}: rca {a} vs {b}");
        }
        let s1 = rsca(&t);
        let s2 = rsca(&scaled);
        for (a, b) in s1.as_slice().iter().zip(s2.as_slice()) {
            assert!((a - b).abs() < 1e-6, "case {case}: rsca {a} vs {b}");
        }
    });
}

#[test]
fn uniform_antenna_has_unit_rca() {
    // An antenna whose service mix equals the global mix has RCA = 1
    // everywhere. Build: every row proportional to the same vector.
    cases(64, |case, rng| {
        let m = len_in(rng, 2, 10);
        let base: Vec<f64> = (0..m).map(|_| rng.uniform(1.0, 10.0)).collect();
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| base.iter().map(|&v| v * (i + 1) as f64).collect())
            .collect();
        let t = Matrix::from_rows(&rows);
        let r = rca(&t);
        assert!(
            r.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-9),
            "case {case}"
        );
    });
}

#[test]
fn outdoor_rca_identity_when_outdoor_equals_indoor_mix() {
    // Referencing the indoor matrix against itself: an outdoor antenna
    // whose share vector equals the aggregate indoor mix gets RCA = 1.
    cases(64, |case, rng| {
        let t = traffic_matrix(rng);
        let col = t.col_sums();
        let t_out = Matrix::from_rows(std::slice::from_ref(&col));
        let r = outdoor_rca(&t_out, &t);
        for j in 0..t.cols() {
            assert!((r.get(0, j) - 1.0).abs() < 1e-9, "case {case} col {j}");
        }
        let s = outdoor_rsca(&t_out, &t);
        assert!(s.as_slice().iter().all(|&v| v.abs() < 1e-9), "case {case}");
    });
}

#[test]
fn filter_dead_rows_never_passes_an_all_zero_row() {
    // Zero out a random subset of rows; the filter must drop exactly
    // those and report the surviving indices in order.
    cases(64, |case, rng| {
        let mut t = traffic_matrix(rng);
        let mut killed = Vec::new();
        for i in 0..t.rows() {
            if rng.uniform(0.0, 1.0) < 0.4 {
                for j in 0..t.cols() {
                    t.set(i, j, 0.0);
                }
                killed.push(i);
            }
        }
        let (live, idx) = filter_dead_rows(&t);
        assert_eq!(live.rows(), t.rows() - killed.len(), "case {case}");
        assert_eq!(live.rows(), idx.len(), "case {case}");
        for r in 0..live.rows() {
            let sum: f64 = live.row(r).iter().sum();
            assert!(sum > 0.0, "case {case}: all-zero row {r} survived");
            assert!(!killed.contains(&idx[r]), "case {case}: dead index kept");
        }
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "case {case}: order");
    });
}
