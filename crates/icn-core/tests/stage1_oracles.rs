//! Stage 1 (RCA/RSCA transform): differential oracle + metamorphic
//! invariants against `icn-testkit`.
//!
//! Oracle: the optimized transform shares marginals across cells; the
//! testkit reference recomputes every marginal per cell straight from
//! Eq. (1)/(2). Metamorphic: RCA is built to remove popularity bias, so it
//! must be *invariant* to uniform per-row rescales and *equivariant* to
//! row/column permutations.

use icn_core::{outdoor_rca, rca, rsca};
use icn_stats::check::{self, cases};
use icn_stats::Matrix;
use icn_testkit::{naive_rca, naive_rsca, permutation, permute_cols, permute_rows, scale_rows};

fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}: cell {i} differs: {x} vs {y}"
        );
    }
}

/// A random traffic matrix, occasionally with a dead row and a dead column
/// so the zero-handling paths are exercised too.
fn traffic(rng: &mut icn_stats::Rng) -> Matrix {
    let n = check::len_in(rng, 2, 12);
    let m = check::len_in(rng, 2, 10);
    let mut t = check::uniform_matrix(rng, n, m, 0.1, 50.0);
    if n > 2 && rng.chance(0.3) {
        let dead = rng.index(n);
        for j in 0..m {
            t.set(dead, j, 0.0);
        }
        check::record(format!("dead row {dead}"));
    }
    if m > 2 && rng.chance(0.3) {
        let dead = rng.index(m);
        for i in 0..n {
            t.set(i, dead, 0.0);
        }
        check::record(format!("dead col {dead}"));
    }
    t
}

#[test]
fn rca_matches_per_cell_oracle() {
    cases(48, |_, rng| {
        let t = traffic(rng);
        assert_matrix_close(&rca(&t), &naive_rca(&t), 1e-12, "rca vs naive");
    });
}

#[test]
fn rsca_matches_per_cell_oracle() {
    cases(48, |_, rng| {
        let t = traffic(rng);
        assert_matrix_close(&rsca(&t), &naive_rsca(&t), 1e-12, "rsca vs naive");
    });
}

#[test]
fn rca_invariant_to_uniform_rescale() {
    // Rescaling every antenna's traffic by the same positive factor (a unit
    // change, a sampling-rate change) cancels exactly in Eq. (1): both the
    // row share and the reference column share are ratios.
    cases(48, |_, rng| {
        let t = traffic(rng);
        let factor = rng.uniform(0.05, 20.0);
        check::record(format!("uniform factor {factor}"));
        let factors = vec![factor; t.rows()];
        let scaled = scale_rows(&t, &factors);
        assert_matrix_close(&rca(&t), &rca(&scaled), 1e-9, "rca uniform rescale");
        assert_matrix_close(&rsca(&t), &rsca(&scaled), 1e-9, "rsca uniform rescale");
    });
}

#[test]
fn outdoor_rca_invariant_to_per_row_rescale() {
    // Eq. (5) references each outdoor antenna against the *indoor* service
    // mix, so multiplying one outdoor antenna's traffic by any positive
    // factor (popularity change, same mix) must not move its RCA at all.
    // (Plain indoor RCA only enjoys this per-row invariance approximately,
    // because each row also feeds the shared column marginals.)
    cases(48, |_, rng| {
        let t_in = traffic(rng);
        let rows = check::len_in(rng, 2, 8);
        let t_out = check::uniform_matrix(rng, rows, t_in.cols(), 0.1, 50.0);
        let factors: Vec<f64> = (0..rows).map(|_| rng.uniform(0.05, 20.0)).collect();
        check::record(format!("outdoor row factors {factors:?}"));
        let scaled = scale_rows(&t_out, &factors);
        assert_matrix_close(
            &outdoor_rca(&t_out, &t_in),
            &outdoor_rca(&scaled, &t_in),
            1e-9,
            "outdoor rca row-rescale",
        );
    });
}

#[test]
fn rca_equivariant_to_row_permutation() {
    // Antenna order is arbitrary: transforming a shuffled matrix must equal
    // shuffling the transformed matrix.
    cases(32, |_, rng| {
        let t = traffic(rng);
        let p = permutation(rng, t.rows());
        check::record(format!("row perm {p:?}"));
        let lhs = rsca(&permute_rows(&t, &p));
        let rhs = permute_rows(&rsca(&t), &p);
        assert_matrix_close(&lhs, &rhs, 1e-12, "rsca row-permutation");
    });
}

#[test]
fn rca_equivariant_to_column_permutation() {
    // Service order is arbitrary too (the catalogue could list services in
    // any order): the transform must commute with column shuffles.
    cases(32, |_, rng| {
        let t = traffic(rng);
        let p = permutation(rng, t.cols());
        check::record(format!("col perm {p:?}"));
        let lhs = rsca(&permute_cols(&t, &p));
        let rhs = permute_cols(&rsca(&t), &p);
        assert_matrix_close(&lhs, &rhs, 1e-12, "rsca col-permutation");
    });
}
