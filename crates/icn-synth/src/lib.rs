//! # icn-synth — synthetic nationwide ICN measurement substrate
//!
//! The paper analyses a proprietary measurement feed from a French mobile
//! network operator: per-hour, per-service traffic at 4,762 indoor antennas
//! over two months, plus ~20,000 nearby outdoor antennas. That data cannot
//! be redistributed, so this crate builds the closest synthetic equivalent:
//! a generative model that plants exactly the latent structure the paper
//! reports, with realistic heavy-tailed volumes, noise, calendar effects
//! and event schedules — so that the analysis pipeline (`icn-core` and its
//! substrates) must *recover* the structure rather than replay it.
//!
//! Components:
//!
//! * [`services`] — the 73-service catalog with categories, popularity and
//!   per-engagement volume scales (streaming ≫ messaging).
//! * [`environments`] — the eleven indoor environment types with the exact
//!   Table 1 antenna counts, plus the Paris/provincial geography.
//! * [`archetypes`] — the nine planted usage archetypes matching the
//!   paper's clusters 0–8 (service affinities, temporal templates, volume
//!   regimes, dendrogram groups).
//! * [`calendar`] — the 21 Nov 2022 – 24 Jan 2023 study period, weekends,
//!   holidays and the 19 Jan 2023 national strike.
//! * [`temporal`] — commute/event/office/retail hour-weight templates,
//!   per-site event schedules (NBA night, 4-day Lyon expo) and the
//!   per-service modulations behind Figure 11.
//! * [`antennas`] — population generation: sites, names with environment
//!   keywords, environment-conditional archetype mixtures.
//! * [`traffic`] — the totals matrix `T` and consistent hourly series.
//! * [`outdoor`] — the outdoor macro population (general-use mixtures with
//!   faint local leakage) for the Section 5.3 comparison.
//! * [`mining`] — the antenna-name → environment extraction step.
//! * [`noise`] — fault injection (dead antennas, DPI misclassification,
//!   NaN poisoning) for robustness tests.
//! * [`dataset`] — one-call campaign assembly + CSV/JSON export.
//! * [`signals`] — ground-truth labels for the planted temporal anomalies
//!   (strike, events, holidays), the known-signal oracle for `icn-forecast`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antennas;
pub mod archetypes;
pub mod calendar;
pub mod config;
pub mod dataset;
pub mod emerging;
pub mod environments;
pub mod geo;
pub mod mining;
pub mod noise;
pub mod outdoor;
pub mod record_stream;
pub mod services;
pub mod signals;
pub mod temporal;
pub mod traffic;

pub use antennas::Antenna;
pub use archetypes::{Archetype, Group};
pub use calendar::{Date, StudyCalendar, Weekday};
pub use config::SynthConfig;
pub use dataset::Dataset;
pub use environments::{City, Environment};
pub use geo::{haversine_m, Coord, RadioTech};
pub use record_stream::{adversarial_record_stream, record_stream, RecordStream};
pub use services::{Category, Service};
pub use signals::{
    antenna_planted_hours, cluster_planted_hours, cluster_planted_hours_any, PlantedHours,
    BURST_MIN_RATIO, DIP_MAX_RATIO,
};
