//! Fault and noise injection for robustness testing.
//!
//! Real measurement feeds are imperfect: probes drop hours, antennas go
//! silent, classifiers misattribute sessions. These injectors corrupt a
//! totals matrix in controlled ways so that tests can verify the pipeline's
//! guards (dead-row filtering, NaN detection) and quantify the clustering's
//! robustness to classifier noise — in the spirit of smoltcp's
//! fault-injection example options.

use icn_stats::{Matrix, Rng};

/// Zeroes out an entire antenna row (a silent antenna / dead probe) for a
/// random `fraction` of rows. Returns the indices of the killed rows.
pub fn kill_rows(t: &mut Matrix, fraction: f64, rng: &mut Rng) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "kill_rows: bad fraction");
    let n = t.rows();
    let k = ((n as f64) * fraction).round() as usize;
    let victims = rng.sample_indices(n, k.min(n));
    for &r in &victims {
        for v in t.row_mut(r) {
            *v = 0.0;
        }
    }
    victims
}

/// Reassigns a `fraction` of each row's traffic to a random other service —
/// modelling DPI classifier confusion. Row totals are preserved.
pub fn misclassify(t: &mut Matrix, fraction: f64, rng: &mut Rng) {
    assert!((0.0..=1.0).contains(&fraction), "misclassify: bad fraction");
    let cols = t.cols();
    if cols < 2 {
        return;
    }
    for r in 0..t.rows() {
        for c in 0..cols {
            let moved = t.get(r, c) * fraction;
            if moved <= 0.0 {
                continue;
            }
            let mut dst = rng.index(cols);
            if dst == c {
                dst = (dst + 1) % cols;
            }
            t.set(r, c, t.get(r, c) - moved);
            t.set(r, dst, t.get(r, dst) + moved);
        }
    }
}

/// Multiplies every entry by `exp(N(0, sigma))` — heavy multiplicative
/// measurement noise.
pub fn multiplicative_noise(t: &mut Matrix, sigma: f64, rng: &mut Rng) {
    assert!(sigma >= 0.0, "multiplicative_noise: negative sigma");
    t.map_inplace(|v| v * rng.lognormal(0.0, sigma));
}

/// Poisons `count` random entries with NaN — used to test the pipeline's
/// non-finite guard.
pub fn poison_nan(t: &mut Matrix, count: usize, rng: &mut Rng) {
    for _ in 0..count {
        let r = rng.index(t.rows());
        let c = rng.index(t.cols());
        t.set(r, c, f64::NAN);
    }
}

/// Indices of rows whose total traffic is zero (dead antennas that must be
/// excluded before RCA, which would otherwise divide by zero).
pub fn dead_rows(t: &Matrix) -> Vec<usize> {
    t.row_sums()
        .iter()
        .enumerate()
        .filter(|(_, &s)| s <= 0.0)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat() -> Matrix {
        Matrix::from_vec(4, 3, (1..=12).map(|x| x as f64).collect())
    }

    #[test]
    fn kill_rows_zeroes_victims() {
        let mut t = mat();
        let mut rng = Rng::seed_from(1);
        let victims = kill_rows(&mut t, 0.5, &mut rng);
        assert_eq!(victims.len(), 2);
        for &r in &victims {
            assert!(t.row(r).iter().all(|&v| v == 0.0));
        }
        assert_eq!(dead_rows(&t), {
            let mut v = victims.clone();
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn misclassify_preserves_row_totals() {
        let mut t = mat();
        let before = t.row_sums();
        let mut rng = Rng::seed_from(2);
        misclassify(&mut t, 0.3, &mut rng);
        let after = t.row_sums();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9);
        }
        // But the matrix did change.
        assert_ne!(t, mat());
    }

    #[test]
    fn misclassify_single_column_noop() {
        let mut t = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
        let mut rng = Rng::seed_from(3);
        misclassify(&mut t, 0.5, &mut rng);
        assert_eq!(t.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn multiplicative_noise_keeps_positivity() {
        let mut t = mat();
        let mut rng = Rng::seed_from(4);
        multiplicative_noise(&mut t, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn noise_sigma_zero_is_identity() {
        let mut t = mat();
        let mut rng = Rng::seed_from(5);
        multiplicative_noise(&mut t, 0.0, &mut rng);
        assert_eq!(t, mat());
    }

    #[test]
    fn poison_nan_detected() {
        let mut t = mat();
        let mut rng = Rng::seed_from(6);
        assert!(!t.has_non_finite());
        poison_nan(&mut t, 3, &mut rng);
        assert!(t.has_non_finite());
    }

    #[test]
    fn dead_rows_empty_for_healthy_matrix() {
        assert!(dead_rows(&mat()).is_empty());
    }
}
