//! Serializes a synthetic dataset into an hourly record stream.
//!
//! [`RecordStream`] is the bridge between the batch world (the dataset's
//! totals matrix `T`) and the streaming world (`icn-ingest`): it emits one
//! [`HourlyRecord`] per (hour, antenna, service) cell of a study window,
//! hour-major, shaped by the same temporal templates the generator uses for
//! hourly series.
//!
//! ## The exactness contract
//!
//! The headline invariant of the ingest subsystem is that streaming the
//! full synthetic stream reproduces `T` **bit-identically**. Floating-point
//! addition is not associative, so "the per-hour values sum to the total"
//! cannot be left to chance: for each cell the stream *simulates the exact
//! fold the ingest accumulator will perform* (adding each hour's volume in
//! ascending hour order) and then chooses the final hour's volume `d` such
//! that `fold ⊕ d == total` in f64 arithmetic, where `⊕` is f64 addition.
//! The candidate `d = total − fold` is off by at most an ulp (and exact by
//! Sterbenz's lemma once the fold has reached half the total), so a short
//! nudge search over neighbouring bit patterns always lands the identity.
//!
//! The downlink/uplink split is exact by the same lemma: `dl = fl(f·v)`
//! with `f ∈ [0.5, 0.95)` lies in `[v/2, v]`, hence `ul = v − dl` is
//! computed exactly and `dl + ul` rounds back to `v` bit-for-bit.
//!
//! Because record values depend on this running fold, skipping records on
//! resume must *replay* generation — [`RecordSource::skip_records`]'s
//! pull-and-discard default does exactly that, and `RecordStream`
//! deliberately does not override it with a seek.

use icn_ingest::{
    FaultConfig, FaultySource, HourlyRecord, IngestSchema, RecordSource, SourceError,
};
use icn_stats::rng::mix64;
use icn_stats::{par, Matrix};

use crate::calendar::{Date, StudyCalendar};
use crate::dataset::Dataset;
use crate::services::Service;
use crate::temporal::{service_modulation, template_weight, EventSchedule, TemplateKind};
use crate::traffic::event_schedule;

/// A deterministic hourly record stream over a study window, emitting
/// `antennas × services` records per hour in (hour, antenna, service)
/// order.
pub struct RecordStream {
    services: Vec<Service>,
    kinds: Vec<TemplateKind>,
    schedules: Vec<EventSchedule>,
    window: StudyCalendar,
    /// Target totals (the dataset's `T` restricted to nothing — the full
    /// matrix; the window only shapes how each total is spread over hours).
    totals: Matrix,
    /// Per-cell sum of hourly weights over the window.
    weight_sum: Matrix,
    /// Per-cell simulated ingest fold (ascending-hour partial sums).
    folded: Matrix,
    split_seed: u64,
    hours: usize,
    pos: u64,
    end: u64,
    cached_cell: Option<(usize, usize)>,
    cached_tw: f64,
    cached_date: Date,
}

/// Builds the record stream for `dataset` over `window`. The stream
/// re-derives each antenna's event schedule from the dataset's root RNG,
/// so it is fully determined by `(dataset.config.seed, window)`.
pub fn record_stream(dataset: &Dataset, window: &StudyCalendar) -> RecordStream {
    let n = dataset.num_antennas();
    let m = dataset.num_services();
    let hours = window.num_hours();
    let kinds: Vec<TemplateKind> = dataset
        .antennas
        .iter()
        .map(|a| a.archetype.template())
        .collect();
    let schedules: Vec<EventSchedule> = dataset
        .antennas
        .iter()
        .map(|a| event_schedule(a, window, dataset.root_rng()))
        .collect();
    let days: Vec<(usize, Date)> = window.iter_days().collect();
    let services = dataset.services.clone();

    // Per-cell weight integral W[i][j] = Σ_h tw(i,h) · sm(i,j,h). Computed
    // per antenna in ascending hour order — sequentially within a row, so
    // the value is identical at any thread count.
    let rows: Vec<Vec<f64>> = par::map_indexed(n, |i| {
        let kind = kinds[i];
        let sched = &schedules[i];
        let mut wsum = vec![0.0; m];
        for &(di, date) in &days {
            for hod in 0..24 {
                let tw = template_weight(kind, sched, date, di, hod);
                for (j, svc) in services.iter().enumerate() {
                    wsum[j] += tw * service_modulation(kind, sched, svc, date, di, hod);
                }
            }
        }
        wsum
    });
    let mut weight_sum = Matrix::zeros(n, m);
    for (i, row) in rows.iter().enumerate() {
        for (j, &w) in row.iter().enumerate() {
            weight_sum.set(i, j, w);
        }
    }

    let mut seed_rng = dataset.root_rng().fork(0xD15717_u64);
    let split_seed = seed_rng.next_u64();

    RecordStream {
        services,
        kinds,
        schedules,
        window: window.clone(),
        totals: dataset.indoor_totals.clone(),
        weight_sum,
        folded: Matrix::zeros(n, m),
        split_seed,
        hours,
        pos: 0,
        end: hours as u64 * n as u64 * m as u64,
        cached_cell: None,
        cached_tw: 0.0,
        cached_date: window.start(),
    }
}

/// Adversarial mode: the same stream wrapped in a deterministic fault
/// injector.
pub fn adversarial_record_stream(
    dataset: &Dataset,
    window: &StudyCalendar,
    faults: FaultConfig,
) -> FaultySource<RecordStream> {
    FaultySource::new(record_stream(dataset, window), faults)
}

impl RecordStream {
    /// The ingest schema this stream conforms to.
    pub fn schema(&self) -> IngestSchema {
        IngestSchema {
            antennas: self.totals.rows() as u32,
            services: self.totals.cols() as u32,
            hours: self.hours as u32,
        }
    }

    /// Total records a full drain emits.
    pub fn total_records(&self) -> u64 {
        self.end
    }

    /// Records already emitted.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Wraps this stream in a fault injector.
    pub fn with_faults(self, faults: FaultConfig) -> FaultySource<RecordStream> {
        FaultySource::new(self, faults)
    }

    fn emit_one(&mut self) -> HourlyRecord {
        let n = self.totals.rows() as u64;
        let m = self.totals.cols() as u64;
        let h = (self.pos / (n * m)) as usize;
        let rest = self.pos % (n * m);
        let i = (rest / m) as usize;
        let j = (rest % m) as usize;
        self.pos += 1;

        let (day, hod) = (h / 24, h % 24);
        if self.cached_cell != Some((h, i)) {
            self.cached_date = self.window.date(day);
            self.cached_tw = template_weight(
                self.kinds[i],
                &self.schedules[i],
                self.cached_date,
                day,
                hod,
            );
            self.cached_cell = Some((h, i));
        }

        let total = self.totals.get(i, j);
        let v = if total <= 0.0 {
            0.0
        } else if h + 1 == self.hours {
            exact_residual(self.folded.get(i, j), total)
        } else {
            let w = self.cached_tw
                * service_modulation(
                    self.kinds[i],
                    &self.schedules[i],
                    &self.services[j],
                    self.cached_date,
                    day,
                    hod,
                );
            let ws = self.weight_sum.get(i, j);
            if ws > 0.0 {
                total * w / ws
            } else {
                0.0
            }
        };
        // Simulate the ingest fold: the accumulator will add per-hour
        // volumes in this exact (ascending hour) order.
        self.folded.set(i, j, self.folded.get(i, j) + v);

        let (dl, ul) = split_volume(v, self.split_seed, i, j, h);
        HourlyRecord {
            antenna: i as u32,
            service: j as u32,
            hour: h as u32,
            bytes_dl: dl,
            bytes_ul: ul,
        }
    }
}

impl RecordSource for RecordStream {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<HourlyRecord>, SourceError> {
        let remaining = (self.end - self.pos) as usize;
        let take = max.min(remaining);
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            out.push(self.emit_one());
        }
        Ok(out)
    }
}

/// Splits `v` into `(dl, ul)` such that `dl + ul` rounds back to `v`
/// bit-exactly: `dl = fl(f·v)` with a deterministic `f ∈ [0.5, 0.95)`
/// keeps `dl ∈ [v/2, v]`, so `ul = v − dl` is exact by Sterbenz's lemma.
fn split_volume(v: f64, seed: u64, antenna: usize, service: usize, hour: usize) -> (f64, f64) {
    if v <= 0.0 {
        return (0.0, 0.0);
    }
    let cell_tag = ((antenna as u64) << 40) ^ ((service as u64) << 20) ^ hour as u64;
    let u = (mix64(seed, cell_tag) >> 11) as f64 / 9_007_199_254_740_992.0; // 2^53
    let f = 0.5 + 0.45 * u;
    let dl = f * v;
    let ul = v - dl;
    (dl, ul)
}

/// Finds `d ≥ 0` with `fl(s + d) == total` exactly. The candidate
/// `total − s` is within an ulp (and exact once `s ≥ total/2`); nudging
/// through adjacent bit patterns closes the gap in a handful of steps.
fn exact_residual(s: f64, total: f64) -> f64 {
    if s == total {
        return 0.0;
    }
    let mut d = total - s;
    assert!(
        d.is_finite() && d > 0.0,
        "record stream overshoot: fold {s} vs total {total}"
    );
    for _ in 0..128 {
        let f = s + d;
        if f == total {
            return d;
        }
        d = if f < total {
            f64::from_bits(d.to_bits() + 1)
        } else {
            f64::from_bits(d.to_bits() - 1)
        };
        assert!(
            d > 0.0,
            "residual search left (0, ∞) for fold {s}, total {total}"
        );
    }
    panic!("no exact residual for fold {s}, total {total}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_residual_closes_the_fold() {
        for (s, total) in [
            (0.75, 1.0),
            (1.0 / 3.0, 0.5),
            (0.1 + 0.2, 0.4),
            (1e15, 1e15 + 3.0),
            (0.0, 42.0),
            (7.25, 7.25),
        ] {
            let d = exact_residual(s, total);
            assert!(d >= 0.0);
            assert_eq!((s + d).to_bits(), total.to_bits(), "s={s} total={total}");
        }
    }

    #[test]
    fn split_volume_round_trips_bitwise() {
        let mut state = 0x9e3779b97f4a7c15u64;
        for k in 0..1000usize {
            let v =
                f64::from_bits((icn_stats::rng::splitmix64(&mut state) >> 12) | (1023u64 << 52))
                    - 1.0; // uniform in [0, 1)
            let v = v * 1e7;
            let (dl, ul) = split_volume(v, 0xABCD, k % 17, k % 5, k % 72);
            assert!(dl >= 0.0 && ul >= 0.0, "negative split for v={v}");
            assert_eq!((dl + ul).to_bits(), v.to_bits(), "v={v}");
        }
        assert_eq!(split_volume(0.0, 1, 0, 0, 0), (0.0, 0.0));
    }
}
