//! Indoor environment types and cities.
//!
//! Section 5.2.1 of the paper identifies **eleven categories** of indoor
//! locations by mining antenna names; Table 1 gives the antenna count per
//! category (summing to the study's 4,762 indoor antennas). This module
//! encodes the taxonomy, the exact Table 1 counts, and the city geography
//! the paper reasons about (Paris vs the provincial metro cities of Lille,
//! Lyon, Rennes and Toulouse).

/// One of the paper's eleven indoor environment types (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Environment {
    /// Underground railway stations (Paris + Lille, Lyon, Rennes, Toulouse).
    Metro,
    /// National and regional railway stations.
    TrainStation,
    /// Airports (CDG, Orly, and regional aerodromes).
    Airport,
    /// Corporate offices and industrial facilities.
    Workspace,
    /// Malls, shopping centres, department stores, MNO retail shops.
    CommercialCenter,
    /// Major sport event venues.
    Stadium,
    /// Corporate, cultural and music event venues.
    ExpoCenter,
    /// Accommodation units.
    Hotel,
    /// Healthcare units.
    Hospital,
    /// Highway and train tunnels.
    Tunnel,
    /// Universities, museums, administration buildings.
    PublicBuilding,
}

impl Environment {
    /// All environments in Table 1 column order.
    pub const ALL: [Environment; 11] = [
        Environment::Metro,
        Environment::TrainStation,
        Environment::Airport,
        Environment::Workspace,
        Environment::CommercialCenter,
        Environment::Stadium,
        Environment::ExpoCenter,
        Environment::Hotel,
        Environment::Hospital,
        Environment::Tunnel,
        Environment::PublicBuilding,
    ];

    /// Antenna count per environment, exactly as reported in Table 1
    /// (`N_env`). The total is 4,762 — the paper's `N`.
    pub fn paper_count(&self) -> usize {
        match self {
            Environment::Metro => 1794,
            Environment::TrainStation => 434,
            Environment::Airport => 187,
            Environment::Workspace => 774,
            Environment::CommercialCenter => 469,
            Environment::Stadium => 451,
            Environment::ExpoCenter => 230,
            Environment::Hotel => 28,
            Environment::Hospital => 53,
            Environment::Tunnel => 220,
            Environment::PublicBuilding => 122,
        }
    }

    /// Human-readable label (used in tables and Sankey output).
    pub fn label(&self) -> &'static str {
        match self {
            Environment::Metro => "Metro",
            Environment::TrainStation => "Trains",
            Environment::Airport => "Airports",
            Environment::Workspace => "Workspaces",
            Environment::CommercialCenter => "Commercial",
            Environment::Stadium => "Stadiums",
            Environment::ExpoCenter => "Expo centers",
            Environment::Hotel => "Hotels",
            Environment::Hospital => "Hospitals",
            Environment::Tunnel => "Tunnels",
            Environment::PublicBuilding => "Public buildings",
        }
    }

    /// Table 1 "Cases" description.
    pub fn cases(&self) -> &'static str {
        match self {
            Environment::Metro => "Paris, Lille, Lyon, Rennes & Toulouse underground railways",
            Environment::TrainStation => "National & regional railway stations",
            Environment::Airport => "France's major airways",
            Environment::Workspace => "Corporate offices, industrial facilities",
            Environment::CommercialCenter => "Malls, shopping stores",
            Environment::Stadium => "Major sport event venues",
            Environment::ExpoCenter => "Corporate, cultural & music event venues",
            Environment::Hotel => "Accommodation units",
            Environment::Hospital => "Healthcare units",
            Environment::Tunnel => "Highway & train tunnels",
            Environment::PublicBuilding => "Universities, museums",
        }
    }

    /// Keywords that appear in site names for this environment; the
    /// name-mining extractor (Section 5.2.1's string manipulation step)
    /// recovers the environment from these.
    pub fn name_keywords(&self) -> &'static [&'static str] {
        match self {
            Environment::Metro => &["METRO", "RER"],
            Environment::TrainStation => &["GARE"],
            Environment::Airport => &["AEROPORT", "TERMINAL"],
            Environment::Workspace => &["SIEGE", "BUREAUX", "USINE", "CAMPUS-ENTREPRISE"],
            Environment::CommercialCenter => &["CENTRE-COMMERCIAL", "MAGASIN", "BOUTIQUE"],
            Environment::Stadium => &["STADE", "ARENA"],
            Environment::ExpoCenter => &["EXPO", "PALAIS-CONGRES"],
            Environment::Hotel => &["HOTEL"],
            Environment::Hospital => &["HOPITAL", "CHU"],
            Environment::Tunnel => &["TUNNEL"],
            Environment::PublicBuilding => &["UNIVERSITE", "MUSEE", "MAIRIE"],
        }
    }
}

/// Total indoor antennas in the paper (`N`).
pub const PAPER_TOTAL_ANTENNAS: usize = 4762;

/// Geography the paper distinguishes: Paris (plus suburbs) versus the
/// provincial cities (the four non-capital metro cities and others).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum City {
    /// Paris and its suburbs (including RER reach).
    Paris,
    /// Lille (provincial metro city).
    Lille,
    /// Lyon (provincial metro city; hosts the Eurexpo convention centre).
    Lyon,
    /// Rennes (provincial metro city).
    Rennes,
    /// Toulouse (provincial metro city).
    Toulouse,
    /// Any other French city.
    Other,
}

impl City {
    /// True for Paris and its suburbs.
    pub fn is_paris(&self) -> bool {
        matches!(self, City::Paris)
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            City::Paris => "Paris",
            City::Lille => "Lille",
            City::Lyon => "Lyon",
            City::Rennes => "Rennes",
            City::Toulouse => "Toulouse",
            City::Other => "Other",
        }
    }

    /// The provincial metro cities (cluster 7 of the paper consists solely
    /// of these).
    pub const PROVINCIAL_METRO: [City; 4] = [City::Lille, City::Lyon, City::Rennes, City::Toulouse];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_sum_to_paper_n() {
        let total: usize = Environment::ALL.iter().map(|e| e.paper_count()).sum();
        assert_eq!(total, PAPER_TOTAL_ANTENNAS);
    }

    #[test]
    fn metro_is_largest_env() {
        let max = Environment::ALL
            .iter()
            .max_by_key(|e| e.paper_count())
            .unwrap();
        assert_eq!(*max, Environment::Metro);
    }

    #[test]
    fn hotels_are_smallest_env() {
        let min = Environment::ALL
            .iter()
            .min_by_key(|e| e.paper_count())
            .unwrap();
        assert_eq!(*min, Environment::Hotel);
        assert_eq!(min.paper_count(), 28);
    }

    #[test]
    fn keywords_nonempty_and_distinctive() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for e in Environment::ALL {
            let kws = e.name_keywords();
            assert!(!kws.is_empty(), "{:?} has no keywords", e);
            for kw in kws {
                assert!(seen.insert(*kw), "keyword {kw} reused across environments");
            }
        }
    }

    #[test]
    fn paris_flag() {
        assert!(City::Paris.is_paris());
        for c in City::PROVINCIAL_METRO {
            assert!(!c.is_paris());
        }
    }

    #[test]
    fn labels_unique() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = Environment::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), 11);
    }
}
