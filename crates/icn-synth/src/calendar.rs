//! Study-period calendar.
//!
//! The paper's measurement campaign runs from **21 November 2022** to
//! **24 January 2023** (65 days), and the temporal analysis of Section 6
//! zooms into **4–24 January 2023** (21 days). This module provides a
//! minimal proleptic-Gregorian date type (no external time crate needed; we
//! only ever handle this fixed window), weekday computation, and the special
//! days the paper calls out: weekends, the Christmas/New-Year holidays, and
//! the **national general strike of 19 January 2023** whose traffic collapse
//! is visible in Figure 10.

/// Day of week.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// True for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }

    /// Short English label (used in heatmap axes).
    pub fn label(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

/// A calendar date (proleptic Gregorian).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Date {
    /// Four-digit year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl Date {
    /// Constructs a date, validating the month/day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "Date: bad month {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "Date: bad day {day} for {year}-{month:02}"
        );
        Date { year, month, day }
    }

    /// Days since 1970-01-01 (can be negative). Standard civil-days
    /// algorithm (Howard Hinnant's `days_from_civil`).
    pub fn days_from_epoch(&self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Date from days since the Unix epoch (inverse of
    /// [`Date::days_from_epoch`]).
    pub fn from_epoch_days(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
        Date::new((y + i64::from(m <= 2)) as i32, m, d)
    }

    /// Weekday of this date.
    pub fn weekday(&self) -> Weekday {
        // 1970-01-01 was a Thursday.
        let z = self.days_from_epoch().rem_euclid(7);
        match z {
            0 => Weekday::Thu,
            1 => Weekday::Fri,
            2 => Weekday::Sat,
            3 => Weekday::Sun,
            4 => Weekday::Mon,
            5 => Weekday::Tue,
            _ => Weekday::Wed,
        }
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(&self, n: i64) -> Date {
        Date::from_epoch_days(self.days_from_epoch() + n)
    }

    /// `YYYY-MM-DD` string.
    pub fn iso(&self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("validated month"),
    }
}

/// The measurement study calendar: the recording period, the temporal-zoom
/// window of Section 6, and the special days.
#[derive(Clone, Debug)]
pub struct StudyCalendar {
    start: Date,
    days: usize,
}

impl StudyCalendar {
    /// The paper's recording period: 2022-11-21 .. 2023-01-24 inclusive
    /// (65 days).
    pub fn paper_period() -> Self {
        StudyCalendar {
            start: Date::new(2022, 11, 21),
            days: 65,
        }
    }

    /// The temporal-analysis window of Section 6: 2023-01-04 .. 2023-01-24
    /// inclusive (21 days).
    pub fn temporal_window() -> Self {
        StudyCalendar {
            start: Date::new(2023, 1, 4),
            days: 21,
        }
    }

    /// A custom window (used by scaled-down tests).
    pub fn custom(start: Date, days: usize) -> Self {
        assert!(days > 0, "StudyCalendar: zero-length period");
        StudyCalendar { start, days }
    }

    /// First day of the period.
    pub fn start(&self) -> Date {
        self.start
    }

    /// Number of days in the period.
    pub fn num_days(&self) -> usize {
        self.days
    }

    /// Number of hourly slots (`num_days * 24`).
    pub fn num_hours(&self) -> usize {
        self.days * 24
    }

    /// Date of the `i`-th day of the period.
    pub fn date(&self, i: usize) -> Date {
        assert!(i < self.days, "StudyCalendar::date out of range");
        self.start.plus_days(i as i64)
    }

    /// Iterator over `(day_index, Date)`.
    pub fn iter_days(&self) -> impl Iterator<Item = (usize, Date)> + '_ {
        (0..self.days).map(move |i| (i, self.date(i)))
    }

    /// Day index of a date inside this period, if any.
    pub fn day_index(&self, d: Date) -> Option<usize> {
        let off = d.days_from_epoch() - self.start.days_from_epoch();
        if off >= 0 && (off as usize) < self.days {
            Some(off as usize)
        } else {
            None
        }
    }

    /// The national general strike day the paper highlights (19 Jan 2023).
    pub fn strike_day() -> Date {
        Date::new(2023, 1, 19)
    }

    /// True if `d` is a public-holiday-like day inside the period
    /// (Christmas, New Year) during which commute traffic collapses.
    pub fn is_holiday(d: Date) -> bool {
        matches!(
            (d.month, d.day),
            (12, 24) | (12, 25) | (12, 26) | (12, 31) | (1, 1)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_anchor() {
        assert_eq!(Date::new(1970, 1, 1).days_from_epoch(), 0);
        assert_eq!(Date::new(1970, 1, 2).days_from_epoch(), 1);
        assert_eq!(Date::new(1969, 12, 31).days_from_epoch(), -1);
    }

    #[test]
    fn round_trip_epoch_days() {
        for z in [-1000i64, 0, 1, 19_000, 19_500] {
            assert_eq!(Date::from_epoch_days(z).days_from_epoch(), z);
        }
    }

    #[test]
    fn known_weekdays() {
        // 2023-01-19 (the strike day) was a Thursday.
        assert_eq!(Date::new(2023, 1, 19).weekday(), Weekday::Thu);
        // 2022-11-21 (study start) was a Monday.
        assert_eq!(Date::new(2022, 11, 21).weekday(), Weekday::Mon);
        // 2023-01-07/08 is the weekend the paper mentions.
        assert!(Date::new(2023, 1, 7).weekday().is_weekend());
        assert!(Date::new(2023, 1, 8).weekday().is_weekend());
        assert!(!Date::new(2023, 1, 9).weekday().is_weekend());
    }

    #[test]
    fn leap_year_february() {
        assert_eq!(Date::new(2024, 2, 29).plus_days(1), Date::new(2024, 3, 1));
    }

    #[test]
    #[should_panic(expected = "bad day")]
    fn invalid_feb_29_panics() {
        Date::new(2023, 2, 29);
    }

    #[test]
    fn paper_period_covers_both_endpoints() {
        let cal = StudyCalendar::paper_period();
        assert_eq!(cal.date(0), Date::new(2022, 11, 21));
        assert_eq!(cal.date(cal.num_days() - 1), Date::new(2023, 1, 24));
        assert_eq!(cal.num_hours(), 65 * 24);
    }

    #[test]
    fn temporal_window_matches_section6() {
        let cal = StudyCalendar::temporal_window();
        assert_eq!(cal.date(0), Date::new(2023, 1, 4));
        assert_eq!(cal.date(20), Date::new(2023, 1, 24));
        assert!(cal.day_index(StudyCalendar::strike_day()).is_some());
    }

    #[test]
    fn day_index_inverse_of_date() {
        let cal = StudyCalendar::paper_period();
        for (i, d) in cal.iter_days() {
            assert_eq!(cal.day_index(d), Some(i));
        }
        assert_eq!(cal.day_index(Date::new(2022, 11, 20)), None);
        assert_eq!(cal.day_index(Date::new(2023, 1, 25)), None);
    }

    #[test]
    fn strike_inside_paper_period() {
        let cal = StudyCalendar::paper_period();
        assert!(cal.day_index(StudyCalendar::strike_day()).is_some());
    }

    #[test]
    fn holidays_recognised() {
        assert!(StudyCalendar::is_holiday(Date::new(2022, 12, 25)));
        assert!(StudyCalendar::is_holiday(Date::new(2023, 1, 1)));
        assert!(!StudyCalendar::is_holiday(Date::new(2023, 1, 19)));
    }

    #[test]
    fn iso_format() {
        assert_eq!(Date::new(2023, 1, 4).iso(), "2023-01-04");
    }
}
