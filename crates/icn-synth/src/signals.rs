//! Planted-signal ground truth: which hours of the analysis window carry a
//! deliberately injected anomaly.
//!
//! The generator plants three families of temporal one-offs — the 19 Jan
//! strike collapse, per-site stadium/expo event bursts, and holiday dips —
//! on top of each archetype's *seasonal* template (hour-of-day ×
//! day-of-week structure that repeats every week). This module labels them
//! exactly, by comparing the planted template weight against the
//! counterfactual weight of a signal-free calendar
//! ([`crate::temporal::template_weight_counterfactual`]): an hour is a
//! **burst** when the planted weight is at least [`BURST_MIN_RATIO`] times
//! the counterfactual, a **dip** when it is at most [`DIP_MAX_RATIO`] of
//! it.
//!
//! This is the known-signal oracle the forecasting/anomaly subsystem is
//! tested against: `icn-forecast`'s detector sees only the noisy series and
//! must recover these hour sets unsupervised.

use crate::antennas::Antenna;
use crate::calendar::StudyCalendar;
use crate::traffic::event_schedule;
use icn_stats::Rng;

/// Minimum planted/counterfactual weight ratio for an hour to count as a
/// planted burst. Event boosts multiply the base by 4–17×, so 2.0 cleanly
/// separates them from seasonal structure (ratio exactly 1 off-signal).
pub const BURST_MIN_RATIO: f64 = 2.0;

/// Maximum planted/counterfactual weight ratio for a planted dip. Captures
/// every strike factor the generator uses (0.05–0.6) and the holiday
/// factors (0.1–0.8 — none fall inside the 21-day temporal window).
pub const DIP_MAX_RATIO: f64 = 0.7;

/// The planted anomalous hours of one antenna or one cluster, as indices
/// into the window's hour axis (`day_index * 24 + hour`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlantedHours {
    /// Hours where planted traffic exceeds the counterfactual by
    /// [`BURST_MIN_RATIO`] (event nights, expo days).
    pub bursts: Vec<usize>,
    /// Hours where planted traffic falls below [`DIP_MAX_RATIO`] of the
    /// counterfactual (strike collapse, holidays).
    pub dips: Vec<usize>,
}

impl PlantedHours {
    /// True when no hour is labelled in either direction.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty() && self.dips.is_empty()
    }

    /// Sorted union of burst and dip hours.
    pub fn hours(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self.bursts.iter().chain(&self.dips).copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// Labels the planted hours of a single antenna over `window`.
///
/// Deterministic given `root` (the dataset root RNG): the event schedule is
/// re-derived through the same per-site fork the traffic generator uses, so
/// the labels refer to exactly the events present in the synthesized
/// series.
pub fn antenna_planted_hours(
    antenna: &Antenna,
    window: &StudyCalendar,
    root: &Rng,
) -> PlantedHours {
    let kind = antenna.archetype.template();
    let schedule = event_schedule(antenna, window, root);
    let mut out = PlantedHours::default();
    for (di, date) in window.iter_days() {
        for hour in 0..24 {
            let planted = crate::temporal::template_weight(kind, &schedule, date, di, hour);
            let counter = crate::temporal::template_weight_counterfactual(kind, date, hour);
            debug_assert!(counter > 0.0, "counterfactual weight must be positive");
            let ratio = planted / counter;
            let t = di * 24 + hour;
            if ratio >= BURST_MIN_RATIO {
                out.bursts.push(t);
            } else if ratio <= DIP_MAX_RATIO {
                out.dips.push(t);
            }
        }
    }
    out
}

/// Cluster-level labels: an hour counts as planted when a strict majority
/// of the member antennas plant it in the same direction.
///
/// The cluster series analysed downstream is a cross-antenna median, so an
/// event burst at a minority of sites (stadium fixtures differ per site)
/// does not survive aggregation — and must not be labelled — while the
/// strike (shared by every commuter antenna) and the pinned NBA/expo nights
/// (shared per city) do.
pub fn cluster_planted_hours(
    members: &[&Antenna],
    window: &StudyCalendar,
    root: &Rng,
) -> PlantedHours {
    let n = members.len();
    if n == 0 {
        return PlantedHours::default();
    }
    let hours = window.num_hours();
    let mut burst_votes = vec![0usize; hours];
    let mut dip_votes = vec![0usize; hours];
    for a in members {
        let labels = antenna_planted_hours(a, window, root);
        for t in labels.bursts {
            burst_votes[t] += 1;
        }
        for t in labels.dips {
            dip_votes[t] += 1;
        }
    }
    let mut out = PlantedHours::default();
    for t in 0..hours {
        if burst_votes[t] * 2 > n {
            out.bursts.push(t);
        } else if dip_votes[t] * 2 > n {
            out.dips.push(t);
        }
    }
    out
}

/// Union labels: an hour counts as planted when *any* member antenna
/// plants it.
///
/// This is the permissive counterpart of [`cluster_planted_hours`]: a
/// sub-majority fixture (one stadium of several) does not *have* to
/// survive the cross-antenna median, but when it is strong enough to
/// move it, flagging that hour is not a false alarm — the traffic shift
/// is real and planted. Detector scoring therefore uses the majority
/// labels for recall (population-wide signals must all be found) and
/// these union labels for precision (every flag must trace back to a
/// planted signal).
pub fn cluster_planted_hours_any(
    members: &[&Antenna],
    window: &StudyCalendar,
    root: &Rng,
) -> PlantedHours {
    let hours = window.num_hours();
    let mut burst = vec![false; hours];
    let mut dip = vec![false; hours];
    for a in members {
        let labels = antenna_planted_hours(a, window, root);
        for t in labels.bursts {
            burst[t] = true;
        }
        for t in labels.dips {
            dip[t] = true;
        }
    }
    let collect = |mask: &[bool]| -> Vec<usize> {
        mask.iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(t, _)| t)
            .collect()
    };
    PlantedHours {
        bursts: collect(&burst),
        dips: collect(&dip),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antennas::generate_antennas;
    use crate::archetypes::Archetype;
    use crate::calendar::Date;

    fn pop() -> (Vec<Antenna>, Rng) {
        let mut rng = Rng::seed_from(123);
        let ants = generate_antennas(0.05, &mut rng);
        (ants, Rng::seed_from(123))
    }

    #[test]
    fn metro_labels_exactly_the_strike_day_as_dips() {
        let (ants, root) = pop();
        let cal = StudyCalendar::temporal_window();
        let strike = cal.day_index(StudyCalendar::strike_day()).unwrap();
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::ParisMetro)
            .unwrap();
        let labels = antenna_planted_hours(a, &cal, &root);
        assert!(labels.bursts.is_empty());
        let expected: Vec<usize> = (0..24).map(|h| strike * 24 + h).collect();
        assert_eq!(labels.dips, expected);
    }

    #[test]
    fn general_use_has_no_planted_hours() {
        let (ants, root) = pop();
        let cal = StudyCalendar::temporal_window();
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::GeneralUse)
            .unwrap();
        assert!(antenna_planted_hours(a, &cal, &root).is_empty());
    }

    #[test]
    fn paris_arena_bursts_cover_the_nba_night() {
        let (ants, root) = pop();
        let cal = StudyCalendar::temporal_window();
        let strike = cal.day_index(StudyCalendar::strike_day()).unwrap();
        let a = ants
            .iter()
            .find(|a| {
                a.archetype == Archetype::ParisArena && a.city == crate::environments::City::Paris
            })
            .unwrap();
        let labels = antenna_planted_hours(a, &cal, &root);
        for h in 19..=23 {
            assert!(labels.bursts.contains(&(strike * 24 + h)), "hour {h}");
        }
    }

    #[test]
    fn office_strike_dip_is_labelled() {
        // Office strike factor is 0.6 ≤ DIP_MAX_RATIO: working hours on
        // the strike day must be labelled, idle night hours are unaffected
        // by the day factor... but the ratio applies uniformly, so all 24
        // hours carry the 0.6 ratio.
        let (ants, root) = pop();
        let cal = StudyCalendar::temporal_window();
        let strike = cal.day_index(StudyCalendar::strike_day()).unwrap();
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::Workspace)
            .unwrap();
        let labels = antenna_planted_hours(a, &cal, &root);
        assert!(labels.dips.contains(&(strike * 24 + 10)));
    }

    #[test]
    fn cluster_majority_keeps_shared_signals_only() {
        let (ants, root) = pop();
        let cal = StudyCalendar::temporal_window();
        let strike = cal.day_index(StudyCalendar::strike_day()).unwrap();
        let metros: Vec<&Antenna> = ants
            .iter()
            .filter(|a| a.archetype == Archetype::ParisMetro)
            .collect();
        assert!(metros.len() >= 3);
        let labels = cluster_planted_hours(&metros, &cal, &root);
        assert!(labels.bursts.is_empty());
        assert!(labels.dips.contains(&(strike * 24 + 8)));
        // Every labelled dip is on the strike day (no holidays in-window).
        assert!(labels.dips.iter().all(|t| t / 24 == strike));
    }

    #[test]
    fn cluster_of_signal_free_antennas_is_empty() {
        let (ants, root) = pop();
        let cal = StudyCalendar::temporal_window();
        let general: Vec<&Antenna> = ants
            .iter()
            .filter(|a| a.archetype == Archetype::GeneralUse)
            .collect();
        assert!(cluster_planted_hours(&general, &cal, &root).is_empty());
    }

    #[test]
    fn empty_cluster_is_empty() {
        let (_, root) = pop();
        let cal = StudyCalendar::temporal_window();
        assert!(cluster_planted_hours(&[], &cal, &root).is_empty());
    }

    #[test]
    fn no_holidays_inside_temporal_window() {
        // The dip thresholds assume the only in-window calendar anomaly is
        // the strike; pin that so a future window change is caught here.
        let cal = StudyCalendar::temporal_window();
        for (_, d) in cal.iter_days() {
            assert!(!StudyCalendar::is_holiday(d), "{}", d.iso());
        }
        assert!(cal.day_index(Date::new(2023, 1, 19)).is_some());
    }
}
