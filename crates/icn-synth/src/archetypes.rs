//! Latent usage archetypes — the planted ground truth.
//!
//! The paper discovers nine clusters of ICN antennas (Section 4.2) organised
//! in three dendrogram groups (orange / green / red) and characterises each
//! through SHAP (Section 5.1.2) and its environments (Section 5.2.2). The
//! synthetic substrate plants exactly that structure: each antenna is
//! assigned one of nine [`Archetype`]s, and an archetype carries
//!
//! * a **service-affinity function** — the multiplicative over-/under-use of
//!   each service relative to global popularity (what RSCA should recover),
//! * a **temporal template** (see [`crate::temporal`]) — commute peaks,
//!   event bursts, office hours, retail hours or a broad diurnal profile,
//! * a **volume regime** — how much total traffic its antennas move.
//!
//! The numeric ids intentionally match the paper's cluster numbering so the
//! experiment harnesses can talk about "cluster 3 ≈ workspaces" directly.
//! The clustering pipeline never sees archetypes; they exist only to
//! generate traffic and to validate recovery (ARI against planted labels).

use crate::services::{Category, Service};
use crate::temporal::TemplateKind;

/// One of the nine planted usage archetypes (ids match the paper clusters).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Archetype {
    /// 0 — Paris metro commuters: music + navigation + entertainment.
    ParisMetro,
    /// 1 — general use: streaming, Waze, mail; airports/tunnels/commerce.
    GeneralUse,
    /// 2 — retail & hospitality: app stores, shopping; provincial.
    RetailHospitality,
    /// 3 — workspaces: Teams/LinkedIn/mail; office hours.
    Workspace,
    /// 4 — Paris rail/RER commuters: music + navigation, less entertainment.
    ParisRail,
    /// 5 — quiet venues: flat, under-utilisation of almost everything.
    QuietVenue,
    /// 6 — provincial stadiums: Snapchat/Twitter/sports, narrow.
    ProvincialStadium,
    /// 7 — provincial metros: music but *not* the Paris navigation stack.
    ProvincialMetro,
    /// 8 — Paris arenas: social + a diverse tail (Giphy, WhatsApp, Canal+).
    ParisArena,
}

/// Dendrogram super-group of the paper (Figure 3 branch colours).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Group {
    /// Clusters 0, 7, 4 — commuter hubs.
    Orange,
    /// Clusters 5, 6, 8 — event venues.
    Green,
    /// Clusters 3, 1, 2 — daytime destinations.
    Red,
}

impl Group {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Group::Orange => "orange",
            Group::Green => "green",
            Group::Red => "red",
        }
    }
}

impl Archetype {
    /// All archetypes in paper-cluster-id order (index = cluster id).
    pub const ALL: [Archetype; 9] = [
        Archetype::ParisMetro,        // 0
        Archetype::GeneralUse,        // 1
        Archetype::RetailHospitality, // 2
        Archetype::Workspace,         // 3
        Archetype::ParisRail,         // 4
        Archetype::QuietVenue,        // 5
        Archetype::ProvincialStadium, // 6
        Archetype::ProvincialMetro,   // 7
        Archetype::ParisArena,        // 8
    ];

    /// Paper cluster id (0–8).
    pub fn id(&self) -> usize {
        Archetype::ALL
            .iter()
            .position(|a| a == self)
            .expect("in ALL")
    }

    /// Archetype from a paper cluster id.
    pub fn from_id(id: usize) -> Archetype {
        Archetype::ALL[id]
    }

    /// Dendrogram group, matching Figure 3.
    pub fn group(&self) -> Group {
        match self {
            Archetype::ParisMetro | Archetype::ParisRail | Archetype::ProvincialMetro => {
                Group::Orange
            }
            Archetype::QuietVenue | Archetype::ProvincialStadium | Archetype::ParisArena => {
                Group::Green
            }
            Archetype::GeneralUse | Archetype::RetailHospitality | Archetype::Workspace => {
                Group::Red
            }
        }
    }

    /// Short description used in reports.
    pub fn description(&self) -> &'static str {
        match self {
            Archetype::ParisMetro => "Paris metro commuters",
            Archetype::GeneralUse => "general use (airports, tunnels, commerce)",
            Archetype::RetailHospitality => "retail & hospitality",
            Archetype::Workspace => "workspaces",
            Archetype::ParisRail => "Paris rail / RER commuters",
            Archetype::QuietVenue => "quiet venues (flat usage)",
            Archetype::ProvincialStadium => "provincial stadiums",
            Archetype::ProvincialMetro => "provincial metros",
            Archetype::ParisArena => "Paris arenas",
        }
    }

    /// The temporal template family driving this archetype's hourly shape.
    pub fn template(&self) -> TemplateKind {
        match self {
            Archetype::ParisMetro => TemplateKind::Commute {
                strike_factor: 0.05,
            },
            Archetype::ParisRail => TemplateKind::Commute {
                strike_factor: 0.08,
            },
            Archetype::ProvincialMetro => TemplateKind::Commute {
                strike_factor: 0.45,
            },
            Archetype::ProvincialStadium => TemplateKind::EventBurst,
            Archetype::ParisArena => TemplateKind::EventBurst,
            Archetype::QuietVenue => TemplateKind::QuietWithExpo,
            Archetype::GeneralUse => TemplateKind::BroadDiurnal,
            Archetype::RetailHospitality => TemplateKind::Retail,
            Archetype::Workspace => TemplateKind::Office,
        }
    }

    /// Baseline category affinity (multiplier on global popularity). 1.0 is
    /// neutral; > 1 over-use; < 1 under-use. Per-service overrides refine
    /// this in [`Archetype::service_affinity`].
    fn category_affinity(&self, cat: Category) -> f64 {
        use Category::*;
        match self {
            // --- Orange group: commuters ---
            Archetype::ParisMetro => match cat {
                Music => 3.2,
                Navigation => 2.6,
                WebPortal => 1.9,
                SocialMedia => 1.3,
                News => 1.8,
                Gaming => 1.6,
                Work => 0.45,
                VideoStreaming => 0.65,
                Cloud => 0.6,
                VideoCall => 0.5,
                _ => 1.0,
            },
            Archetype::ParisRail => match cat {
                Music => 3.0,
                Navigation => 2.7,
                Mail => 1.6,
                News => 1.8,
                Gaming => 1.5,
                WebPortal => 0.6,
                SocialMedia => 0.9,
                Work => 0.6,
                VideoStreaming => 0.7,
                VideoCall => 0.5,
                _ => 1.0,
            },
            Archetype::ProvincialMetro => match cat {
                Music => 3.1,
                Navigation => 1.1, // overridden per-service below
                SocialMedia => 1.4,
                News => 1.7,
                Gaming => 1.6,
                Work => 0.5,
                VideoStreaming => 0.7,
                VideoCall => 0.55,
                _ => 1.0,
            },
            // --- Green group: event venues ---
            Archetype::QuietVenue => {
                // Near-flat: everything mildly under-used; only a faint
                // event-venue social tilt (it still shares the green
                // group's "under-utilisation of most services").
                match cat {
                    SocialMedia => 1.45,
                    Work => 0.58,
                    Mail => 0.65,
                    Music => 0.65,
                    Shopping => 0.62,
                    AppStore => 0.62,
                    VideoStreaming => 0.72,
                    _ => 0.78,
                }
            }
            Archetype::ProvincialStadium => match cat {
                SocialMedia => 2.6,
                VideoStreaming => 0.35,
                Music => 0.5,
                Navigation => 0.8,
                Work => 0.35,
                Mail => 0.5,
                Cloud => 0.5,
                Shopping => 0.55,
                _ => 0.7,
            },
            Archetype::ParisArena => match cat {
                SocialMedia => 2.4,
                Messaging => 1.7,
                VideoStreaming => 0.5, // Canal+ overridden up below
                Music => 0.55,
                Work => 0.38,
                Mail => 0.5,
                Gaming => 1.1,
                _ => 0.72,
            },
            // --- Red group: daytime destinations ---
            Archetype::GeneralUse => match cat {
                VideoStreaming => 1.8,
                Mail => 1.7,
                Messaging => 1.3,
                Navigation => 1.0, // Waze up / Mappy down via overrides
                Music => 0.45,
                SocialMedia => 0.85,
                Gaming => 0.7,
                Finance => 1.4,
                News => 1.2,
                Work => 0.9,
                _ => 1.0,
            },
            Archetype::RetailHospitality => match cat {
                AppStore => 2.8,
                Shopping => 2.3,
                WebPortal => 1.3, // Shopping Websites up via override
                Finance => 1.5,
                VideoStreaming => 1.2,
                Music => 0.45,
                Navigation => 0.6,
                SocialMedia => 0.85,
                Gaming => 0.75,
                Work => 0.7,
                News => 1.2,
                _ => 1.0,
            },
            Archetype::Workspace => match cat {
                Work => 2.2,
                Mail => 1.9,
                Cloud => 1.5,
                VideoCall => 1.4,
                Finance => 1.4,
                News => 1.2,
                Music => 0.45,
                Navigation => 0.7,
                VideoStreaming => 0.85,
                SocialMedia => 0.85,
                Gaming => 0.7,
                Shopping => 0.9,
                _ => 1.0,
            },
        }
    }

    /// Raw (pre-blending) affinity for one service: the category baseline
    /// adjusted by the paper's named service-level distinctions.
    fn raw_affinity(&self, svc: &Service) -> f64 {
        let base = self.category_affinity(svc.category);
        let ovr: Option<f64> = match self {
            Archetype::ParisMetro => match svc.name {
                // §5.1.2: entertainment/shopping/sports websites & Yahoo
                // separate cluster 0 from cluster 4.
                "Yahoo" => Some(2.2),
                "Entertainment Websites" => Some(2.4),
                "Shopping Websites" => Some(2.0),
                "Sports Websites" => Some(1.8),
                "Mappy" => Some(2.8),
                "Transportation Websites" => Some(3.0),
                "Citymapper" => Some(2.7),
                "Twitter" => Some(1.9),
                _ => None,
            },
            Archetype::ParisRail => match svc.name {
                "Yahoo" => Some(0.5),
                "Entertainment Websites" => Some(0.45),
                "Shopping Websites" => Some(0.55),
                "Sports Websites" => Some(0.6),
                "Mappy" => Some(2.7),
                "Transportation Websites" => Some(2.9),
                "SNCF Connect" => Some(3.2),
                "Twitter" => Some(0.55),
                _ => None,
            },
            Archetype::ProvincialMetro => match svc.name {
                // §5.2.2: Mappy / transport websites comparatively
                // under-used outside the complex Parisian network.
                "Mappy" => Some(0.4),
                "Transportation Websites" => Some(0.38),
                "Citymapper" => Some(0.4),
                "SNCF Connect" => Some(0.6),
                "Google Maps" => Some(1.3),
                "Twitter" => Some(2.0),
                _ => None,
            },
            Archetype::QuietVenue => None,
            Archetype::ProvincialStadium => match svc.name {
                "Snapchat" => Some(3.2),
                "Twitter" => Some(3.0),
                "Sports Websites" => Some(3.4),
                // §5.1.2: Giphy/WhatsApp/Canal+ absent in cluster 6.
                "Giphy" => Some(0.3),
                "WhatsApp" => Some(0.6),
                "Canal+" => Some(0.3),
                "myCanal" => Some(0.35),
                _ => None,
            },
            Archetype::ParisArena => match svc.name {
                "Snapchat" => Some(3.0),
                "Twitter" => Some(2.8),
                "Sports Websites" => Some(3.0),
                // ... and present in cluster 8.
                "Giphy" => Some(2.6),
                "WhatsApp" => Some(2.2),
                "Canal+" => Some(2.4),
                "myCanal" => Some(1.8),
                "Netflix" => Some(0.4),
                "Disney+" => Some(0.45),
                _ => None,
            },
            Archetype::GeneralUse => match svc.name {
                "Netflix" => Some(2.2),
                "Disney+" => Some(2.1),
                "Amazon Prime Video" => Some(2.1),
                "Waze" => Some(2.6), // tunnels/airports driving navigation
                "Mappy" => Some(0.4),
                "Transportation Websites" => Some(0.45),
                "Spotify" => Some(0.55),
                "SoundCloud" => Some(0.5),
                _ => None,
            },
            Archetype::RetailHospitality => match svc.name {
                "Google Play Store" => Some(3.4),
                "Apple App Store" => Some(2.4),
                "Shopping Websites" => Some(2.8),
                "Netflix" => Some(1.7), // hotels at night (§6)
                "Spotify" => Some(0.4),
                "Waze" => Some(0.6),
                _ => None,
            },
            Archetype::Workspace => match svc.name {
                "Microsoft Teams" => Some(3.0),
                "LinkedIn" => Some(2.6),
                "Outlook Mail" => Some(2.4),
                "Microsoft 365" => Some(2.5),
                "Corporate VPN" => Some(2.7),
                "Netflix" => Some(0.5), // lunch-break only (§6)
                "Waze" => Some(0.9),    // evening commute home
                "Spotify" => Some(0.45),
                _ => None,
            },
        };
        ovr.unwrap_or(base)
    }

    /// Final affinity multiplier for one concrete service.
    ///
    /// The raw archetype affinity is blended towards the geometric mean of
    /// its dendrogram group (35 % group / 65 % archetype, in log space).
    /// This is what plants the paper's Figure 3 hierarchy: archetypes of
    /// one group stay close to each other (their shared group profile)
    /// while the groups themselves remain well separated — so Ward's
    /// criterion recovers three super-groups of three sub-clusters each.
    pub fn service_affinity(&self, svc: &Service) -> f64 {
        const GROUP_BLEND: f64 = 0.35;
        let group = self.group();
        let mut log_sum = 0.0;
        let mut n = 0.0;
        for a in Archetype::ALL {
            if a.group() == group {
                log_sum += a.raw_affinity(svc).ln();
                n += 1.0;
            }
        }
        let group_log_mean = log_sum / n;
        let raw = self.raw_affinity(svc);
        (GROUP_BLEND * group_log_mean + (1.0 - GROUP_BLEND) * raw.ln()).exp()
    }

    /// `(mu, sigma)` of the log-normal total-volume regime for antennas of
    /// this archetype, in natural-log MB over the two-month period.
    pub fn volume_lognormal(&self) -> (f64, f64) {
        match self {
            // Busy commuter hubs move the most traffic.
            Archetype::ParisMetro => (13.2, 0.55),
            Archetype::ParisRail => (13.0, 0.6),
            Archetype::ProvincialMetro => (12.4, 0.55),
            // Venues are bursty but low on aggregate.
            Archetype::QuietVenue => (10.2, 0.7),
            Archetype::ProvincialStadium => (11.2, 0.7),
            Archetype::ParisArena => (11.8, 0.6),
            // Daytime destinations sit in between.
            Archetype::GeneralUse => (12.6, 0.8),
            Archetype::RetailHospitality => (11.9, 0.75),
            Archetype::Workspace => (12.2, 0.6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::{catalog, index_of};

    #[test]
    fn ids_are_consistent() {
        for (i, a) in Archetype::ALL.iter().enumerate() {
            assert_eq!(a.id(), i);
            assert_eq!(Archetype::from_id(i), *a);
        }
    }

    #[test]
    fn groups_match_paper_figure3() {
        assert_eq!(Archetype::from_id(0).group(), Group::Orange);
        assert_eq!(Archetype::from_id(7).group(), Group::Orange);
        assert_eq!(Archetype::from_id(4).group(), Group::Orange);
        assert_eq!(Archetype::from_id(5).group(), Group::Green);
        assert_eq!(Archetype::from_id(6).group(), Group::Green);
        assert_eq!(Archetype::from_id(8).group(), Group::Green);
        assert_eq!(Archetype::from_id(3).group(), Group::Red);
        assert_eq!(Archetype::from_id(1).group(), Group::Red);
        assert_eq!(Archetype::from_id(2).group(), Group::Red);
    }

    #[test]
    fn orange_group_over_uses_music() {
        let c = catalog();
        let spotify = &c[index_of(&c, "Spotify").unwrap()];
        for a in [
            Archetype::ParisMetro,
            Archetype::ParisRail,
            Archetype::ProvincialMetro,
        ] {
            assert!(a.service_affinity(spotify) > 2.0, "{:?}", a);
        }
        // ... and the red group does not.
        assert!(Archetype::Workspace.service_affinity(spotify) < 0.6);
        assert!(Archetype::GeneralUse.service_affinity(spotify) < 0.7);
    }

    #[test]
    fn provincial_metro_under_uses_paris_navigation() {
        let c = catalog();
        let mappy = &c[index_of(&c, "Mappy").unwrap()];
        // Group blending pulls both towards the orange mean, but the
        // Paris/provincial contrast must survive (paper Section 5.2.2).
        assert!(Archetype::ParisMetro.service_affinity(mappy) > 1.8);
        assert!(Archetype::ProvincialMetro.service_affinity(mappy) < 0.85);
        assert!(
            Archetype::ParisMetro.service_affinity(mappy)
                > 2.5 * Archetype::ProvincialMetro.service_affinity(mappy)
        );
    }

    #[test]
    fn cluster6_vs_8_giphy_whatsapp_canal() {
        let c = catalog();
        for name in ["Giphy", "WhatsApp", "Canal+"] {
            let svc = &c[index_of(&c, name).unwrap()];
            assert!(
                Archetype::ParisArena.service_affinity(svc)
                    > 2.0 * Archetype::ProvincialStadium.service_affinity(svc),
                "{name}"
            );
        }
    }

    #[test]
    fn workspace_is_business_oriented() {
        let c = catalog();
        for name in ["Microsoft Teams", "LinkedIn", "Outlook Mail"] {
            let svc = &c[index_of(&c, name).unwrap()];
            assert!(Archetype::Workspace.service_affinity(svc) > 1.8, "{name}");
            // ... and stronger there than at its red-group siblings.
            assert!(
                Archetype::Workspace.service_affinity(svc)
                    > 1.2 * Archetype::GeneralUse.service_affinity(svc),
                "{name}"
            );
        }
        let netflix = &c[index_of(&c, "Netflix").unwrap()];
        assert!(Archetype::Workspace.service_affinity(netflix) < 1.0);
    }

    #[test]
    fn quiet_venue_is_nearly_flat() {
        // Cluster 5 "treats most of its Internet services equally": the
        // spread of its affinities must be far smaller than a stadium's.
        let c = catalog();
        let spread = |a: Archetype| {
            let affs: Vec<f64> = c.iter().map(|s| a.service_affinity(s).ln()).collect();
            let mean = affs.iter().sum::<f64>() / affs.len() as f64;
            (affs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / affs.len() as f64).sqrt()
        };
        assert!(
            spread(Archetype::QuietVenue) < 0.7 * spread(Archetype::ProvincialStadium),
            "quiet {} vs stadium {}",
            spread(Archetype::QuietVenue),
            spread(Archetype::ProvincialStadium)
        );
    }

    #[test]
    fn general_use_prefers_waze_over_mappy() {
        let c = catalog();
        let waze = &c[index_of(&c, "Waze").unwrap()];
        let mappy = &c[index_of(&c, "Mappy").unwrap()];
        assert!(Archetype::GeneralUse.service_affinity(waze) > 1.5);
        assert!(
            Archetype::GeneralUse.service_affinity(waze)
                > 2.5 * Archetype::GeneralUse.service_affinity(mappy)
        );
    }

    #[test]
    fn retail_over_uses_play_store_and_shopping() {
        let c = catalog();
        let play = &c[index_of(&c, "Google Play Store").unwrap()];
        let shopw = &c[index_of(&c, "Shopping Websites").unwrap()];
        assert!(Archetype::RetailHospitality.service_affinity(play) > 2.0);
        assert!(Archetype::RetailHospitality.service_affinity(shopw) > 1.7);
        // Retail dominates its siblings on the app store.
        assert!(
            Archetype::RetailHospitality.service_affinity(play)
                > 1.5 * Archetype::GeneralUse.service_affinity(play)
        );
    }

    #[test]
    fn affinities_are_positive_and_bounded() {
        let c = catalog();
        for a in Archetype::ALL {
            for s in &c {
                let v = a.service_affinity(s);
                assert!(v > 0.0 && v < 10.0, "{:?}/{}: {v}", a, s.name);
            }
        }
    }

    #[test]
    fn commuter_volumes_largest() {
        let (mu_metro, _) = Archetype::ParisMetro.volume_lognormal();
        let (mu_quiet, _) = Archetype::QuietVenue.volume_lognormal();
        assert!(mu_metro > mu_quiet + 2.0);
    }
}
