//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the synthetic measurement campaign.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Master seed; everything downstream is derived deterministically.
    pub seed: u64,
    /// Multiplier on the Table 1 per-environment antenna counts
    /// (1.0 ⇒ the paper's 4,762 antennas; tests use ≤ 0.1).
    pub scale: f64,
    /// Number of outdoor macro antennas generated per indoor antenna
    /// (the paper analyses ~20k outdoor near 4,762 indoor ⇒ ≈ 4).
    pub outdoor_per_indoor: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0x1C4_2023,
            scale: 1.0,
            outdoor_per_indoor: 4,
        }
    }
}

impl SynthConfig {
    /// Full paper-scale configuration.
    pub fn paper() -> Self {
        SynthConfig::default()
    }

    /// A small configuration for fast tests (~380 antennas).
    pub fn small() -> Self {
        SynthConfig {
            seed: 0x1C4_2023,
            scale: 0.08,
            outdoor_per_indoor: 2,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "SynthConfig: non-positive scale");
        self.scale = scale;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let c = SynthConfig::paper();
        assert_eq!(c.scale, 1.0);
        assert_eq!(c.outdoor_per_indoor, 4);
    }

    #[test]
    fn builders_apply() {
        let c = SynthConfig::small().with_seed(9).with_scale(0.2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.scale, 0.2);
    }

    #[test]
    #[should_panic(expected = "non-positive scale")]
    fn zero_scale_panics() {
        let _ = SynthConfig::small().with_scale(0.0);
    }

    #[test]
    fn serde_round_trip() {
        let c = SynthConfig::small();
        let json = serde_json::to_string(&c).unwrap();
        let back: SynthConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.scale, c.scale);
    }
}
