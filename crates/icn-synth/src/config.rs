//! Generator configuration.

use icn_obs::Json;

/// Configuration of the synthetic measurement campaign.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Master seed; everything downstream is derived deterministically.
    pub seed: u64,
    /// Multiplier on the Table 1 per-environment antenna counts
    /// (1.0 ⇒ the paper's 4,762 antennas; tests use ≤ 0.1).
    pub scale: f64,
    /// Number of outdoor macro antennas generated per indoor antenna
    /// (the paper analyses ~20k outdoor near 4,762 indoor ⇒ ≈ 4).
    pub outdoor_per_indoor: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0x1C4_2023,
            scale: 1.0,
            outdoor_per_indoor: 4,
        }
    }
}

impl SynthConfig {
    /// Full paper-scale configuration.
    pub fn paper() -> Self {
        SynthConfig::default()
    }

    /// A small configuration for fast tests (~380 antennas).
    pub fn small() -> Self {
        SynthConfig {
            seed: 0x1C4_2023,
            scale: 0.08,
            outdoor_per_indoor: 2,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "SynthConfig: non-positive scale");
        self.scale = scale;
        self
    }

    /// JSON view of the configuration (seeds must stay below 2^53 to
    /// round-trip exactly through the number representation).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::num(self.seed as f64)),
            ("scale", Json::num(self.scale)),
            (
                "outdoor_per_indoor",
                Json::num(self.outdoor_per_indoor as f64),
            ),
        ])
    }

    /// Parses a configuration previously produced by [`to_json`].
    ///
    /// [`to_json`]: SynthConfig::to_json
    pub fn from_json(v: &Json) -> Result<SynthConfig, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("SynthConfig: missing numeric field `{name}`"))
        };
        Ok(SynthConfig {
            seed: field("seed")? as u64,
            scale: field("scale")?,
            outdoor_per_indoor: field("outdoor_per_indoor")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let c = SynthConfig::paper();
        assert_eq!(c.scale, 1.0);
        assert_eq!(c.outdoor_per_indoor, 4);
    }

    #[test]
    fn builders_apply() {
        let c = SynthConfig::small().with_seed(9).with_scale(0.2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.scale, 0.2);
    }

    #[test]
    #[should_panic(expected = "non-positive scale")]
    fn zero_scale_panics() {
        let _ = SynthConfig::small().with_scale(0.0);
    }

    #[test]
    fn json_round_trip() {
        let c = SynthConfig::small();
        let text = c.to_json().to_compact();
        let back = SynthConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.scale, c.scale);
        assert_eq!(back.outdoor_per_indoor, c.outdoor_per_indoor);
    }

    #[test]
    fn from_json_reports_missing_field() {
        let v = Json::parse(r#"{"seed": 1}"#).unwrap();
        let err = SynthConfig::from_json(&v).unwrap_err();
        assert!(err.contains("scale"), "err: {err}");
    }
}
