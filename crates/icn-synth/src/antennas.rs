//! Antenna and site population.
//!
//! Generates the indoor antenna population of the study: 4,762 antennas (or
//! a scaled-down population for tests) spread over 1,000+ sites, each with
//! an environment type (Table 1 counts), a city, a site name that embeds the
//! environment keyword (so the name-mining step of Section 5.2.1 can
//! re-derive the label), and a latent [`Archetype`] drawn from
//! environment-conditional mixtures calibrated to the paper's reported
//! cluster ↔ environment flows (Figures 6–8 and the prose of Section 5.2.2).

use crate::archetypes::Archetype;
use crate::environments::{City, Environment};
use crate::geo::{site_coord, Coord, RadioTech};
use icn_stats::Rng;

/// One indoor antenna with its metadata and planted ground truth.
#[derive(Clone, Debug)]
pub struct Antenna {
    /// Stable antenna id (row in the traffic matrix).
    pub id: usize,
    /// Site id (several antennas share one site).
    pub site_id: usize,
    /// Site name embedding the environment keyword, e.g.
    /// `"PARIS-METRO-0042-A3"`.
    pub site_name: String,
    /// Indoor environment type (planted; also re-derivable from the name).
    pub environment: Environment,
    /// City.
    pub city: City,
    /// Latent usage archetype — ground truth for validation only; the
    /// clustering pipeline never reads this.
    pub archetype: Archetype,
    /// Site coordinate (city centre + urban scatter).
    pub coord: Coord,
    /// Radio access technology (4G for the vast majority; Section 3).
    pub rat: RadioTech,
}

impl Antenna {
    /// True if the antenna is in Paris or its suburbs.
    pub fn is_paris(&self) -> bool {
        self.city.is_paris()
    }
}

/// Environment-conditional sampling of city and archetype, calibrated to
/// Section 5.2.2:
///
/// * metro: Paris antennas → archetypes 0/4; provincial metros → 7.
/// * trains: Paris-heavy → 4 (some 0); provincial stations → mostly 1/7.
/// * stadiums: >75 % of clusters 6/8 are stadiums; 6 non-Paris, 8 ~60 %
///   Paris; ~35 % of cluster 5 is stadiums.
/// * workspaces: >70 % of cluster 3; industrial facilities mostly → 5.
/// * expo centers: >50 % in cluster 3, the rest mostly 5.
/// * commercial: split ~50 % cluster 2 (incl. all MNO shops), ~30 %
///   cluster 1, ~5 % cluster 5.
/// * airports & tunnels: almost all cluster 1.
/// * hotels/public: mostly cluster 2, some 1; hospitals: almost all 2.
fn sample_city_and_archetype(env: Environment, rng: &mut Rng) -> (City, Archetype) {
    use Archetype::*;
    match env {
        Environment::Metro => {
            // ~70 % of French metro antennas are in the capital's network.
            if rng.chance(0.70) {
                // Paris: split between archetypes 0 (metro) and 4 (RER-ish).
                let a = if rng.chance(0.72) {
                    ParisMetro
                } else {
                    ParisRail
                };
                (City::Paris, a)
            } else {
                let city = City::PROVINCIAL_METRO[rng.index(4)];
                (city, ProvincialMetro)
            }
        }
        Environment::TrainStation => {
            if rng.chance(0.60) {
                // Parisian terminals and RER hubs.
                let a = if rng.chance(0.85) {
                    ParisRail
                } else {
                    ParisMetro
                };
                (City::Paris, a)
            } else {
                // Provincial stations: commuter-ish but some general use.
                let city = if rng.chance(0.4) {
                    City::PROVINCIAL_METRO[rng.index(4)]
                } else {
                    City::Other
                };
                let a = match rng.categorical(&[0.55, 0.3, 0.15]) {
                    0 => ParisRail, // same rail profile outside Paris
                    1 => GeneralUse,
                    _ => QuietVenue,
                };
                (city, a)
            }
        }
        Environment::Airport => {
            let city = if rng.chance(0.55) {
                City::Paris
            } else {
                City::Other
            };
            let a = if rng.chance(0.92) {
                GeneralUse
            } else {
                QuietVenue
            };
            (city, a)
        }
        Environment::Workspace => {
            // ~10 % of workspace antennas are industrial facilities that
            // land in the quiet cluster 5 (Section 5.2.2).
            let city = if rng.chance(0.65) {
                City::Paris
            } else {
                City::Other
            };
            let a = match rng.categorical(&[0.78, 0.10, 0.08, 0.04]) {
                0 => Workspace,
                1 => QuietVenue, // industrial facilities
                2 => GeneralUse,
                _ => RetailHospitality,
            };
            (city, a)
        }
        Environment::CommercialCenter => {
            let a = match rng.categorical(&[0.50, 0.33, 0.06, 0.06, 0.05]) {
                0 => RetailHospitality,
                1 => GeneralUse,
                2 => QuietVenue,
                3 => Workspace,
                _ => ParisArena, // a few venue-like flagship stores
            };
            // Cluster 2 is 92 % non-Paris; bias the city by archetype.
            let paris_p = if a == RetailHospitality { 0.08 } else { 0.45 };
            let city = if rng.chance(paris_p) {
                City::Paris
            } else {
                City::Other
            };
            (city, a)
        }
        Environment::Stadium => {
            let a = match rng.categorical(&[0.38, 0.27, 0.28, 0.07]) {
                0 => ProvincialStadium,
                1 => ParisArena,
                2 => QuietVenue,
                _ => GeneralUse,
            };
            let paris_p = match a {
                ProvincialStadium => 0.05,
                ParisArena => 0.62, // ~60 % of cluster 8 in Paris
                _ => 0.5,
            };
            let city = if rng.chance(paris_p) {
                City::Paris
            } else if rng.chance(0.5) {
                City::PROVINCIAL_METRO[rng.index(4)]
            } else {
                City::Other
            };
            (city, a)
        }
        Environment::ExpoCenter => {
            // >50 % to cluster 3 (corporate events), the rest to 5 and 8.
            let a = match rng.categorical(&[0.52, 0.33, 0.10, 0.05]) {
                0 => Workspace,
                1 => QuietVenue,
                2 => ParisArena,
                _ => GeneralUse,
            };
            let city = if rng.chance(0.5) {
                City::Paris
            } else if rng.chance(0.4) {
                City::Lyon // Eurexpo
            } else {
                City::Other
            };
            (city, a)
        }
        Environment::Hotel => {
            let a = if rng.chance(0.75) {
                RetailHospitality
            } else {
                GeneralUse
            };
            let city = if rng.chance(0.3) {
                City::Paris
            } else {
                City::Other
            };
            (city, a)
        }
        Environment::Hospital => {
            let a = if rng.chance(0.92) {
                RetailHospitality
            } else {
                GeneralUse
            };
            let city = if rng.chance(0.3) {
                City::Paris
            } else {
                City::Other
            };
            (city, a)
        }
        Environment::Tunnel => {
            let a = if rng.chance(0.93) {
                GeneralUse
            } else {
                QuietVenue
            };
            let city = if rng.chance(0.3) {
                City::Paris
            } else {
                City::Other
            };
            (city, a)
        }
        Environment::PublicBuilding => {
            let a = match rng.categorical(&[0.62, 0.22, 0.10, 0.06]) {
                0 => RetailHospitality,
                1 => GeneralUse,
                2 => Workspace,
                _ => QuietVenue,
            };
            let city = if rng.chance(0.35) {
                City::Paris
            } else {
                City::Other
            };
            (city, a)
        }
    }
}

/// Builds a site name embedding the environment keyword and the city, so
/// that the Section 5.2.1 name-mining step can recover the environment.
fn site_name(env: Environment, city: City, site_id: usize) -> String {
    let kw = env.name_keywords()[site_id % env.name_keywords().len()];
    format!("{}-{}-{:04}", city.label().to_uppercase(), kw, site_id)
}

/// Generates the indoor antenna population.
///
/// `scale` multiplies the Table 1 per-environment counts (1.0 reproduces
/// the paper's 4,762 antennas; tests use small scales). Every environment
/// keeps at least one antenna. Antennas are grouped into sites of 2–8
/// antennas, sharing environment, city, archetype and event schedule seed.
pub fn generate_antennas(scale: f64, rng: &mut Rng) -> Vec<Antenna> {
    assert!(scale > 0.0, "generate_antennas: non-positive scale");
    let mut antennas = Vec::new();
    let mut site_id = 0usize;
    for env in Environment::ALL {
        let count = ((env.paper_count() as f64 * scale).round() as usize).max(1);
        let mut produced = 0usize;
        while produced < count {
            let (city, archetype) = sample_city_and_archetype(env, rng);
            let per_site = (2 + rng.index(7)).min(count - produced); // 2..=8
            let per_site = per_site.max(1);
            let name = site_name(env, city, site_id);
            let coord = site_coord(city, rng);
            for _ in 0..per_site {
                antennas.push(Antenna {
                    id: antennas.len(),
                    site_id,
                    site_name: name.clone(),
                    environment: env,
                    city,
                    archetype,
                    coord,
                    rat: RadioTech::sample(rng),
                });
                produced += 1;
            }
            site_id += 1;
        }
    }
    antennas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environments::PAPER_TOTAL_ANTENNAS;
    use std::collections::HashMap;

    fn population() -> Vec<Antenna> {
        let mut rng = Rng::seed_from(42);
        generate_antennas(1.0, &mut rng)
    }

    #[test]
    fn full_scale_matches_table1() {
        let ants = population();
        assert_eq!(ants.len(), PAPER_TOTAL_ANTENNAS);
        let mut per_env: HashMap<Environment, usize> = HashMap::new();
        for a in &ants {
            *per_env.entry(a.environment).or_default() += 1;
        }
        for env in Environment::ALL {
            assert_eq!(per_env[&env], env.paper_count(), "{:?}", env);
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let ants = population();
        for (i, a) in ants.iter().enumerate() {
            assert_eq!(a.id, i);
        }
    }

    #[test]
    fn sites_are_homogeneous() {
        let ants = population();
        let mut by_site: HashMap<usize, Vec<&Antenna>> = HashMap::new();
        for a in &ants {
            by_site.entry(a.site_id).or_default().push(a);
        }
        assert!(by_site.len() >= 600, "got {} sites", by_site.len());
        for (_, group) in by_site {
            let first = group[0];
            for a in &group {
                assert_eq!(a.environment, first.environment);
                assert_eq!(a.city, first.city);
                assert_eq!(a.archetype, first.archetype);
                assert_eq!(a.site_name, first.site_name);
                assert_eq!(a.coord, first.coord);
            }
        }
    }

    #[test]
    fn metro_split_matches_paper() {
        let ants = population();
        let metro: Vec<&Antenna> = ants
            .iter()
            .filter(|a| a.environment == Environment::Metro)
            .collect();
        // Provincial metro antennas must be exactly the ProvincialMetro
        // archetype and never Paris.
        for a in &metro {
            match a.archetype {
                Archetype::ProvincialMetro => assert!(!a.is_paris()),
                Archetype::ParisMetro | Archetype::ParisRail => assert!(a.is_paris()),
                other => panic!("unexpected metro archetype {other:?}"),
            }
        }
        let paris_frac = metro.iter().filter(|a| a.is_paris()).count() as f64 / metro.len() as f64;
        assert!((0.6..0.8).contains(&paris_frac), "paris frac {paris_frac}");
    }

    #[test]
    fn stadiums_dominated_by_green_group() {
        use crate::archetypes::Group;
        let ants = population();
        let stad: Vec<&Antenna> = ants
            .iter()
            .filter(|a| a.environment == Environment::Stadium)
            .collect();
        let green = stad
            .iter()
            .filter(|a| a.archetype.group() == Group::Green)
            .count() as f64
            / stad.len() as f64;
        assert!(green > 0.8, "green fraction {green}");
    }

    #[test]
    fn workspaces_mostly_cluster3() {
        let ants = population();
        let ws: Vec<&Antenna> = ants
            .iter()
            .filter(|a| a.environment == Environment::Workspace)
            .collect();
        let c3 = ws
            .iter()
            .filter(|a| a.archetype == Archetype::Workspace)
            .count() as f64
            / ws.len() as f64;
        assert!(c3 > 0.7, "workspace->cluster3 fraction {c3}");
    }

    #[test]
    fn airports_tunnels_mostly_general() {
        let ants = population();
        for env in [Environment::Airport, Environment::Tunnel] {
            let xs: Vec<&Antenna> = ants.iter().filter(|a| a.environment == env).collect();
            let g = xs
                .iter()
                .filter(|a| a.archetype == Archetype::GeneralUse)
                .count() as f64
                / xs.len() as f64;
            assert!(g > 0.8, "{:?} general fraction {g}", env);
        }
    }

    #[test]
    fn site_names_embed_keywords() {
        let ants = population();
        for a in ants.iter().take(500) {
            let found = a
                .environment
                .name_keywords()
                .iter()
                .any(|kw| a.site_name.contains(kw));
            assert!(found, "name {} lacks env keyword", a.site_name);
        }
    }

    #[test]
    fn scaled_population_shrinks() {
        let mut rng = Rng::seed_from(7);
        let ants = generate_antennas(0.05, &mut rng);
        assert!(ants.len() < 400);
        // Every environment still present.
        for env in Environment::ALL {
            assert!(ants.iter().any(|a| a.environment == env), "{:?}", env);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = Rng::seed_from(99);
        let mut r2 = Rng::seed_from(99);
        let a = generate_antennas(0.1, &mut r1);
        let b = generate_antennas(0.1, &mut r2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.archetype, y.archetype);
            assert_eq!(x.site_name, y.site_name);
        }
    }
}
