//! The assembled synthetic dataset.
//!
//! [`Dataset::generate`] runs the full synthetic measurement campaign and
//! bundles everything the study pipeline consumes: the service catalog, the
//! indoor antenna population with metadata, the indoor totals matrix `T`,
//! the outdoor population and its totals matrix, and the calendar. It also
//! offers CSV/JSON export so the "processed service consumption data" the
//! paper promises to release has an equivalent artefact here.

use crate::antennas::{generate_antennas, Antenna};
use crate::calendar::StudyCalendar;
use crate::config::SynthConfig;
use crate::outdoor::{generate_outdoor, outdoor_totals_matrix, OutdoorAntenna, OutdoorConfig};
use crate::services::{catalog, Service};
use crate::traffic::totals_matrix;
use icn_stats::{Matrix, Rng};
use std::fmt::Write as _;

/// A complete synthetic measurement campaign.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Generator configuration used.
    pub config: SynthConfig,
    /// The 73-service catalog (column order of the matrices).
    pub services: Vec<Service>,
    /// Indoor antenna population (row order of `indoor_totals`).
    pub antennas: Vec<Antenna>,
    /// Indoor antenna × service two-month totals (MB) — the paper's `T`.
    pub indoor_totals: Matrix,
    /// Outdoor antenna population (row order of `outdoor_totals`).
    pub outdoor: Vec<OutdoorAntenna>,
    /// Outdoor antenna × service totals (MB).
    pub outdoor_totals: Matrix,
    /// The recording period.
    pub calendar: StudyCalendar,
    /// Root RNG used; fork it for hourly-series synthesis so that results
    /// stay consistent with the totals.
    root: Rng,
}

impl Dataset {
    /// Runs the campaign for `config`. Deterministic in `config.seed`.
    pub fn generate(config: SynthConfig) -> Dataset {
        let _span = icn_obs::Span::enter("generate");
        let root = Rng::seed_from(config.seed);
        let services = catalog();
        let mut pop_rng = root.fork(0xB0B_u64);
        let antennas = generate_antennas(config.scale, &mut pop_rng);
        let indoor_totals = totals_matrix(&antennas, &services, &root);
        let out_cfg = OutdoorConfig {
            per_indoor: config.outdoor_per_indoor,
            ..OutdoorConfig::default()
        };
        let outdoor = generate_outdoor(&antennas, &out_cfg, &root);
        let outdoor_totals = outdoor_totals_matrix(&outdoor, &antennas, &services, &root);
        let obs = icn_obs::global();
        if obs.is_enabled() {
            obs.add_counter("synth.antennas", antennas.len() as u64);
            obs.add_counter("synth.outdoor_antennas", outdoor.len() as u64);
            obs.add_counter("synth.services", services.len() as u64);
        }
        Dataset {
            config,
            services,
            antennas,
            indoor_totals,
            outdoor,
            outdoor_totals,
            calendar: StudyCalendar::paper_period(),
            root,
        }
    }

    /// The root RNG (fork it; never advance it in place).
    pub fn root_rng(&self) -> &Rng {
        &self.root
    }

    /// Number of indoor antennas (`N`).
    pub fn num_antennas(&self) -> usize {
        self.antennas.len()
    }

    /// Number of services (`M`).
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Ground-truth archetype ids (paper cluster numbering), for
    /// validation only.
    pub fn planted_labels(&self) -> Vec<usize> {
        self.antennas.iter().map(|a| a.archetype.id()).collect()
    }

    /// Exports the indoor totals as CSV (`antenna_id,site,env,city` then
    /// one column per service).
    pub fn indoor_totals_csv(&self) -> String {
        let mut s = String::new();
        s.push_str("antenna_id,site_name,environment,city");
        for svc in &self.services {
            let _ = write!(s, ",{}", svc.name.replace(',', ";"));
        }
        s.push('\n');
        for (i, a) in self.antennas.iter().enumerate() {
            let _ = write!(
                s,
                "{},{},{},{}",
                a.id,
                a.site_name,
                a.environment.label(),
                a.city.label()
            );
            for j in 0..self.services.len() {
                let _ = write!(s, ",{:.3}", self.indoor_totals.get(i, j));
            }
            s.push('\n');
        }
        s
    }

    /// Exports antenna metadata as JSON lines (one object per antenna).
    pub fn antennas_jsonl(&self) -> String {
        use icn_obs::Json;
        let mut s = String::new();
        for a in &self.antennas {
            let obj = Json::obj(vec![
                ("id", Json::num(a.id as f64)),
                ("site_id", Json::num(a.site_id as f64)),
                ("site_name", Json::str(&a.site_name)),
                ("environment", Json::str(a.environment.label())),
                ("city", Json::str(a.city.label())),
                ("lat", Json::num(a.coord.lat)),
                ("lon", Json::num(a.coord.lon)),
                ("rat", Json::str(a.rat.label())),
            ]);
            s.push_str(&obj.to_compact());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::generate(SynthConfig::small())
    }

    #[test]
    fn generate_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.indoor_totals, b.indoor_totals);
        assert_eq!(a.outdoor_totals, b.outdoor_totals);
        assert_eq!(a.planted_labels(), b.planted_labels());
    }

    #[test]
    fn different_seed_changes_data() {
        let a = small();
        let b = Dataset::generate(SynthConfig::small().with_seed(1));
        assert_ne!(a.indoor_totals, b.indoor_totals);
    }

    #[test]
    fn dimensions_consistent() {
        let d = small();
        assert_eq!(d.indoor_totals.rows(), d.num_antennas());
        assert_eq!(d.indoor_totals.cols(), d.num_services());
        assert_eq!(d.outdoor_totals.rows(), d.outdoor.len());
        assert_eq!(d.num_services(), 73);
    }

    #[test]
    fn planted_labels_in_range() {
        let d = small();
        assert!(d.planted_labels().iter().all(|&l| l < 9));
        // All nine archetypes appear even in the small config.
        let mut seen = [false; 9];
        for l in d.planted_labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing archetypes: {seen:?}");
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let d = small();
        let csv = d.indoor_totals_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), d.num_antennas() + 1);
        assert!(lines[0].starts_with("antenna_id,site_name,environment,city,Spotify"));
        // Each data line has 4 + M fields.
        let fields = lines[1].split(',').count();
        assert_eq!(fields, 4 + d.num_services());
    }

    #[test]
    fn jsonl_parses_back() {
        let d = small();
        let jsonl = d.antennas_jsonl();
        let first = jsonl.lines().next().unwrap();
        let v = icn_obs::Json::parse(first).unwrap();
        assert_eq!(v.get("id").and_then(icn_obs::Json::as_f64), Some(0.0));
        assert!(
            v.get("site_name")
                .and_then(icn_obs::Json::as_str)
                .unwrap()
                .len()
                > 3
        );
    }
}
