//! Temporal traffic templates.
//!
//! Section 6 of the paper shows that each cluster carries a distinctive
//! hour-of-day × day-of-week signature: commute bimodality for the orange
//! group (with a collapse on the 19 January strike day), sporadic event
//! bursts for the green group (an NBA night at the Accor Arena; a 4-day expo
//! at Eurexpo Lyon), and diurnal 10:00–20:00 activity for the red group
//! (with workspaces idle on weekends). This module implements those shapes
//! as deterministic weight functions plus per-site event schedules, and the
//! per-service modulations of Figure 11 (Spotify at morning commute, Waze
//! lagging event peaks, Netflix at hotel nights / office lunches, Teams in
//! office hours).
//!
//! All weights are relative; the traffic generator normalises each
//! antenna-service series so that it integrates to the antenna-service
//! total, keeping the totals matrix and the hourly series consistent.

use crate::calendar::{Date, StudyCalendar, Weekday};
use crate::services::{Category, Service};
use icn_stats::Rng;

/// The family of hour-weight shapes an archetype follows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TemplateKind {
    /// Bimodal commuter peaks (07:00–09:00, 17:00–19:00 strongest), low
    /// weekends, with traffic multiplied by `strike_factor` on the national
    /// strike day.
    Commute {
        /// Multiplier applied on 2023-01-19 (≈0 for Paris transit).
        strike_factor: f64,
    },
    /// Near-silent base with strong evening bursts on scheduled event days.
    EventBurst,
    /// Low flat diurnal base with occasional multi-day expo elevations.
    QuietWithExpo,
    /// Broad diurnal activity, seven days a week (airports, tunnels).
    BroadDiurnal,
    /// Retail hours (10:00–20:00) every day, Sunday dip, raised night floor
    /// (hotels & hospitals).
    Retail,
    /// Office hours (08:00–18:00) on weekdays, idle weekends and evenings.
    Office,
}

/// A scheduled high-attendance event at a venue site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// First day (index into the study calendar).
    pub start_day: usize,
    /// Number of consecutive days (1 for a match night, 4 for an expo).
    pub duration_days: usize,
    /// Peak multiplier applied during active hours.
    pub intensity: f64,
    /// First active hour of day (inclusive).
    pub start_hour: usize,
    /// Last active hour of day (inclusive).
    pub end_hour: usize,
}

impl Event {
    /// True if the event is live at (`day`, `hour`).
    pub fn active(&self, day: usize, hour: usize) -> bool {
        day >= self.start_day
            && day < self.start_day + self.duration_days
            && hour >= self.start_hour
            && hour <= self.end_hour
    }
}

/// Per-site event schedule for venue archetypes.
#[derive(Clone, Debug, Default)]
pub struct EventSchedule {
    events: Vec<Event>,
}

impl EventSchedule {
    /// Empty schedule (non-venue archetypes).
    pub fn none() -> Self {
        EventSchedule { events: Vec::new() }
    }

    /// Draws a stadium-style schedule: 3–6 single-evening events over the
    /// calendar, optionally pinning one to the paper's NBA night
    /// (19 Jan 2023, evening, Accor Arena — used for Paris arenas).
    ///
    /// Match nights concentrate on weekends (league fixtures), so different
    /// stadium sites mostly burst on the *same* evenings — which is what
    /// makes the bursts survive the cross-antenna median of Figure 10e/f.
    pub fn stadium(rng: &mut Rng, cal: &StudyCalendar, pin_nba_night: bool) -> Self {
        let weekend_days: Vec<usize> = cal
            .iter_days()
            .filter(|(_, d)| d.weekday().is_weekend())
            .map(|(i, _)| i)
            .collect();
        let mut events = Vec::new();
        let n = 3 + rng.index(4); // 3..=6
        for _ in 0..n {
            let day = if !weekend_days.is_empty() && rng.chance(0.75) {
                weekend_days[rng.index(weekend_days.len())]
            } else {
                rng.index(cal.num_days())
            };
            events.push(Event {
                start_day: day,
                duration_days: 1,
                intensity: rng.uniform(6.0, 14.0),
                start_hour: 18,
                end_hour: 23,
            });
        }
        if pin_nba_night {
            if let Some(day) = cal.day_index(StudyCalendar::strike_day()) {
                events.push(Event {
                    start_day: day,
                    duration_days: 1,
                    intensity: 16.0,
                    start_hour: 19,
                    end_hour: 23,
                });
            }
        }
        EventSchedule { events }
    }

    /// Draws an expo-style schedule: one or two multi-day fairs, optionally
    /// pinning the paper's Sirha Lyon 4-day event starting 19 Jan 2023.
    pub fn expo(rng: &mut Rng, cal: &StudyCalendar, pin_sirha_lyon: bool) -> Self {
        let mut events = Vec::new();
        let n = 1 + rng.index(2);
        for _ in 0..n {
            let dur = 2 + rng.index(3); // 2..=4 days
            if cal.num_days() <= dur {
                continue;
            }
            let day = rng.index(cal.num_days() - dur);
            events.push(Event {
                start_day: day,
                duration_days: dur,
                intensity: rng.uniform(3.0, 6.0),
                start_hour: 9,
                end_hour: 21,
            });
        }
        if pin_sirha_lyon {
            if let Some(day) = cal.day_index(StudyCalendar::strike_day()) {
                let dur = (cal.num_days() - day).clamp(1, 4);
                events.push(Event {
                    start_day: day,
                    duration_days: dur,
                    intensity: 5.5,
                    start_hour: 9,
                    end_hour: 21,
                });
            }
        }
        EventSchedule { events }
    }

    /// Peak event multiplier live at (`day`, `hour`), or 0.0 if none.
    pub fn boost(&self, day: usize, hour: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active(day, hour))
            .map(|e| e.intensity)
            .fold(0.0, f64::max)
    }

    /// Like [`EventSchedule::boost`] but at a later hour — used for the
    /// Waze-lags-the-event effect of Figure 11e (attendees navigating home
    /// a couple of hours after the peak).
    pub fn boost_lagged(&self, day: usize, hour: usize, lag: usize) -> f64 {
        if hour < lag {
            return 0.0;
        }
        self.boost(day, hour - lag)
    }

    /// The scheduled events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// Base hour-of-day weight for each template (before calendar effects).
fn hour_shape(kind: TemplateKind, hour: usize) -> f64 {
    debug_assert!(hour < 24);
    match kind {
        TemplateKind::Commute { .. } => match hour {
            7..=9 => 1.0,
            17..=19 => 0.95,
            10..=16 => 0.35,
            6 | 20 | 21 => 0.3,
            22 | 23 => 0.15,
            _ => 0.04,
        },
        TemplateKind::EventBurst => match hour {
            8..=23 => 0.05,
            _ => 0.02,
        },
        TemplateKind::QuietWithExpo => match hour {
            9..=21 => 0.3,
            7 | 8 | 22 => 0.15,
            _ => 0.05,
        },
        TemplateKind::BroadDiurnal => match hour {
            10..=20 => 1.0,
            8 | 9 | 21 | 22 => 0.7,
            6 | 7 | 23 => 0.4,
            _ => 0.2,
        },
        TemplateKind::Retail => match hour {
            10..=19 => 1.0,
            20 => 0.6,
            8 | 9 => 0.4,
            21 | 22 => 0.35,
            _ => 0.22, // raised night floor: hotels & hospitals
        },
        TemplateKind::Office => match hour {
            9..=12 => 1.0,
            13 => 0.8, // lunch dip
            14..=17 => 1.0,
            8 => 0.7,
            18 => 0.45,
            19 => 0.2,
            _ => 0.03,
        },
    }
}

/// Calendar multiplier for a template on a given date.
fn day_factor(kind: TemplateKind, date: Date) -> f64 {
    let wd = date.weekday();
    let strike = date == StudyCalendar::strike_day();
    let holiday = StudyCalendar::is_holiday(date);
    match kind {
        TemplateKind::Commute { strike_factor } => {
            if strike {
                strike_factor
            } else if holiday {
                0.15
            } else if wd.is_weekend() {
                0.25
            } else {
                1.0
            }
        }
        TemplateKind::EventBurst | TemplateKind::QuietWithExpo => {
            // Venue base load is already tiny; weekends no different.
            if holiday {
                0.7
            } else {
                1.0
            }
        }
        TemplateKind::BroadDiurnal => {
            if holiday {
                0.8
            } else {
                1.0
            }
        }
        TemplateKind::Retail => {
            if holiday {
                0.5
            } else if wd == Weekday::Sun {
                0.6 // §6: cluster 2's slight Sunday drop
            } else {
                1.0
            }
        }
        TemplateKind::Office => {
            if strike {
                0.6
            } else if holiday {
                0.1
            } else if wd.is_weekend() {
                0.06
            } else {
                1.0
            }
        }
    }
}

/// Total template weight at (`date`, `hour`) including the site's events.
///
/// This is the hourly *shape* of an antenna's aggregate traffic; it is
/// normalised by the generator so its integral matches the antenna total.
pub fn template_weight(
    kind: TemplateKind,
    schedule: &EventSchedule,
    date: Date,
    day_index: usize,
    hour: usize,
) -> f64 {
    let base = hour_shape(kind, hour) * day_factor(kind, date);
    let boost = schedule.boost(day_index, hour);
    // Events add on top of (tiny) base: a venue goes from near-0 to peak.
    base * (1.0 + boost) + boost * 0.05
}

/// Calendar multiplier with every planted calendar anomaly removed: the
/// strike day and holidays are treated as a plain day of the same weekday.
/// Weekend/Sunday structure is *seasonal* (it repeats every week), so it
/// stays; only the one-off signals the generator plants are stripped.
fn day_factor_counterfactual(kind: TemplateKind, date: Date) -> f64 {
    let wd = date.weekday();
    match kind {
        TemplateKind::Commute { .. } => {
            if wd.is_weekend() {
                0.25
            } else {
                1.0
            }
        }
        TemplateKind::EventBurst | TemplateKind::QuietWithExpo | TemplateKind::BroadDiurnal => 1.0,
        TemplateKind::Retail => {
            if wd == Weekday::Sun {
                0.6
            } else {
                1.0
            }
        }
        TemplateKind::Office => {
            if wd.is_weekend() {
                0.06
            } else {
                1.0
            }
        }
    }
}

/// Counterfactual template weight: the same archetype on a signal-free
/// calendar — no strike collapse, no holidays, and an empty event schedule.
///
/// The ratio `template_weight / template_weight_counterfactual` at a given
/// (date, hour) isolates exactly the anomalies the generator plants, which
/// is what the [`crate::signals`] ground-truth oracle labels.
pub fn template_weight_counterfactual(kind: TemplateKind, date: Date, hour: usize) -> f64 {
    hour_shape(kind, hour) * day_factor_counterfactual(kind, date)
}

/// Per-service temporal modulation (Figure 11 effects): how a service's
/// share of an antenna's traffic varies with the hour, relative to the
/// aggregate template.
///
/// Returns a multiplicative factor around 1.0.
pub fn service_modulation(
    kind: TemplateKind,
    schedule: &EventSchedule,
    svc: &Service,
    date: Date,
    day_index: usize,
    hour: usize,
) -> f64 {
    let wd = date.weekday();
    match kind {
        TemplateKind::Commute { .. } => match svc.category {
            // Spotify peaks during the *morning* commute (Fig. 11a).
            Category::Music if (7..=9).contains(&hour) => 1.6,
            Category::Navigation => {
                if (7..=9).contains(&hour) || (17..=19).contains(&hour) {
                    1.5
                } else {
                    0.8
                }
            }
            Category::News if (7..=9).contains(&hour) => 1.5,
            _ => 1.0,
        },
        TemplateKind::EventBurst => {
            // Social media tracks the event itself (Fig. 11f)...
            if svc.category == Category::SocialMedia {
                if schedule.boost(day_index, hour) > 0.0 {
                    1.8
                } else {
                    0.8
                }
            } else if svc.name == "Waze" {
                // ...while Waze lags it by ~2 h (Fig. 11e).
                if schedule.boost_lagged(day_index, hour, 2) > 0.0 {
                    3.0
                } else {
                    0.6
                }
            } else if svc.category == Category::VideoStreaming {
                // Netflix under-utilised even at peak hours (Fig. 11d).
                0.5
            } else {
                1.0
            }
        }
        TemplateKind::QuietWithExpo => 1.0,
        TemplateKind::BroadDiurnal => {
            if svc.name == "Waze" {
                // Fig. 11i: cluster-1 Waze peaks mostly on Saturdays.
                if wd == Weekday::Sat {
                    2.2
                } else {
                    1.0
                }
            } else if svc.category == Category::VideoStreaming {
                // Daytime streaming (Fig. 11h, cluster 1).
                if (10..=20).contains(&hour) {
                    1.3
                } else {
                    0.8
                }
            } else {
                1.0
            }
        }
        TemplateKind::Retail => {
            if svc.category == Category::VideoStreaming {
                // Fig. 11h: cluster 2's hotels stream at night.
                if hour >= 21 || hour <= 1 {
                    2.2
                } else {
                    0.9
                }
            } else if svc.category == Category::AppStore {
                if (10..=19).contains(&hour) {
                    1.4
                } else {
                    0.8
                }
            } else {
                1.0
            }
        }
        TemplateKind::Office => {
            if svc.category == Category::Work || svc.category == Category::Mail {
                // Fig. 11g: Teams heavy over working hours incl. lunch.
                if (8..=18).contains(&hour) && !wd.is_weekend() {
                    1.4
                } else {
                    0.3
                }
            } else if svc.category == Category::VideoStreaming {
                // Fig. 11h: streaming only at lunch break in offices.
                if (12..=13).contains(&hour) {
                    2.5
                } else {
                    0.3
                }
            } else if svc.name == "Waze" {
                // Fig. 11i: office Waze after work hours on weekdays.
                if (17..=19).contains(&hour) && !wd.is_weekend() {
                    2.5
                } else {
                    0.5
                }
            } else {
                1.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::{catalog, index_of};

    fn cal() -> StudyCalendar {
        StudyCalendar::temporal_window()
    }

    #[test]
    fn commute_is_bimodal_on_weekdays() {
        let kind = TemplateKind::Commute {
            strike_factor: 0.05,
        };
        let sched = EventSchedule::none();
        let cal = cal();
        // 2023-01-09 is a Monday.
        let d = Date::new(2023, 1, 9);
        let i = cal.day_index(d).unwrap();
        let am = template_weight(kind, &sched, d, i, 8);
        let noon = template_weight(kind, &sched, d, i, 13);
        let pm = template_weight(kind, &sched, d, i, 18);
        let night = template_weight(kind, &sched, d, i, 3);
        assert!(am > 2.0 * noon);
        assert!(pm > 2.0 * noon);
        assert!(noon > 2.0 * night);
    }

    #[test]
    fn commute_collapses_on_strike_and_weekend() {
        let kind = TemplateKind::Commute {
            strike_factor: 0.05,
        };
        let sched = EventSchedule::none();
        let cal = cal();
        let strike = StudyCalendar::strike_day();
        let mon = Date::new(2023, 1, 9);
        let sat = Date::new(2023, 1, 7);
        let w_strike = template_weight(kind, &sched, strike, cal.day_index(strike).unwrap(), 8);
        let w_mon = template_weight(kind, &sched, mon, cal.day_index(mon).unwrap(), 8);
        let w_sat = template_weight(kind, &sched, sat, cal.day_index(sat).unwrap(), 8);
        assert!(w_strike < 0.1 * w_mon, "strike {w_strike} vs {w_mon}");
        assert!(w_sat < 0.3 * w_mon);
    }

    #[test]
    fn provincial_strike_is_milder() {
        let paris = TemplateKind::Commute {
            strike_factor: 0.05,
        };
        let prov = TemplateKind::Commute {
            strike_factor: 0.45,
        };
        let sched = EventSchedule::none();
        let cal = cal();
        let strike = StudyCalendar::strike_day();
        let i = cal.day_index(strike).unwrap();
        let wp = template_weight(paris, &sched, strike, i, 8);
        let wv = template_weight(prov, &sched, strike, i, 8);
        assert!(wv > 4.0 * wp);
    }

    #[test]
    fn event_burst_dominates_base() {
        let kind = TemplateKind::EventBurst;
        let mut rng = Rng::seed_from(2);
        let cal = cal();
        let sched = EventSchedule::stadium(&mut rng, &cal, true);
        let strike = StudyCalendar::strike_day();
        let i = cal.day_index(strike).unwrap();
        let peak = template_weight(kind, &sched, strike, i, 21);
        // A quiet morning two days earlier.
        let q = cal.date(i - 2);
        let quiet = template_weight(kind, &sched, q, i - 2, 10);
        assert!(peak > 10.0 * quiet, "peak {peak} quiet {quiet}");
    }

    #[test]
    fn expo_pins_multiday_event() {
        let mut rng = Rng::seed_from(3);
        let cal = cal();
        let sched = EventSchedule::expo(&mut rng, &cal, true);
        let start = cal.day_index(StudyCalendar::strike_day()).unwrap();
        // Active through the following days at midday.
        for d in start..(start + 4).min(cal.num_days()) {
            assert!(sched.boost(d, 12) > 0.0, "day {d}");
        }
    }

    #[test]
    fn office_idle_weekends() {
        let kind = TemplateKind::Office;
        let sched = EventSchedule::none();
        let cal = cal();
        let mon = Date::new(2023, 1, 9);
        let sat = Date::new(2023, 1, 7);
        let w_mon = template_weight(kind, &sched, mon, cal.day_index(mon).unwrap(), 11);
        let w_sat = template_weight(kind, &sched, sat, cal.day_index(sat).unwrap(), 11);
        assert!(w_sat < 0.1 * w_mon);
    }

    #[test]
    fn retail_sunday_dip_and_night_floor() {
        let kind = TemplateKind::Retail;
        let sched = EventSchedule::none();
        let cal = cal();
        let sun = Date::new(2023, 1, 8);
        let mon = Date::new(2023, 1, 9);
        let w_sun = template_weight(kind, &sched, sun, cal.day_index(sun).unwrap(), 14);
        let w_mon = template_weight(kind, &sched, mon, cal.day_index(mon).unwrap(), 14);
        assert!(w_sun < w_mon);
        // Night floor above office night.
        let w_night_retail = template_weight(kind, &sched, mon, cal.day_index(mon).unwrap(), 3);
        let w_night_office = template_weight(
            TemplateKind::Office,
            &sched,
            mon,
            cal.day_index(mon).unwrap(),
            3,
        );
        assert!(w_night_retail > 3.0 * w_night_office);
    }

    #[test]
    fn waze_lags_event_peak() {
        let mut rng = Rng::seed_from(5);
        let cal = cal();
        let sched = EventSchedule::stadium(&mut rng, &cal, true);
        let c = catalog();
        let waze = &c[index_of(&c, "Waze").unwrap()];
        let snap = &c[index_of(&c, "Snapchat").unwrap()];
        let strike = StudyCalendar::strike_day();
        let i = cal.day_index(strike).unwrap();
        // At the event start hour 19, Snapchat is boosted, Waze is not yet.
        let m_snap_19 = service_modulation(TemplateKind::EventBurst, &sched, snap, strike, i, 19);
        let m_waze_19 = service_modulation(TemplateKind::EventBurst, &sched, waze, strike, i, 19);
        // Two hours later Waze picks up.
        let m_waze_21 = service_modulation(TemplateKind::EventBurst, &sched, waze, strike, i, 21);
        assert!(m_snap_19 > 1.5);
        assert!(m_waze_21 > m_waze_19);
    }

    #[test]
    fn office_netflix_only_at_lunch() {
        let sched = EventSchedule::none();
        let cal = cal();
        let c = catalog();
        let netflix = &c[index_of(&c, "Netflix").unwrap()];
        let mon = Date::new(2023, 1, 9);
        let i = cal.day_index(mon).unwrap();
        let lunch = service_modulation(TemplateKind::Office, &sched, netflix, mon, i, 12);
        let aft = service_modulation(TemplateKind::Office, &sched, netflix, mon, i, 16);
        assert!(lunch > 5.0 * aft);
    }

    #[test]
    fn hotel_netflix_at_night() {
        let sched = EventSchedule::none();
        let cal = cal();
        let c = catalog();
        let netflix = &c[index_of(&c, "Netflix").unwrap()];
        let mon = Date::new(2023, 1, 9);
        let i = cal.day_index(mon).unwrap();
        let night = service_modulation(TemplateKind::Retail, &sched, netflix, mon, i, 22);
        let noon = service_modulation(TemplateKind::Retail, &sched, netflix, mon, i, 12);
        assert!(night > 2.0 * noon);
    }

    #[test]
    fn general_waze_saturday() {
        let sched = EventSchedule::none();
        let cal = cal();
        let c = catalog();
        let waze = &c[index_of(&c, "Waze").unwrap()];
        let sat = Date::new(2023, 1, 7);
        let mon = Date::new(2023, 1, 9);
        let m_sat = service_modulation(
            TemplateKind::BroadDiurnal,
            &sched,
            waze,
            sat,
            cal.day_index(sat).unwrap(),
            14,
        );
        let m_mon = service_modulation(
            TemplateKind::BroadDiurnal,
            &sched,
            waze,
            mon,
            cal.day_index(mon).unwrap(),
            14,
        );
        assert!(m_sat > 1.8 * m_mon);
    }

    #[test]
    fn weights_are_finite_and_nonnegative() {
        let mut rng = Rng::seed_from(9);
        let cal = cal();
        let sched = EventSchedule::stadium(&mut rng, &cal, true);
        for kind in [
            TemplateKind::Commute {
                strike_factor: 0.05,
            },
            TemplateKind::EventBurst,
            TemplateKind::QuietWithExpo,
            TemplateKind::BroadDiurnal,
            TemplateKind::Retail,
            TemplateKind::Office,
        ] {
            for (i, d) in cal.iter_days() {
                for h in 0..24 {
                    let w = template_weight(kind, &sched, d, i, h);
                    assert!(w.is_finite() && w >= 0.0);
                }
            }
        }
    }

    #[test]
    fn counterfactual_strips_strike_but_keeps_weekend() {
        let kind = TemplateKind::Commute {
            strike_factor: 0.05,
        };
        let strike = StudyCalendar::strike_day(); // a Thursday
        let mon = Date::new(2023, 1, 9);
        let sat = Date::new(2023, 1, 7);
        assert_eq!(
            template_weight_counterfactual(kind, strike, 8),
            template_weight_counterfactual(kind, mon, 8),
        );
        assert!(
            template_weight_counterfactual(kind, sat, 8)
                < 0.5 * template_weight_counterfactual(kind, mon, 8)
        );
        // And it matches the planted weight away from any signal.
        let sched = EventSchedule::none();
        let cal = cal();
        let i = cal.day_index(mon).unwrap();
        assert_eq!(
            template_weight_counterfactual(kind, mon, 8),
            template_weight(kind, &sched, mon, i, 8),
        );
    }

    #[test]
    fn event_active_bounds() {
        let e = Event {
            start_day: 5,
            duration_days: 2,
            intensity: 3.0,
            start_hour: 18,
            end_hour: 23,
        };
        assert!(e.active(5, 18));
        assert!(e.active(6, 23));
        assert!(!e.active(7, 18));
        assert!(!e.active(5, 17));
        assert!(!e.active(4, 20));
    }
}
