//! The mobile-service catalog.
//!
//! The paper considers **M = 73 mobile services** spanning "social
//! networking, messaging, audio and video streaming, transportation,
//! professional activities, and well-being" (Section 3). The exact list is
//! proprietary; this catalog reconstructs a plausible French-market set of
//! 73 services — including every service the paper names in its analysis
//! (Spotify, SoundCloud, Deezer, Apple Music, Mappy, Google Maps, Waze,
//! transportation websites, Snapchat, Twitter, sports websites, Giphy,
//! WhatsApp, Canal+, Netflix, Disney+, Amazon Prime Video, Microsoft Teams,
//! LinkedIn, Google Play Store, shopping websites, Yahoo, entertainment
//! websites, mailing services) — grouped into categories with per-service
//! global popularity and volume-scale parameters.
//!
//! Popularity controls what fraction of traffic a service attracts at a
//! *neutral* antenna; volume scale models that streaming moves orders of
//! magnitude more bytes than texting, the imbalance that motivates RCA in
//! Section 4.1.

/// Functional category of a mobile service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Audio streaming (Spotify, Deezer, ...).
    Music,
    /// Maps, transit and driving navigation.
    Navigation,
    /// Video streaming (Netflix, YouTube, ...).
    VideoStreaming,
    /// Social networks and content sharing.
    SocialMedia,
    /// Person-to-person messaging.
    Messaging,
    /// Professional / business tools.
    Work,
    /// E-mail providers.
    Mail,
    /// Generic web portals and thematic websites.
    WebPortal,
    /// Application stores.
    AppStore,
    /// On-line shopping platforms.
    Shopping,
    /// Mobile gaming.
    Gaming,
    /// Personal cloud storage and sync.
    Cloud,
    /// Video calling.
    VideoCall,
    /// Health, fitness and well-being.
    Wellbeing,
    /// News outlets.
    News,
    /// Banking and finance.
    Finance,
}

impl Category {
    /// All categories, in catalog order.
    pub const ALL: [Category; 16] = [
        Category::Music,
        Category::Navigation,
        Category::VideoStreaming,
        Category::SocialMedia,
        Category::Messaging,
        Category::Work,
        Category::Mail,
        Category::WebPortal,
        Category::AppStore,
        Category::Shopping,
        Category::Gaming,
        Category::Cloud,
        Category::VideoCall,
        Category::Wellbeing,
        Category::News,
        Category::Finance,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Music => "Music",
            Category::Navigation => "Navigation",
            Category::VideoStreaming => "Video streaming",
            Category::SocialMedia => "Social media",
            Category::Messaging => "Messaging",
            Category::Work => "Work",
            Category::Mail => "Mail",
            Category::WebPortal => "Web portal",
            Category::AppStore => "App store",
            Category::Shopping => "Shopping",
            Category::Gaming => "Gaming",
            Category::Cloud => "Cloud",
            Category::VideoCall => "Video call",
            Category::Wellbeing => "Well-being",
            Category::News => "News",
            Category::Finance => "Finance",
        }
    }
}

/// One mobile service of the catalog.
#[derive(Clone, Debug, PartialEq)]
pub struct Service {
    /// Display name (e.g. `"Spotify"`).
    pub name: &'static str,
    /// Functional category.
    pub category: Category,
    /// Relative share of users engaging with the service at a neutral
    /// antenna (arbitrary units; normalised by the generator).
    pub popularity: f64,
    /// Mean bytes moved per unit of engagement, relative to a baseline of
    /// 1.0 ≈ light browsing. Streaming ≫ messaging, per Section 4.1.
    pub volume_scale: f64,
}

macro_rules! svc {
    ($name:literal, $cat:ident, $pop:expr, $vol:expr) => {
        Service {
            name: $name,
            category: Category::$cat,
            popularity: $pop,
            volume_scale: $vol,
        }
    };
}

/// The full 73-service catalog, in stable index order. Index in this slice
/// is the service's column in the traffic matrix.
pub fn catalog() -> Vec<Service> {
    vec![
        // --- Music (5) ---
        svc!("Spotify", Music, 7.0, 12.0),
        svc!("SoundCloud", Music, 1.2, 10.0),
        svc!("Deezer", Music, 2.5, 11.0),
        svc!("Apple Music", Music, 2.2, 11.0),
        svc!("YouTube Music", Music, 1.8, 12.0),
        // --- Navigation (6) ---
        svc!("Google Maps", Navigation, 8.0, 2.0),
        svc!("Mappy", Navigation, 1.0, 1.5),
        svc!("Waze", Navigation, 3.5, 2.5),
        svc!("Citymapper", Navigation, 1.0, 1.2),
        svc!("Transportation Websites", Navigation, 1.5, 1.0),
        svc!("SNCF Connect", Navigation, 1.6, 1.2),
        // --- Video streaming (8) ---
        svc!("Netflix", VideoStreaming, 8.5, 60.0),
        svc!("YouTube", VideoStreaming, 10.0, 45.0),
        svc!("Disney+", VideoStreaming, 3.0, 55.0),
        svc!("Amazon Prime Video", VideoStreaming, 3.2, 55.0),
        svc!("Canal+", VideoStreaming, 1.8, 50.0),
        svc!("myCanal", VideoStreaming, 1.5, 50.0),
        svc!("Twitch", VideoStreaming, 2.2, 40.0),
        svc!("Molotov TV", VideoStreaming, 0.9, 45.0),
        // --- Social media (7) ---
        svc!("Snapchat", SocialMedia, 6.0, 15.0),
        svc!("Twitter", SocialMedia, 5.0, 6.0),
        svc!("Instagram", SocialMedia, 8.0, 18.0),
        svc!("Facebook", SocialMedia, 7.0, 10.0),
        svc!("TikTok", SocialMedia, 7.5, 30.0),
        svc!("Giphy", SocialMedia, 0.8, 4.0),
        svc!("Pinterest", SocialMedia, 1.5, 8.0),
        // --- Messaging (5) ---
        svc!("WhatsApp", Messaging, 7.5, 3.0),
        svc!("Facebook Messenger", Messaging, 4.5, 2.5),
        svc!("Telegram", Messaging, 2.0, 2.5),
        svc!("iMessage", Messaging, 3.5, 2.0),
        svc!("Discord", Messaging, 1.8, 4.0),
        // --- Work (7) ---
        svc!("Microsoft Teams", Work, 3.0, 8.0),
        svc!("LinkedIn", Work, 2.5, 4.0),
        svc!("Zoom", Work, 1.5, 9.0),
        svc!("Slack", Work, 1.0, 3.0),
        svc!("Microsoft 365", Work, 2.0, 4.0),
        svc!("Google Workspace", Work, 1.8, 4.0),
        svc!("Corporate VPN", Work, 1.2, 5.0),
        // --- Mail (4) ---
        svc!("Gmail", Mail, 4.5, 1.5),
        svc!("Outlook Mail", Mail, 2.5, 1.5),
        svc!("Yahoo Mail", Mail, 0.8, 1.2),
        svc!("Orange Mail", Mail, 1.6, 1.2),
        // --- Web portals (6) ---
        svc!("Yahoo", WebPortal, 0.9, 2.0),
        svc!("Google Search", WebPortal, 9.0, 1.5),
        svc!("News Websites", WebPortal, 3.0, 2.0),
        svc!("Entertainment Websites", WebPortal, 2.0, 3.0),
        svc!("Sports Websites", WebPortal, 2.2, 3.0),
        svc!("Shopping Websites", WebPortal, 2.5, 2.5),
        // --- App stores (2) ---
        svc!("Google Play Store", AppStore, 3.5, 20.0),
        svc!("Apple App Store", AppStore, 3.0, 20.0),
        // --- Shopping apps (4) ---
        svc!("Amazon Shopping", Shopping, 3.5, 3.0),
        svc!("Vinted", Shopping, 2.0, 4.0),
        svc!("Leboncoin", Shopping, 2.2, 3.0),
        svc!("AliExpress", Shopping, 1.2, 3.5),
        // --- Gaming (5) ---
        svc!("Fortnite", Gaming, 1.5, 25.0),
        svc!("Roblox", Gaming, 1.3, 20.0),
        svc!("Clash Royale", Gaming, 1.0, 6.0),
        svc!("Candy Crush", Gaming, 1.4, 4.0),
        svc!("PlayStation Network", Gaming, 0.9, 15.0),
        // --- Cloud (4) ---
        svc!("iCloud", Cloud, 3.0, 10.0),
        svc!("Google Drive", Cloud, 2.5, 8.0),
        svc!("Dropbox", Cloud, 0.8, 8.0),
        svc!("OneDrive", Cloud, 1.2, 8.0),
        // --- Video calls (2) ---
        svc!("FaceTime", VideoCall, 2.0, 12.0),
        svc!("Google Meet", VideoCall, 1.2, 10.0),
        // --- Well-being (2) ---
        svc!("Strava", Wellbeing, 1.0, 3.0),
        svc!("Doctolib", Wellbeing, 1.2, 1.5),
        // --- News (3) ---
        svc!("Le Monde", News, 1.2, 2.0),
        svc!("BFMTV", News, 1.8, 5.0),
        svc!("Franceinfo", News, 1.3, 3.0),
        // --- Finance (3) ---
        svc!("Banking Apps", Finance, 3.0, 1.2),
        svc!("PayPal", Finance, 1.5, 1.0),
        svc!("Crypto Exchanges", Finance, 0.6, 1.5),
    ]
}

/// Number of services in the catalog — the paper's `M`.
pub const NUM_SERVICES: usize = 73;

/// Looks up a service index by exact name.
pub fn index_of(services: &[Service], name: &str) -> Option<usize> {
    services.iter().position(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_73_services() {
        assert_eq!(catalog().len(), NUM_SERVICES);
    }

    #[test]
    fn names_are_unique() {
        let c = catalog();
        let mut names: Vec<&str> = c.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SERVICES);
    }

    #[test]
    fn all_paper_named_services_present() {
        let c = catalog();
        for name in [
            "Spotify",
            "SoundCloud",
            "Deezer",
            "Apple Music",
            "Mappy",
            "Google Maps",
            "Waze",
            "Transportation Websites",
            "Snapchat",
            "Twitter",
            "Sports Websites",
            "Giphy",
            "WhatsApp",
            "Canal+",
            "Netflix",
            "Disney+",
            "Amazon Prime Video",
            "Microsoft Teams",
            "LinkedIn",
            "Google Play Store",
            "Shopping Websites",
            "Yahoo",
            "Entertainment Websites",
        ] {
            assert!(index_of(&c, name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn parameters_are_positive() {
        for s in catalog() {
            assert!(s.popularity > 0.0, "{} popularity", s.name);
            assert!(s.volume_scale > 0.0, "{} volume", s.name);
        }
    }

    #[test]
    fn streaming_dwarfs_messaging_volume() {
        // The imbalance that motivates RCA: streaming per-engagement volume
        // is at least an order of magnitude above messaging.
        let c = catalog();
        let netflix = &c[index_of(&c, "Netflix").unwrap()];
        let whatsapp = &c[index_of(&c, "WhatsApp").unwrap()];
        assert!(netflix.volume_scale >= 10.0 * whatsapp.volume_scale);
    }

    #[test]
    fn every_category_represented() {
        let c = catalog();
        for cat in Category::ALL {
            assert!(
                c.iter().any(|s| s.category == cat),
                "no service in {:?}",
                cat
            );
        }
    }

    #[test]
    fn index_of_miss_is_none() {
        assert_eq!(index_of(&catalog(), "Nonexistent App"), None);
    }
}
