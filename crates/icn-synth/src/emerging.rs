//! Emerging-service archetype injection (the paper's Section 7 outlook).
//!
//! The paper anticipates that "with the emergence of applications such as
//! the industrial Internet of Things, augmented reality, and intelligent
//! self-orchestrated environments ... additional clusters may emerge within
//! ICN traffic, requiring further research and provisioning by MNOs". This
//! module simulates that future: it injects a 10th latent profile — an
//! IIoT/AR-flavoured usage pattern concentrated on cloud sync, corporate
//! VPN, video calling and gaming-engine-like streaming — into an existing
//! dataset, so the k-selection experiment can verify that the pipeline
//! *detects* the new cluster (the quality-index drop moves from k = 9 to
//! k = 10).

use crate::antennas::Antenna;
use crate::archetypes::Archetype;
use crate::dataset::Dataset;
use crate::environments::{City, Environment};
use crate::geo::{site_coord, RadioTech};
use crate::services::Service;
use icn_stats::{Matrix, Rng};

/// Ground-truth label id used for injected emerging antennas (the nine
/// regular archetypes use 0–8).
pub const EMERGING_LABEL: usize = 9;

/// Affinity multiplier of the emerging IIoT/AR profile for one service.
///
/// Heavy machine-to-machine and immersive traffic: cloud, VPN, video
/// calling and real-time streaming over-used; human leisure services
/// under-used.
pub fn emerging_affinity(svc: &Service) -> f64 {
    use crate::services::Category::*;
    match svc.name {
        "Corporate VPN" => 6.0,
        "Twitch" => 2.8, // stand-in for real-time interactive streams
        _ => match svc.category {
            Cloud => 3.8,
            VideoCall => 3.2,
            Gaming => 2.2,
            Work => 1.6,
            Music => 0.2,
            SocialMedia => 0.4,
            Shopping => 0.35,
            News => 0.4,
            VideoStreaming => 0.5,
            _ => 0.7,
        },
    }
}

/// A dataset extended with an emerging cluster, plus its ground truth.
#[derive(Clone, Debug)]
pub struct EmergingDataset {
    /// The extended dataset (emerging antennas appended at the end).
    pub dataset: Dataset,
    /// Ground-truth labels: 0–8 for the regular archetypes, 9 for the
    /// injected emerging profile.
    pub labels: Vec<usize>,
    /// Number of injected antennas.
    pub n_injected: usize,
}

/// Injects `n` emerging-profile antennas (smart-factory workspaces) into a
/// copy of `base`. Traffic for the injected antennas is synthesised with
/// the same machinery as the regular population.
pub fn inject_emerging(base: &Dataset, n: usize, seed: u64) -> EmergingDataset {
    assert!(n > 0, "inject_emerging: need at least one antenna");
    let mut dataset = base.clone();
    let mut rng = Rng::seed_from(seed);
    let first_id = dataset.antennas.len();
    let site_base = dataset
        .antennas
        .iter()
        .map(|a| a.site_id)
        .max()
        .map_or(0, |m| m + 1);

    // Extend the antenna population. The archetype field must hold *some*
    // regular archetype (the enum has nine); ground truth for validation
    // lives in `EmergingDataset::labels`. Workspace is the closest cover
    // story (smart factories are industrial workspaces).
    let mut extra_rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    for i in 0..n {
        let site_id = site_base + i / 4;
        let antenna = Antenna {
            id: first_id + i,
            site_id,
            site_name: format!("OTHER-USINE-{:04}", site_id),
            environment: Environment::Workspace,
            city: City::Other,
            archetype: Archetype::Workspace,
            coord: site_coord(City::Other, &mut rng),
            rat: RadioTech::sample(&mut rng),
        };
        // Volume: industrial campuses move steady medium traffic.
        let vol = rng.lognormal(12.4, 0.5);
        let mut shares: Vec<f64> = dataset
            .services
            .iter()
            .map(|svc| {
                let noise = rng.lognormal(0.0, 0.3);
                svc.popularity * svc.volume_scale * emerging_affinity(svc) * noise
            })
            .collect();
        let total: f64 = shares.iter().sum();
        extra_rows.push(shares.drain(..).map(|s| vol * s / total).collect());
        dataset.antennas.push(antenna);
    }
    let extra = Matrix::from_rows(&extra_rows);
    dataset.indoor_totals = dataset.indoor_totals.vstack(&extra);

    let mut labels = base.planted_labels();
    labels.extend(std::iter::repeat_n(EMERGING_LABEL, n));

    EmergingDataset {
        dataset,
        labels,
        n_injected: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;

    fn base() -> Dataset {
        Dataset::generate(SynthConfig::small().with_scale(0.05))
    }

    #[test]
    fn injection_extends_population() {
        let b = base();
        let e = inject_emerging(&b, 12, 7);
        assert_eq!(e.dataset.num_antennas(), b.num_antennas() + 12);
        assert_eq!(e.dataset.indoor_totals.rows(), b.indoor_totals.rows() + 12);
        assert_eq!(e.labels.len(), e.dataset.num_antennas());
        assert_eq!(
            e.labels.iter().filter(|&&l| l == EMERGING_LABEL).count(),
            12
        );
    }

    #[test]
    fn injected_rows_have_emerging_signature() {
        let b = base();
        let e = inject_emerging(&b, 8, 7);
        let svcs = &e.dataset.services;
        use crate::services::Category;
        // Aggregate category shares over the injected rows.
        let mut cloud_share = 0.0;
        let mut music_share = 0.0;
        for i in b.num_antennas()..e.dataset.num_antennas() {
            let row = e.dataset.indoor_totals.row(i);
            let total: f64 = row.iter().sum();
            for (j, svc) in svcs.iter().enumerate() {
                match svc.category {
                    Category::Cloud => cloud_share += row[j] / total,
                    Category::Music => music_share += row[j] / total,
                    _ => {}
                }
            }
        }
        // Machine traffic (cloud sync) dwarfs leisure music streaming.
        assert!(
            cloud_share > 5.0 * music_share,
            "cloud {cloud_share} music {music_share}"
        );
    }

    #[test]
    fn injection_is_deterministic() {
        let b = base();
        let e1 = inject_emerging(&b, 10, 3);
        let e2 = inject_emerging(&b, 10, 3);
        assert_eq!(e1.dataset.indoor_totals, e2.dataset.indoor_totals);
    }

    #[test]
    fn original_rows_untouched() {
        let b = base();
        let e = inject_emerging(&b, 5, 9);
        for i in 0..b.num_antennas() {
            assert_eq!(e.dataset.indoor_totals.row(i), b.indoor_totals.row(i));
        }
    }

    #[test]
    #[should_panic(expected = "at least one antenna")]
    fn zero_injection_panics() {
        inject_emerging(&base(), 0, 1);
    }
}
