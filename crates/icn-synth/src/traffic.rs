//! Traffic synthesis: the antenna × service totals matrix and the
//! per-antenna hourly series.
//!
//! The generator ties the two representations together so that they remain
//! mutually consistent: each antenna first receives a two-month **total
//! volume** (log-normal, archetype-dependent) and a **service share
//! vector** (global popularity × archetype affinity × noise); the totals
//! matrix entry `T[i][j]` is `volume_i × share_ij`. The **hourly series**
//! of a service at an antenna is then `T[i][j]` spread over the calendar
//! proportionally to the archetype's temporal template weight times the
//! service modulation — so summing the hourly series over the full study
//! period returns `T[i][j]` exactly (up to floating-point rounding).

use crate::antennas::Antenna;
use crate::calendar::StudyCalendar;
use crate::services::{Category, Service};
use crate::temporal::{self, EventSchedule, TemplateKind};
use icn_stats::{Matrix, Rng};

/// Per-antenna log-normal noise applied to each service share (models
/// site-to-site diversity of habits within an archetype).
const SHARE_NOISE_SIGMA: f64 = 0.35;

/// Relative measurement noise on each hourly sample.
const HOURLY_NOISE_SIGMA: f64 = 0.10;

/// Draws the service share vector of one antenna: normalised
/// `popularity × volume_scale × affinity × exp(N(0, σ))`.
pub fn service_shares(antenna: &Antenna, services: &[Service], rng: &mut Rng) -> Vec<f64> {
    let mut shares: Vec<f64> = services
        .iter()
        .map(|svc| {
            let aff = antenna.archetype.service_affinity(svc);
            let noise = rng.lognormal(0.0, SHARE_NOISE_SIGMA);
            svc.popularity * svc.volume_scale * aff * noise
        })
        .collect();
    let total: f64 = shares.iter().sum();
    debug_assert!(total > 0.0);
    for s in &mut shares {
        *s /= total;
    }
    shares
}

/// Draws the two-month total volume (MB) of one antenna.
pub fn total_volume(antenna: &Antenna, rng: &mut Rng) -> f64 {
    let (mu, sigma) = antenna.archetype.volume_lognormal();
    rng.lognormal(mu, sigma)
}

/// The per-site event schedule for a venue antenna (empty otherwise).
///
/// Deterministic per site: all antennas of a site share the same events.
/// Paris arenas pin the NBA night of 19 Jan 2023; Lyon expo sites pin the
/// 4-day Sirha fair (Section 6).
pub fn event_schedule(antenna: &Antenna, cal: &StudyCalendar, root: &Rng) -> EventSchedule {
    use crate::archetypes::Archetype;
    use crate::environments::City;
    let mut site_rng = root.fork(0x5EED_0000 ^ antenna.site_id as u64);
    match antenna.archetype {
        Archetype::ProvincialStadium => EventSchedule::stadium(&mut site_rng, cal, false),
        Archetype::ParisArena => {
            EventSchedule::stadium(&mut site_rng, cal, antenna.city == City::Paris)
        }
        Archetype::QuietVenue => {
            EventSchedule::expo(&mut site_rng, cal, antenna.city == City::Lyon)
        }
        _ => EventSchedule::none(),
    }
}

/// Builds the `N × M` totals matrix for a population of antennas — the
/// paper's `T` (Section 4.1). Deterministic given `root`.
pub fn totals_matrix(antennas: &[Antenna], services: &[Service], root: &Rng) -> Matrix {
    let mut t = Matrix::zeros(antennas.len(), services.len());
    for (i, a) in antennas.iter().enumerate() {
        let mut rng = root.fork(0xA17E_0000 ^ a.id as u64);
        let vol = total_volume(a, &mut rng);
        let shares = service_shares(a, services, &mut rng);
        for (j, s) in shares.iter().enumerate() {
            t.set(i, j, vol * s);
        }
    }
    t
}

/// Unnormalised hourly weights of one antenna-service pair over a calendar.
fn raw_weights(
    kind: TemplateKind,
    schedule: &EventSchedule,
    svc: &Service,
    cal: &StudyCalendar,
) -> Vec<f64> {
    let mut w = Vec::with_capacity(cal.num_hours());
    for (di, date) in cal.iter_days() {
        for hour in 0..24 {
            let base = temporal::template_weight(kind, schedule, date, di, hour);
            let m = temporal::service_modulation(kind, schedule, svc, date, di, hour);
            w.push(base * m);
        }
    }
    w
}

/// Hourly traffic series (MB per hour) of service `svc` at `antenna` over
/// `cal`, integrating to `total_mb` before measurement noise.
///
/// `total_mb` should be the totals-matrix entry scaled to the window (the
/// caller decides; [`hourly_series_for_window`] does the standard scaling).
pub fn hourly_series(
    antenna: &Antenna,
    svc: &Service,
    cal: &StudyCalendar,
    total_mb: f64,
    root: &Rng,
) -> Vec<f64> {
    let schedule = event_schedule(antenna, cal, root);
    let w = raw_weights(antenna.archetype.template(), &schedule, svc, cal);
    let sum: f64 = w.iter().sum();
    if sum <= 0.0 {
        return vec![0.0; w.len()];
    }
    let mut rng = root.fork(0x700A_0000 ^ (antenna.id as u64) << 16 ^ hash_name(svc.name));
    w.into_iter()
        .map(|x| {
            let clean = total_mb * x / sum;
            // Multiplicative measurement noise, truncated at zero.
            (clean * (1.0 + HOURLY_NOISE_SIGMA * rng.gaussian())).max(0.0)
        })
        .collect()
}

/// Hourly series over an analysis window, scaling the full-period total by
/// the window/period day ratio (the convention used by the Figure 10–11
/// harnesses: they analyse the 21-day January window of a 65-day study).
pub fn hourly_series_for_window(
    antenna: &Antenna,
    svc: &Service,
    full_period_total_mb: f64,
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> Vec<f64> {
    assert!(full_period_days > 0, "zero-length full period");
    let scaled = full_period_total_mb * window.num_days() as f64 / full_period_days as f64;
    hourly_series(antenna, svc, window, scaled, root)
}

/// The modulation class of a service under one template: weight vectors
/// are identical for all services sharing `(category, is-Waze)` because
/// [`temporal::service_modulation`] inspects nothing else of the service.
type WeightClass = (Category, bool);

/// Shared core of the aggregate builders: sums the per-service series of
/// one antenna, computing each weight-class's hourly weight vector and
/// normaliser **once** instead of once per service, and hoisting the
/// (service-independent) event schedule out of the per-service loop.
///
/// Bit-identical to summing [`hourly_series_for_window`] per service: the
/// scaled total keeps the original `tot × days ÷ period` op order, the
/// per-service measurement-noise stream is the same fork, and services
/// accumulate into the output in catalog order with the same per-hour
/// additions.
fn aggregate_classed<F>(
    antenna: &Antenna,
    services: &[Service],
    totals_row: &[f64],
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
    weights_for: F,
) -> Vec<f64>
where
    F: Fn(&Service) -> Vec<f64>,
{
    assert_eq!(services.len(), totals_row.len(), "row/services mismatch");
    assert!(full_period_days > 0, "zero-length full period");
    let mut agg = vec![0.0; window.num_hours()];
    let mut classes: Vec<(WeightClass, Vec<f64>, f64)> = Vec::new();
    for (svc, &tot) in services.iter().zip(totals_row) {
        let key: WeightClass = (svc.category, svc.name == "Waze");
        let ci = match classes.iter().position(|(k, _, _)| *k == key) {
            Some(i) => i,
            None => {
                let w = weights_for(svc);
                let sum: f64 = w.iter().sum();
                classes.push((key, w, sum));
                classes.len() - 1
            }
        };
        let (_, w, sum) = &classes[ci];
        if *sum <= 0.0 {
            continue; // the per-service series would be all zeros
        }
        let total_mb = tot * window.num_days() as f64 / full_period_days as f64;
        let mut rng = root.fork(0x700A_0000 ^ (antenna.id as u64) << 16 ^ hash_name(svc.name));
        for (a, &x) in agg.iter_mut().zip(w) {
            let clean = total_mb * x / *sum;
            *a += (clean * (1.0 + HOURLY_NOISE_SIGMA * rng.gaussian())).max(0.0);
        }
    }
    agg
}

/// Aggregate (all-service) hourly series of one antenna, given its totals
/// row. Sums the per-service series; used by the Figure 10 harness.
pub fn aggregate_hourly_series(
    antenna: &Antenna,
    services: &[Service],
    totals_row: &[f64],
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> Vec<f64> {
    let kind = antenna.archetype.template();
    let schedule = event_schedule(antenna, window, root);
    aggregate_classed(
        antenna,
        services,
        totals_row,
        full_period_days,
        window,
        root,
        |svc| raw_weights(kind, &schedule, svc, window),
    )
}

/// Counterfactual weights: signal-free calendar and an empty schedule.
fn raw_weights_signal_free(kind: TemplateKind, svc: &Service, cal: &StudyCalendar) -> Vec<f64> {
    let empty = EventSchedule::none();
    let mut w = Vec::with_capacity(cal.num_hours());
    for (di, date) in cal.iter_days() {
        for hour in 0..24 {
            let base = temporal::template_weight_counterfactual(kind, date, hour);
            let m = temporal::service_modulation(kind, &empty, svc, date, di, hour);
            w.push(base * m);
        }
    }
    w
}

/// Signal-free re-synthesis of [`hourly_series`]: identical antenna, total
/// and *measurement-noise stream* (same RNG fork, one draw per hour), but
/// with every planted anomaly removed — no strike collapse, no holidays,
/// no scheduled events. The anomaly detector must flag nothing on it.
pub fn hourly_series_signal_free(
    antenna: &Antenna,
    svc: &Service,
    cal: &StudyCalendar,
    total_mb: f64,
    root: &Rng,
) -> Vec<f64> {
    let w = raw_weights_signal_free(antenna.archetype.template(), svc, cal);
    let sum: f64 = w.iter().sum();
    if sum <= 0.0 {
        return vec![0.0; w.len()];
    }
    let mut rng = root.fork(0x700A_0000 ^ (antenna.id as u64) << 16 ^ hash_name(svc.name));
    w.into_iter()
        .map(|x| {
            let clean = total_mb * x / sum;
            (clean * (1.0 + HOURLY_NOISE_SIGMA * rng.gaussian())).max(0.0)
        })
        .collect()
}

/// Window-scaled variant of [`hourly_series_signal_free`], mirroring
/// [`hourly_series_for_window`].
pub fn hourly_series_for_window_signal_free(
    antenna: &Antenna,
    svc: &Service,
    full_period_total_mb: f64,
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> Vec<f64> {
    assert!(full_period_days > 0, "zero-length full period");
    let scaled = full_period_total_mb * window.num_days() as f64 / full_period_days as f64;
    hourly_series_signal_free(antenna, svc, window, scaled, root)
}

/// Aggregate signal-free series, mirroring [`aggregate_hourly_series`].
pub fn aggregate_hourly_series_signal_free(
    antenna: &Antenna,
    services: &[Service],
    totals_row: &[f64],
    full_period_days: usize,
    window: &StudyCalendar,
    root: &Rng,
) -> Vec<f64> {
    let kind = antenna.archetype.template();
    aggregate_classed(
        antenna,
        services,
        totals_row,
        full_period_days,
        window,
        root,
        |svc| raw_weights_signal_free(kind, svc, window),
    )
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a: stable, cheap, good enough to decorrelate service streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antennas::generate_antennas;
    use crate::archetypes::Archetype;
    use crate::calendar::Date;
    use crate::services::{catalog, index_of};

    fn small_pop() -> (Vec<Antenna>, Vec<Service>, Rng) {
        let mut rng = Rng::seed_from(123);
        let ants = generate_antennas(0.02, &mut rng);
        (ants, catalog(), Rng::seed_from(123))
    }

    #[test]
    fn shares_form_a_distribution() {
        let (ants, svcs, root) = small_pop();
        let mut rng = root.fork(1);
        let shares = service_shares(&ants[0], &svcs, &mut rng);
        assert_eq!(shares.len(), svcs.len());
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(shares.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn totals_matrix_shape_and_positivity() {
        let (ants, svcs, root) = small_pop();
        let t = totals_matrix(&ants, &svcs, &root);
        assert_eq!(t.shape(), (ants.len(), svcs.len()));
        assert!(!t.has_non_finite());
        assert!(t.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn totals_matrix_deterministic() {
        let (ants, svcs, root) = small_pop();
        let a = totals_matrix(&ants, &svcs, &root);
        let b = totals_matrix(&ants, &svcs, &Rng::seed_from(123));
        assert_eq!(a, b);
    }

    #[test]
    fn row_sum_equals_volume_regime() {
        // Antenna totals should live in the archetype's log-normal range.
        let (ants, svcs, root) = small_pop();
        let t = totals_matrix(&ants, &svcs, &root);
        for (i, a) in ants.iter().enumerate().take(50) {
            let (mu, sigma) = a.archetype.volume_lognormal();
            let log_total = t.row_sums()[i].ln();
            assert!(
                (log_total - mu).abs() < 6.0 * sigma,
                "antenna {i}: log total {log_total} vs mu {mu}"
            );
        }
    }

    #[test]
    fn hourly_series_integrates_to_total() {
        let (ants, svcs, root) = small_pop();
        let cal = StudyCalendar::temporal_window();
        // Pick a commuter antenna (deterministic template, no events).
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::ParisMetro)
            .expect("some metro antenna");
        let spotify = &svcs[index_of(&svcs, "Spotify").unwrap()];
        let series = hourly_series(a, spotify, &cal, 5000.0, &root);
        assert_eq!(series.len(), cal.num_hours());
        let sum: f64 = series.iter().sum();
        // Multiplicative zero-mean noise keeps the integral near the target.
        assert!((sum - 5000.0).abs() / 5000.0 < 0.05, "sum {sum}");
        assert!(series.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn commuter_series_peaks_at_commute_hours() {
        let (ants, svcs, root) = small_pop();
        let cal = StudyCalendar::temporal_window();
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::ParisMetro)
            .unwrap();
        let spotify = &svcs[index_of(&svcs, "Spotify").unwrap()];
        let series = hourly_series(a, spotify, &cal, 10_000.0, &root);
        // Monday 9 Jan: index of 08:00 vs 13:00.
        let day = cal.day_index(Date::new(2023, 1, 9)).unwrap();
        let am = series[day * 24 + 8];
        let noon = series[day * 24 + 13];
        assert!(am > 1.5 * noon, "am {am} noon {noon}");
    }

    #[test]
    fn strike_day_collapse_for_paris_metro() {
        let (ants, svcs, root) = small_pop();
        let cal = StudyCalendar::temporal_window();
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::ParisMetro)
            .unwrap();
        let maps = &svcs[index_of(&svcs, "Google Maps").unwrap()];
        let series = hourly_series(a, maps, &cal, 10_000.0, &root);
        let strike = cal.day_index(StudyCalendar::strike_day()).unwrap();
        let mon = cal.day_index(Date::new(2023, 1, 9)).unwrap();
        assert!(series[strike * 24 + 8] < 0.2 * series[mon * 24 + 8]);
    }

    #[test]
    fn paris_arena_bursts_on_nba_night() {
        let (ants, svcs, root) = small_pop();
        let cal = StudyCalendar::temporal_window();
        if let Some(a) = ants.iter().find(|a| {
            a.archetype == Archetype::ParisArena && a.city == crate::environments::City::Paris
        }) {
            let snap = &svcs[index_of(&svcs, "Snapchat").unwrap()];
            let series = hourly_series(a, snap, &cal, 10_000.0, &root);
            let strike = cal.day_index(StudyCalendar::strike_day()).unwrap();
            let peak = series[strike * 24 + 21];
            let quiet_day = cal.day_index(Date::new(2023, 1, 10)).unwrap();
            let quiet = series[quiet_day * 24 + 10];
            assert!(peak > 3.0 * (quiet + 1e-9), "peak {peak} quiet {quiet}");
        }
    }

    #[test]
    fn window_scaling_is_proportional() {
        let (ants, svcs, root) = small_pop();
        let window = StudyCalendar::temporal_window();
        let a = &ants[0];
        let svc = &svcs[0];
        let series = hourly_series_for_window(a, svc, 6500.0, 65, &window, &root);
        let sum: f64 = series.iter().sum();
        let expected = 6500.0 * 21.0 / 65.0;
        assert!((sum - expected).abs() / expected < 0.06, "sum {sum}");
    }

    #[test]
    fn aggregate_series_is_sum_of_parts() {
        let (ants, svcs, root) = small_pop();
        let window = StudyCalendar::custom(Date::new(2023, 1, 9), 2);
        let a = &ants[0];
        let row: Vec<f64> = (0..svcs.len()).map(|j| 100.0 + j as f64).collect();
        let agg = aggregate_hourly_series(a, &svcs, &row, 65, &window, &root);
        let mut manual = vec![0.0; window.num_hours()];
        for (svc, &tot) in svcs.iter().zip(&row) {
            let s = hourly_series_for_window(a, svc, tot, 65, &window, &root);
            for (m, v) in manual.iter_mut().zip(s) {
                *m += v;
            }
        }
        // The class-cached aggregate path must be *bit-identical* to the
        // per-service sum, not merely close.
        assert_eq!(agg, manual);
    }

    #[test]
    fn aggregate_signal_free_is_sum_of_parts() {
        let (ants, svcs, root) = small_pop();
        let window = StudyCalendar::custom(Date::new(2023, 1, 9), 2);
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::ParisArena)
            .unwrap_or(&ants[0]);
        let row: Vec<f64> = (0..svcs.len()).map(|j| 250.0 + 3.0 * j as f64).collect();
        let agg = aggregate_hourly_series_signal_free(a, &svcs, &row, 65, &window, &root);
        let mut manual = vec![0.0; window.num_hours()];
        for (svc, &tot) in svcs.iter().zip(&row) {
            let s = hourly_series_for_window_signal_free(a, svc, tot, 65, &window, &root);
            for (m, v) in manual.iter_mut().zip(s) {
                *m += v;
            }
        }
        assert_eq!(agg, manual);
    }

    #[test]
    fn signal_free_matches_planted_for_signal_less_archetype() {
        // BroadDiurnal antennas carry no strike factor, no events, and the
        // temporal window holds no holiday: the signal-free re-synthesis
        // must be bit-identical to the planted series.
        let (ants, svcs, root) = small_pop();
        let cal = StudyCalendar::temporal_window();
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::GeneralUse)
            .unwrap();
        let svc = &svcs[0];
        let planted = hourly_series(a, svc, &cal, 8000.0, &root);
        let clean = hourly_series_signal_free(a, svc, &cal, 8000.0, &root);
        assert_eq!(planted, clean);
    }

    #[test]
    fn signal_free_removes_strike_dip() {
        let (ants, svcs, root) = small_pop();
        let cal = StudyCalendar::temporal_window();
        let a = ants
            .iter()
            .find(|a| a.archetype == Archetype::ParisMetro)
            .unwrap();
        let maps = &svcs[index_of(&svcs, "Google Maps").unwrap()];
        let planted = hourly_series(a, maps, &cal, 10_000.0, &root);
        let clean = hourly_series_signal_free(a, maps, &cal, 10_000.0, &root);
        let strike = cal.day_index(StudyCalendar::strike_day()).unwrap();
        assert!(planted[strike * 24 + 8] < 0.2 * clean[strike * 24 + 8]);
    }

    #[test]
    fn event_schedule_is_site_deterministic() {
        let (ants, _svcs, root) = small_pop();
        let cal = StudyCalendar::temporal_window();
        for a in ants
            .iter()
            .filter(|a| a.archetype == Archetype::ParisArena)
            .take(3)
        {
            let s1 = event_schedule(a, &cal, &root);
            let s2 = event_schedule(a, &cal, &root);
            assert_eq!(s1.events(), s2.events());
        }
    }
}
