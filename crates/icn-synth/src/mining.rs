//! Antenna-name mining (Section 5.2.1).
//!
//! The paper derives the eleven environment types "by inspecting the names
//! of the antennas, applying simple string manipulation to extract keywords
//! appearing within the names". This module re-implements that step against
//! the generated site names: tokenise the name, look for an environment
//! keyword, and fall back to `Unknown` when none matches — exercising the
//! same extraction code path the authors describe, including the failure
//! mode of unparseable names (fault injection in tests).

use crate::environments::Environment;

/// Result of mining one antenna name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinedLabel {
    /// A recognised indoor environment.
    Env(Environment),
    /// No environment keyword found in the name.
    Unknown,
}

/// Extracts the environment from a site name by keyword matching.
///
/// Matching is case-insensitive and tolerant of `-`/`_`/space separators.
pub fn mine_environment(site_name: &str) -> MinedLabel {
    let upper = site_name.to_uppercase();
    let normalized: String = upper
        .chars()
        .map(|c| if c == '_' || c == ' ' { '-' } else { c })
        .collect();
    for env in Environment::ALL {
        for kw in env.name_keywords() {
            if contains_token(&normalized, kw) {
                return MinedLabel::Env(env);
            }
        }
    }
    MinedLabel::Unknown
}

/// True if `hay` contains `needle` as a `-`-delimited token sequence
/// (so `"GARE"` does not match `"MEGARE"` but does match `"LYON-GARE-01"`).
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0 || hay.as_bytes()[abs - 1] == b'-';
        let after = abs + needle.len();
        let after_ok = after == hay.len() || hay.as_bytes()[after] == b'-';
        if before_ok && after_ok {
            return true;
        }
        start = abs + 1;
        if start >= hay.len() {
            break;
        }
    }
    false
}

/// Mines a whole population, returning per-antenna labels and the count of
/// unknowns (reported by the Table 1 harness as extraction coverage).
pub fn mine_all(names: &[String]) -> (Vec<MinedLabel>, usize) {
    let labels: Vec<MinedLabel> = names.iter().map(|n| mine_environment(n)).collect();
    let unknown = labels.iter().filter(|l| **l == MinedLabel::Unknown).count();
    (labels, unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antennas::generate_antennas;
    use icn_stats::Rng;

    #[test]
    fn recognises_generated_names() {
        let mut rng = Rng::seed_from(5);
        let ants = generate_antennas(0.05, &mut rng);
        for a in &ants {
            assert_eq!(
                mine_environment(&a.site_name),
                MinedLabel::Env(a.environment),
                "name {}",
                a.site_name
            );
        }
    }

    #[test]
    fn case_and_separator_insensitive() {
        assert_eq!(
            mine_environment("paris_metro_0001"),
            MinedLabel::Env(Environment::Metro)
        );
        assert_eq!(
            mine_environment("Lyon Gare Part-Dieu"),
            MinedLabel::Env(Environment::TrainStation)
        );
    }

    #[test]
    fn token_boundaries_respected() {
        // "MEGARE" must not match the GARE keyword.
        assert_eq!(mine_environment("FOO-MEGARE-01"), MinedLabel::Unknown);
        assert_eq!(
            mine_environment("FOO-GARE-01"),
            MinedLabel::Env(Environment::TrainStation)
        );
    }

    #[test]
    fn unparseable_names_are_unknown() {
        for bad in ["", "X", "SITE-12345", "ZONE-INDUSTRIELLE-NORD"] {
            assert_eq!(mine_environment(bad), MinedLabel::Unknown, "{bad}");
        }
    }

    #[test]
    fn mine_all_counts_unknowns() {
        let names = vec![
            "PARIS-METRO-0001".to_string(),
            "JUNK-SITE".to_string(),
            "OTHER-HOPITAL-0009".to_string(),
        ];
        let (labels, unknown) = mine_all(&names);
        assert_eq!(unknown, 1);
        assert_eq!(labels[0], MinedLabel::Env(Environment::Metro));
        assert_eq!(labels[2], MinedLabel::Env(Environment::Hospital));
    }

    #[test]
    fn first_keyword_wins_on_multi_match() {
        // METRO appears before GARE in the taxonomy scan order.
        assert_eq!(
            mine_environment("PARIS-METRO-GARE-DU-NORD"),
            MinedLabel::Env(Environment::Metro)
        );
    }
}
