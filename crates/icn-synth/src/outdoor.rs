//! Outdoor antenna population (Section 5.3).
//!
//! The paper probes ~20,000 **outdoor** macro antennas located within 1 km
//! of the indoor ones and shows that, when passed through the same RSCA +
//! surrogate-classifier machinery, ~70 % of them land in the general-use
//! cluster 1 — the environment-driven diversity of indoor antennas is
//! absent outdoors. We model an outdoor antenna as a *mixture* of usage
//! profiles: predominantly the general-use profile (outdoor BSs serve many
//! concurrent activities) with a small leakage from the neighbourhood's
//! indoor environment (an outdoor BS near a stadium does see a faint echo
//! of event traffic, strongly diluted by pass-by users).

use crate::antennas::Antenna;
use crate::archetypes::Archetype;
use crate::geo::{offset_within, Coord};
use crate::services::Service;
use icn_stats::{Matrix, Rng};

/// One outdoor macro antenna near an indoor site.
#[derive(Clone, Debug)]
pub struct OutdoorAntenna {
    /// Stable id (row in the outdoor totals matrix).
    pub id: usize,
    /// The indoor antenna this outdoor BS neighbours (within 1 km).
    pub neighbor_indoor_id: usize,
    /// Weight of the neighbourhood indoor profile leaking into the outdoor
    /// mixture (0 ⇒ pure general use; small in practice).
    pub leakage: f64,
    /// Macro-site coordinate, within 1 km of the indoor neighbour
    /// (the Section 5.3 selection radius).
    pub coord: Coord,
}

/// Mixing parameters for outdoor traffic synthesis.
#[derive(Clone, Copy, Debug)]
pub struct OutdoorConfig {
    /// Number of outdoor antennas per indoor antenna (the paper has ~20k
    /// outdoor for 4,762 indoor ⇒ ≈ 4.2; we default to 4).
    pub per_indoor: usize,
    /// Mean leakage of the neighbour indoor profile (beta-ish around this).
    pub mean_leakage: f64,
    /// Log-normal volume parameters (outdoor macros move more traffic than
    /// most indoor antennas).
    pub volume_mu: f64,
    /// Log-normal sigma.
    pub volume_sigma: f64,
}

impl Default for OutdoorConfig {
    fn default() -> Self {
        OutdoorConfig {
            per_indoor: 4,
            mean_leakage: 0.12,
            volume_mu: 13.5,
            volume_sigma: 0.7,
        }
    }
}

/// Generates the outdoor population: `per_indoor` outdoor BSs around each
/// indoor antenna, each with a small random leakage of the local profile.
pub fn generate_outdoor(
    indoor: &[Antenna],
    cfg: &OutdoorConfig,
    root: &Rng,
) -> Vec<OutdoorAntenna> {
    let mut out = Vec::with_capacity(indoor.len() * cfg.per_indoor);
    for a in indoor {
        let mut rng = root.fork(0x0D00_0000 ^ a.id as u64);
        for _ in 0..cfg.per_indoor {
            // Leakage: clamped exponential around the mean, capped well
            // below 0.5 so general use always dominates.
            let leak = (rng.exponential(1.0 / cfg.mean_leakage)).min(0.35);
            out.push(OutdoorAntenna {
                id: out.len(),
                neighbor_indoor_id: a.id,
                leakage: leak,
                coord: offset_within(a.coord, 1_000.0, &mut rng),
            });
        }
    }
    out
}

/// Builds the outdoor totals matrix `T_out` (outdoor antennas × services).
///
/// Each outdoor antenna's share vector is
/// `(1 − leakage) × general-use shares + leakage × neighbour-profile shares`,
/// both drawn with the same machinery as indoor antennas.
pub fn outdoor_totals_matrix(
    outdoor: &[OutdoorAntenna],
    indoor: &[Antenna],
    services: &[Service],
    root: &Rng,
) -> Matrix {
    let mut t = Matrix::zeros(outdoor.len(), services.len());
    for (i, o) in outdoor.iter().enumerate() {
        let neighbor = &indoor[o.neighbor_indoor_id];
        let mut rng = root.fork(0x0D0A_0000 ^ o.id as u64);
        let vol = rng.lognormal(13.5, 0.7);
        // General-use base shares with this antenna's own noise.
        let base = mixture_shares(Archetype::GeneralUse, services, &mut rng);
        let local = mixture_shares(neighbor.archetype, services, &mut rng);
        for j in 0..services.len() {
            let share = (1.0 - o.leakage) * base[j] + o.leakage * local[j];
            t.set(i, j, vol * share);
        }
    }
    t
}

fn mixture_shares(arch: Archetype, services: &[Service], rng: &mut Rng) -> Vec<f64> {
    let mut shares: Vec<f64> = services
        .iter()
        .map(|svc| {
            let aff = arch.service_affinity(svc);
            let noise = rng.lognormal(0.0, 0.3);
            svc.popularity * svc.volume_scale * aff * noise
        })
        .collect();
    let total: f64 = shares.iter().sum();
    for s in &mut shares {
        *s /= total;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antennas::generate_antennas;
    use crate::services::catalog;

    fn setup() -> (Vec<Antenna>, Vec<OutdoorAntenna>, Vec<Service>, Rng) {
        let mut rng = Rng::seed_from(77);
        let indoor = generate_antennas(0.02, &mut rng);
        let root = Rng::seed_from(77);
        let outdoor = generate_outdoor(&indoor, &OutdoorConfig::default(), &root);
        (indoor, outdoor, catalog(), root)
    }

    #[test]
    fn population_size_matches_config() {
        let (indoor, outdoor, _, _) = setup();
        assert_eq!(outdoor.len(), indoor.len() * 4);
    }

    #[test]
    fn leakage_small_and_bounded() {
        let (_, outdoor, _, _) = setup();
        for o in &outdoor {
            assert!((0.0..=0.35).contains(&o.leakage));
        }
        let mean: f64 = outdoor.iter().map(|o| o.leakage).sum::<f64>() / outdoor.len() as f64;
        assert!(mean < 0.2, "mean leakage {mean}");
    }

    #[test]
    fn totals_shape_and_positivity() {
        let (indoor, outdoor, svcs, root) = setup();
        let t = outdoor_totals_matrix(&outdoor, &indoor, &svcs, &root);
        assert_eq!(t.shape(), (outdoor.len(), svcs.len()));
        assert!(t.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn outdoor_profile_close_to_general_use() {
        // An outdoor antenna's share vector must correlate more with the
        // general-use profile than with its (non-general) neighbour's.
        let (indoor, outdoor, svcs, root) = setup();
        let t = outdoor_totals_matrix(&outdoor, &indoor, &svcs, &root);
        // Expected (noise-free) share vectors per archetype:
        let expected = |arch: Archetype| -> Vec<f64> {
            let mut v: Vec<f64> = svcs
                .iter()
                .map(|s| s.popularity * s.volume_scale * arch.service_affinity(s))
                .collect();
            let tot: f64 = v.iter().sum();
            v.iter_mut().for_each(|x| *x /= tot);
            v
        };
        let general = expected(Archetype::GeneralUse);
        let mut checked = 0;
        for (i, o) in outdoor.iter().enumerate() {
            let narch = indoor[o.neighbor_indoor_id].archetype;
            if narch == Archetype::GeneralUse {
                continue;
            }
            let row = t.row(i);
            let tot: f64 = row.iter().sum();
            let shares: Vec<f64> = row.iter().map(|v| v / tot).collect();
            let local = expected(narch);
            let c_gen = icn_stats::summary::pearson(&shares, &general);
            let c_loc = icn_stats::summary::pearson(&shares, &local);
            assert!(
                c_gen > c_loc,
                "outdoor {i}: general corr {c_gen} < local corr {c_loc}"
            );
            checked += 1;
            if checked > 30 {
                break;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn outdoor_sites_within_1km_of_neighbor() {
        // The Section 5.3 relation: every outdoor antenna sits inside the
        // 1 km radius of its indoor neighbour.
        let (indoor, outdoor, _, _) = setup();
        for o in outdoor.iter().take(200) {
            let d = crate::geo::haversine_m(indoor[o.neighbor_indoor_id].coord, o.coord);
            assert!(d <= 1_001.0, "outdoor {} at {d} m", o.id);
        }
    }

    #[test]
    fn deterministic_generation() {
        let (indoor, o1, svcs, root) = setup();
        let o2 = generate_outdoor(&indoor, &OutdoorConfig::default(), &root);
        assert_eq!(o1.len(), o2.len());
        for (a, b) in o1.iter().zip(&o2) {
            assert_eq!(a.leakage, b.leakage);
        }
        let t1 = outdoor_totals_matrix(&o1, &indoor, &svcs, &root);
        let t2 = outdoor_totals_matrix(&o2, &indoor, &svcs, &root);
        assert_eq!(t1, t2);
    }
}
