//! Geography: coordinates, haversine distances and the 1 km neighbourhood.
//!
//! Section 5.3 pairs each indoor antenna with "all the outdoor antennas
//! found within a 1 km radius". This module gives sites real coordinates —
//! city centres with urban scatter — and the haversine metric used to
//! verify the neighbourhood relation. Section 3 also notes the feed covers
//! a 5G NSA network whose indoor layer is still "vast majority 4G";
//! [`RadioTech`] models that split.

use crate::environments::City;
use icn_stats::Rng;

/// Radio access technology of an antenna (5G NSA deployment: both RATs
/// share the 4G core, which is why one probe sees both — Section 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RadioTech {
    /// 4G eNodeB (the vast majority of ICN antennas in the study).
    Lte,
    /// 5G NR gNodeB (scarce indoors at the study's roll-out stage).
    Nr,
}

impl RadioTech {
    /// Draws the technology with the paper's "vast majority 4G" skew.
    pub fn sample(rng: &mut Rng) -> RadioTech {
        if rng.chance(0.06) {
            RadioTech::Nr
        } else {
            RadioTech::Lte
        }
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            RadioTech::Lte => "4G",
            RadioTech::Nr => "5G",
        }
    }
}

/// A WGS-84 coordinate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coord {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// Mean Earth radius in metres.
const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// Haversine great-circle distance between two coordinates, in metres.
pub fn haversine_m(a: Coord, b: Coord) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// The city centre each [`City`] scatters its sites around.
pub fn city_center(city: City) -> Coord {
    match city {
        City::Paris => Coord {
            lat: 48.8566,
            lon: 2.3522,
        },
        City::Lille => Coord {
            lat: 50.6292,
            lon: 3.0573,
        },
        City::Lyon => Coord {
            lat: 45.7640,
            lon: 4.8357,
        },
        City::Rennes => Coord {
            lat: 48.1173,
            lon: -1.6778,
        },
        City::Toulouse => Coord {
            lat: 43.6047,
            lon: 1.4442,
        },
        // "Other" stands for the rest of France; we anchor it at its
        // geographic centre and scatter widely.
        City::Other => Coord {
            lat: 46.6034,
            lon: 1.8883,
        },
    }
}

/// Urban scatter radius (metres) for sites of a city.
fn scatter_radius_m(city: City) -> f64 {
    match city {
        City::Paris => 15_000.0,
        City::Other => 350_000.0, // all over the country
        _ => 8_000.0,
    }
}

/// Draws a site coordinate: the city centre plus uniform-in-disc scatter.
pub fn site_coord(city: City, rng: &mut Rng) -> Coord {
    let center = city_center(city);
    offset_within(center, scatter_radius_m(city), rng)
}

/// A coordinate uniformly distributed in the disc of radius `radius_m`
/// around `center` (good flat-earth approximation at these scales). Used
/// both for urban scatter and for dropping outdoor macros within the 1 km
/// neighbourhood of an indoor site.
pub fn offset_within(center: Coord, radius_m: f64, rng: &mut Rng) -> Coord {
    assert!(radius_m >= 0.0, "offset_within: negative radius");
    // Uniform over the disc: r = R√u.
    let r = radius_m * rng.next_f64().sqrt();
    let theta = rng.uniform(0.0, std::f64::consts::TAU);
    let dlat_m = r * theta.sin();
    let dlon_m = r * theta.cos();
    let lat = center.lat + (dlat_m / EARTH_RADIUS_M).to_degrees();
    let lon = center.lon + (dlon_m / (EARTH_RADIUS_M * center.lat.to_radians().cos())).to_degrees();
    Coord { lat, lon }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_value() {
        // Paris ↔ Lyon ≈ 392 km.
        let d = haversine_m(city_center(City::Paris), city_center(City::Lyon));
        assert!((d - 392_000.0).abs() < 10_000.0, "distance {d}");
    }

    #[test]
    fn haversine_identity_and_symmetry() {
        let p = city_center(City::Rennes);
        let q = city_center(City::Toulouse);
        assert_eq!(haversine_m(p, p), 0.0);
        assert!((haversine_m(p, q) - haversine_m(q, p)).abs() < 1e-6);
    }

    #[test]
    fn offset_stays_within_radius() {
        let mut rng = Rng::seed_from(5);
        let center = city_center(City::Paris);
        for _ in 0..500 {
            let c = offset_within(center, 1_000.0, &mut rng);
            let d = haversine_m(center, c);
            assert!(d <= 1_001.0, "distance {d} exceeds 1 km");
        }
    }

    #[test]
    fn offset_is_spread_not_degenerate() {
        let mut rng = Rng::seed_from(6);
        let center = city_center(City::Lyon);
        let mean_d: f64 = (0..500)
            .map(|_| haversine_m(center, offset_within(center, 1_000.0, &mut rng)))
            .sum::<f64>()
            / 500.0;
        // Uniform-in-disc mean distance is 2R/3.
        assert!((mean_d - 666.7).abs() < 60.0, "mean {mean_d}");
    }

    #[test]
    fn site_coords_cluster_near_their_city() {
        let mut rng = Rng::seed_from(7);
        for city in [
            City::Paris,
            City::Lille,
            City::Lyon,
            City::Rennes,
            City::Toulouse,
        ] {
            let c = site_coord(city, &mut rng);
            let d = haversine_m(city_center(city), c);
            assert!(d <= 15_100.0, "{city:?} site {d} m from centre");
        }
    }

    #[test]
    fn radio_tech_mostly_lte() {
        let mut rng = Rng::seed_from(8);
        let n = 20_000;
        let nr = (0..n)
            .filter(|_| RadioTech::sample(&mut rng) == RadioTech::Nr)
            .count();
        let frac = nr as f64 / n as f64;
        assert!((frac - 0.06).abs() < 0.01, "NR fraction {frac}");
    }

    #[test]
    fn labels() {
        assert_eq!(RadioTech::Lte.label(), "4G");
        assert_eq!(RadioTech::Nr.label(), "5G");
    }
}
