//! Property-based tests for the synthetic measurement substrate, driven
//! by the deterministic [`icn_stats::check`] harness.

use icn_stats::check::{cases, len_in};
use icn_stats::Rng;
use icn_synth::antennas::generate_antennas;
use icn_synth::calendar::{Date, StudyCalendar};
use icn_synth::mining::{mine_environment, MinedLabel};
use icn_synth::services::catalog;
use icn_synth::traffic::{hourly_series, service_shares, totals_matrix};
use icn_synth::Archetype;

fn epoch_days_in(rng: &mut Rng, lo: i64, hi: i64) -> i64 {
    lo + rng.below((hi - lo) as u64) as i64
}

#[test]
fn date_round_trip() {
    cases(32, |case, rng| {
        let z = epoch_days_in(rng, -200_000, 200_000);
        let d = Date::from_epoch_days(z);
        assert_eq!(d.days_from_epoch(), z, "case {case}");
    });
}

#[test]
fn plus_days_is_additive() {
    cases(32, |case, rng| {
        let z = epoch_days_in(rng, -50_000, 50_000);
        let a = epoch_days_in(rng, -500, 500);
        let b = epoch_days_in(rng, -500, 500);
        let d = Date::from_epoch_days(z);
        assert_eq!(
            d.plus_days(a).plus_days(b),
            d.plus_days(a + b),
            "case {case}"
        );
    });
}

#[test]
fn weekday_cycles_every_seven_days() {
    cases(32, |case, rng| {
        let d = Date::from_epoch_days(epoch_days_in(rng, -50_000, 50_000));
        assert_eq!(d.weekday(), d.plus_days(7).weekday(), "case {case}");
        assert_ne!(d.weekday(), d.plus_days(1).weekday(), "case {case}");
    });
}

#[test]
fn calendar_day_index_consistent() {
    cases(32, |case, rng| {
        let start = epoch_days_in(rng, 18_000, 20_000);
        let days = len_in(rng, 1, 90);
        let cal = StudyCalendar::custom(Date::from_epoch_days(start), days);
        for i in (0..days).step_by(7) {
            assert_eq!(cal.day_index(cal.date(i)), Some(i), "case {case} day {i}");
        }
        assert_eq!(cal.num_hours(), days * 24, "case {case}");
    });
}

#[test]
fn shares_always_simplex() {
    cases(32, |case, rng| {
        let ants = generate_antennas(0.01, rng);
        let svcs = catalog();
        let mut rng2 = Rng::seed_from(rng.next_u64());
        for a in ants.iter().take(5) {
            let s = service_shares(a, &svcs, &mut rng2);
            let sum: f64 = s.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "case {case}: sum {sum}");
            assert!(s.iter().all(|&x| x > 0.0), "case {case}");
        }
    });
}

#[test]
fn totals_matrix_positive_finite() {
    cases(32, |case, rng| {
        let ants = generate_antennas(0.008, rng);
        let svcs = catalog();
        let t = totals_matrix(&ants, &svcs, &Rng::seed_from(rng.next_u64()));
        assert!(!t.has_non_finite(), "case {case}");
        assert!(t.as_slice().iter().all(|&v| v > 0.0), "case {case}");
    });
}

#[test]
fn hourly_series_nonnegative_and_integrates() {
    cases(32, |case, rng| {
        let total = rng.uniform(10.0, 10_000.0);
        let ants = generate_antennas(0.008, rng);
        let svcs = catalog();
        let cal = StudyCalendar::custom(Date::new(2023, 1, 9), 7);
        let a = &ants[rng.index(ants.len())];
        let svc = &svcs[rng.index(svcs.len())];
        let series = hourly_series(a, svc, &cal, total, &Rng::seed_from(rng.next_u64()));
        assert_eq!(series.len(), cal.num_hours(), "case {case}");
        assert!(
            series.iter().all(|&v| v >= 0.0 && v.is_finite()),
            "case {case}"
        );
        let sum: f64 = series.iter().sum();
        assert!(
            (sum - total).abs() / total < 0.25,
            "case {case}: sum {sum} target {total}"
        );
    });
}

#[test]
fn mining_never_mislabels_generated_names() {
    cases(32, |case, rng| {
        let ants = generate_antennas(0.01, rng);
        for a in ants.iter().take(30) {
            assert_eq!(
                mine_environment(&a.site_name),
                MinedLabel::Env(a.environment),
                "case {case}: {}",
                a.site_name
            );
        }
    });
}

#[test]
fn affinities_positive_bounded() {
    cases(32, |case, rng| {
        let svcs = catalog();
        let svc = &svcs[rng.index(svcs.len())];
        for arch in Archetype::ALL {
            let v = arch.service_affinity(svc);
            assert!(v > 0.0 && v < 10.0, "case {case}: {v}");
        }
    });
}
