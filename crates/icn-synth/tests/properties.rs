//! Property-based tests for the synthetic measurement substrate.

use icn_stats::Rng;
use icn_synth::antennas::generate_antennas;
use icn_synth::calendar::{Date, StudyCalendar};
use icn_synth::mining::{mine_environment, MinedLabel};
use icn_synth::services::catalog;
use icn_synth::traffic::{hourly_series, service_shares, totals_matrix};
use icn_synth::Archetype;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn date_round_trip(z in -200_000i64..200_000) {
        let d = Date::from_epoch_days(z);
        prop_assert_eq!(d.days_from_epoch(), z);
    }

    #[test]
    fn plus_days_is_additive(z in -50_000i64..50_000, a in -500i64..500, b in -500i64..500) {
        let d = Date::from_epoch_days(z);
        prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
    }

    #[test]
    fn weekday_cycles_every_seven_days(z in -50_000i64..50_000) {
        let d = Date::from_epoch_days(z);
        prop_assert_eq!(d.weekday(), d.plus_days(7).weekday());
        prop_assert_ne!(d.weekday(), d.plus_days(1).weekday());
    }

    #[test]
    fn calendar_day_index_consistent(start in 18_000i64..20_000, days in 1usize..90) {
        let cal = StudyCalendar::custom(Date::from_epoch_days(start), days);
        for i in (0..days).step_by(7) {
            prop_assert_eq!(cal.day_index(cal.date(i)), Some(i));
        }
        prop_assert_eq!(cal.num_hours(), days * 24);
    }

    #[test]
    fn shares_always_simplex(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let ants = generate_antennas(0.01, &mut rng);
        let svcs = catalog();
        let mut rng2 = Rng::seed_from(seed ^ 0xA5A5);
        for a in ants.iter().take(5) {
            let s = service_shares(a, &svcs, &mut rng2);
            let sum: f64 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn totals_matrix_positive_finite(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let ants = generate_antennas(0.008, &mut rng);
        let svcs = catalog();
        let t = totals_matrix(&ants, &svcs, &Rng::seed_from(seed));
        prop_assert!(!t.has_non_finite());
        prop_assert!(t.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn hourly_series_nonnegative_and_integrates(seed in any::<u64>(), total in 10.0f64..10_000.0) {
        let mut rng = Rng::seed_from(seed);
        let ants = generate_antennas(0.008, &mut rng);
        let svcs = catalog();
        let cal = StudyCalendar::custom(Date::new(2023, 1, 9), 7);
        let a = &ants[seed as usize % ants.len()];
        let series = hourly_series(a, &svcs[seed as usize % svcs.len()], &cal, total, &Rng::seed_from(seed));
        prop_assert_eq!(series.len(), cal.num_hours());
        prop_assert!(series.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let sum: f64 = series.iter().sum();
        prop_assert!((sum - total).abs() / total < 0.25, "sum {} target {}", sum, total);
    }

    #[test]
    fn mining_never_mislabels_generated_names(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let ants = generate_antennas(0.01, &mut rng);
        for a in ants.iter().take(30) {
            prop_assert_eq!(mine_environment(&a.site_name), MinedLabel::Env(a.environment));
        }
    }

    #[test]
    fn affinities_positive_bounded(seed in any::<u64>()) {
        let svcs = catalog();
        let svc = &svcs[seed as usize % svcs.len()];
        for arch in Archetype::ALL {
            let v = arch.service_affinity(svc);
            prop_assert!(v > 0.0 && v < 10.0);
        }
    }
}
